// Property suite pinning the SIMD contract of util/simd.hpp and the
// vectorized IntervalIndex query paths:
//
//   1. every word/double kernel agrees with a naive scalar reference on
//      random inputs, including tail-word / partial-block shapes, all-zero
//      and all-one rows, and every NaN/inf compare case;
//   2. the vectorized index paths (IndexConfig::use_simd = true) are
//      decision-for-decision identical to the scalar ablation path and to
//      a flat scan, under churn, on delta-tier-only indexes, and for
//      out-of-domain, boundary, and NaN probes.
//
// The suite runs under ASan/UBSan in CI (all tier-1 tests do), so the
// aligned loads and prefetch distances are sanitizer-checked as well.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "index/interval_index.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace psc {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using core::Value;
using simd::Word;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<SubscriptionId> sorted(std::vector<SubscriptionId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

simd::AlignedVector<Word> random_words(std::size_t n, util::Rng& rng,
                                       int shape) {
  simd::AlignedVector<Word> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0: out[i] = 0; break;                      // all-zero row
      case 1: out[i] = ~Word{0}; break;               // all-one row
      case 2:                                         // sparse tail word
        out[i] = i + 1 == n ? Word{1} << rng.next_below(64) : 0;
        break;
      default: out[i] = rng() & rng(); break;
    }
  }
  return out;
}

TEST(SimdKernels, WordKernelsMatchScalarReference) {
  util::Rng rng(20260807);
  // Partial-block shapes relative to larger buffers: the kernels only see
  // the first `words` entries, which must be a whole number of blocks.
  for (const std::size_t words : {std::size_t{4}, std::size_t{8},
                                  std::size_t{12}, std::size_t{64}}) {
    for (int shape = 0; shape < 4; ++shape) {
      for (int round = 0; round < 25; ++round) {
        const auto row = random_words(words, rng, shape);
        const auto base = random_words(words, rng, 3);

        auto acc = base;
        std::vector<Word> ref(base.begin(), base.end());
        Word any = 0;
        for (std::size_t w = 0; w < words; ++w) {
          ref[w] &= row[w];
          any |= ref[w];
        }
        EXPECT_EQ(simd::and_into(acc.data(), row.data(), words), any != 0);
        EXPECT_TRUE(std::equal(ref.begin(), ref.end(), acc.begin()));

        acc = base;
        Word any_even = 0;
        for (std::size_t w = 0; w < words; ++w) {
          ref[w] = w % 2 == 0 ? base[w] & row[w] : 0;
          if (w % 2 == 0) any_even |= ref[w];
        }
        EXPECT_EQ(simd::and_into_even(acc.data(), row.data(), words),
                  any_even != 0);
        EXPECT_TRUE(std::equal(ref.begin(), ref.end(), acc.begin()));

        acc = base;
        simd::zero_odd_words(acc.data(), words);
        for (std::size_t w = 0; w < words; ++w) {
          EXPECT_EQ(acc[w], w % 2 == 0 ? base[w] : Word{0});
        }

        acc = base;
        simd::or_into(acc.data(), row.data(), words);
        for (std::size_t w = 0; w < words; ++w) {
          EXPECT_EQ(acc[w], base[w] | row[w]);
        }

        acc = base;
        simd::andnot_into(acc.data(), row.data(), words);
        for (std::size_t w = 0; w < words; ++w) {
          EXPECT_EQ(acc[w], base[w] & ~row[w]);
        }

        Word row_any = 0;
        std::uint64_t bits = 0;
        for (std::size_t w = 0; w < words; ++w) {
          row_any |= row[w];
          bits += static_cast<std::uint64_t>(std::popcount(row[w]));
        }
        EXPECT_EQ(simd::testz(row.data(), words), row_any == 0);
        EXPECT_EQ(simd::popcount(row.data(), words), bits);
      }
    }
  }
}

TEST(SimdKernels, DoubleKernelsMatchScalarSemantics) {
  // contains4 / intersects4 must agree with the scalar >= / <= verify on
  // every lane combination, including NaN (fails), +-inf padding lanes
  // (pass anything real), and exact boundary equality (closed intervals).
  const std::vector<double> specials{-kInf, -1.0, 0.0, 1.0, kInf, kNaN};
  util::Rng rng(7);
  alignas(32) double rec[8];
  alignas(32) double point[4];
  alignas(32) double qlo[4];
  alignas(32) double qhi[4];
  for (int round = 0; round < 4000; ++round) {
    for (int lane = 0; lane < 4; ++lane) {
      const auto pick = [&] {
        return rng.bernoulli(0.5)
                   ? specials[rng.next_below(specials.size())]
                   : rng.uniform(-2.0, 2.0);
      };
      double lo = pick(), hi = pick();
      if (lo > hi) std::swap(lo, hi);
      rec[lane] = lo;
      rec[lane + 4] = hi;
      point[lane] = pick();
      double a = pick(), b = pick();
      if (a > b) std::swap(a, b);
      qlo[lane] = a;
      qhi[lane] = b;
    }
    bool contains_ref = true, intersects_ref = true;
    for (int lane = 0; lane < 4; ++lane) {
      contains_ref = contains_ref &&
                     point[lane] >= rec[lane] && point[lane] <= rec[lane + 4];
      intersects_ref = intersects_ref &&
                       qhi[lane] >= rec[lane] && qlo[lane] <= rec[lane + 4];
    }
    EXPECT_EQ(simd::contains4(point, rec), contains_ref) << round;
    EXPECT_EQ(simd::intersects4(qlo, qhi, rec), intersects_ref) << round;
  }
}

index::IndexConfig scalar_config(index::IndexConfig config) {
  config.use_simd = false;
  return config;
}

/// Runs the same churn + probe trace against a vectorized index, a scalar
/// one, and a flat scan; every decision must agree.
void run_equivalence_trace(index::IndexConfig config, std::uint64_t seed,
                           int steps, double erase_p) {
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  workload::ComparisonStream stream(stream_config, seed);
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  index::IntervalIndex vec(stream_config.attribute_count, config);
  index::IntervalIndex scalar(stream_config.attribute_count,
                              scalar_config(config));
  std::vector<Subscription> live;

  for (int step = 0; step < steps; ++step) {
    if (!live.empty() && rng.bernoulli(erase_p)) {
      const std::size_t victim = rng.next_below(live.size());
      ASSERT_TRUE(vec.erase(live[victim].id()));
      ASSERT_TRUE(scalar.erase(live[victim].id()));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      Subscription sub = stream.next();
      vec.insert(sub);
      scalar.insert(sub);
      live.push_back(std::move(sub));
    }

    // Out-of-domain values clamp to the edge buckets and must not change
    // any decision, so probe well past the configured domain.
    const Publication pub = workload::uniform_publication(
        stream_config.attribute_count, -200.0, 1200.0, rng);
    std::vector<SubscriptionId> expected;
    for (const auto& sub : live) {
      if (pub.matches(sub)) expected.push_back(sub.id());
    }
    EXPECT_EQ(sorted(vec.stab(pub.values())), sorted(expected)) << step;
    EXPECT_EQ(sorted(scalar.stab(pub.values())), sorted(expected)) << step;

    workload::ScenarioConfig box_config;
    box_config.attribute_count = stream_config.attribute_count;
    const Subscription probe = workload::random_box(box_config, 0.05, 0.5, rng);
    expected.clear();
    for (const auto& sub : live) {
      if (sub.intersects(probe)) expected.push_back(sub.id());
    }
    EXPECT_EQ(sorted(vec.box_intersect(probe)), sorted(expected)) << step;
    EXPECT_EQ(sorted(scalar.box_intersect(probe)), sorted(expected)) << step;
  }
}

TEST(SimdIndexEquivalence, ChurnTraceMatchesScalarAndFlatScan) {
  run_equivalence_trace(index::IndexConfig{}, 20260807, 400, 0.25);
}

TEST(SimdIndexEquivalence, DeltaTierOnlyIndex) {
  // A compaction threshold far above the trace size keeps every live slot
  // in the delta tier for the whole run: the scalar box path must take its
  // delta flat-scan for everything, the mask path needs no special case.
  index::IndexConfig config;
  config.compaction_min = 1u << 20;
  run_equivalence_trace(config, 42, 250, 0.3);
}

TEST(SimdIndexEquivalence, EagerMutationConfig) {
  index::IndexConfig config;
  config.amortize_mutations = false;
  run_equivalence_trace(config, 7, 150, 0.3);
}

TEST(SimdIndexEquivalence, BoundaryAndNaNProbesAgreeAcrossPaths) {
  index::IndexConfig config;
  index::IntervalIndex vec(2, config);
  index::IntervalIndex scalar(2, scalar_config(config));
  const auto add = [&](double lo1, double hi1, double lo2, double hi2,
                       SubscriptionId id) {
    const Subscription sub({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
    vec.insert(sub);
    scalar.insert(sub);
  };
  add(0, 10, 0, 10, 1);
  add(-kInf, 5, 200, kInf, 2);
  add(0, 1000, -kInf, kInf, 3);        // wide on attr 1
  add(-kInf, kInf, -kInf, kInf, 4);    // fully unconstrained

  const std::vector<std::vector<Value>> probes{
      {0.0, 0.0},        // domain_lo boundary (certainty trust edge)
      {1000.0, 1000.0},  // domain_hi boundary
      {-50.0, 3.0},      // below the domain: clamped bucket, no certainty
      {3.0, 5000.0},     // above the domain
      {kNaN, 3.0},       // NaN fails constrained attrs, passes wide ones
      {3.0, kNaN},
      {kNaN, kNaN},
  };
  for (const auto& point : probes) {
    EXPECT_EQ(sorted(vec.stab(point)), sorted(scalar.stab(point)))
        << point[0] << "," << point[1];
  }

  const std::vector<Subscription> boxes{
      Subscription({Interval{0, 0}, Interval{0, 0}}, 99),
      Subscription({Interval{-kInf, -100}, Interval{-kInf, kInf}}, 99),
      Subscription({Interval{1000, 5000}, Interval{999, 1001}}, 99),
      Subscription({Interval{kNaN, kNaN}, Interval{0, 10}}, 99),
      Subscription({Interval{0, 10}, Interval{kNaN, 5}}, 99),
  };
  for (const auto& box : boxes) {
    EXPECT_EQ(sorted(vec.box_intersect(box)), sorted(scalar.box_intersect(box)))
        << box.range(0).lo;
  }
}

TEST(SimdIndexEquivalence, LargeIdsDisableThe32BitShadow) {
  // Ids above 2^32 must flow through emission unharmed (the 32-bit id
  // shadow is only read while every live id fits).
  index::IndexConfig config;
  index::IntervalIndex vec(1, config);
  index::IntervalIndex scalar(1, scalar_config(config));
  const SubscriptionId big = (SubscriptionId{1} << 40) + 7;
  for (const auto& [lo, hi, id] :
       {std::tuple{0.0, 10.0, SubscriptionId{1}},
        std::tuple{5.0, 15.0, big},
        std::tuple{8.0, 9.0, SubscriptionId{2}}}) {
    const Subscription sub({Interval{lo, hi}}, id);
    vec.insert(sub);
    scalar.insert(sub);
  }
  const std::vector<Value> point{8.5};
  EXPECT_EQ(sorted(vec.stab(point)),
            (std::vector<SubscriptionId>{1, 2, big}));
  EXPECT_EQ(sorted(vec.stab(point)), sorted(scalar.stab(point)));
  // Erasing the big id re-enables the shadow; decisions stay identical.
  ASSERT_TRUE(vec.erase(big));
  ASSERT_TRUE(scalar.erase(big));
  EXPECT_EQ(sorted(vec.stab(point)), (std::vector<SubscriptionId>{1, 2}));
  EXPECT_EQ(sorted(vec.stab(point)), sorted(scalar.stab(point)));
}

}  // namespace
}  // namespace psc
