// Differential network oracle tests: seeded random op sequences
// (subscribe / subscribe_with_ttl / unsubscribe / publish / advance_time)
// replayed against every standard topology must deliver exactly what the
// flat single-store oracle delivers, with zero lost notifications, under
// the exact coverage configurations (kNone / kPairwise / kExact). The
// TTL-equivalence property rides along: expiring a subscription by TTL is
// indistinguishable from explicitly unsubscribing it at the same instant.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "routing/broker_network.hpp"
#include "routing/flat_oracle.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "util/rng.hpp"
#include "workload/churn_workload.hpp"

namespace psc::routing {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using workload::ChurnOp;
using workload::ChurnOpKind;
using workload::ChurnTrace;

NetworkConfig with_policy(store::CoveragePolicy policy) {
  NetworkConfig config;
  config.store.policy = policy;
  return config;
}

std::string policy_name(store::CoveragePolicy policy) {
  return std::string(store::to_string(policy));
}

sim::ChurnDriver::Options differential_options() {
  sim::ChurnDriver::Options options;
  options.differential = true;
  return options;
}

/// Exact coverage configurations: every decision is definite, so the
/// network may never lose a notification on any topology or trace.
const store::CoveragePolicy kExactPolicies[] = {
    store::CoveragePolicy::kNone,
    store::CoveragePolicy::kPairwise,
    store::CoveragePolicy::kExact,
};

TEST(NetworkDifferential, ChurnTracesMatchOracleOnAllTopologiesAndSeeds) {
  workload::ChurnConfig churn;
  churn.duration = 80.0;  // >= 500 ops per trace at the default rates
  for (const store::CoveragePolicy policy : kExactPolicies) {
    for (const Topology& topology : standard_topologies(2006)) {
      for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
        const ChurnTrace trace =
            workload::generate_churn_trace(churn, topology.brokers, seed);
        ASSERT_GE(trace.ops.size(), 500u) << topology.name;
        auto net = topology.build(with_policy(policy));
        const sim::ChurnReport report =
            sim::ChurnDriver::run(net, trace, differential_options());
        const std::string label = topology.name + "/" + policy_name(policy) +
                                  "/seed" + std::to_string(seed);
        EXPECT_EQ(report.mismatched_publishes, 0u) << label;
        EXPECT_EQ(report.totals.notifications_lost, 0u) << label;
        EXPECT_GT(report.publishes, 0u) << label;
        EXPECT_GT(report.totals.notifications_delivered, 0u) << label;
      }
    }
  }
}

TEST(NetworkDifferential, GroupPolicyStaysOracleCleanOnPinnedSeeds) {
  // kGroup may legally suppress falsely with probability <= delta per
  // check (the paper's only error mode). With delta = 1e-6 and fixed
  // seeds the replay is deterministic, so this pins that the standard
  // traces happen to be loss-free — a canary for accidental error-rate
  // regressions, not a proof of exactness.
  workload::ChurnConfig churn;
  churn.duration = 60.0;
  for (const Topology& topology : standard_topologies(2006)) {
    const ChurnTrace trace =
        workload::generate_churn_trace(churn, topology.brokers, 7);
    auto net = topology.build(with_policy(store::CoveragePolicy::kGroup));
    const sim::ChurnReport report =
        sim::ChurnDriver::run(net, trace, differential_options());
    EXPECT_EQ(report.mismatched_publishes, 0u) << topology.name;
    EXPECT_EQ(report.totals.notifications_lost, 0u) << topology.name;
  }
}

/// Hand-rolled uniform op mix (not the churn generator): denser
/// publication coverage and direct publish-by-publish comparison, so a
/// divergence pinpoints the failing publication immediately.
TEST(NetworkDifferential, UniformRandomOpMixMatchesPublishByPublish) {
  constexpr double kSlot = 0.1;
  for (const Topology& topology : standard_topologies(2006)) {
    for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
      util::Rng rng(seed);
      auto net = topology.build(with_policy(store::CoveragePolicy::kExact));
      FlatOracle oracle;
      std::vector<std::pair<BrokerId, SubscriptionId>> live;  // explicit subs
      SubscriptionId next_id = 1;
      double now = 0.0;
      std::size_t publishes = 0;
      for (int step = 0; step < 600; ++step) {
        now += kSlot;
        net.advance_time(now);
        oracle.advance_time(now);
        const auto broker =
            static_cast<BrokerId>(rng.next_below(topology.brokers));
        const double roll = rng.next_double();
        if (roll < 0.25) {  // subscribe (permanent until unsubscribed)
          const double lo0 = rng.uniform(0, 900), lo1 = rng.uniform(0, 900);
          const Subscription sub({Interval{lo0, lo0 + rng.uniform(20, 200)},
                                  Interval{lo1, lo1 + rng.uniform(20, 200)}},
                                 next_id++);
          net.subscribe(broker, sub);
          oracle.subscribe(broker, sub);
          live.emplace_back(broker, sub.id());
        } else if (roll < 0.45) {  // subscribe with TTL, expiry mid-slot
          const double lo0 = rng.uniform(0, 900), lo1 = rng.uniform(0, 900);
          const Subscription sub({Interval{lo0, lo0 + rng.uniform(20, 200)},
                                  Interval{lo1, lo1 + rng.uniform(20, 200)}},
                                 next_id++);
          const double ttl =
              static_cast<double>(1 + rng.next_below(40)) * kSlot + kSlot / 2;
          net.subscribe_with_ttl(broker, sub, ttl);
          oracle.subscribe_with_ttl(broker, sub, ttl);
        } else if (roll < 0.55 && !live.empty()) {  // unsubscribe
          const std::size_t pick = rng.next_below(live.size());
          const auto [home, id] = live[pick];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          net.unsubscribe(home, id);
          oracle.unsubscribe(home, id);
        } else if (roll < 0.65) {  // pure time advance, several slots
          now += static_cast<double>(rng.next_below(20)) * kSlot;
          net.advance_time(now);
          oracle.advance_time(now);
        } else {  // publish
          const Publication pub({rng.uniform(0, 1000), rng.uniform(0, 1000)});
          ++publishes;
          EXPECT_EQ(net.publish(broker, pub), oracle.publish(pub))
              << topology.name << " seed " << seed << " step " << step;
        }
      }
      EXPECT_GT(publishes, 100u) << topology.name;
      EXPECT_EQ(net.metrics().notifications_lost, 0u)
          << topology.name << " seed " << seed;
      EXPECT_EQ(net.local_subscription_count(), oracle.live_count())
          << topology.name << " seed " << seed;
    }
  }
}

/// Property: subscribe_with_ttl(s, t) + advance_time(t + eps) is
/// indistinguishable from subscribe(s) + unsubscribe(s) at the expiry
/// instant — identical routing tables and identical subsequent deliveries.
TEST(NetworkProperty, TtlExpiryEquivalentToUnsubscribeAtSameInstant) {
  workload::ChurnConfig churn;
  churn.duration = 40.0;
  churn.ttl_fraction = 1.0;    // every mortal subscription uses TTL
  churn.immortal_fraction = 0.2;
  for (const store::CoveragePolicy policy : kExactPolicies) {
    for (const Topology& topology : standard_topologies(2006)) {
      const ChurnTrace ttl_trace =
          workload::generate_churn_trace(churn, topology.brokers, 17);

      // Transform: every TTL subscription becomes a permanent subscription
      // plus an explicit unsubscribe at the exact expiry instant.
      ChurnTrace unsub_trace = ttl_trace;
      std::vector<ChurnOp> extra;
      for (ChurnOp& op : unsub_trace.ops) {
        if (op.kind != ChurnOpKind::kSubscribeTtl) continue;
        ChurnOp unsub;
        unsub.kind = ChurnOpKind::kUnsubscribe;
        unsub.time = op.time + op.ttl;
        unsub.broker = op.broker;
        unsub.id = op.sub.id();
        extra.push_back(std::move(unsub));
        op.kind = ChurnOpKind::kSubscribe;
        op.ttl = 0.0;
      }
      unsub_trace.ops.insert(unsub_trace.ops.end(), extra.begin(), extra.end());
      std::stable_sort(unsub_trace.ops.begin(), unsub_trace.ops.end(),
                       [](const ChurnOp& a, const ChurnOp& b) {
                         return a.time < b.time;
                       });

      ASSERT_FALSE(extra.empty()) << topology.name;

      auto ttl_net = topology.build(with_policy(policy));
      auto unsub_net = topology.build(with_policy(policy));
      const auto ttl_report = sim::ChurnDriver::run(ttl_net, ttl_trace);
      const auto unsub_report = sim::ChurnDriver::run(unsub_net, unsub_trace);
      const std::string label = topology.name + "/" + policy_name(policy);

      // Some expiries lie past the trace's closing advance; settle both
      // replicas at a common horizon beyond the last removal instant so
      // the comparison sees final states, not armed timers.
      double horizon = 0.0;
      for (const ChurnOp& op : unsub_trace.ops) {
        horizon = std::max(horizon, op.time);
      }
      horizon += 1.0;
      ttl_net.advance_time(horizon);
      unsub_net.advance_time(horizon);

      EXPECT_EQ(ttl_report.totals.notifications_lost, 0u) << label;
      EXPECT_EQ(unsub_report.totals.notifications_lost, 0u) << label;
      EXPECT_EQ(ttl_net.local_subscription_count(),
                unsub_net.local_subscription_count())
          << label;
      for (std::size_t b = 0; b < topology.brokers; ++b) {
        EXPECT_EQ(ttl_net.broker(static_cast<BrokerId>(b)).routing_table_size(),
                  unsub_net.broker(static_cast<BrokerId>(b)).routing_table_size())
            << label << " broker " << b;
      }
      // Subsequent deliveries: an identical probe sweep sees no difference.
      util::Rng probe_rng(99);
      for (int probe = 0; probe < 50; ++probe) {
        const Publication pub(
            {probe_rng.uniform(0, 1000), probe_rng.uniform(0, 1000)});
        const auto at =
            static_cast<BrokerId>(probe_rng.next_below(topology.brokers));
        EXPECT_EQ(ttl_net.publish(at, pub), unsub_net.publish(at, pub))
            << label << " probe " << probe;
      }
    }
  }
}

}  // namespace
}  // namespace psc::routing
