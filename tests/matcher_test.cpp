// Tests for the Matcher (Algorithm 5 + neighbour short-circuiting).
#include "match/matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace psc::match {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

store::StoreConfig pairwise_config() {
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kPairwise;
  return config;
}

TEST(Matcher, DeliversToLocalSubscribers) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), kLocalSubscriber);
  const auto outcome = matcher.match(Publication({5.0, 5.0}));
  ASSERT_EQ(outcome.matched.size(), 1u);
  EXPECT_EQ(outcome.matched[0], 1u);
  EXPECT_TRUE(outcome.destinations.empty());  // local only
}

TEST(Matcher, RoutesToOwningNeighbors) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), /*neighbor=*/7);
  matcher.subscribe(box2(20, 30, 0, 10, 2), /*neighbor=*/9);
  const auto outcome = matcher.match(Publication({5.0, 5.0}));
  ASSERT_EQ(outcome.destinations.size(), 1u);
  EXPECT_EQ(outcome.destinations[0], 7u);
}

TEST(Matcher, NeighborShortCircuitSkipsSameOwner) {
  Matcher matcher(pairwise_config());
  // Two disjoint subscriptions from the same neighbour; a publication
  // matching the first short-circuits evaluation of the second.
  matcher.subscribe(box2(0, 10, 0, 10, 1), 7);
  matcher.subscribe(box2(20, 30, 0, 10, 2), 7);
  const auto outcome = matcher.match(Publication({5.0, 5.0}));
  ASSERT_EQ(outcome.destinations.size(), 1u);
  EXPECT_EQ(outcome.destinations[0], 7u);
  EXPECT_GE(matcher.stats().neighbor_short_circuits, 0u);
  // Exactly one subscription matched (the second was skipped or missed).
  EXPECT_EQ(outcome.matched.size(), 1u);
}

TEST(Matcher, CoveredSubscriptionStillNotified) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), kLocalSubscriber);
  matcher.subscribe(box2(2, 8, 2, 8, 2), kLocalSubscriber);  // covered
  auto outcome = matcher.match(Publication({5.0, 5.0}));
  std::sort(outcome.matched.begin(), outcome.matched.end());
  ASSERT_EQ(outcome.matched.size(), 2u);
  EXPECT_EQ(outcome.matched[0], 1u);
  EXPECT_EQ(outcome.matched[1], 2u);
}

TEST(Matcher, CoveredOwnedByOtherNeighborAddsDestination) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), 7);
  matcher.subscribe(box2(2, 8, 2, 8, 2), 9);  // covered, different owner
  const auto outcome = matcher.match(Publication({5.0, 5.0}));
  ASSERT_EQ(outcome.destinations.size(), 2u);
  EXPECT_NE(std::find(outcome.destinations.begin(), outcome.destinations.end(), 7u),
            outcome.destinations.end());
  EXPECT_NE(std::find(outcome.destinations.begin(), outcome.destinations.end(), 9u),
            outcome.destinations.end());
}

TEST(Matcher, NoMatchNoDestinations) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), 7);
  const auto outcome = matcher.match(Publication({50.0, 50.0}));
  EXPECT_TRUE(outcome.matched.empty());
  EXPECT_TRUE(outcome.destinations.empty());
}

TEST(Matcher, UnsubscribeStopsMatching) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), kLocalSubscriber);
  EXPECT_TRUE(matcher.unsubscribe(1));
  EXPECT_FALSE(matcher.unsubscribe(1));
  EXPECT_TRUE(matcher.match(Publication({5.0, 5.0})).matched.empty());
}

TEST(Matcher, StatsAccumulate) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), kLocalSubscriber);
  (void)matcher.match(Publication({5.0, 5.0}));
  (void)matcher.match(Publication({50.0, 50.0}));
  EXPECT_EQ(matcher.stats().publications, 2u);
  EXPECT_EQ(matcher.stats().matches, 1u);
  // active_examined counts candidates the index examined: the matching
  // publication reaches the one subscription; the far-off one is pruned
  // before examining anything.
  EXPECT_GE(matcher.stats().active_examined, 1u);
  matcher.reset_stats();
  EXPECT_EQ(matcher.stats().publications, 0u);
}

TEST(Matcher, NeighborOfReportsOwner) {
  Matcher matcher(pairwise_config());
  matcher.subscribe(box2(0, 10, 0, 10, 1), 3);
  ASSERT_TRUE(matcher.neighbor_of(1).has_value());
  EXPECT_EQ(*matcher.neighbor_of(1), 3u);
  EXPECT_FALSE(matcher.neighbor_of(2).has_value());
}

}  // namespace
}  // namespace psc::match
