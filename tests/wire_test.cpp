// Wire codec + snapshot property tests:
//   * primitive and element codecs round-trip bit-exactly (randomized);
//   * truncated and bit-flipped buffers are rejected with wire::DecodeError
//     and never exhibit UB (this file runs under the CI ASan/UBSan job);
//   * store / broker / network snapshots restore DECISION-identical state:
//     the restored replica and the original produce the same outputs on an
//     identical replayed op sequence, for every coverage policy including
//     the RNG-consuming group policy.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "routing/broker.hpp"
#include "routing/broker_network.hpp"
#include "store/subscription_store.hpp"
#include "util/rng.hpp"
#include "wire/byte_buffer.hpp"
#include "wire/snapshot.hpp"
#include "workload/churn_workload.hpp"

namespace psc::wire {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using routing::Broker;
using routing::BrokerId;
using routing::BrokerNetwork;
using routing::Origin;

// --- generators --------------------------------------------------------

/// `allow_unbounded` = false keeps every range finite — the group policy's
/// engine requires finite boxes on the checked subscription (RSPC samples
/// uniformly inside it), matching the production workload generators.
Subscription random_subscription(util::Rng& rng, SubscriptionId id,
                                 std::size_t attrs = 3,
                                 bool allow_unbounded = true) {
  std::vector<Interval> ranges;
  ranges.reserve(attrs);
  for (std::size_t a = 0; a < attrs; ++a) {
    const double draw = rng.next_double();
    if (draw < 0.1 && allow_unbounded) {
      ranges.push_back(Interval::everything());
    } else if (draw < 0.2) {
      ranges.push_back(Interval::point(rng.uniform(0.0, 1000.0)));
    } else {
      const double lo = rng.uniform(0.0, 900.0);
      ranges.push_back(Interval{lo, lo + rng.uniform(0.0, 100.0)});
    }
  }
  return Subscription(std::move(ranges), id);
}

Publication random_publication(util::Rng& rng, std::size_t attrs = 3) {
  std::vector<core::Value> values;
  values.reserve(attrs);
  for (std::size_t a = 0; a < attrs; ++a) values.push_back(rng.uniform(0.0, 1000.0));
  return Publication(std::move(values), rng() % 1000);
}

bool subs_identical(const Subscription& a, const Subscription& b) {
  return a.id() == b.id() && a == b;
}

// --- primitives --------------------------------------------------------

TEST(ByteBuffer, FixedAndVarintRoundTrip) {
  ByteWriter out;
  const std::vector<std::uint64_t> values = {
      0,   1,   127, 128,  16383, 16384, 0xffffffffULL,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) out.varint(v);
  out.u8(0xab);
  out.u32(0xdeadbeefU);
  out.u64(0x0123456789abcdefULL);
  out.f64(-std::numeric_limits<double>::infinity());
  out.f64(3.14159);
  out.string("hello wire");

  ByteReader in(out.buffer());
  for (const std::uint64_t v : values) EXPECT_EQ(in.varint(), v);
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u32(), 0xdeadbeefU);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(in.f64(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(in.f64(), 3.14159);
  EXPECT_EQ(in.string(), "hello wire");
  EXPECT_TRUE(in.at_end());
}

TEST(ByteBuffer, TruncatedPrimitivesThrow) {
  ByteWriter out;
  out.u64(42);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    ByteReader in(std::span(out.buffer().data(), cut));
    EXPECT_THROW((void)in.u64(), DecodeError) << "cut " << cut;
  }
  // A varint that never terminates (all continuation bits).
  const std::vector<std::uint8_t> runaway(11, 0xff);
  ByteReader in(runaway);
  EXPECT_THROW((void)in.varint(), DecodeError);
  // Over-long 10th byte with bits beyond the 64th.
  std::vector<std::uint8_t> overflow(9, 0x80);
  overflow.push_back(0x02);
  ByteReader in2(overflow);
  EXPECT_THROW((void)in2.varint(), DecodeError);
}

TEST(ByteBuffer, HugeCountIsRejectedBeforeAllocation) {
  ByteWriter out;
  out.varint(std::numeric_limits<std::uint64_t>::max() / 2);
  ByteReader in(out.buffer());
  // count() must reject instead of letting the caller reserve petabytes.
  EXPECT_THROW((void)in.count(8), DecodeError);
}

// --- element codecs ----------------------------------------------------

TEST(Codec, SubscriptionPublicationRoundTrip) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Subscription sub = random_subscription(rng, 1 + rng() % 100000);
    ByteWriter out;
    write_subscription(out, sub);
    ByteReader in(out.buffer());
    const Subscription back = read_subscription(in);
    EXPECT_TRUE(subs_identical(sub, back)) << "iteration " << i;
    EXPECT_TRUE(in.at_end());

    const Publication pub = random_publication(rng);
    ByteWriter pout;
    write_publication(pout, pub);
    ByteReader pin(pout.buffer());
    const Publication pback = read_publication(pin);
    EXPECT_EQ(pub.id(), pback.id());
    ASSERT_EQ(pub.attribute_count(), pback.attribute_count());
    for (std::size_t a = 0; a < pub.attribute_count(); ++a) {
      EXPECT_EQ(pub.value(a), pback.value(a));
    }
  }
}

TEST(Codec, AnnouncementRoundTrip) {
  util::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    Announcement msg;
    msg.from = static_cast<std::uint32_t>(rng() % 64);
    switch (rng() % 3) {
      case 0:
        msg.kind = Announcement::Kind::kSubscribe;
        msg.sub = random_subscription(rng, 1 + rng() % 1000);
        if (rng.bernoulli(0.5)) msg.expiry = rng.uniform(0.0, 100.0);
        break;
      case 1:
        msg.kind = Announcement::Kind::kUnsubscribe;
        msg.id = 1 + rng() % 1000;
        break;
      default:
        msg.kind = Announcement::Kind::kPublication;
        msg.pub = random_publication(rng);
        msg.token = rng();
        break;
    }
    ByteWriter out;
    write_announcement(out, msg);
    ByteReader in(out.buffer());
    const Announcement back = read_announcement(in);
    EXPECT_TRUE(msg == back) << "iteration " << i;
    EXPECT_TRUE(in.at_end());
  }
}

TEST(Codec, LinkFrameRoundTrip) {
  util::Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    LinkFrame frame;
    if (rng.bernoulli(0.3)) {
      frame.kind = LinkFrame::Kind::kAck;
      frame.ack = rng() % 100000;
    } else {
      frame.kind = LinkFrame::Kind::kData;
      frame.seq = rng() % 100000;
      frame.ack = rng() % 100000;
      Announcement msg;
      msg.kind = Announcement::Kind::kUnsubscribe;
      msg.from = static_cast<std::uint32_t>(rng() % 64);
      msg.id = 1 + rng() % 1000;
      ByteWriter payload;
      write_announcement(payload, msg);
      frame.payload = payload.buffer();
    }
    ByteWriter out;
    write_link_frame(out, frame);
    ByteReader in(out.buffer());
    const LinkFrame back = read_link_frame(in);
    EXPECT_TRUE(frame == back) << "iteration " << i;
    EXPECT_TRUE(in.at_end());
  }
}

TEST(Codec, ChurnTraceRoundTrip) {
  workload::ChurnConfig config;
  config.duration = 20.0;
  const auto trace = workload::generate_churn_trace(config, 9, 2024);
  ByteWriter out;
  write_churn_trace(out, trace);
  ByteReader in(out.buffer());
  const auto back = read_churn_trace(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back.broker_count, trace.broker_count);
  EXPECT_EQ(back.seed, trace.seed);
  EXPECT_EQ(back.publish_count, trace.publish_count);
  EXPECT_EQ(back.subscribe_count, trace.subscribe_count);
  EXPECT_EQ(back.config.slot, trace.config.slot);
  EXPECT_EQ(back.config.epoch_length, trace.config.epoch_length);
  ASSERT_EQ(back.ops.size(), trace.ops.size());
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const auto& a = trace.ops[i];
    const auto& b = back.ops[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.broker, b.broker);
    EXPECT_EQ(a.ttl, b.ttl);
    EXPECT_EQ(a.id, b.id);
    EXPECT_TRUE(a.sub == b.sub);
    EXPECT_EQ(a.sub.id(), b.sub.id());
  }
}

TEST(Codec, MembershipAnnouncementRoundTrip) {
  util::Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    Announcement msg;
    msg.kind = Announcement::Kind::kMembership;
    msg.from = static_cast<std::uint32_t>(rng() % 64);
    msg.member = static_cast<std::uint8_t>(1 + rng() % 6);  // kJoin..kHealLink
    msg.peer = static_cast<std::uint32_t>(rng() % 1024);
    ByteWriter out;
    write_announcement(out, msg);
    ByteReader in(out.buffer());
    const Announcement back = read_announcement(in);
    EXPECT_TRUE(msg == back) << "iteration " << i;
    EXPECT_TRUE(in.at_end());
  }
  // Membership verbs outside 1..6 are wire garbage, not future extensions.
  Announcement msg;
  msg.kind = Announcement::Kind::kMembership;
  msg.from = 3;
  msg.member = 2;
  msg.peer = 5;
  ByteWriter out;
  write_announcement(out, msg);
  std::vector<std::uint8_t> bad = out.buffer();
  bad[2] = 7;  // layout: kind u8, from varint(1B), member u8
  ByteReader in(bad);
  EXPECT_THROW((void)read_announcement(in), DecodeError);
}

TEST(Codec, MembershipChurnTraceRoundTrip) {
  workload::ChurnConfig config;
  config.duration = 15.0;
  config.membership.join_rate = 0.3;
  config.membership.leave_rate = 0.2;
  config.membership.crash_rate = 0.3;
  config.membership.partition_rate = 0.5;
  config.membership.max_brokers = 16;

  routing::MembershipUniverse universe;
  universe.brokers = 9;
  for (BrokerId b = 1; b < 9; ++b) universe.links.emplace_back(b - 1, b);
  universe.standby.emplace_back(0, 8);

  const auto trace = workload::generate_churn_trace(config, universe, 404);
  ASSERT_TRUE(trace.has_membership);
  ASSERT_GT(trace.membership_count, 0u);

  ByteWriter out;
  write_churn_trace(out, trace);
  ByteReader in(out.buffer());
  const auto back = read_churn_trace(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back.has_membership, trace.has_membership);
  EXPECT_EQ(back.membership_count, trace.membership_count);
  EXPECT_EQ(back.universe.brokers, trace.universe.brokers);
  EXPECT_EQ(back.universe.links, trace.universe.links);
  EXPECT_EQ(back.universe.standby, trace.universe.standby);
  EXPECT_EQ(back.config.membership.join_rate, trace.config.membership.join_rate);
  EXPECT_EQ(back.config.membership.partition_mean,
            trace.config.membership.partition_mean);
  EXPECT_EQ(back.config.membership.max_brokers,
            trace.config.membership.max_brokers);
  ASSERT_EQ(back.ops.size(), trace.ops.size());
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    EXPECT_EQ(back.ops[i].kind, trace.ops[i].kind);
    EXPECT_EQ(back.ops[i].member, trace.ops[i].member);
    EXPECT_EQ(back.ops[i].peer, trace.ops[i].peer);
    EXPECT_EQ(back.ops[i].broker, trace.ops[i].broker);
  }
}

TEST(Codec, FaultScheduleBlockRoundTrips) {
  workload::ChurnConfig config;
  config.duration = 12.0;
  config.membership.partition_rate = 0.5;
  config.faults.link.drop_probability = 0.2;
  config.faults.link.dup_probability = 0.1;
  config.faults.link.reorder_probability = 0.05;
  config.faults.link.delay_jitter = 0.5;
  config.faults.burst_count = 3;
  config.faults.burst_length = 0.4;
  config.faults.cascade_hop_bound = 0.02;
  config.slot = 2.0;
  config.epoch_length = 4.0;

  routing::MembershipUniverse universe;
  universe.brokers = 8;
  for (BrokerId b = 1; b < 8; ++b) universe.links.emplace_back(b - 1, b);

  const auto trace = workload::generate_churn_trace(config, universe, 55);
  ASSERT_EQ(trace.bursts.size(), 3u);

  ByteWriter out;
  write_churn_trace(out, trace);
  ByteReader in(out.buffer());
  const auto back = read_churn_trace(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back.config.faults.link.drop_probability,
            trace.config.faults.link.drop_probability);
  EXPECT_EQ(back.config.faults.link.dup_probability,
            trace.config.faults.link.dup_probability);
  EXPECT_EQ(back.config.faults.link.reorder_probability,
            trace.config.faults.link.reorder_probability);
  EXPECT_EQ(back.config.faults.link.delay_jitter,
            trace.config.faults.link.delay_jitter);
  EXPECT_EQ(back.config.faults.burst_count, trace.config.faults.burst_count);
  EXPECT_EQ(back.config.faults.burst_length, trace.config.faults.burst_length);
  EXPECT_EQ(back.config.faults.cascade_hop_bound,
            trace.config.faults.cascade_hop_bound);
  ASSERT_EQ(back.bursts.size(), trace.bursts.size());
  for (std::size_t i = 0; i < trace.bursts.size(); ++i) {
    EXPECT_EQ(back.bursts[i].start, trace.bursts[i].start);
    EXPECT_EQ(back.bursts[i].end, trace.bursts[i].end);
    EXPECT_EQ(back.bursts[i].a, trace.bursts[i].a);
    EXPECT_EQ(back.bursts[i].b, trace.bursts[i].b);
  }
}

TEST(Codec, V2TraceStillDecodes) {
  // A v2 stream is a v3 stream minus the fault-schedule block (and with
  // version 2 in the header). Synthesize one from a fault-free v3 encoding
  // by splicing the block out: for zero fault rates and no bursts it is a
  // fixed 50 bytes (6 f64 + two zero varints) sitting immediately before
  // the op records, whose size we can measure independently.
  workload::ChurnConfig config;
  config.duration = 10.0;
  const auto trace = workload::generate_churn_trace(config, 6, 321);
  ASSERT_TRUE(trace.bursts.empty());

  ByteWriter full;
  write_churn_trace(full, trace);

  ByteWriter tail;  // opcount + ops, re-encoded via the public op codec
  tail.varint(trace.ops.size());
  for (const auto& op : trace.ops) write_churn_op(tail, op);
  ASSERT_GT(full.buffer().size(), tail.buffer().size() + 50);

  std::vector<std::uint8_t> v2 = full.buffer();
  const std::size_t block_at = v2.size() - tail.buffer().size() - 50;
  v2.erase(v2.begin() + static_cast<std::ptrdiff_t>(block_at),
           v2.begin() + static_cast<std::ptrdiff_t>(block_at + 50));
  v2[4] = 2;  // version u32 little-endian, after the 4-byte magic
  v2[5] = v2[6] = v2[7] = 0;

  ByteReader in(v2);
  const auto back = read_churn_trace(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back.broker_count, trace.broker_count);
  EXPECT_EQ(back.seed, trace.seed);
  ASSERT_EQ(back.ops.size(), trace.ops.size());
  // v2 carries no fault schedule: readers must default to perfect links.
  EXPECT_FALSE(back.config.faults.any());
  EXPECT_TRUE(back.bursts.empty());
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    EXPECT_EQ(back.ops[i].kind, trace.ops[i].kind);
    EXPECT_EQ(back.ops[i].time, trace.ops[i].time);
  }

  // Versions outside [kMinTraceVersion, kCodecVersion] are rejected.
  std::vector<std::uint8_t> v1 = v2;
  v1[4] = 1;
  ByteReader v1_in(v1);
  EXPECT_THROW((void)read_churn_trace(v1_in), DecodeError);
  std::vector<std::uint8_t> v9 = full.buffer();
  v9[4] = 9;
  ByteReader v9_in(v9);
  EXPECT_THROW((void)read_churn_trace(v9_in), DecodeError);
}

// --- corruption robustness ---------------------------------------------
//
// Decoding a damaged buffer must either throw DecodeError or produce a
// structurally valid object — never crash, leak, or read out of bounds
// (the ASan/UBSan job turns any violation into a hard failure).

template <typename Decode>
void expect_graceful_rejection(const std::vector<std::uint8_t>& good,
                               Decode&& decode) {
  // Every strict prefix must throw (no partial object escapes).
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    ByteReader in(std::span(good.data(), cut));
    EXPECT_THROW((void)decode(in), DecodeError) << "prefix " << cut;
  }
  // Single-byte corruption: throws or decodes; both acceptable, UB is not.
  util::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bad = good;
    const std::size_t at = rng() % bad.size();
    bad[at] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    ByteReader in(bad);
    try {
      (void)decode(in);
    } catch (const DecodeError&) {
      // expected for most flips
    }
  }
}

TEST(Codec, TruncationAndCorruptionAreRejectedWithoutUB) {
  util::Rng rng(13);
  ByteWriter out;
  write_subscription(out, random_subscription(rng, 77));
  expect_graceful_rejection(out.buffer(),
                            [](ByteReader& in) { return read_subscription(in); });

  ByteWriter aout;
  Announcement msg;
  msg.kind = Announcement::Kind::kSubscribe;
  msg.sub = random_subscription(rng, 42);
  msg.expiry = 12.5;
  write_announcement(aout, msg);
  expect_graceful_rejection(aout.buffer(),
                            [](ByteReader& in) { return read_announcement(in); });

  ByteWriter mout;
  Announcement member;
  member.kind = Announcement::Kind::kMembership;
  member.from = 12;
  member.member = 5;  // kFailLink
  member.peer = 300;
  write_announcement(mout, member);
  expect_graceful_rejection(mout.buffer(),
                            [](ByteReader& in) { return read_announcement(in); });
}

TEST(Codec, LinkFrameRejectsCorruptionWithoutUB) {
  Announcement msg;
  msg.kind = Announcement::Kind::kPublication;
  util::Rng rng(41);
  msg.pub = random_publication(rng);
  msg.token = 99;
  ByteWriter payload;
  write_announcement(payload, msg);
  LinkFrame frame;
  frame.kind = LinkFrame::Kind::kData;
  frame.seq = 7;
  frame.ack = 3;
  frame.payload = payload.buffer();
  ByteWriter out;
  write_link_frame(out, frame);
  expect_graceful_rejection(out.buffer(),
                            [](ByteReader& in) { return read_link_frame(in); });
  // A data frame whose payload is a VALID announcement followed by trailing
  // garbage must be rejected: the frame owns its payload end to end.
  LinkFrame padded = frame;
  padded.payload.push_back(0x00);
  ByteWriter bad;
  write_link_frame(bad, padded);
  ByteReader in(bad.buffer());
  EXPECT_THROW((void)read_link_frame(in), DecodeError);
  // An ack frame carrying a nonzero seq or a payload is malformed.
  LinkFrame ack;
  ack.kind = LinkFrame::Kind::kAck;
  ack.ack = 5;
  ByteWriter good_ack;
  write_link_frame(good_ack, ack);
  ByteReader ack_in(good_ack.buffer());
  EXPECT_EQ(read_link_frame(ack_in).ack, 5u);
}

TEST(Codec, CorruptedMembershipTraceIsRejectedWithoutUB) {
  workload::ChurnConfig config;
  config.duration = 4.0;
  config.membership.crash_rate = 0.5;
  config.membership.partition_rate = 0.5;
  routing::MembershipUniverse universe;
  universe.brokers = 6;
  for (BrokerId b = 1; b < 6; ++b) universe.links.emplace_back(b - 1, b);
  universe.standby.emplace_back(0, 5);
  ByteWriter out;
  write_churn_trace(out, workload::generate_churn_trace(config, universe, 7));
  const std::vector<std::uint8_t>& good = out.buffer();

  for (std::size_t cut = 0; cut < good.size();
       cut += std::max<std::size_t>(good.size() / 256, 1)) {
    ByteReader in(std::span(good.data(), cut));
    EXPECT_THROW((void)read_churn_trace(in), DecodeError) << "prefix " << cut;
  }
  util::Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bad = good;
    bad[rng() % bad.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    ByteReader in(bad);
    try {
      (void)read_churn_trace(in);
    } catch (const DecodeError&) {
      // expected for most flips; a clean decode of garbage is fine, UB is not
    }
  }
}

TEST(Snapshot, CorruptedNetworkSnapshotIsRejectedWithoutUB) {
  BrokerNetwork net = BrokerNetwork::figure1_topology();
  util::Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    net.subscribe(static_cast<BrokerId>(rng() % 9),
                  random_subscription(rng, 1 + i));
  }
  const std::vector<std::uint8_t> good = net.snapshot_all();
  // Prefixes throw; the network object stays destructible either way.
  for (std::size_t cut = 0; cut < good.size();
       cut += std::max<std::size_t>(good.size() / 64, 1)) {
    BrokerNetwork victim;
    EXPECT_THROW(victim.restore_all(std::span(good.data(), cut)), DecodeError);
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bad = good;
    bad[rng() % bad.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    BrokerNetwork victim;
    try {
      victim.restore_all(bad);
    } catch (const DecodeError&) {
    } catch (const std::invalid_argument&) {
      // A flip can surface as a semantic precondition (duplicate id, empty
      // interval) caught below the wire layer — equally graceful.
    } catch (const std::logic_error&) {
    }
  }
}

// --- snapshot/restore equivalence ---------------------------------------

store::StoreConfig store_config_for(store::CoveragePolicy policy) {
  store::StoreConfig config;
  config.policy = policy;
  config.engine.delta = 0.05;  // keep group-policy RSPC budgets small
  return config;
}

/// Drives `a` and `b` through an identical randomized op sequence and
/// asserts identical decisions (insert verdicts, promotions, match sets in
/// order). Returns ids currently live so callers can keep churning.
void expect_stores_identical(store::SubscriptionStore& a,
                             store::SubscriptionStore& b, util::Rng& rng,
                             int ops, SubscriptionId& next_id) {
  std::vector<SubscriptionId> live;
  for (int i = 0; i < ops; ++i) {
    const double draw = rng.next_double();
    if (draw < 0.55 || live.empty()) {
      const Subscription sub = random_subscription(rng, next_id++, 3, false);
      const auto ra = a.insert(sub);
      const auto rb = b.insert(sub);
      EXPECT_EQ(ra.accepted_active, rb.accepted_active) << "op " << i;
      EXPECT_EQ(ra.covered, rb.covered) << "op " << i;
      EXPECT_EQ(ra.demoted, rb.demoted) << "op " << i;
      live.push_back(sub.id());
    } else if (draw < 0.8) {
      const std::size_t victim = rng() % live.size();
      const auto ea = a.erase_reporting(live[victim]);
      const auto eb = b.erase_reporting(live[victim]);
      EXPECT_EQ(ea.erased, eb.erased) << "op " << i;
      EXPECT_EQ(ea.promoted, eb.promoted) << "op " << i;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const Publication pub = random_publication(rng);
      EXPECT_EQ(a.match(pub), b.match(pub)) << "op " << i;
      EXPECT_EQ(a.match_active(pub), b.match_active(pub)) << "op " << i;
    }
  }
}

class StoreSnapshotTest
    : public ::testing::TestWithParam<store::CoveragePolicy> {};

TEST_P(StoreSnapshotTest, RestoredStoreIsDecisionIdentical) {
  const store::CoveragePolicy policy = GetParam();
  const std::uint64_t seed = 0xabc123;
  store::SubscriptionStore original(store_config_for(policy), seed);

  // Build up a nontrivial active/covered/DAG state.
  util::Rng rng(31);
  SubscriptionId next_id = 1;
  std::vector<SubscriptionId> live;
  for (int i = 0; i < 120; ++i) {
    if (rng.bernoulli(0.25) && !live.empty()) {
      const std::size_t victim = rng() % live.size();
      (void)original.erase_reporting(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const Subscription sub = random_subscription(rng, next_id++, 3, false);
      (void)original.insert(sub);
      live.push_back(sub.id());
    }
  }

  // Export -> wire round trip -> import into a same-(config, seed) twin.
  ByteWriter out;
  write_store_snapshot(out, original.export_snapshot());
  ByteReader in(out.buffer());
  const auto decoded = read_store_snapshot(in);
  EXPECT_TRUE(in.at_end());
  store::SubscriptionStore restored(store_config_for(policy), seed);
  restored.import_snapshot(decoded);

  EXPECT_EQ(restored.active_count(), original.active_count());
  EXPECT_EQ(restored.covered_count(), original.covered_count());

  // Same future => same decisions, including RNG-consuming group checks.
  util::Rng future(57);
  expect_stores_identical(original, restored, future, 150, next_id);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, StoreSnapshotTest,
                         ::testing::Values(store::CoveragePolicy::kNone,
                                           store::CoveragePolicy::kPairwise,
                                           store::CoveragePolicy::kGroup,
                                           store::CoveragePolicy::kExact),
                         [](const auto& info) {
                           return std::string(store::to_string(info.param));
                         });

TEST(Snapshot, RestoredBrokerIsDecisionIdentical) {
  const std::uint64_t seed = 0x5eed;
  store::StoreConfig config;  // group policy default: RNG state matters
  config.engine.delta = 0.05;
  Broker original(3, config, seed, /*match_shards=*/1);
  original.add_neighbor(1);
  original.add_neighbor(2);
  original.add_neighbor(7);

  util::Rng rng(41);
  SubscriptionId next_id = 1;
  const auto random_origin = [&rng]() {
    const auto draw = rng() % 4;
    if (draw == 0) return Origin{true, routing::kInvalidBroker};
    return Origin{false, static_cast<BrokerId>(draw == 1 ? 1 : draw == 2 ? 2 : 7)};
  };
  std::vector<SubscriptionId> live;
  for (int i = 0; i < 150; ++i) {
    if (rng.bernoulli(0.2) && !live.empty()) {
      const std::size_t victim = rng() % live.size();
      (void)original.handle_unsubscription(live[victim],
                                           Origin{true, routing::kInvalidBroker});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      (void)original.handle_subscription(random_subscription(rng, next_id, 3, false),
                                         random_origin());
      live.push_back(next_id);
      ++next_id;
    }
  }
  (void)original.mark_publication_seen(1001);
  (void)original.mark_publication_seen(1002);

  // Byte-level snapshot into a fresh same-configured broker.
  const std::vector<std::uint8_t> bytes = original.snapshot();
  Broker restored(3, config, seed, /*match_shards=*/1);
  restored.add_neighbor(1);
  restored.add_neighbor(2);
  restored.add_neighbor(7);
  restored.restore(bytes);

  EXPECT_EQ(restored.routing_table_size(), original.routing_table_size());
  // Token memory restored (duplicate suppressed, new token accepted).
  EXPECT_FALSE(restored.mark_publication_seen(1001));
  EXPECT_TRUE(restored.mark_publication_seen(1003));
  (void)original.mark_publication_seen(1003);

  // Replay an identical future on both: subscriptions (coverage decisions
  // incl. the per-link engine RNG), unsubscriptions (promotions +
  // reannounce), and publications (routing).
  util::Rng future(67);
  Broker::PublishScratch scratch_a, scratch_b;
  for (int i = 0; i < 200; ++i) {
    const double draw = future.next_double();
    if (draw < 0.4) {
      const Subscription sub = random_subscription(future, next_id++, 3, false);
      const Origin origin = Origin{false, 1};
      EXPECT_EQ(original.handle_subscription(sub, origin),
                restored.handle_subscription(sub, origin))
          << "op " << i;
      live.push_back(sub.id());
    } else if (draw < 0.6 && !live.empty()) {
      const std::size_t victim = future() % live.size();
      const auto oa = original.handle_unsubscription(
          live[victim], Origin{true, routing::kInvalidBroker});
      const auto ob = restored.handle_unsubscription(
          live[victim], Origin{true, routing::kInvalidBroker});
      EXPECT_EQ(oa.forward_to, ob.forward_to) << "op " << i;
      ASSERT_EQ(oa.reannounce.size(), ob.reannounce.size()) << "op " << i;
      for (std::size_t r = 0; r < oa.reannounce.size(); ++r) {
        EXPECT_EQ(oa.reannounce[r].first, ob.reannounce[r].first);
        EXPECT_TRUE(subs_identical(oa.reannounce[r].second,
                                   ob.reannounce[r].second));
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const Publication pub = random_publication(future);
      const Origin origin{true, routing::kInvalidBroker};
      const auto& ra = original.handle_publication(pub, origin, scratch_a);
      const auto& rb = restored.handle_publication(pub, origin, scratch_b);
      EXPECT_EQ(ra.local_matches, rb.local_matches) << "op " << i;
      EXPECT_EQ(ra.destinations, rb.destinations) << "op " << i;
    }
  }
}

TEST(Snapshot, RestoredNetworkContinuesIdentically) {
  routing::NetworkConfig config;
  config.store.policy = store::CoveragePolicy::kExact;

  BrokerNetwork original = BrokerNetwork::figure1_topology(config);
  util::Rng rng(73);
  SubscriptionId next_id = 1;
  std::vector<std::pair<BrokerId, SubscriptionId>> live;
  for (int i = 0; i < 60; ++i) {
    const auto broker = static_cast<BrokerId>(rng() % 9);
    if (rng.bernoulli(0.3)) {
      original.subscribe_with_ttl(broker, random_subscription(rng, next_id),
                                  5.0 + rng.uniform(0.0, 5.0));
    } else {
      original.subscribe(broker, random_subscription(rng, next_id));
      live.emplace_back(broker, next_id);
    }
    ++next_id;
  }
  for (int i = 0; i < 10 && !live.empty(); ++i) {
    const std::size_t victim = rng() % live.size();
    original.unsubscribe(live[victim].first, live[victim].second);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
  }

  const std::vector<std::uint8_t> bytes = original.snapshot_all();
  BrokerNetwork restored;  // arbitrary state; restore_all replaces it
  restored.restore_all(bytes);

  EXPECT_EQ(restored.broker_count(), original.broker_count());
  EXPECT_EQ(restored.local_subscription_count(),
            original.local_subscription_count());
  EXPECT_EQ(restored.now(), original.now());

  // Identical future on both replicas: publishes (delivered sets must be
  // equal op for op), new subscriptions, and TTL expiries firing inside
  // advance_time windows.
  util::Rng future(79);
  for (int i = 0; i < 120; ++i) {
    const auto broker = static_cast<BrokerId>(future() % 9);
    const double draw = future.next_double();
    if (draw < 0.5) {
      const Publication pub = random_publication(future);
      EXPECT_EQ(original.publish(broker, pub), restored.publish(broker, pub))
          << "op " << i;
    } else if (draw < 0.75) {
      const Subscription sub = random_subscription(future, next_id++);
      original.subscribe(broker, sub);
      restored.subscribe(broker, sub);
    } else {
      const double horizon = original.now() + future.uniform(0.5, 2.0);
      original.advance_time(horizon);
      restored.advance_time(horizon);
      EXPECT_EQ(restored.local_subscription_count(),
                original.local_subscription_count())
          << "op " << i;
    }
  }
  // All TTLs eventually fire on both replicas identically.
  const double far = original.now() + 60.0;
  original.advance_time(far);
  restored.advance_time(far);
  EXPECT_EQ(restored.local_subscription_count(),
            original.local_subscription_count());
}

}  // namespace
}  // namespace psc::wire
