// Lossy-link differential tests: churn traces replayed over unreliable
// wires (drop / dup / reorder / jitter, plus scripted burst loss) must
// deliver EXACTLY what the flat oracle delivers — the reliable link
// protocol makes the fault schedule invisible to the application, except
// where a burst outlives the whole retransmit chain and deterministically
// escalates into the same fail_link the oracle mirrors. This is the
// tier-1 slice of the bench/lossy_soak.cpp headline gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "routing/broker_network.hpp"
#include "routing/link_channel.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "workload/churn_workload.hpp"

namespace psc::routing {
namespace {

using workload::ChurnConfig;
using workload::ChurnTrace;

// A deliberately short retransmit chain (still >= 12 retries, so a random
// escalation needs 13 consecutive iid drops — probability ~0.2^13, never
// observed) keeps the worst-case hop bound, and with it the op slot, small
// enough for dense tier-1 traces.
constexpr double kLatency = 1e-4;

LinkConfig lossy_link() {
  LinkConfig link;
  link.enabled = true;
  link.rto = 2 * kLatency;
  link.rto_max = 8 * kLatency;
  link.faults.drop_probability = 0.2;
  link.faults.dup_probability = 0.1;
  link.faults.reorder_probability = 0.1;
  link.faults.delay_jitter = 0.5;
  return link;
}

/// Sizes the slot from the protocol's worst hop delay so retransmit
/// chains quiesce inside half a slot even at the join cap, then shapes
/// duration/epoch as slot multiples for roughly `ops` ops.
ChurnConfig lossy_churn(const LinkConfig& link, std::size_t max_brokers,
                        std::size_t ops) {
  ChurnConfig churn;
  churn.link_latency = kLatency;
  churn.faults.link = link.faults;
  churn.faults.cascade_hop_bound = link.worst_hop_delay(kLatency);
  churn.slot = 2.2 * static_cast<double>(max_brokers + 1) *
               churn.faults.cascade_hop_bound;
  churn.epoch_length = churn.slot * 50;
  churn.duration = churn.slot * static_cast<double>(ops);
  return churn;
}

NetworkConfig lossy_net_config(const LinkConfig& link, std::uint64_t seed) {
  NetworkConfig config;
  config.link_latency = kLatency;
  config.link = link;
  config.seed = seed;  // drives the per-link fault substreams
  return config;
}

void expect_oracle_exact(const sim::ChurnReport& report,
                         const std::string& label) {
  EXPECT_EQ(report.mismatched_publishes, 0u) << label;
  EXPECT_EQ(report.totals.notifications_lost, 0u) << label;
  EXPECT_EQ(report.totals.notifications_duplicated, 0u) << label;
  EXPECT_EQ(report.membership.ghost_routes, 0u) << label;
  EXPECT_GT(report.publishes, 0u) << label;
  EXPECT_GT(report.totals.notifications_delivered, 0u) << label;
}

void expect_clean(const sim::ChurnReport& report, const std::string& label) {
  expect_oracle_exact(report, label);
  // The wire must actually have been hostile, and the protocol busy.
  EXPECT_GT(report.totals.frames_dropped, 0u) << label;
  EXPECT_GT(report.totals.retransmits, 0u) << label;
  EXPECT_GT(report.totals.dups_suppressed, 0u) << label;
  EXPECT_GT(report.totals.acks_sent, 0u) << label;
}

TEST(LossyDifferential, StaticTopologiesMatchOracleUnderFaults) {
  const LinkConfig link = lossy_link();
  for (const Topology& topology : standard_topologies(2006)) {
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
      const ChurnConfig churn = lossy_churn(link, topology.brokers, 220);
      const ChurnTrace trace =
          workload::generate_churn_trace(churn, topology.brokers, seed);
      auto net = topology.build(lossy_net_config(link, seed));
      sim::ChurnDriver::Options options;
      options.differential = true;
      const sim::ChurnReport report = sim::ChurnDriver::run(net, trace, options);
      expect_clean(report,
                   topology.name + "/seed" + std::to_string(seed));
      EXPECT_EQ(report.membership.link_escalations, 0u) << topology.name;
    }
  }
}

TEST(LossyDifferential, MembershipChurnMatchesOracleUnderFaults) {
  const LinkConfig link = lossy_link();
  for (const MembershipTopology& topology : membership_topologies(12, 2006)) {
    for (const std::uint64_t seed : {5ull, 6ull}) {
      ChurnConfig churn = lossy_churn(
          link, topology.brokers + std::max<std::size_t>(8, topology.brokers / 16),
          200);
      churn.membership.join_rate = 0.3 / churn.slot;
      churn.membership.leave_rate = 0.2 / churn.slot;
      churn.membership.crash_rate = 0.3 / churn.slot;
      churn.membership.partition_rate = 0.5 / churn.slot;
      churn.membership.max_brokers =
          topology.brokers + std::max<std::size_t>(8, topology.brokers / 16);
      auto net = topology.build(lossy_net_config(link, seed));
      const MembershipUniverse universe = topology.universe(net);
      const ChurnTrace trace =
          workload::generate_churn_trace(churn, universe, seed);
      sim::ChurnDriver::Options options;
      options.differential = true;
      const sim::ChurnReport report = sim::ChurnDriver::run(net, trace, options);
      expect_clean(report,
                   topology.name + "/seed" + std::to_string(seed));
      EXPECT_GT(report.membership.events, 0u) << topology.name;
    }
  }
}

TEST(LossyDifferential, BurstLossEscalatesIntoMirroredFailLink) {
  LinkConfig link = lossy_link();
  link.max_retries = 4;  // short chain: bursts escalate quickly
  // No iid loss here, deliberately: a burst drops BOTH directions, so an
  // escalation can never strand an already-delivered frame on the far
  // side. With iid loss and a cap this short, "data crossed, all acks
  // lost" (~drop^(cap+1) per chain) becomes observable — which is exactly
  // why the production cap is 12, making that probability ~0.2^13.
  link.faults.drop_probability = 0.0;
  std::size_t escalations = 0;
  sim::Metrics faults_seen;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const MembershipTopology& topology : membership_topologies(12, 2006)) {
      if (topology.name != "ring" && topology.name != "chain") continue;
      ChurnConfig churn = lossy_churn(link, topology.brokers + 8, 160);
      churn.membership.partition_rate = 0.4 / churn.slot;
      churn.membership.max_brokers = topology.brokers + 8;
      churn.faults.burst_count = 4;
      // Windows far longer than the whole retransmit-backoff chain: any
      // frame sent into one deterministically exhausts the retry cap.
      churn.faults.burst_length = churn.slot * 2.5;
      auto net = topology.build(lossy_net_config(link, seed));
      const MembershipUniverse universe = topology.universe(net);
      const ChurnTrace trace =
          workload::generate_churn_trace(churn, universe, seed);
      EXPECT_EQ(trace.bursts.size(), 4u);
      sim::ChurnDriver::Options options;
      options.differential = true;
      const sim::ChurnReport report = sim::ChurnDriver::run(net, trace, options);
      expect_oracle_exact(report,
                          topology.name + "/burst-seed" + std::to_string(seed));
      escalations += report.membership.link_escalations;
      faults_seen = faults_seen + report.totals;
    }
  }
  // The scripted bursts must actually force the degradation path: the
  // delivered sets above stayed oracle-exact THROUGH retry-cap fail_links.
  EXPECT_GT(escalations, 0u);
  EXPECT_GT(faults_seen.frames_dropped, 0u);
  EXPECT_GT(faults_seen.retransmits, 0u);
  EXPECT_GT(faults_seen.dups_suppressed, 0u);
}

TEST(LossyDifferential, DeliveryIsFaultScheduleInvariant) {
  // One trace, three wires: perfect, and two different fault substreams
  // (different NetworkConfig seeds). The application-visible outcome —
  // per-publish delivered sets, checked via the shared oracle — must be
  // identical; only the transport-layer counters may differ.
  const LinkConfig link = lossy_link();
  const Topology topology = standard_topologies(2006).front();
  const ChurnConfig churn = lossy_churn(link, topology.brokers, 250);
  const ChurnTrace trace =
      workload::generate_churn_trace(churn, topology.brokers, 77);
  sim::ChurnDriver::Options options;
  options.differential = true;

  NetworkConfig perfect;
  perfect.link_latency = kLatency;
  auto perfect_net = topology.build(perfect);
  const auto baseline = sim::ChurnDriver::run(perfect_net, trace, options);
  ASSERT_EQ(baseline.mismatched_publishes, 0u);

  for (const std::uint64_t wire_seed : {100ull, 200ull}) {
    auto net = topology.build(lossy_net_config(link, wire_seed));
    const auto report = sim::ChurnDriver::run(net, trace, options);
    const std::string label = "wire-seed" + std::to_string(wire_seed);
    expect_clean(report, label);
    EXPECT_EQ(report.totals.notifications_delivered,
              baseline.totals.notifications_delivered)
        << label;
    EXPECT_EQ(report.final_live_subscriptions,
              baseline.final_live_subscriptions)
        << label;
  }
}

TEST(LossyDifferential, ReportRecordsCoalescingRefusal) {
  const LinkConfig link = lossy_link();
  const Topology topology = standard_topologies(2006).front();
  const ChurnConfig churn = lossy_churn(link, topology.brokers, 60);
  const ChurnTrace trace =
      workload::generate_churn_trace(churn, topology.brokers, 9);
  sim::ChurnDriver::Options options;
  options.differential = true;
  options.pipelined_publish = true;  // must be refused on lossy links

  auto net = topology.build(lossy_net_config(link, 9));
  const auto report = sim::ChurnDriver::run(net, trace, options);
  EXPECT_EQ(report.publish_coalescing, "disabled-link-faults");
  EXPECT_EQ(report.mismatched_publishes, 0u);

  NetworkConfig perfect;
  perfect.link_latency = kLatency;
  perfect.pipelined_publish = true;
  auto perfect_net = topology.build(perfect);
  const auto piped = sim::ChurnDriver::run(perfect_net, trace, options);
  EXPECT_EQ(piped.publish_coalescing, "pipelined");
  EXPECT_EQ(piped.mismatched_publishes, 0u);
}

}  // namespace
}  // namespace psc::routing
