// Property tests: the index-backed store (StoreConfig::use_index = true)
// and the seed's flat-scan store must be *decision-for-decision identical*
// on the same input stream — same InsertResults (activation, coverage,
// demotions, engine verdicts), same promotions on erase, and same match
// outputs — across randomized workload streams and every coverage policy.
//
// This holds exactly (not just as sets) because the store re-sorts index
// candidates into active-slot order before any decision consumes them, and
// because the engine draws the same RNG stream either way: pruning to the
// intersecting candidates is invisible to the engine's own prefilter.
#include <gtest/gtest.h>

#include <vector>

#include "store/subscription_store.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace psc::store {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

void expect_same_insert(const InsertResult& a, const InsertResult& b,
                        int step) {
  EXPECT_EQ(a.accepted_active, b.accepted_active) << step;
  EXPECT_EQ(a.covered, b.covered) << step;
  EXPECT_EQ(a.demoted, b.demoted) << step;
  ASSERT_EQ(a.engine_result.has_value(), b.engine_result.has_value()) << step;
  if (a.engine_result) {
    EXPECT_EQ(a.engine_result->covered, b.engine_result->covered) << step;
    EXPECT_EQ(a.engine_result->path, b.engine_result->path) << step;
    EXPECT_EQ(a.engine_result->iterations, b.engine_result->iterations) << step;
    EXPECT_EQ(a.engine_result->original_set_size,
              b.engine_result->original_set_size)
        << step;
    EXPECT_EQ(a.engine_result->reduced_set_size,
              b.engine_result->reduced_set_size)
        << step;
    EXPECT_EQ(a.engine_result->rho_w, b.engine_result->rho_w) << step;
    EXPECT_EQ(a.engine_result->trial_budget, b.engine_result->trial_budget)
        << step;
    EXPECT_EQ(a.engine_result->covering_index.has_value(),
              b.engine_result->covering_index.has_value())
        << step;
  }
}

StoreConfig make_config(CoveragePolicy policy, bool use_index) {
  StoreConfig config;
  config.policy = policy;
  config.use_index = use_index;
  config.engine.max_iterations = 5'000;
  return config;
}

class IndexEquivalence : public ::testing::TestWithParam<CoveragePolicy> {};

TEST_P(IndexEquivalence, IdenticalDecisionsAndMatchesUnderChurn) {
  const CoveragePolicy policy = GetParam();
  const std::uint64_t seed = 0xfeedULL;
  SubscriptionStore indexed(make_config(policy, true), seed);
  SubscriptionStore flat(make_config(policy, false), seed);

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 8;
  workload::ComparisonStream stream(stream_config, 99);
  util::Rng rng(7);
  std::vector<SubscriptionId> live;

  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.bernoulli(0.2)) {
      const SubscriptionId victim = live[rng.next_below(live.size())];
      const auto erased_indexed = indexed.erase_reporting(victim);
      const auto erased_flat = flat.erase_reporting(victim);
      EXPECT_EQ(erased_indexed.erased, erased_flat.erased) << step;
      EXPECT_EQ(erased_indexed.promoted, erased_flat.promoted) << step;
      live.erase(std::find(live.begin(), live.end(), victim));
    } else {
      const Subscription sub = stream.next();
      const auto inserted_indexed = indexed.insert(sub);
      const auto inserted_flat = flat.insert(sub);
      expect_same_insert(inserted_indexed, inserted_flat, step);
      live.push_back(sub.id());
    }

    ASSERT_EQ(indexed.active_count(), flat.active_count()) << step;
    ASSERT_EQ(indexed.covered_count(), flat.covered_count()) << step;

    // Matching: identical output, not merely as a set — the index path
    // re-sorts into the flat path's active order.
    const Publication pub = workload::uniform_publication(
        stream_config.attribute_count, 0.0, 1000.0, rng);
    EXPECT_EQ(indexed.match_active(pub), flat.match_active(pub)) << step;
    EXPECT_EQ(indexed.match(pub), flat.match(pub)) << step;
  }

  // Per-id placement agrees at the end as well.
  for (const SubscriptionId id : live) {
    EXPECT_EQ(indexed.is_active(id), flat.is_active(id));
    EXPECT_EQ(indexed.coverers_of(id), flat.coverers_of(id));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, IndexEquivalence,
                         ::testing::Values(CoveragePolicy::kNone,
                                           CoveragePolicy::kPairwise,
                                           CoveragePolicy::kGroup,
                                           CoveragePolicy::kExact),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(IndexEquivalence, WrongArityPublicationMatchesNothingOnBothPaths) {
  SubscriptionStore indexed(make_config(CoveragePolicy::kNone, true), 1);
  SubscriptionStore flat(make_config(CoveragePolicy::kNone, false), 1);
  const Subscription sub({core::Interval{0, 10}, core::Interval{0, 10},
                          core::Interval{0, 10}},
                         1);
  (void)indexed.insert(sub);
  (void)flat.insert(sub);
  const Publication wrong_arity({5.0, 5.0});
  EXPECT_TRUE(indexed.match_active(wrong_arity).empty());
  EXPECT_TRUE(flat.match_active(wrong_arity).empty());
  EXPECT_TRUE(indexed.match(wrong_arity).empty());
}

TEST(IndexEquivalence, PrefilterDisabledStillIdentical) {
  // engine.prefilter_intersecting = false asks the engine for the
  // unfiltered candidate set; index pruning must stand down so the two
  // paths keep consuming the same RNG stream.
  StoreConfig with_index = make_config(CoveragePolicy::kGroup, true);
  with_index.engine.prefilter_intersecting = false;
  StoreConfig without_index = make_config(CoveragePolicy::kGroup, false);
  without_index.engine.prefilter_intersecting = false;
  SubscriptionStore indexed(with_index, 3);
  SubscriptionStore flat(without_index, 3);

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 5;
  workload::ComparisonStream stream(stream_config, 17);
  for (int step = 0; step < 120; ++step) {
    const Subscription sub = stream.next();
    expect_same_insert(indexed.insert(sub), flat.insert(sub), step);
  }
  EXPECT_EQ(indexed.active_count(), flat.active_count());
}

TEST_P(IndexEquivalence, AmortizedTiersIdenticalToEagerIndexUnderChurn) {
  // The two-tier churn-amortized index (delta tier + tombstones +
  // compaction) must be decision-for-decision identical to the eager
  // pre-tier index AND to the flat scans, through the full store: same
  // InsertResults, promotions, and match outputs at every step. Tiny
  // compaction thresholds make compactions fire mid-trace.
  const CoveragePolicy policy = GetParam();
  const std::uint64_t seed = 0xadd5ULL;
  StoreConfig amortized_config = make_config(policy, true);
  amortized_config.index.compaction_min = 8;
  amortized_config.index.compaction_slack = 0.0;
  StoreConfig eager_config = make_config(policy, true);
  eager_config.index.amortize_mutations = false;
  SubscriptionStore amortized(amortized_config, seed);
  SubscriptionStore eager(eager_config, seed);
  SubscriptionStore flat(make_config(policy, false), seed);

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  workload::ComparisonStream stream(stream_config, 314);
  util::Rng rng(15);
  std::vector<SubscriptionId> live;

  for (int step = 0; step < 300; ++step) {
    if (!live.empty() && rng.bernoulli(0.3)) {
      const SubscriptionId victim = live[rng.next_below(live.size())];
      const auto erased_amortized = amortized.erase_reporting(victim);
      const auto erased_eager = eager.erase_reporting(victim);
      const auto erased_flat = flat.erase_reporting(victim);
      EXPECT_EQ(erased_amortized.promoted, erased_eager.promoted) << step;
      EXPECT_EQ(erased_amortized.promoted, erased_flat.promoted) << step;
      live.erase(std::find(live.begin(), live.end(), victim));
    } else {
      const Subscription sub = stream.next();
      const auto inserted_amortized = amortized.insert(sub);
      const auto inserted_eager = eager.insert(sub);
      expect_same_insert(inserted_amortized, inserted_eager, step);
      expect_same_insert(inserted_amortized, flat.insert(sub), step);
      live.push_back(sub.id());
    }
    const Publication pub = workload::uniform_publication(
        stream_config.attribute_count, 0.0, 1000.0, rng);
    const auto expected = flat.match(pub);
    EXPECT_EQ(amortized.match(pub), expected) << step;
    EXPECT_EQ(eager.match(pub), expected) << step;
    EXPECT_EQ(amortized.match_active(pub), eager.match_active(pub)) << step;
  }
}

TEST(IndexEquivalenceScenario, ScenarioInstancesAgreeOnVerdicts) {
  // Paper scenario generators stress the group policy with known ground
  // truth: both paths must agree with each other on every insert verdict.
  workload::ScenarioConfig config;
  config.attribute_count = 6;
  config.set_size = 40;
  util::Rng rng(123);
  for (int round = 0; round < 8; ++round) {
    const auto inst = (round % 2 == 0)
                          ? workload::make_redundant_covering(config, rng)
                          : workload::make_non_cover(config, rng);
    SubscriptionStore indexed(make_config(CoveragePolicy::kGroup, true), 1);
    SubscriptionStore flat(make_config(CoveragePolicy::kGroup, false), 1);
    SubscriptionId next_id = 1;
    for (const auto& sub : inst.existing) {
      Subscription copy = sub;
      copy.set_id(next_id++);
      expect_same_insert(indexed.insert(copy), flat.insert(copy), round);
    }
    Subscription tested = inst.tested;
    tested.set_id(next_id++);
    expect_same_insert(indexed.insert(tested), flat.insert(tested), round);
  }
}

}  // namespace
}  // namespace psc::store
