// Tests for the subscription merging module.
#include "merge/subscription_merger.hpp"

#include <gtest/gtest.h>

#include "baseline/exact_subsumption.hpp"
#include "util/rng.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace psc::merge {
namespace {

using core::Interval;
using core::Subscription;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  core::SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(MergePair, HullCoversBothOperands) {
  const Subscription a = box2(0, 4, 0, 4, 1);
  const Subscription b = box2(6, 10, 6, 10, 2);
  const Subscription merged = merge_pair(a, b);
  EXPECT_TRUE(merged.covers(a));
  EXPECT_TRUE(merged.covers(b));
  EXPECT_EQ(merged.range(0), (Interval{0, 10}));
  EXPECT_EQ(merged.id(), 1u);  // takes the first operand's id
}

TEST(MergePair, SchemaMismatchThrows) {
  EXPECT_THROW((void)merge_pair(box2(0, 1, 0, 1), Subscription({Interval{0, 1}})),
               std::invalid_argument);
}

TEST(WasteRatio, NestedBoxesAreFree) {
  const Subscription outer = box2(0, 10, 0, 10);
  const Subscription inner = box2(2, 8, 2, 8);
  EXPECT_DOUBLE_EQ(waste_ratio(outer, inner), 0.0);
  EXPECT_DOUBLE_EQ(waste_ratio(inner, outer), 0.0);
}

TEST(WasteRatio, AlignedAdjacentSlabsAreFree) {
  // Two slabs sharing a full face: hull == union exactly.
  const Subscription left = box2(0, 5, 0, 10);
  const Subscription right = box2(5, 10, 0, 10);
  EXPECT_NEAR(waste_ratio(left, right), 0.0, 1e-12);
}

TEST(WasteRatio, DiagonalBoxesWasteCorners) {
  // Two 4x4 boxes at opposite corners of a 10x10 hull:
  // union = 32, hull = 100 -> waste = 0.68.
  const Subscription a = box2(0, 4, 0, 4);
  const Subscription b = box2(6, 10, 6, 10);
  EXPECT_NEAR(waste_ratio(a, b), 1.0 - 32.0 / 100.0, 1e-12);
}

TEST(WasteRatio, OverlapNotDoubleCounted) {
  // Diagonally shifted congruent boxes: union = 25 + 25 - 16 = 34,
  // hull = 36 -> waste = 1/18. Double-counting the overlap would report 0.
  const Subscription a = box2(0, 5, 0, 5);
  const Subscription b = box2(1, 6, 1, 6);
  EXPECT_NEAR(waste_ratio(a, b), 1.0 - 34.0 / 36.0, 1e-12);
  // Aligned shift along one axis: hull equals union exactly.
  const Subscription c = box2(1, 6, 0, 5);
  EXPECT_NEAR(waste_ratio(a, c), 0.0, 1e-12);
}

TEST(MergeSet, ExactMergesCollapseSlabPartition) {
  // Four aligned slabs partition [0,20] x [0,10]: all merge for free.
  std::vector<Subscription> subs{
      box2(0, 5, 0, 10, 1), box2(5, 10, 0, 10, 2),
      box2(10, 15, 0, 10, 3), box2(15, 20, 0, 10, 4)};
  MergeStats stats;
  const auto merged = merge_set(subs, MergeConfig{.max_waste_ratio = 0.0}, &stats);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].range(0), (Interval{0, 20}));
  EXPECT_EQ(stats.merges_performed, 3u);
  EXPECT_NEAR(stats.waste_volume, 0.0, 1e-9);
}

TEST(MergeSet, ThresholdZeroRefusesLossyMerges) {
  std::vector<Subscription> subs{box2(0, 4, 0, 4, 1), box2(6, 10, 6, 10, 2)};
  const auto merged = merge_set(subs, MergeConfig{.max_waste_ratio = 0.0});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeSet, ThresholdOneMergesEverything) {
  std::vector<Subscription> subs{box2(0, 1, 0, 1, 1), box2(9, 10, 9, 10, 2),
                                 box2(4, 5, 4, 5, 3)};
  const auto merged = merge_set(subs, MergeConfig{.max_waste_ratio = 1.0});
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeSet, MergedSetCoversOriginalUnion) {
  // Soundness: no original subscription escapes the merged set (merging
  // may over-approximate, never under-approximate).
  util::Rng rng(77);
  workload::ScenarioConfig config;
  config.attribute_count = 3;
  config.set_size = 20;
  for (int round = 0; round < 10; ++round) {
    const auto inst = workload::make_redundant_covering(config, rng);
    const auto merged =
        merge_set(inst.existing, MergeConfig{.max_waste_ratio = 0.3});
    EXPECT_LE(merged.size(), inst.existing.size());
    for (const auto& original : inst.existing) {
      EXPECT_TRUE(baseline::exactly_covered(original, merged)) << round;
    }
  }
}

TEST(MergeSet, FalsePositiveVolumeBounded) {
  // The waste accounting matches the geometric over-approximation: sample
  // points in the merged boxes and verify the fraction outside the
  // original union is consistent with the configured bound (loose check).
  util::Rng rng(99);
  std::vector<Subscription> subs{box2(0, 5, 0, 10, 1), box2(5.2, 10, 0, 10, 2)};
  MergeStats stats;
  const auto merged = merge_set(subs, MergeConfig{.max_waste_ratio = 0.05}, &stats);
  ASSERT_EQ(merged.size(), 1u);
  std::size_t outside = 0;
  const std::size_t samples = 20'000;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto pub = workload::publication_inside(merged[0], rng);
    const bool in_union = pub.matches(subs[0]) || pub.matches(subs[1]);
    outside += in_union ? 0 : 1;
  }
  const double observed = static_cast<double>(outside) / samples;
  EXPECT_LE(observed, 0.05 + 0.01);
  EXPECT_GT(observed, 0.0);  // the 0.2-wide strip is real
}

TEST(MergeSet, EmptyAndSingletonPassThrough) {
  EXPECT_TRUE(merge_set({}, MergeConfig{}).empty());
  const auto one = merge_set({box2(0, 1, 0, 1, 7)}, MergeConfig{});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].id(), 7u);
}

TEST(MergeSet, BadConfigThrows) {
  EXPECT_THROW((void)merge_set({}, MergeConfig{.max_waste_ratio = -0.1}),
               std::invalid_argument);
  EXPECT_THROW((void)merge_set({}, MergeConfig{.max_waste_ratio = 1.1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::merge
