// Unit tests for the exec subsystem: ThreadPool scheduling/exception
// semantics and ShardedStore partitioning, merging, and batch APIs.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/sharded_store.hpp"
#include "exec/thread_pool.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace psc::exec {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;

// ---------------------------------------------------------------- pool ----

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {0UL, 1UL, 3UL}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1) << workers;
  }
}

TEST(ThreadPool, InlineWhenZeroWorkers) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.lane_count(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // inline => strictly sequential
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, NullPoolRunsInline) {
  int sum = 0;
  ThreadPool::run(nullptr, 4, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 6);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 8) << round;
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAfterBarrier) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives and serves the next batch.
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, WorkerThrownExceptionReachesTheCallerAndPoolSurvives) {
  // The header's contract, exercised with the throw guaranteed to come
  // from a WORKER thread (not the caller's lane): the barrier completes,
  // the caller sees the worker's exception, and the pool keeps serving.
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  for (int round = 0; round < 10; ++round) {
    std::atomic<bool> worker_entered{false};
    try {
      pool.parallel_for(64, [&](std::size_t) {
        if (std::this_thread::get_id() == caller) {
          // Hold the caller's lane until a worker joins: on a one-core
          // host the caller would otherwise drain every index itself and
          // the worker path would go untested.
          while (!worker_entered.load()) std::this_thread::yield();
        } else {
          worker_entered.store(true);
          throw std::runtime_error("worker boom");
        }
      });
      FAIL() << "worker exception must rethrow on the caller, round " << round;
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "worker boom");
    }
    // The pool must be clean for the next batch.
    std::atomic<int> count{0};
    pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 8) << round;
  }
}

TEST(ThreadPool, ThrowRunsNoIndexTwiceAndSkipsOnlyUnstartedOnes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> ran(256);
  EXPECT_THROW(pool.parallel_for(256,
                                 [&](std::size_t i) {
                                   ran[i].fetch_add(1);
                                   if (i == 10) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  int total = 0;
  for (const auto& hit : ran) {
    EXPECT_LE(hit.load(), 1);  // exactly-once even on the abort path
    total += hit.load();
  }
  EXPECT_GE(ran[10].load(), 1);  // the throwing index did run
  EXPECT_LE(total, 256);
}

TEST(ThreadPool, EveryInvocationThrowingYieldsExactlyOneException) {
  ThreadPool pool(2);
  std::atomic<int> attempts{0};
  try {
    pool.parallel_for(128, [&](std::size_t i) {
      attempts.fetch_add(1);
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "must rethrow";
  } catch (const std::runtime_error&) {
    // One winner; the abort flag suppresses the rest after the first.
  }
  EXPECT_GE(attempts.load(), 1);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, InlineExceptionStopsAtTheThrowingIndex) {
  // The 0-worker pool — what hardware_concurrency() == 0 falls back to
  // via default_worker_count() — propagates directly: indices after the
  // throwing one must not run, and the pool stays usable.
  ThreadPool pool(0);
  std::vector<int> ran(8, 0);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   ran[i] = 1;
                                   if (i == 2) throw std::logic_error("inline");
                                 }),
               std::logic_error);
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 0, 0, 0, 0, 0}));
  int count = 0;
  pool.parallel_for(3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(ThreadPool, NullPoolPropagatesExceptionsInline) {
  std::vector<int> ran(4, 0);
  EXPECT_THROW(ThreadPool::run(nullptr, 4,
                               [&](std::size_t i) {
                                 ran[i] = 1;
                                 if (i == 1) throw std::runtime_error("null");
                               }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 0, 0}));
}

// ------------------------------------------------------------- sharding ---

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

ShardConfig none_config(std::size_t shards) {
  ShardConfig config;
  config.shard_count = shards;
  config.store.policy = store::CoveragePolicy::kNone;
  config.store.demote_covered_actives = false;
  return config;
}

TEST(ShardedStore, ShardOfIsStableAndInRange) {
  ShardedStore store(none_config(4), 1);
  for (SubscriptionId id = 1; id <= 1000; ++id) {
    const std::size_t shard = store.shard_of(id);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, store.shard_of(id));  // stable
  }
}

TEST(ShardedStore, PartitionsAcrossShardsAndCountsAggregate) {
  ShardedStore store(none_config(4), 1);
  for (SubscriptionId id = 1; id <= 64; ++id) {
    (void)store.insert(box2(0, 10, 0, 10, id));
  }
  EXPECT_EQ(store.total_count(), 64u);
  EXPECT_EQ(store.active_count(), 64u);
  std::size_t sum = 0;
  std::size_t populated = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    sum += store.shard(s).active_count();
    populated += store.shard(s).active_count() > 0 ? 1 : 0;
  }
  EXPECT_EQ(sum, 64u);
  EXPECT_GE(populated, 2u);  // splitmix spreads 64 ids over >1 shard
  // Each id lives exactly in its hash shard.
  for (SubscriptionId id = 1; id <= 64; ++id) {
    EXPECT_TRUE(store.shard(store.shard_of(id)).contains(id));
    EXPECT_TRUE(store.contains(id));
    EXPECT_TRUE(store.is_active(id));
    ASSERT_NE(store.find(id), nullptr);
    EXPECT_EQ(store.find(id)->id(), id);
  }
}

TEST(ShardedStore, ZeroShardCountCoercedToOne) {
  ShardedStore store(none_config(0), 1);
  EXPECT_EQ(store.shard_count(), 1u);
}

TEST(ShardedStore, MatchSetIndependentOfShardCount) {
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  util::Rng pub_rng(11);

  std::vector<Subscription> subs;
  {
    workload::ComparisonStream stream(stream_config, 42);
    subs = stream.take(200);
  }
  ShardedStore one(none_config(1), 7);
  ShardedStore eight(none_config(8), 7);
  for (const auto& sub : subs) {
    (void)one.insert(sub);
    (void)eight.insert(sub);
  }
  for (int i = 0; i < 50; ++i) {
    const Publication pub = workload::uniform_publication(
        stream_config.attribute_count, 0.0, 1000.0, pub_rng);
    auto a = one.match_active(pub);
    auto b = eight.match_active(pub);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << i;
  }
}

TEST(ShardedStore, InsertBatchMatchesSequentialInserts) {
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 5;
  std::vector<Subscription> subs;
  {
    workload::ComparisonStream stream(stream_config, 9);
    subs = stream.take(150);
  }

  ShardConfig config;
  config.shard_count = 4;
  config.store.policy = store::CoveragePolicy::kGroup;
  config.store.engine.max_iterations = 2'000;

  ThreadPool pool(2);
  ShardedStore sequential(config, 5);
  ShardedStore batched(config, 5);

  std::vector<store::InsertResult> expected;
  expected.reserve(subs.size());
  for (const auto& sub : subs) expected.push_back(sequential.insert(sub));
  const auto actual = batched.insert_batch(subs, &pool);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].accepted_active, expected[i].accepted_active) << i;
    EXPECT_EQ(actual[i].covered, expected[i].covered) << i;
    EXPECT_EQ(actual[i].demoted, expected[i].demoted) << i;
  }
  EXPECT_EQ(batched.active_count(), sequential.active_count());
  EXPECT_EQ(batched.covered_count(), sequential.covered_count());
}

TEST(ShardedStore, ErasePromotesWithinShard) {
  // Force everything into one shard by using shard_count 1: classic
  // promote-on-erase behavior must pass through unchanged.
  ShardConfig config;
  config.shard_count = 1;
  config.store.policy = store::CoveragePolicy::kPairwise;
  ShardedStore store(config, 3);
  (void)store.insert(box2(0, 10, 0, 10, 1));
  (void)store.insert(box2(2, 8, 2, 8, 2));  // covered by 1
  EXPECT_EQ(store.covered_count(), 1u);
  EXPECT_EQ(store.coverers_of(2), (std::vector<SubscriptionId>{1}));
  const auto erased = store.erase_reporting(1);
  EXPECT_TRUE(erased.erased);
  EXPECT_EQ(erased.promoted, (std::vector<SubscriptionId>{2}));
  EXPECT_TRUE(store.is_active(2));
}

TEST(ShardedStore, MatchBatchAgreesWithSequentialMatchesAcrossPoolSizes) {
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  std::vector<Subscription> subs;
  {
    workload::ComparisonStream stream(stream_config, 21);
    subs = stream.take(120);
  }
  std::vector<Publication> pubs;
  util::Rng pub_rng(22);
  for (int i = 0; i < 40; ++i) {
    pubs.push_back(workload::uniform_publication(stream_config.attribute_count,
                                                 0.0, 1000.0, pub_rng));
  }

  ShardedStore store(none_config(4), 13);
  (void)store.insert_batch(subs);

  std::vector<std::vector<SubscriptionId>> sequential;
  sequential.reserve(pubs.size());
  for (const auto& pub : pubs) sequential.push_back(store.match_active(pub));

  ThreadPool pool(3);
  EXPECT_EQ(store.match_active_batch(pubs, nullptr), sequential);
  EXPECT_EQ(store.match_active_batch(pubs, &pool), sequential);
  EXPECT_EQ(store.match_batch(pubs, &pool).size(), pubs.size());
}

}  // namespace
}  // namespace psc::exec
