// Property tests for the two-tier churn-amortized IntervalIndex: across
// delta-only, tombstone-heavy, and just-compacted states, both query kinds
// must return exactly the id set of (a) a flat scan over the live
// subscriptions and (b) a freshly built index — i.e. the tier machinery is
// invisible to every consumer. Also replays deterministic churn-workload
// traces (workload::generate_churn_trace) with TTL expiries against
// amortized, eager, and flat references in lockstep.
#include "index/interval_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "workload/churn_workload.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace psc::index {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using core::Value;

std::vector<SubscriptionId> sorted(std::vector<SubscriptionId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Checks stab and box_intersect of `index` against a flat scan over
/// `live` and against a freshly built index over the same set, on several
/// random probes.
void expect_equivalent_queries(const IntervalIndex& index,
                               const std::vector<Subscription>& live,
                               std::size_t attribute_count, util::Rng& rng,
                               int probes, const char* state) {
  IntervalIndex fresh(attribute_count, index.config());
  for (const Subscription& sub : live) fresh.insert(sub);

  for (int probe = 0; probe < probes; ++probe) {
    const Publication pub =
        workload::uniform_publication(attribute_count, -100.0, 1100.0, rng);
    std::vector<SubscriptionId> expected_stab;
    for (const Subscription& sub : live) {
      if (pub.matches(sub)) expected_stab.push_back(sub.id());
    }
    EXPECT_EQ(sorted(index.stab(pub.values())), sorted(expected_stab))
        << state << " probe " << probe;
    EXPECT_EQ(sorted(fresh.stab(pub.values())), sorted(expected_stab))
        << state << " probe " << probe;

    workload::ScenarioConfig box_config;
    box_config.attribute_count = attribute_count;
    const Subscription box = workload::random_box(box_config, 0.05, 0.5, rng);
    std::vector<SubscriptionId> expected_box;
    for (const Subscription& sub : live) {
      if (sub.intersects(box)) expected_box.push_back(sub.id());
    }
    EXPECT_EQ(sorted(index.box_intersect(box)), sorted(expected_box))
        << state << " probe " << probe;
    EXPECT_EQ(sorted(fresh.box_intersect(box)), sorted(expected_box))
        << state << " probe " << probe;
  }
}

TEST(TieredIndex, DeltaOnlyTombstoneHeavyAndJustCompactedStates) {
  const std::size_t attrs = 5;
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = attrs;
  workload::ComparisonStream stream(stream_config, 404);
  util::Rng rng(11);

  // Thresholds high enough that nothing compacts until forced: the test
  // drives the index through each tier state explicitly.
  IndexConfig config;
  config.compaction_min = 1'000'000;
  IntervalIndex index(attrs, config);
  std::vector<Subscription> live;

  // --- State 1: delta-only (every insert pending, no tombstones).
  for (int i = 0; i < 120; ++i) {
    Subscription sub = stream.next();
    index.insert(sub);
    live.push_back(std::move(sub));
  }
  ASSERT_GT(index.delta_size(), 0u);
  ASSERT_EQ(index.tombstone_count(), 0u);
  ASSERT_EQ(index.compactions(), 0u);
  expect_equivalent_queries(index, live, attrs, rng, 20, "delta-only");

  // --- State 2: just-compacted (forced; everything in the main tier).
  index.compact();
  ASSERT_EQ(index.delta_size(), 0u);
  ASSERT_EQ(index.compactions(), 1u);
  expect_equivalent_queries(index, live, attrs, rng, 20, "just-compacted");

  // --- State 3: tombstone-heavy (erase half of the main tier) plus a
  // fresh sprinkling of delta inserts on top.
  for (int i = 0; i < 60; ++i) {
    const std::size_t victim = rng.next_below(live.size());
    ASSERT_TRUE(index.erase(live[victim].id()));
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  for (int i = 0; i < 25; ++i) {
    Subscription sub = stream.next();
    index.insert(sub);
    live.push_back(std::move(sub));
  }
  ASSERT_GT(index.tombstone_count(), 0u);
  ASSERT_GT(index.delta_size(), 0u);
  expect_equivalent_queries(index, live, attrs, rng, 20, "tombstone-heavy");

  // --- Back to clean: compaction releases every tombstone and the free
  // slots are reusable.
  index.compact();
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_EQ(index.delta_size(), 0u);
  expect_equivalent_queries(index, live, attrs, rng, 10, "recompacted");
  EXPECT_EQ(index.size(), live.size());
}

TEST(TieredIndex, ErasedDeltaSlotLeavesNoTrace) {
  // Insert-then-erase within one delta window must fully restore the
  // slot's mask rows (a stale zero-bit would wrongly prune a reused slot).
  IndexConfig config;
  config.compaction_min = 1'000'000;
  IntervalIndex index(2, config);
  index.insert(Subscription({core::Interval{0, 10}, core::Interval{0, 10}}, 1));
  ASSERT_EQ(index.delta_size(), 1u);
  ASSERT_TRUE(index.erase(1));
  ASSERT_EQ(index.delta_size(), 0u);
  ASSERT_EQ(index.tombstone_count(), 0u);

  // The freed slot is reused by a subscription constraining a DIFFERENT
  // region; probes into both regions must answer exactly.
  index.insert(Subscription({core::Interval{500, 600}, core::Interval{500, 600}}, 2));
  EXPECT_TRUE(index.stab(std::vector<Value>{5.0, 5.0}).empty());
  EXPECT_EQ(index.stab(std::vector<Value>{550.0, 550.0}),
            (std::vector<SubscriptionId>{2}));
}

TEST(TieredIndex, TombstonedSlotIsNotResurrectedByStaleEndpoints) {
  IndexConfig config;
  config.compaction_min = 1'000'000;
  IntervalIndex index(1, config);
  index.insert(Subscription({core::Interval{0, 10}}, 1));
  index.insert(Subscription({core::Interval{5, 15}}, 2));
  index.compact();  // both in the main tier
  ASSERT_TRUE(index.erase(1));
  ASSERT_EQ(index.tombstone_count(), 1u);

  // Stale endpoints of #1 are still in the sorted arrays; neither query
  // may emit it.
  EXPECT_EQ(index.stab(std::vector<Value>{7.0}),
            (std::vector<SubscriptionId>{2}));
  EXPECT_EQ(index.box_intersect(Subscription({core::Interval{0, 20}}, 99)),
            (std::vector<SubscriptionId>{2}));
  EXPECT_FALSE(index.contains(1));
  EXPECT_EQ(index.size(), 1u);
}

TEST(TieredIndex, ThresholdTriggersCompactionAutomatically) {
  IndexConfig config;
  config.compaction_min = 32;
  config.compaction_slack = 0.0;
  IntervalIndex index(2, config);
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 2;
  stream_config.max_constrained = 2;
  workload::ComparisonStream stream(stream_config, 7);
  for (int i = 0; i < 200; ++i) index.insert(stream.next());
  EXPECT_GT(index.compactions(), 0u);
  // Pending mutations never exceed the threshold after a mutation settles.
  EXPECT_LT(index.delta_size() + index.tombstone_count(), 32u + 1u);
}

/// Replays the subscribe/unsubscribe/TTL-expiry/publish sequence of a
/// churn-workload trace against three replicas — amortized (production
/// thresholds), eager (pre-tier ablation), and a flat live map — checking
/// every publish as a stab probe on all of them.
void replay_trace(const workload::ChurnTrace& trace, IndexConfig amortized_cfg) {
  IndexConfig eager_cfg = amortized_cfg;
  eager_cfg.amortize_mutations = false;

  const std::size_t attrs = trace.config.attribute_count;
  IntervalIndex amortized(attrs, amortized_cfg);
  IntervalIndex eager(attrs, eager_cfg);
  std::unordered_map<SubscriptionId, Subscription> live;
  std::vector<std::pair<sim::SimTime, SubscriptionId>> expiries;

  const auto expire_due = [&](sim::SimTime now) {
    for (std::size_t i = 0; i < expiries.size();) {
      if (expiries[i].first <= now) {
        const SubscriptionId id = expiries[i].second;
        if (live.erase(id) > 0) {
          ASSERT_TRUE(amortized.erase(id));
          ASSERT_TRUE(eager.erase(id));
        }
        expiries[i] = expiries.back();
        expiries.pop_back();
      } else {
        ++i;
      }
    }
  };

  std::size_t checked_publishes = 0;
  for (const workload::ChurnOp& op : trace.ops) {
    expire_due(op.time);
    switch (op.kind) {
      case workload::ChurnOpKind::kSubscribe:
        amortized.insert(op.sub);
        eager.insert(op.sub);
        live.emplace(op.sub.id(), op.sub);
        break;
      case workload::ChurnOpKind::kSubscribeTtl:
        amortized.insert(op.sub);
        eager.insert(op.sub);
        live.emplace(op.sub.id(), op.sub);
        expiries.emplace_back(op.time + op.ttl, op.sub.id());
        break;
      case workload::ChurnOpKind::kUnsubscribe:
        if (live.erase(op.id) > 0) {
          ASSERT_TRUE(amortized.erase(op.id));
          ASSERT_TRUE(eager.erase(op.id));
        }
        break;
      case workload::ChurnOpKind::kPublish: {
        std::vector<SubscriptionId> expected;
        for (const auto& [id, sub] : live) {
          if (op.pub.matches(sub)) expected.push_back(id);
        }
        const auto expected_sorted = sorted(std::move(expected));
        ASSERT_EQ(sorted(amortized.stab(op.pub.values())), expected_sorted);
        ASSERT_EQ(sorted(eager.stab(op.pub.values())), expected_sorted);
        ++checked_publishes;
        break;
      }
      case workload::ChurnOpKind::kAdvance:
      case workload::ChurnOpKind::kMembership:  // membership rates are zero
        break;
    }
    ASSERT_EQ(amortized.size(), live.size());
    ASSERT_EQ(eager.size(), live.size());
  }
  ASSERT_GT(checked_publishes, 0u);
}

TEST(TieredIndex, ChurnTraceReplayMatchesEagerAndFlat) {
  workload::ChurnConfig config;
  config.duration = 40.0;
  config.subscription_rate = 3.0;
  config.publication_rate = 4.0;
  config.mean_lifetime = 5.0;

  for (const std::uint64_t seed : {1ull, 2006ull, 0xfeedull}) {
    const auto trace = workload::generate_churn_trace(config, 4, seed);
    // Tiny thresholds: compaction fires constantly mid-trace.
    IndexConfig tight;
    tight.compaction_min = 8;
    tight.compaction_slack = 0.0;
    replay_trace(trace, tight);
    // Huge thresholds: the whole trace lives in the delta/tombstone state.
    IndexConfig loose;
    loose.compaction_min = 1'000'000;
    replay_trace(trace, loose);
  }
}

}  // namespace
}  // namespace psc::index
