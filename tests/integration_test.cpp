// End-to-end integration: the full stack (workload -> engine -> store ->
// broker network) under realistic mixed traffic, including failure
// injection that forces probabilistic false negatives and verifies the
// system degrades exactly as the paper predicts (bounded notification
// loss, large traffic savings).
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/exact_subsumption.hpp"
#include "routing/broker_network.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace psc {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using routing::BrokerNetwork;
using routing::NetworkConfig;

NetworkConfig config_with(store::CoveragePolicy policy) {
  NetworkConfig config;
  config.store.policy = policy;
  return config;
}

TEST(Integration, MixedWorkloadGroupVsPairwiseTraffic) {
  // Same subscription stream into two identical chains differing only in
  // coverage policy: group must generate no more subscription traffic than
  // pairwise, and both must deliver every notification for subscriptions
  // whose coverage decisions were exact.
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  stream_config.min_constrained = 2;
  stream_config.max_constrained = 4;

  auto group = BrokerNetwork::chain_topology(
      5, config_with(store::CoveragePolicy::kGroup));
  auto pairwise = BrokerNetwork::chain_topology(
      5, config_with(store::CoveragePolicy::kPairwise));

  workload::ComparisonStream stream_a(stream_config, 42);
  workload::ComparisonStream stream_b(stream_config, 42);
  util::Rng rng(77);
  for (int i = 0; i < 120; ++i) {
    const auto broker = static_cast<routing::BrokerId>(rng.next_below(5));
    group.subscribe(broker, stream_a.next());
    pairwise.subscribe(broker, stream_b.next());
  }
  EXPECT_LE(group.metrics().subscription_messages,
            pairwise.metrics().subscription_messages);
  EXPECT_GE(group.metrics().subscriptions_suppressed,
            pairwise.metrics().subscriptions_suppressed);

  // Publish from random brokers; compare delivery ratios.
  for (int i = 0; i < 200; ++i) {
    const auto broker = static_cast<routing::BrokerId>(rng.next_below(5));
    const auto pub = workload::uniform_publication(
        stream_config.attribute_count, stream_config.domain_lo,
        stream_config.domain_hi, rng);
    (void)group.publish(broker, pub);
    (void)pairwise.publish(broker, pub);
  }
  // Pairwise coverage is deterministic: zero loss.
  EXPECT_EQ(pairwise.metrics().notifications_lost, 0u);
  // Group coverage is probabilistic with delta = 1e-6: loss is possible in
  // principle but must be negligible here.
  const double group_ratio = group.metrics().delivery_ratio();
  EXPECT_GE(group_ratio, 0.999);
}

TEST(Integration, ForcedFalseNegativeLosesOnlyGapPublications) {
  // Failure injection: crank delta, strangle the iteration budget, AND
  // disable the deterministic aids (Corollary 3 + MCS catch this instance
  // exactly — a nice property, but here we *want* the probabilistic error)
  // so the engine can wrongly declare a gapped subscription covered; then
  // verify the loss accounting pins the lost notifications on exactly the
  // uncovered-gap publications.
  NetworkConfig config = config_with(store::CoveragePolicy::kGroup);
  config.store.engine.delta = 0.5;        // practically no trials
  config.store.engine.max_iterations = 1; // one guess only
  config.store.engine.use_fast_decisions = false;
  config.store.engine.use_mcs = false;
  auto net = BrokerNetwork::chain_topology(3, config);

  // Two slabs of [0,100]^2 leaving the gap x0 in (45, 55) uncovered.
  net.subscribe(2, Subscription({{-1, 45}, {-1, 101}}, 1));
  net.subscribe(2, Subscription({{55, 101}, {-1, 101}}, 2));
  // s3 overlaps the gap; with 1 trial the checker will usually miss the
  // 10 %-measure witness and suppress s3. Retry ids until suppression
  // actually happens (the single guess is random).
  bool suppressed = false;
  SubscriptionId s3 = 3;
  for (; s3 < 40 && !suppressed; ++s3) {
    const auto before = net.metrics().subscriptions_suppressed;
    net.subscribe(2, Subscription({{40, 60}, {40, 60}}, s3));
    if (net.metrics().subscriptions_suppressed > before) {
      suppressed = true;
      break;
    }
    net.unsubscribe(2, s3);
  }
  ASSERT_TRUE(suppressed) << "forced false negative did not materialize";

  // Publication inside the gap AND inside s3: s3's flood was withheld, so
  // publishing at the far end must lose it.
  const auto delivered_gap = net.publish(0, Publication({50.0, 50.0}));
  EXPECT_TRUE(delivered_gap.empty());
  EXPECT_GE(net.metrics().notifications_lost, 1u);

  // Publication inside s3 but also inside slab s2: travels along s2's
  // path and is matched locally at B2 — no loss.
  const auto before_lost = net.metrics().notifications_lost;
  const auto delivered_covered = net.publish(0, Publication({58.0, 50.0}));
  EXPECT_FALSE(delivered_covered.empty());
  EXPECT_TRUE(std::find(delivered_covered.begin(), delivered_covered.end(), s3) !=
              delivered_covered.end());
  EXPECT_EQ(net.metrics().notifications_lost, before_lost);
}

TEST(Integration, EngineStoreNetworkAgreeOnCoverage) {
  // The store's coverage verdicts must be consistent with the standalone
  // engine given identical active sets (same algorithm, same candidates).
  workload::ScenarioConfig config;
  config.attribute_count = 4;
  config.set_size = 15;
  util::Rng rng(5150);
  for (int round = 0; round < 10; ++round) {
    const auto inst = workload::make_redundant_covering(config, rng);
    store::StoreConfig store_config;
    store_config.policy = store::CoveragePolicy::kGroup;
    store_config.demote_covered_actives = false;  // keep the set intact
    store::SubscriptionStore store(store_config, 99);
    for (const auto& si : inst.existing) store.insert(si);
    // The generator guarantees no pairwise covers among the existing set's
    // construction relative to s... existing subscriptions may cover each
    // other though; compare against the store's *actual* active set.
    const auto actives = store.active_snapshot();
    core::SubsumptionEngine engine(store_config.engine, 99);
    const auto direct = engine.check(inst.tested, actives);
    Subscription tested = inst.tested;
    tested.set_id(1000);
    const auto inserted = store.insert(tested);
    if (direct.is_definite) {
      EXPECT_EQ(inserted.covered, direct.covered) << "round " << round;
    }
  }
}

TEST(Integration, UnsubscribeChurnPreservesDelivery) {
  // Subscribe/unsubscribe churn with covered promotions: after the dust
  // settles every surviving subscription still receives its publications.
  auto net = BrokerNetwork::chain_topology(
      4, config_with(store::CoveragePolicy::kGroup));
  // Nested family at broker 3.
  net.subscribe(3, Subscription({{0, 100}, {0, 100}}, 1));
  net.subscribe(3, Subscription({{10, 90}, {10, 90}}, 2));
  net.subscribe(3, Subscription({{20, 80}, {20, 80}}, 3));
  net.subscribe(3, Subscription({{30, 70}, {30, 70}}, 4));
  // Remove outer layers one by one; inner ones must keep receiving.
  net.unsubscribe(3, 1);
  auto delivered = net.publish(0, Publication({50.0, 50.0}));
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{2, 3, 4}));
  net.unsubscribe(3, 2);
  delivered = net.publish(0, Publication({50.0, 50.0}));
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{3, 4}));
  net.unsubscribe(3, 3);
  delivered = net.publish(0, Publication({50.0, 50.0}));
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{4}));
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
}

TEST(Integration, StarTopologyManySubscribers) {
  // Hub-and-spoke with 8 leaves; subscriptions at every leaf, publications
  // at the hub. Every leaf with a matching subscription must be reached.
  NetworkConfig config = config_with(store::CoveragePolicy::kGroup);
  BrokerNetwork net(config);
  const auto hub = net.add_broker();
  std::vector<routing::BrokerId> leaves;
  for (int i = 0; i < 8; ++i) {
    const auto leaf = net.add_broker();
    net.connect(hub, leaf);
    leaves.push_back(leaf);
  }
  util::Rng rng(31337);
  workload::ScenarioConfig wl;
  wl.attribute_count = 3;
  std::vector<Subscription> subs;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto sub = workload::random_box(wl, 0.2, 0.6, rng);
    sub.set_id(i + 1);
    net.subscribe(leaves[i], sub);
    subs.push_back(std::move(sub));
  }
  for (int round = 0; round < 50; ++round) {
    const auto pub = workload::uniform_publication(3, 0.0, 1000.0, rng);
    const auto delivered = net.publish(hub, pub);
    EXPECT_EQ(delivered, net.expected_recipients(pub)) << "round " << round;
  }
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
}

}  // namespace
}  // namespace psc
