// Tests for the Minimized Cover Set algorithm (Algorithm 3), including the
// paper's Table 7/8 walk-through where s3's conflict-free entries get it
// removed, leaving S' = {s1, s2}.
#include "core/mcs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

// Paper Table 7: s, s1, s2 as in Table 3 plus s3 = [810,890] x [1004,1005]
// (reconstructed from Table 8's conflict entries x2 < 1004 and x2 > 1005).
struct PaperMcsExample {
  Subscription s = box2(830, 870, 1003, 1006);
  std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                box2(840, 880, 1002, 1009, 2),
                                box2(810, 890, 1004, 1005, 3)};
};

TEST(Mcs, PaperTable8ConflictTableShape) {
  PaperMcsExample ex;
  const ConflictTable table(ex.s, ex.set);
  // Row s1: x1 > 850 only. Row s2: x1 < 840 only. Row s3: x2 < 1004 and
  // x2 > 1005.
  EXPECT_EQ(table.defined_count(0), 1u);
  EXPECT_EQ(table.defined_count(1), 1u);
  EXPECT_EQ(table.defined_count(2), 2u);
  EXPECT_TRUE(table.is_defined(2, 2));
  EXPECT_TRUE(table.is_defined(2, 3));
}

TEST(Mcs, PaperExampleRemovesS3KeepsS1S2) {
  PaperMcsExample ex;
  const ConflictTable table(ex.s, ex.set);
  const McsResult result = run_mcs(table);
  ASSERT_EQ(result.kept.size(), 2u);
  EXPECT_EQ(result.kept[0], 0u);
  EXPECT_EQ(result.kept[1], 1u);
  EXPECT_EQ(result.removed_conflict_free, 1u);
}

TEST(Mcs, PaperExampleS3EntriesAreConflictFree) {
  PaperMcsExample ex;
  const ConflictTable table(ex.s, ex.set);
  const std::vector<char> alive(3, 1);
  // s3's x2-entries conflict with nothing (s1/s2 define only x1 entries).
  EXPECT_EQ(count_conflict_free(table, 2, alive), 2u);
  // s1's x1 > 850 conflicts with s2's x1 < 840: no conflict-free entries.
  EXPECT_EQ(count_conflict_free(table, 0, alive), 0u);
  EXPECT_EQ(count_conflict_free(table, 1, alive), 0u);
}

TEST(Mcs, KeepsMutuallyConflictingPair) {
  // Table 3's covering pair survives MCS — both rows are essential.
  const Subscription s = box2(830, 870, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  EXPECT_EQ(result.kept.size(), 2u);
}

TEST(Mcs, RemovesNonIntersectingSubscription) {
  // A subscription disjoint from s has a full-slab entry that conflicts
  // with nothing on a covered axis — removed in the first sweep.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(20, 30, 0, 10, 1)};
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  EXPECT_TRUE(result.empty());
}

TEST(Mcs, RemovesRowWithDefinedCountAtLeastK) {
  // Single subscription strictly inside s: t = 4 >= k = 1.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(2, 8, 2, 8, 1)};
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  EXPECT_TRUE(result.empty());
  EXPECT_GE(result.removed_defined_count + result.removed_conflict_free, 1u);
}

TEST(Mcs, EmptyInputYieldsEmptyOutput) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set;
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(result.sweeps, 0u);
}

TEST(Mcs, CascadingRemovalAcrossSweeps) {
  // s split by two slabs (kept) + a third subscription whose only defined
  // entry conflicts with one of them; after the pair's entries keep each
  // other conflicting, the third row's entry stays conflicting too — but a
  // fourth disjoint-axis row is removed in sweep 1, which can expose more
  // removals in sweep 2. This exercises the repeat-until-fixpoint loop.
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{
      box2(-1, 60, -1, 101, 1),    // covers left part; entry x1 > 60
      box2(40, 101, -1, 101, 2),   // covers right part; entry x1 < 40
      box2(-1, 101, 50, 101, 3),   // entry x2 < 50 — conflict-free => removed
      box2(30, 70, -1, 101, 4),    // entries x1 < 30, x1 > 70; both conflict
  };
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  // Row 3 (x2-entry) removed as conflict-free. Row 4's entries x1<30 and
  // x1>70 conflict with rows 1/2 respectively, so it is kept, as are 1, 2.
  ASSERT_EQ(result.kept.size(), 3u);
  EXPECT_EQ(result.kept[0], 0u);
  EXPECT_EQ(result.kept[1], 1u);
  EXPECT_EQ(result.kept[2], 3u);
}

TEST(Mcs, TiGreaterEqualKAfterShrinkage) {
  // Start with k=3; one row removed for conflict-freedom leaves k=2, at
  // which point a row with t=2 becomes removable by the t >= k rule.
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{
      box2(-1, 101, 50, 101, 1),  // x2 < 50 conflict-free => removed sweep 1
      box2(30, 70, -1, 101, 2),   // x1 < 30, x1 > 70 => t=2
      box2(-1, 60, -1, 101, 3),   // x1 > 60 => t=1; conflicts with row 2
  };
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  // After row 1 goes, k=2 and row 2 has t=2 >= 2 => removed; then row 3's
  // x1>60 is conflict-free (nothing left) => removed. Empty set.
  EXPECT_TRUE(result.empty());
  EXPECT_GE(result.sweeps, 2u);
}

TEST(Mcs, MaskSizeMismatchThrows) {
  PaperMcsExample ex;
  const ConflictTable table(ex.s, ex.set);
  const std::vector<char> wrong(2, 1);
  EXPECT_THROW((void)count_conflict_free(table, 0, wrong), std::invalid_argument);
}

TEST(Mcs, DuplicateSubscriptionsBothRemovable) {
  // Two identical subscriptions covering the same slab of s: each makes
  // the other redundant; MCS may keep at most one (here both fall to the
  // conflict-free rule since their entries never conflict mutually —
  // identical same-side entries don't conflict).
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{
      box2(-1, 60, -1, 101, 1),
      box2(-1, 60, -1, 101, 2),
  };
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  EXPECT_TRUE(result.empty());
}

TEST(Mcs, LargeRandomFixtureTerminates) {
  // Termination and bounded sweeps on a mixed 60-row instance.
  const Subscription s = box2(0, 1000, 0, 1000);
  std::vector<Subscription> set;
  for (int i = 0; i < 60; ++i) {
    const double offset = 15.0 * i;
    set.push_back(box2(-1 + offset, 400 + offset, -1, 1001, i + 1));
  }
  const ConflictTable table(s, set);
  const McsResult result = run_mcs(table);
  EXPECT_LE(result.sweeps, 61u);
  EXPECT_LE(result.kept.size(), set.size());
}

}  // namespace
}  // namespace psc::core
