// Unit tests for core::Interval.
#include "core/interval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace psc::core {
namespace {

TEST(Interval, DefaultIsDegeneratePointAtZero) {
  const Interval iv;
  EXPECT_FALSE(iv.is_empty());
  EXPECT_EQ(iv.width(), 0.0);
  EXPECT_TRUE(iv.contains(0.0));
}

TEST(Interval, EmptyIsEmpty) {
  EXPECT_TRUE(Interval::empty().is_empty());
  EXPECT_EQ(Interval::empty().width(), 0.0);
}

TEST(Interval, EverythingContainsLargeValues) {
  const Interval all = Interval::everything();
  EXPECT_FALSE(all.is_empty());
  EXPECT_TRUE(all.contains(1e300));
  EXPECT_TRUE(all.contains(-1e300));
  EXPECT_TRUE(std::isinf(all.width()));
}

TEST(Interval, PointContainsOnlyItself) {
  const Interval pt = Interval::point(5.0);
  EXPECT_TRUE(pt.contains(5.0));
  EXPECT_FALSE(pt.contains(5.0001));
  EXPECT_EQ(pt.width(), 0.0);
}

TEST(Interval, ContainsValueAtEndpoints) {
  const Interval iv{1.0, 3.0};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(3.0));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_FALSE(iv.contains(3.001));
}

TEST(Interval, ContainsInterval) {
  const Interval outer{0.0, 10.0};
  EXPECT_TRUE(outer.contains(Interval{2.0, 8.0}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_TRUE(outer.contains(Interval::empty()));
  EXPECT_FALSE(outer.contains(Interval{-1.0, 5.0}));
  EXPECT_FALSE(outer.contains(Interval{5.0, 11.0}));
}

TEST(Interval, EmptyContainsOnlyEmpty) {
  EXPECT_TRUE(Interval::empty().contains(Interval::empty()));
  EXPECT_FALSE(Interval::empty().contains(Interval::point(1.0)));
}

TEST(Interval, IntersectsSymmetric) {
  const Interval a{0.0, 5.0};
  const Interval b{5.0, 10.0};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  const Interval c{5.1, 10.0};
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(c.intersects(a));
}

TEST(Interval, EmptyNeverIntersects) {
  const Interval unit{0.0, 1.0};
  EXPECT_FALSE(Interval::empty().intersects(unit));
  EXPECT_FALSE(unit.intersects(Interval::empty()));
  EXPECT_FALSE(Interval::empty().intersects(Interval::empty()));
}

TEST(Interval, OverlapsInteriorExcludesTouching) {
  const Interval a{0.0, 5.0};
  EXPECT_FALSE(a.overlaps_interior(Interval{5.0, 10.0}));  // touch only
  EXPECT_TRUE(a.overlaps_interior(Interval{4.9, 10.0}));
  EXPECT_FALSE(a.overlaps_interior(Interval::point(3.0)));  // zero measure
}

TEST(Interval, IntersectProducesOverlap) {
  const Interval a{0.0, 5.0};
  const Interval b{3.0, 8.0};
  EXPECT_EQ(a.intersect(b), (Interval{3.0, 5.0}));
  EXPECT_EQ(b.intersect(a), (Interval{3.0, 5.0}));
}

TEST(Interval, IntersectDisjointIsEmpty) {
  const Interval a{0.0, 1.0};
  EXPECT_TRUE(a.intersect(Interval{2.0, 3.0}).is_empty());
}

TEST(Interval, IntersectWithEmptyIsEmpty) {
  const Interval a{0.0, 1.0};
  EXPECT_TRUE(a.intersect(Interval::empty()).is_empty());
  EXPECT_TRUE(Interval::empty().intersect(a).is_empty());
}

TEST(Interval, HullSpansBoth) {
  EXPECT_EQ((Interval{0.0, 1.0}.hull(Interval{5.0, 6.0})), (Interval{0.0, 6.0}));
  EXPECT_EQ((Interval{0.0, 1.0}.hull(Interval::empty())), (Interval{0.0, 1.0}));
  EXPECT_EQ((Interval::empty().hull(Interval{0.0, 1.0})), (Interval{0.0, 1.0}));
}

TEST(Interval, StreamOutput) {
  std::ostringstream os;
  os << Interval{1.5, 2.5};
  EXPECT_EQ(os.str(), "[1.5, 2.5]");
  std::ostringstream empty;
  empty << Interval::empty();
  EXPECT_EQ(empty.str(), "[empty]");
}

TEST(Interval, NegativeRangesBehave) {
  const Interval iv{-10.0, -5.0};
  EXPECT_EQ(iv.width(), 5.0);
  EXPECT_TRUE(iv.contains(-7.5));
  EXPECT_FALSE(iv.contains(0.0));
}

TEST(Interval, HalfUnboundedContains) {
  const Interval lower{-std::numeric_limits<double>::infinity(), 0.0};
  EXPECT_TRUE(lower.contains(-1e18));
  EXPECT_FALSE(lower.contains(0.1));
}

}  // namespace
}  // namespace psc::core
