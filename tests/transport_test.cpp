// Transport-seam and cancelable-timer suite.
//
// Covers the two contracts the TCP-transport refactor introduced:
//   * EventQueue cancelable timers: cancel destroys the handler NOW (the
//     ownership fix — captured state must not live until the deadline)
//     while the heap entry fires as a no-op at its original instant, so
//     the event timeline is bit-for-bit identical either way;
//   * the LinkChannels regression that motivated it: a delayed-ack timer
//     in flight across reset_link must be disarmed by the reset — its
//     handler destroyed, not merely staled by the epoch guard — so
//     repeated fail/heal churn cannot accumulate armed timers;
//   * SimTransport as a Transport: perfect-wire delivery order/latency and
//     the frame-handler demux.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "routing/broker_network.hpp"
#include "routing/link_channel.hpp"
#include "routing/sim_transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace psc {
namespace {

TEST(CancelableTimerTest, FiresLikeAPlainEvent) {
  sim::EventQueue queue;
  int fired = 0;
  const auto id = queue.schedule_cancelable_in(5.0, [&fired]() { ++fired; });
  EXPECT_NE(id, sim::EventQueue::kNoTimer);
  EXPECT_EQ(queue.armed_timer_count(), 1u);
  queue.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 5.0);
  EXPECT_EQ(queue.armed_timer_count(), 0u);
}

TEST(CancelableTimerTest, CancelDestroysHandlerImmediately) {
  sim::EventQueue queue;
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  const auto id =
      queue.schedule_cancelable_in(5.0, [keep = std::move(sentinel)]() {
        (void)*keep;
        FAIL() << "cancelled timer fired";
      });
  ASSERT_FALSE(watch.expired());
  EXPECT_TRUE(queue.cancel(id));
  // The ownership contract: cancel releases the capture NOW, not at the
  // deadline. This is exactly what leaked across reset_link epochs before.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(queue.armed_timer_count(), 0u);
  // Idempotent: a second cancel (and kNoTimer) report false, no effect.
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(sim::EventQueue::kNoTimer));
  queue.run();
}

TEST(CancelableTimerTest, CancelKeepsTimelineBitForBitIdentical) {
  // Two queues run the same schedule; one cancels its timer. Clock
  // advance, fired event counts, and tie-break sequence numbers must not
  // differ — the cancelled entry still pops as a no-op at t = 5.
  sim::EventQueue with_cancel;
  sim::EventQueue without_cancel;
  std::vector<double> fire_times_a;
  std::vector<double> fire_times_b;

  const auto id = with_cancel.schedule_cancelable_in(5.0, []() {});
  with_cancel.schedule_in(10.0, [&]() { fire_times_a.push_back(with_cancel.now()); });
  (void)without_cancel.schedule_cancelable_in(5.0, []() {});
  without_cancel.schedule_in(
      10.0, [&]() { fire_times_b.push_back(without_cancel.now()); });

  EXPECT_TRUE(with_cancel.cancel(id));
  const std::size_t events_a = with_cancel.run();
  const std::size_t events_b = without_cancel.run();
  EXPECT_EQ(events_a, events_b);  // the cancelled entry still counts a pop
  EXPECT_EQ(with_cancel.now(), without_cancel.now());
  EXPECT_EQ(fire_times_a, fire_times_b);
}

TEST(CancelableTimerTest, RescheduleFromOwnHandlerIsSafe) {
  sim::EventQueue queue;
  int fired = 0;
  sim::EventQueue::TimerId id = sim::EventQueue::kNoTimer;
  id = queue.schedule_cancelable_in(1.0, [&]() {
    ++fired;
    // Re-arming from inside the handler must produce a fresh id (the old
    // one is consumed); one more firing then stop.
    if (fired < 2) id = queue.schedule_cancelable_in(1.0, [&]() { ++fired; });
  });
  queue.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.armed_timer_count(), 0u);
}

// --- the reset_link ownership regression --------------------------------

class ResetLinkTimerTest : public ::testing::Test {
 protected:
  // Perfect wire through the reliable protocol: no faults, so behavior is
  // deterministic and the only timers are RTO + delayed ack.
  routing::LinkConfig config() {
    routing::LinkConfig link;
    link.enabled = true;
    return link;
  }
};

TEST_F(ResetLinkTimerTest, ResetDisarmsInFlightAckAndRtoTimers) {
  sim::EventQueue queue;
  sim::Metrics metrics;
  int delivered = 0;
  routing::LinkChannels channels(
      queue, metrics, config(), 0.001, 42,
      [&](routing::BrokerId, routing::BrokerId, const wire::Announcement&) {
        ++delivered;
      },
      [](routing::BrokerId, routing::BrokerId) { FAIL() << "escalated"; });

  wire::Announcement msg;
  msg.kind = wire::Announcement::Kind::kUnsubscribe;
  msg.from = 0;
  msg.id = 9;
  channels.send(0, 1, msg);
  // One RTO timer armed by the send.
  EXPECT_EQ(queue.armed_timer_count(), 1u);
  // Deliver the frame: the receiver arms its delayed-ack timer.
  (void)queue.run_step();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(queue.armed_timer_count(), 2u);

  // The regression: reset_link while the delayed-ack (and RTO) timers are
  // in flight must DESTROY both handlers, not leave them armed until their
  // deadlines. Before the fix this count stayed 2 per fail/heal cycle.
  channels.reset_link(0, 1);
  EXPECT_EQ(queue.armed_timer_count(), 0u);

  // The stale heap entries still pop (timeline identity) but are no-ops:
  // no retransmit, no ack, no crash.
  (void)queue.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channels.in_flight(), 0u);
}

TEST_F(ResetLinkTimerTest, RepeatedResetCyclesDoNotAccumulateTimers) {
  sim::EventQueue queue;
  sim::Metrics metrics;
  routing::LinkChannels channels(
      queue, metrics, config(), 0.001, 42,
      [](routing::BrokerId, routing::BrokerId, const wire::Announcement&) {},
      [](routing::BrokerId, routing::BrokerId) {});

  wire::Announcement msg;
  msg.kind = wire::Announcement::Kind::kUnsubscribe;
  msg.from = 0;
  msg.id = 1;
  for (int cycle = 0; cycle < 50; ++cycle) {
    channels.send(0, 1, msg);
    (void)queue.run_step();  // delivery arms the delayed ack
    channels.reset_link(0, 1);
    // Armed handlers must not grow with the cycle count (the leak shape:
    // one ack + one RTO handler left behind per epoch).
    EXPECT_EQ(queue.armed_timer_count(), 0u) << "cycle " << cycle;
  }
  (void)queue.run();
  EXPECT_EQ(queue.armed_timer_count(), 0u);
}

// --- SimTransport as the Transport seam ---------------------------------

TEST(SimTransportTest, PerfectWireDeliversInOrderAtLatency) {
  sim::EventQueue queue;
  sim::Metrics metrics;
  routing::LinkConfig link;  // disabled: perfect wire
  routing::SimTransport transport(queue, metrics, link, 0.5, 1,
                                  [](routing::BrokerId, routing::BrokerId) {});
  std::vector<core::SubscriptionId> seen;
  transport.set_frame_handler(
      [&](routing::BrokerId from, routing::BrokerId to,
          const wire::Announcement& msg) {
        EXPECT_EQ(from, 3u);
        EXPECT_EQ(to, 4u);
        seen.push_back(msg.id);
      });
  wire::Announcement msg;
  msg.kind = wire::Announcement::Kind::kUnsubscribe;
  msg.from = 3;
  msg.id = 11;
  transport.send_frame(3, 4, msg);
  msg.id = 22;
  transport.send_frame(3, 4, msg);
  EXPECT_FALSE(transport.lossy());
  EXPECT_EQ(transport.in_flight(), 0u);  // perfect wire: no protocol queue
  queue.run();
  EXPECT_EQ(queue.now(), 0.5);  // both hops share the injection instant
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 11u);
  EXPECT_EQ(seen[1], 22u);
}

TEST(SimTransportTest, TimerSurfaceForwardsToQueue) {
  sim::EventQueue queue;
  sim::Metrics metrics;
  routing::LinkConfig link;
  routing::SimTransport transport(queue, metrics, link, 0.001, 1,
                                  [](routing::BrokerId, routing::BrokerId) {});
  int fired = 0;
  const auto id = transport.schedule_timer_at(2.0, [&]() { ++fired; });
  const auto id2 = transport.schedule_timer_at(3.0, [&]() { ++fired; });
  transport.cancel_timer(id);
  queue.run();
  EXPECT_EQ(fired, 1);
  EXPECT_NE(id, id2);
  EXPECT_EQ(transport.now(), 3.0);
}

// The publish surface consolidation: every request shape must equal the
// legacy entry point it wraps.
TEST(PublishRequestTest, ShapesMatchLegacyEntryPoints) {
  const auto make = [] {
    return routing::BrokerNetwork::figure1_topology(
        routing::NetworkConfig::Builder().seed(7).build());
  };
  auto a = make();
  auto b = make();

  core::Subscription sub({{0.0, 100.0}}, 1);
  a.subscribe(2, sub);
  b.subscribe(2, sub);
  core::Publication pub({50.0});

  const auto single_legacy = a.publish(3, pub);
  const auto single_request =
      b.publish(routing::PublishRequest::single(3, pub));
  ASSERT_EQ(single_request.size(), 1u);
  EXPECT_EQ(single_legacy, single_request[0]);

  std::vector<core::Publication> batch{pub, core::Publication({500.0})};
  const auto batch_legacy = a.publish_batch(4, batch);
  const auto batch_request =
      b.publish(routing::PublishRequest::batch(4, batch));
  EXPECT_EQ(batch_legacy, batch_request);

  const std::vector<std::pair<routing::BrokerId, core::Publication>> pairs{
      {0, pub}, {5, core::Publication({25.0})}};
  const auto multi_legacy = a.publish_batch(pairs);
  const auto multi_request =
      b.publish(routing::PublishRequest::multi_source(pairs));
  EXPECT_EQ(multi_legacy, multi_request);
  const auto view_request = b.publish(routing::PublishRequest::view(pairs));
  EXPECT_EQ(multi_legacy, view_request);
}

}  // namespace
}  // namespace psc
