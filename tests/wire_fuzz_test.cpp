// Deterministic decode-fuzz harness over every wire decoder (codec v2 and
// v3): seeded structural mutations — multi-byte flips, truncations, span
// deletions, insertions, and cross-corpus splices — applied to valid
// encodings. The contract under test: a decoder either returns a
// structurally valid object or throws wire::DecodeError; it never crashes,
// reads out of bounds, or loops. This file runs under the CI ASan/UBSan
// job, which turns any violation into a hard failure. Unlike the targeted
// corruption tests in wire_test.cpp (single-byte flips, prefix
// truncation), the mutations here compound and cross message boundaries.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "routing/broker_network.hpp"
#include "util/rng.hpp"
#include "wire/byte_buffer.hpp"
#include "wire/codec.hpp"
#include "workload/churn_workload.hpp"

namespace psc::wire {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;

// --- corpus ------------------------------------------------------------

std::vector<std::uint8_t> encode_subscription(std::uint64_t id) {
  std::vector<Interval> ranges{Interval{0.0, 10.0}, Interval::everything(),
                               Interval::point(3.5)};
  ByteWriter out;
  write_subscription(out, Subscription(std::move(ranges), id));
  return out.buffer();
}

std::vector<std::uint8_t> encode_announcement(int variant) {
  Announcement msg;
  msg.from = 4;
  switch (variant % 4) {
    case 0: {
      msg.kind = Announcement::Kind::kSubscribe;
      std::vector<Interval> ranges{Interval{1.0, 2.0}, Interval{-5.0, 5.0}};
      msg.sub = Subscription(std::move(ranges), 91);
      msg.expiry = 42.5;
      break;
    }
    case 1:
      msg.kind = Announcement::Kind::kUnsubscribe;
      msg.id = 1234;
      break;
    case 2:
      msg.kind = Announcement::Kind::kPublication;
      msg.pub = Publication({1.5, 2.5, 3.5}, 88);
      msg.token = 0xfeedULL;
      break;
    default:
      msg.kind = Announcement::Kind::kMembership;
      msg.member = 5;  // kFailLink
      msg.peer = 7;
      break;
  }
  ByteWriter out;
  write_announcement(out, msg);
  return out.buffer();
}

std::vector<std::uint8_t> encode_link_frame(bool data) {
  LinkFrame frame;
  if (data) {
    frame.kind = LinkFrame::Kind::kData;
    frame.seq = 19;
    frame.ack = 6;
    frame.payload = encode_announcement(2);
  } else {
    frame.kind = LinkFrame::Kind::kAck;
    frame.ack = 23;
  }
  ByteWriter out;
  write_link_frame(out, frame);
  return out.buffer();
}

workload::ChurnTrace lossy_membership_trace() {
  workload::ChurnConfig config;
  config.duration = 6.0;
  config.membership.crash_rate = 0.4;
  config.membership.partition_rate = 0.5;
  config.faults.link.drop_probability = 0.15;
  config.faults.link.delay_jitter = 0.5;
  config.faults.burst_count = 2;
  config.faults.burst_length = 0.3;
  config.faults.cascade_hop_bound = 0.01;
  config.slot = 0.5;  // slot/2 must clear (brokers + 1) x hop bound
  config.epoch_length = 1.0;
  routing::MembershipUniverse universe;
  universe.brokers = 6;
  for (routing::BrokerId b = 1; b < 6; ++b) {
    universe.links.emplace_back(b - 1, b);
  }
  universe.standby.emplace_back(0, 5);
  return workload::generate_churn_trace(config, universe, 17);
}

std::vector<std::uint8_t> encode_trace_v3() {
  ByteWriter out;
  write_churn_trace(out, lossy_membership_trace());
  return out.buffer();
}

/// A v2 stream: a fault-free v3 encoding with the fixed 50-byte fault
/// block spliced out and the header version patched down (the same
/// construction wire_test.cpp's V2TraceStillDecodes verifies decodes
/// correctly; here it only seeds the mutation corpus).
std::vector<std::uint8_t> encode_trace_v2() {
  workload::ChurnConfig config;
  config.duration = 5.0;
  const auto trace = workload::generate_churn_trace(config, 5, 63);
  ByteWriter full;
  write_churn_trace(full, trace);
  ByteWriter tail;
  tail.varint(trace.ops.size());
  for (const auto& op : trace.ops) write_churn_op(tail, op);
  std::vector<std::uint8_t> v2 = full.buffer();
  const std::size_t block_at = v2.size() - tail.buffer().size() - 50;
  v2.erase(v2.begin() + static_cast<std::ptrdiff_t>(block_at),
           v2.begin() + static_cast<std::ptrdiff_t>(block_at + 50));
  v2[4] = 2;
  v2[5] = v2[6] = v2[7] = 0;
  return v2;
}

// --- mutation engine ---------------------------------------------------

/// One seeded structural mutation. `donor` supplies foreign-but-valid wire
/// bytes for splices, so mutants can contain pieces of OTHER message types.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& good,
                                 const std::vector<std::uint8_t>& donor,
                                 util::Rng& rng) {
  std::vector<std::uint8_t> bad = good;
  switch (rng() % 5) {
    case 0: {  // 1-4 independent byte flips
      const std::size_t flips = 1 + rng() % 4;
      for (std::size_t f = 0; f < flips && !bad.empty(); ++f) {
        bad[rng() % bad.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
      }
      break;
    }
    case 1: {  // truncate to a random prefix
      bad.resize(rng() % (bad.size() + 1));
      break;
    }
    case 2: {  // delete a random interior span
      if (bad.size() < 2) break;
      const std::size_t at = rng() % bad.size();
      const std::size_t len = 1 + rng() % (bad.size() - at);
      bad.erase(bad.begin() + static_cast<std::ptrdiff_t>(at),
                bad.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
    case 3: {  // insert random bytes
      const std::size_t at = rng() % (bad.size() + 1);
      const std::size_t len = 1 + rng() % 16;
      std::vector<std::uint8_t> noise(len);
      for (auto& byte : noise) byte = static_cast<std::uint8_t>(rng());
      bad.insert(bad.begin() + static_cast<std::ptrdiff_t>(at),
                 noise.begin(), noise.end());
      break;
    }
    default: {  // splice a chunk of a different valid encoding
      if (donor.empty()) break;
      const std::size_t src = rng() % donor.size();
      const std::size_t len = 1 + rng() % (donor.size() - src);
      const std::size_t at = rng() % (bad.size() + 1);
      bad.insert(bad.begin() + static_cast<std::ptrdiff_t>(at),
                 donor.begin() + static_cast<std::ptrdiff_t>(src),
                 donor.begin() + static_cast<std::ptrdiff_t>(src + len));
      break;
    }
  }
  return bad;
}

/// Runs `trials` seeded mutants of `good` through `decode`. Success and
/// DecodeError are both acceptable outcomes; anything else (crash, UB,
/// unexpected exception type) fails the test. Returns how many mutants
/// were rejected, so callers can sanity-check the corpus actually
/// stressed the decoder.
std::size_t fuzz(const std::vector<std::uint8_t>& good,
                 const std::vector<std::uint8_t>& donor, std::uint64_t seed,
                 int trials,
                 const std::function<void(ByteReader&)>& decode) {
  util::Rng rng(seed);
  std::size_t rejected = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::vector<std::uint8_t> bad = mutate(good, donor, rng);
    ByteReader in(bad);
    try {
      decode(in);
    } catch (const DecodeError&) {
      ++rejected;
    }
  }
  // The undamaged encoding must still decode (the harness never consumed
  // the original).
  ByteReader in(good);
  decode(in);
  return rejected;
}

TEST(WireFuzz, ElementDecodersNeverExhibitUB) {
  const auto sub = encode_subscription(501);
  const auto frame = encode_link_frame(true);
  std::size_t rejected = 0;
  rejected += fuzz(sub, frame, 1001, 600,
                   [](ByteReader& in) { (void)read_subscription(in); });
  for (int variant = 0; variant < 4; ++variant) {
    rejected += fuzz(encode_announcement(variant), sub, 2000 + variant, 600,
                     [](ByteReader& in) { (void)read_announcement(in); });
  }
  // Mutants must actually trip validation, not just reshuffle payloads.
  EXPECT_GT(rejected, 500u);
}

TEST(WireFuzz, LinkFrameDecoderNeverExhibitsUB) {
  const auto data = encode_link_frame(true);
  const auto ack = encode_link_frame(false);
  std::size_t rejected = 0;
  rejected += fuzz(data, ack, 3001, 800,
                   [](ByteReader& in) { (void)read_link_frame(in); });
  rejected += fuzz(ack, data, 3002, 800,
                   [](ByteReader& in) { (void)read_link_frame(in); });
  EXPECT_GT(rejected, 400u);
}

TEST(WireFuzz, TraceDecodersNeverExhibitUBAcrossVersions) {
  const auto v3 = encode_trace_v3();
  const auto v2 = encode_trace_v2();
  std::size_t rejected = 0;
  rejected += fuzz(v3, v2, 4001, 400,
                   [](ByteReader& in) { (void)read_churn_trace(in); });
  rejected += fuzz(v2, v3, 4002, 400,
                   [](ByteReader& in) { (void)read_churn_trace(in); });
  EXPECT_GT(rejected, 300u);
}

TEST(WireFuzz, ChurnOpDecoderNeverExhibitsUB) {
  const auto trace = lossy_membership_trace();
  ASSERT_FALSE(trace.ops.empty());
  ByteWriter out;
  write_churn_op(out, trace.ops.front());
  std::size_t rejected = fuzz(
      out.buffer(), encode_subscription(77), 5001, 800,
      [](ByteReader& in) { (void)read_churn_op(in); });
  EXPECT_GT(rejected, 200u);
}

}  // namespace
}  // namespace psc::wire
