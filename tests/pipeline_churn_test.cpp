// Pipelined publish under membership churn: the BrokerNetwork pipelined
// batch path (NetworkConfig::pipelined_publish) must deliver exactly what
// the sequential injection path delivers — across multi-source batches,
// crash/partition events interleaved between batches (component-aware
// expected_recipients as ground truth), the ChurnDriver's publish
// coalescing against the flat oracle, and snapshot/restore (runtime
// pipeline knobs survive restore_all). In the TSan label set: batches run
// the staged pipeline's cross-thread slot handoff whenever workers > 0.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "routing/broker_network.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "util/rng.hpp"
#include "workload/churn_workload.hpp"

namespace psc::routing {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Subscription box(SubscriptionId id, double lo, double hi) {
  return Subscription({{lo, hi}, {lo, hi}}, id);
}

NetworkConfig pipelined_config(std::size_t workers = 2) {
  NetworkConfig config;
  config.seed = 7;
  config.pipelined_publish = true;
  config.pipeline.workers = workers;
  config.pipeline.batch_size = 3;  // small => slot recycling under test
  config.pipeline.queue_depth = 2;
  return config;
}

NetworkConfig sequential_config() {
  NetworkConfig config;
  config.seed = 7;
  return config;
}

/// Populates `net` with a deterministic mixed-coverage subscription load
/// spread across every broker (same stream for every call).
void load_subscriptions(BrokerNetwork& net, std::size_t count,
                        std::uint64_t seed = 41) {
  util::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto broker =
        static_cast<BrokerId>(rng.next_below(net.broker_count()));
    const double lo = 1000.0 * rng.next_double() * 0.9;
    const double hi = lo + 5.0 + 95.0 * rng.next_double();
    net.subscribe(broker, box(static_cast<SubscriptionId>(i + 1), lo, hi));
  }
}

std::vector<std::pair<BrokerId, Publication>> make_batch(
    const BrokerNetwork& net, std::size_t count, util::Rng& rng) {
  std::vector<std::pair<BrokerId, Publication>> pairs;
  for (std::size_t i = 0; i < count; ++i) {
    BrokerId source;
    do {
      source = static_cast<BrokerId>(rng.next_below(net.broker_count()));
    } while (!net.is_alive(source));
    pairs.emplace_back(
        source, Publication({1000.0 * rng.next_double(),
                             1000.0 * rng.next_double()}));
  }
  return pairs;
}

TEST(PipelineChurn, MultiSourceBatchMatchesSequentialNetwork) {
  BrokerNetwork piped = BrokerNetwork::figure1_topology(pipelined_config());
  BrokerNetwork plain = BrokerNetwork::figure1_topology(sequential_config());
  load_subscriptions(piped, 400);
  load_subscriptions(plain, 400);

  util::Rng rng(2006);
  for (int round = 0; round < 20; ++round) {
    const auto pairs = make_batch(piped, 1 + rng.next_below(9), rng);
    const auto from_pipeline = piped.publish_batch(
        std::span<const std::pair<BrokerId, Publication>>(pairs));
    ASSERT_EQ(from_pipeline.size(), pairs.size());
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      EXPECT_EQ(from_pipeline[p], plain.publish(pairs[p].first, pairs[p].second))
          << "round " << round << " pub " << p;
    }
  }
  EXPECT_EQ(piped.metrics().notifications_lost, 0u);
  EXPECT_EQ(piped.metrics().notifications_duplicated, 0u);
  // Same source-hop fan-out: the pipeline precomputes routes but sends the
  // identical messages.
  EXPECT_GT(piped.metrics().publication_messages, 0u);
}

TEST(PipelineChurn, SingleBrokerBatchMatchesPerPublicationPublish) {
  BrokerNetwork piped = BrokerNetwork::figure1_topology(pipelined_config(0));
  BrokerNetwork plain = BrokerNetwork::figure1_topology(sequential_config());
  load_subscriptions(piped, 300);
  load_subscriptions(plain, 300);

  util::Rng rng(99);
  std::vector<Publication> pubs;
  for (int i = 0; i < 64; ++i) {
    pubs.push_back(Publication({1000.0 * rng.next_double(),
                                1000.0 * rng.next_double()}));
  }
  const auto batched = piped.publish_batch(3, pubs);
  ASSERT_EQ(batched.size(), pubs.size());
  for (std::size_t p = 0; p < pubs.size(); ++p) {
    EXPECT_EQ(batched[p], plain.publish(3, pubs[p])) << "pub " << p;
  }
}

TEST(PipelineChurn, BatchesInterleavedWithCrashAndPartition) {
  // The satellite scenario: pipelined batches with crash_peer/fail_link
  // between them. Every delivered set must equal the component-aware
  // ground truth for its source at that instant, and a sequential twin
  // driven through the same script must agree decision for decision.
  BrokerNetwork piped = BrokerNetwork::figure1_topology(pipelined_config());
  BrokerNetwork plain = BrokerNetwork::figure1_topology(sequential_config());
  load_subscriptions(piped, 500);
  load_subscriptions(plain, 500);

  const auto publish_round = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    const auto pairs = make_batch(piped, 8, rng);
    const auto got = piped.publish_batch(
        std::span<const std::pair<BrokerId, Publication>>(pairs));
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      EXPECT_EQ(got[p], plain.publish(pairs[p].first, pairs[p].second))
          << "seed " << seed << " pub " << p;
      EXPECT_EQ(got[p],
                piped.expected_recipients(pairs[p].first, pairs[p].second))
          << "seed " << seed << " pub " << p;
    }
  };

  publish_round(1);
  piped.fail_link(2, 3);  // cut the backbone: two components
  plain.fail_link(2, 3);
  publish_round(2);
  piped.crash_peer(8);  // crash a leaf; its lanes die with it
  plain.crash_peer(8);
  publish_round(3);
  piped.heal_link(2, 3);
  plain.heal_link(2, 3);
  publish_round(4);
  (void)piped.replace_peer(8, {});
  (void)plain.replace_peer(8, {});
  publish_round(5);

  EXPECT_EQ(piped.metrics().notifications_lost, 0u);
  EXPECT_EQ(piped.metrics().notifications_duplicated, 0u);
  EXPECT_EQ(piped.ghost_route_count(), 0u);
}

TEST(PipelineChurn, RestorePreservesRuntimePipelineKnobs) {
  // snapshot_all does not serialize runtime knobs; restore_all must keep
  // the restoring network's pipelined configuration (and rebuild lanes),
  // mirroring how match_shards is handled.
  BrokerNetwork piped = BrokerNetwork::figure1_topology(pipelined_config());
  load_subscriptions(piped, 300);
  const auto image = piped.snapshot_all();

  BrokerNetwork restored(pipelined_config());
  restored.restore_all({image.data(), image.size()});
  BrokerNetwork control(sequential_config());
  control.restore_all({image.data(), image.size()});

  util::Rng rng(5);
  const auto pairs = make_batch(restored, 12, rng);
  const auto got = restored.publish_batch(
      std::span<const std::pair<BrokerId, Publication>>(pairs));
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(got[p], control.publish(pairs[p].first, pairs[p].second)) << p;
  }
  EXPECT_EQ(restored.metrics().notifications_lost, 0u);
  EXPECT_EQ(restored.metrics().notifications_duplicated, 0u);
}

// --- driver coalescing ---------------------------------------------------

workload::ChurnConfig soak_config(double duration) {
  workload::ChurnConfig config;
  config.duration = duration;
  config.subscription_rate = 3.0;
  config.publication_rate = 8.0;  // dense => real multi-publish batches
  config.membership.join_rate = 0.2;
  config.membership.leave_rate = 0.15;
  config.membership.crash_rate = 0.2;
  config.membership.partition_rate = 0.4;
  config.membership.partition_mean = 2.0;
  config.membership.replace_mean = 1.5;
  config.membership.max_brokers = 24 + 8;
  return config;
}

TEST(PipelineChurn, DriverCoalescingMatchesFlatOracleUnderMembership) {
  // ChurnDriver with pipelined_publish coalesces consecutive publish ops
  // into multi-source batches; the per-op differential compare against the
  // flat oracle must still be exact on every membership topology shape.
  for (const auto& topology : membership_topologies(24, 2006)) {
    NetworkConfig config = pipelined_config();
    config.seed = 13;
    BrokerNetwork net = topology.build(config);
    const workload::ChurnTrace trace = workload::generate_churn_trace(
        soak_config(12.0), topology.universe(net), 13);

    sim::ChurnDriver::Options options;
    options.differential = true;
    options.pipelined_publish = true;
    const sim::ChurnReport report = sim::ChurnDriver::run(net, trace, options);

    EXPECT_EQ(report.mismatched_publishes, 0u) << topology.name;
    EXPECT_EQ(report.totals.notifications_lost, 0u) << topology.name;
    EXPECT_EQ(report.totals.notifications_duplicated, 0u) << topology.name;
    EXPECT_EQ(report.membership.ghost_routes, 0u) << topology.name;
  }
}

TEST(PipelineChurn, DriverPipelinedReportMatchesSequentialDriverReport) {
  // Coalescing is an execution detail: the pipelined driver run must land
  // on the same op/publish counts and delivered totals as the sequential
  // run of the same trace (no membership here so both paths coalesce-
  // eligible throughout).
  const auto topologies = membership_topologies(24, 2006);
  const auto& ring = topologies[5];
  ASSERT_EQ(ring.name, "ring");

  workload::ChurnConfig config = soak_config(10.0);
  config.membership.join_rate = 0.0;
  config.membership.leave_rate = 0.0;
  config.membership.crash_rate = 0.0;
  config.membership.partition_rate = 0.0;

  NetworkConfig piped_config = pipelined_config();
  BrokerNetwork piped = ring.build(piped_config);
  BrokerNetwork plain = ring.build(sequential_config());
  const workload::ChurnTrace trace = workload::generate_churn_trace(
      config, ring.universe(piped), 77);

  sim::ChurnDriver::Options piped_options;
  piped_options.differential = true;
  piped_options.pipelined_publish = true;
  sim::ChurnDriver::Options plain_options;
  plain_options.differential = true;

  const auto a = sim::ChurnDriver::run(piped, trace, piped_options);
  const auto b = sim::ChurnDriver::run(plain, trace, plain_options);
  EXPECT_EQ(a.mismatched_publishes, 0u);
  EXPECT_EQ(b.mismatched_publishes, 0u);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.publishes, b.publishes);
  EXPECT_EQ(a.totals.notifications_delivered, b.totals.notifications_delivered);
  EXPECT_EQ(a.totals.notifications_lost, b.totals.notifications_lost);
}

}  // namespace
}  // namespace psc::routing
