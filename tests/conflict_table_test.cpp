// Unit tests for the conflict table (Definition 2), including the paper's
// worked example: Table 3 (the subscriptions) and Table 5 (its conflict
// table).
#include "core/conflict_table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

// Paper Table 3: s ⊑ (s1 ∨ s2).
struct PaperCoverExample {
  Subscription s = box2(830, 870, 1003, 1006, 0);
  std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                box2(840, 880, 1002, 1009, 2)};
};

TEST(ConflictTable, PaperTable5RowS1) {
  PaperCoverExample ex;
  const ConflictTable table(ex.s, ex.set);
  ASSERT_EQ(table.row_count(), 2u);
  ASSERT_EQ(table.column_count(), 4u);

  // Row s1: only defined entry is x1 > 850 (column 1 = upper bound attr 0).
  EXPECT_FALSE(table.is_defined(0, 0));  // x1 < 820 unsatisfiable in s
  EXPECT_TRUE(table.is_defined(0, 1));   // x1 > 850 satisfiable
  EXPECT_FALSE(table.is_defined(0, 2));  // x2 < 1001 unsatisfiable
  EXPECT_FALSE(table.is_defined(0, 3));  // x2 > 1007 unsatisfiable
  EXPECT_EQ(table.defined_count(0), 1u);

  const auto entry = table.entry(0, 1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->attribute, 0u);
  EXPECT_EQ(entry->side, BoundSide::kUpper);
  EXPECT_EQ(entry->bound, 850.0);
}

TEST(ConflictTable, PaperTable5RowS2) {
  PaperCoverExample ex;
  const ConflictTable table(ex.s, ex.set);

  // Row s2: only defined entry is x1 < 840.
  EXPECT_TRUE(table.is_defined(1, 0));
  EXPECT_FALSE(table.is_defined(1, 1));
  EXPECT_FALSE(table.is_defined(1, 2));
  EXPECT_FALSE(table.is_defined(1, 3));
  EXPECT_EQ(table.defined_count(1), 1u);

  const auto entry = table.entry(1, 0);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->attribute, 0u);
  EXPECT_EQ(entry->side, BoundSide::kLower);
  EXPECT_EQ(entry->bound, 840.0);
}

TEST(ConflictTable, PaperExampleEntriesConflict) {
  // Table 5's two defined entries (x1 > 850 and x1 < 840) conflict: no
  // point of s satisfies both — this is why s is covered by the union.
  PaperCoverExample ex;
  const ConflictTable table(ex.s, ex.set);
  const auto a = table.entry(0, 1);
  const auto b = table.entry(1, 0);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(ConflictTable::entries_conflict(ex.s, *a, *b));
  EXPECT_TRUE(ConflictTable::entries_conflict(ex.s, *b, *a));  // symmetric
}

TEST(ConflictTable, UndefinedEntryReturnsNullopt) {
  PaperCoverExample ex;
  const ConflictTable table(ex.s, ex.set);
  EXPECT_FALSE(table.entry(0, 0).has_value());
}

TEST(ConflictTable, RowAllUndefinedDetectsPairwiseCover) {
  const Subscription s = box2(2, 8, 2, 8);
  const std::vector<Subscription> set{box2(0, 10, 0, 10, 1)};
  const ConflictTable table(s, set);
  EXPECT_TRUE(table.row_all_undefined(0));
  EXPECT_EQ(table.defined_count(0), 0u);
}

TEST(ConflictTable, RowAllDefinedWhenSStrictlyLarger) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(2, 8, 2, 8, 1)};
  const ConflictTable table(s, set);
  EXPECT_TRUE(table.row_all_defined(0));
  EXPECT_EQ(table.defined_count(0), 4u);
}

TEST(ConflictTable, EqualBoundsAreUndefined) {
  // s and s_i share an edge: sticking out with zero measure is undefined
  // under the continuous model.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(0, 10, 0, 5, 1)};
  const ConflictTable table(s, set);
  EXPECT_FALSE(table.is_defined(0, 0));  // x1 < 0 impossible
  EXPECT_FALSE(table.is_defined(0, 1));  // x1 > 10 impossible
  EXPECT_FALSE(table.is_defined(0, 2));  // x2 < 0 impossible
  EXPECT_TRUE(table.is_defined(0, 3));   // x2 > 5 possible
}

TEST(ConflictTable, DisjointSubscriptionFullSlabEntry) {
  // s_i entirely left of s on x1: the defined upper entry spans ALL of s.
  const Subscription s = box2(10, 20, 0, 10);
  const std::vector<Subscription> set{box2(0, 5, 0, 10, 1)};
  const ConflictTable table(s, set);
  EXPECT_FALSE(table.is_defined(0, 0));
  ASSERT_TRUE(table.is_defined(0, 1));
  const auto entry = table.entry(0, 1);
  EXPECT_EQ(table.slab(*entry), (Interval{10, 20}));  // clamped to s
}

TEST(ConflictTable, SlabClampsToTestedRange) {
  const Subscription s = box2(830, 870, 1003, 1006);
  const std::vector<Subscription> set{box2(840, 880, 1002, 1009, 1)};
  const ConflictTable table(s, set);
  const auto entry = table.entry(0, 0);  // x1 < 840
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(table.slab(*entry), (Interval{830, 840}));
}

TEST(ConflictTable, EntriesOnDifferentAttributesNeverConflict) {
  const Subscription s = box2(0, 10, 0, 10);
  const TableEntry a{0, BoundSide::kLower, 2.0};  // x0 < 2
  const TableEntry b{1, BoundSide::kUpper, 9.0};  // x1 > 9
  EXPECT_FALSE(ConflictTable::entries_conflict(s, a, b));
}

TEST(ConflictTable, SameSideEntriesNeverConflict) {
  const Subscription s = box2(0, 10, 0, 10);
  const TableEntry a{0, BoundSide::kLower, 2.0};
  const TableEntry b{0, BoundSide::kLower, 5.0};
  EXPECT_FALSE(ConflictTable::entries_conflict(s, a, b));
}

TEST(ConflictTable, OppositeSideEntriesWithGapDoNotConflict) {
  const Subscription s = box2(0, 10, 0, 10);
  const TableEntry lower{0, BoundSide::kLower, 8.0};  // x0 < 8
  const TableEntry upper{0, BoundSide::kUpper, 2.0};  // x0 > 2
  // Joint region (2, 8) is non-empty.
  EXPECT_FALSE(ConflictTable::entries_conflict(s, lower, upper));
}

TEST(ConflictTable, OppositeSideEntriesTouchingConflict) {
  const Subscription s = box2(0, 10, 0, 10);
  const TableEntry lower{0, BoundSide::kLower, 4.0};  // x0 < 4
  const TableEntry upper{0, BoundSide::kUpper, 4.0};  // x0 > 4
  EXPECT_TRUE(ConflictTable::entries_conflict(s, lower, upper));
}

TEST(ConflictTable, DefinedEntriesListsColumnOrder) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(2, 8, 2, 8, 1)};
  const ConflictTable table(s, set);
  const auto entries = table.defined_entries(0);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].attribute, 0u);
  EXPECT_EQ(entries[0].side, BoundSide::kLower);
  EXPECT_EQ(entries[3].attribute, 1u);
  EXPECT_EQ(entries[3].side, BoundSide::kUpper);
}

TEST(ConflictTable, SchemaMismatchThrows) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{Subscription({Interval{0, 1}})};
  EXPECT_THROW(ConflictTable(s, set), std::invalid_argument);
}

TEST(ConflictTable, EmptySetProducesNoRows) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set;
  const ConflictTable table(s, set);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(ConflictTable, PrintMentionsDefinedEntries) {
  PaperCoverExample ex;
  const ConflictTable table(ex.s, ex.set);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("x0 > 850"), std::string::npos);
  EXPECT_NE(os.str().find("x0 < 840"), std::string::npos);
}

TEST(ConflictTable, ConstructionCostLinearSmoke) {
  // Large k x m table builds without quadratic blowup (smoke, not a timer).
  const std::size_t m = 20, k = 2000;
  std::vector<Interval> srange(m, Interval{0.0, 100.0});
  const Subscription s(std::move(srange));
  std::vector<Subscription> set;
  set.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<Interval> r(m, Interval{10.0 + static_cast<double>(i % 7), 90.0});
    set.emplace_back(std::move(r), i + 1);
  }
  const ConflictTable table(s, set);
  EXPECT_EQ(table.row_count(), k);
  EXPECT_EQ(table.column_count(), 2 * m);
}

}  // namespace
}  // namespace psc::core
