// Pins the LatencyRecorder percentile contract in bench/bench_common.hpp
// (ISSUE 8 satellite): rank math at small sample counts must interpolate
// — p99 of a 100-op smoke run is NOT the max and never reads past the
// end — recording after a query must re-sort, the empty recorder is safe,
// and section() folds samples into the shared gate schema correctly.
#include <gtest/gtest.h>

#include "bench/bench_common.hpp"

namespace psc::bench {
namespace {

TEST(LatencyRecorder, HundredSampleSmokePercentilesInterpolate) {
  // The exact shape of a --small perf_gate section: 100 per-op samples.
  LatencyRecorder latencies;
  latencies.reserve(100);
  for (int i = 1; i <= 100; ++i) latencies.record(static_cast<double>(i));
  EXPECT_EQ(latencies.count(), 100u);
  EXPECT_NEAR(latencies.percentile(50.0), 50.5, 1e-9);
  EXPECT_NEAR(latencies.percentile(99.0), 99.01, 1e-9);  // not 100 (the max)
  EXPECT_NEAR(latencies.percentile(100.0), 100.0, 1e-9);
  EXPECT_NEAR(latencies.percentile(0.0), 1.0, 1e-9);
}

TEST(LatencyRecorder, TinySampleCountsStayInRange) {
  LatencyRecorder one;
  one.record(7.0);
  EXPECT_EQ(one.percentile(50.0), 7.0);
  EXPECT_EQ(one.percentile(99.0), 7.0);

  LatencyRecorder two;
  two.record(10.0);
  two.record(20.0);
  EXPECT_NEAR(two.percentile(50.0), 15.0, 1e-9);
  EXPECT_NEAR(two.percentile(99.0), 19.9, 1e-9);  // inside (10, 20), not 20
}

TEST(LatencyRecorder, EmptyPercentileIsZeroNotACrash) {
  const LatencyRecorder empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(50.0), 0.0);
  EXPECT_EQ(empty.percentile(99.0), 0.0);
  const SectionResult section = empty.section("empty", 0, 0.0);
  EXPECT_EQ(section.ops_per_sec, 0.0);
  EXPECT_EQ(section.p50_ns, 0.0);
  EXPECT_EQ(section.p99_ns, 0.0);
}

TEST(LatencyRecorder, RecordAfterQueryResorts) {
  // The perf gate's incremental sections query percentiles mid-run;
  // recording afterwards must not freeze a stale sort order.
  LatencyRecorder latencies;
  for (int i = 100; i >= 2; --i) latencies.record(static_cast<double>(i));
  EXPECT_NEAR(latencies.percentile(99.0), 99.02, 1e-9);
  latencies.record(1.0);
  EXPECT_NEAR(latencies.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(latencies.percentile(99.0), 99.01, 1e-9);
}

TEST(LatencyRecorder, SectionFoldsThroughputAndPercentiles) {
  LatencyRecorder latencies;
  for (int i = 1; i <= 100; ++i) latencies.record(static_cast<double>(i));
  // Batched timing: 400 logical ops covered by the 100 samples.
  const SectionResult section = latencies.section("pipelined", 400, 2.0);
  EXPECT_EQ(section.name, "pipelined");
  EXPECT_EQ(section.ops, 400u);
  EXPECT_NEAR(section.ops_per_sec, 200.0, 1e-9);
  EXPECT_NEAR(section.p50_ns, 50.5, 1e-9);
  EXPECT_NEAR(section.p99_ns, 99.01, 1e-9);
}

TEST(LatencyRecorder, TimeRecordsOneSamplePerInvocation) {
  LatencyRecorder latencies;
  int runs = 0;
  for (int i = 0; i < 5; ++i) latencies.time([&] { ++runs; });
  EXPECT_EQ(runs, 5);
  EXPECT_EQ(latencies.count(), 5u);
  EXPECT_GE(latencies.percentile(0.0), 0.0);
}

}  // namespace
}  // namespace psc::bench
