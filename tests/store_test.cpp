// Tests for the SubscriptionStore: coverage policies, demotion, promotion
// on unsubscribe, and Algorithm 5 matching.
#include "store/subscription_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace psc::store {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

StoreConfig policy(CoveragePolicy p) {
  StoreConfig config;
  config.policy = p;
  return config;
}

TEST(Store, NonePolicyKeepsEverythingActive) {
  SubscriptionStore store(policy(CoveragePolicy::kNone));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(2, 8, 2, 8, 2));  // covered, but policy ignores it
  EXPECT_EQ(store.active_count(), 2u);
  EXPECT_EQ(store.covered_count(), 0u);
}

TEST(Store, PairwisePolicyCoversSingle) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  const auto r1 = store.insert(box2(0, 10, 0, 10, 1));
  EXPECT_TRUE(r1.accepted_active);
  const auto r2 = store.insert(box2(2, 8, 2, 8, 2));
  EXPECT_TRUE(r2.covered);
  EXPECT_EQ(store.active_count(), 1u);
  EXPECT_EQ(store.covered_count(), 1u);
  EXPECT_TRUE(store.is_active(1));
  EXPECT_FALSE(store.is_active(2));
  EXPECT_TRUE(store.contains(2));
}

TEST(Store, PairwisePolicyMissesGroupCover) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(820, 850, 1001, 1007, 1));
  store.insert(box2(840, 880, 1002, 1009, 2));
  const auto result = store.insert(box2(830, 870, 1003, 1006, 3));
  EXPECT_TRUE(result.accepted_active);  // pairwise cannot see the union
  EXPECT_EQ(store.active_count(), 3u);
}

TEST(Store, GroupPolicyDetectsUnionCover) {
  SubscriptionStore store(policy(CoveragePolicy::kGroup));
  store.insert(box2(820, 850, 1001, 1007, 1));
  store.insert(box2(840, 880, 1002, 1009, 2));
  const auto result = store.insert(box2(830, 870, 1003, 1006, 3));
  EXPECT_TRUE(result.covered);
  ASSERT_TRUE(result.engine_result.has_value());
  EXPECT_TRUE(result.engine_result->covered);
  EXPECT_EQ(store.active_count(), 2u);
  EXPECT_EQ(store.covered_count(), 1u);
  EXPECT_GE(store.group_checks(), 1u);
}

TEST(Store, NewSubscriptionDemotesCoveredActives) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(2, 8, 2, 8, 1));
  store.insert(box2(3, 7, 3, 7, 2));  // not covered by #1? It IS covered.
  // #2 inside #1 -> covered on insert. Insert a big one covering #1 too.
  const auto result = store.insert(box2(0, 10, 0, 10, 3));
  EXPECT_TRUE(result.accepted_active);
  ASSERT_EQ(result.demoted.size(), 1u);
  EXPECT_EQ(result.demoted[0], 1u);
  EXPECT_FALSE(store.is_active(1));
  EXPECT_TRUE(store.is_active(3));
}

TEST(Store, DemotionDisabledKeepsActives) {
  StoreConfig config = policy(CoveragePolicy::kPairwise);
  config.demote_covered_actives = false;
  SubscriptionStore store(config);
  store.insert(box2(2, 8, 2, 8, 1));
  const auto result = store.insert(box2(0, 10, 0, 10, 2));
  EXPECT_TRUE(result.demoted.empty());
  EXPECT_TRUE(store.is_active(1));
  EXPECT_TRUE(store.is_active(2));
}

TEST(Store, EraseCoveredIsLocal) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(2, 8, 2, 8, 2));
  EXPECT_TRUE(store.erase(2));
  EXPECT_EQ(store.covered_count(), 0u);
  EXPECT_EQ(store.active_count(), 1u);
}

TEST(Store, EraseActivePromotesCovered) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(2, 8, 2, 8, 2));  // covered by 1
  EXPECT_TRUE(store.erase(1));
  // #2 lost its only coverer: promoted to active.
  EXPECT_TRUE(store.is_active(2));
  EXPECT_EQ(store.active_count(), 1u);
  EXPECT_EQ(store.covered_count(), 0u);
}

TEST(Store, PromotionMayLandInCoveredAgain) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(-1, 11, -1, 11, 2));  // demotes #1
  EXPECT_FALSE(store.is_active(1));
  store.insert(box2(2, 8, 2, 8, 3));  // covered by #2
  EXPECT_FALSE(store.is_active(3));
  // Remove #2: both #1 and #3 re-evaluated. #3 is inside #1, so exactly
  // one of the promotion orders leaves #3 covered by #1; either way #1
  // must become active and #3 must be contained somewhere.
  EXPECT_TRUE(store.erase(2));
  EXPECT_TRUE(store.is_active(1));
  EXPECT_TRUE(store.contains(3));
  EXPECT_EQ(store.active_count() + store.covered_count(), 2u);
}

TEST(Store, EraseUnknownIdReturnsFalse) {
  SubscriptionStore store;
  EXPECT_FALSE(store.erase(99));
}

TEST(Store, DuplicateIdThrows) {
  SubscriptionStore store;
  store.insert(box2(0, 1, 0, 1, 1));
  EXPECT_THROW(store.insert(box2(2, 3, 2, 3, 1)), std::invalid_argument);
}

TEST(Store, ZeroIdThrows) {
  SubscriptionStore store;
  EXPECT_THROW(store.insert(box2(0, 1, 0, 1, 0)), std::invalid_argument);
}

TEST(Store, MatchActiveOnly) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(2, 8, 2, 8, 2));  // covered
  const auto active = store.match_active(Publication({5.0, 5.0}));
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], 1u);
}

TEST(Store, MatchIncludesCoveredOnActiveHit) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(2, 8, 2, 8, 2));
  auto ids = store.match(Publication({5.0, 5.0}));
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[1], 2u);
  // Point inside #1 but outside #2: only the active matches.
  EXPECT_EQ(store.match(Publication({9.0, 9.0})).size(), 1u);
}

TEST(Store, MatchSkipsCoveredWhenNoActiveMatch) {
  // Algorithm 5's short-circuit: no active match means covered subs cannot
  // match either (they lie inside the union of actives).
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(2, 8, 2, 8, 2));
  EXPECT_TRUE(store.match(Publication({50.0, 50.0})).empty());
}

TEST(Store, ActiveSnapshotMatchesCount) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(20, 30, 0, 10, 2));
  const auto snapshot = store.active_snapshot();
  EXPECT_EQ(snapshot.size(), store.active_count());
}

TEST(Store, GroupPolicyChecksCountGrows) {
  SubscriptionStore store(policy(CoveragePolicy::kGroup));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(20, 30, 0, 10, 2));
  store.insert(box2(40, 50, 0, 10, 3));
  EXPECT_EQ(store.group_checks(), 3u);
}

TEST(Store, StressInsertEraseKeepsInvariants) {
  SubscriptionStore store(policy(CoveragePolicy::kPairwise));
  // Insert nested boxes then peel them off outside-in.
  for (int i = 0; i < 10; ++i) {
    const double pad = i;  // box i+1 strictly inside box i
    store.insert(box2(pad, 100 - pad, pad, 100 - pad,
                      static_cast<SubscriptionId>(i + 1)));
  }
  // Only the outermost is active; the rest covered.
  EXPECT_EQ(store.active_count(), 1u);
  EXPECT_EQ(store.covered_count(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(store.erase(static_cast<SubscriptionId>(i + 1)));
    // After removing box i+1, box i+2 becomes the outermost -> active.
    EXPECT_EQ(store.active_count(), 1u) << "after erase " << i + 1;
    EXPECT_EQ(store.covered_count(), static_cast<std::size_t>(8 - i));
  }
}

TEST(Store, MixedArityStreamDegradesIndexInsteadOfThrowing) {
  // use_index defaults to on; a second schema width must drop the index
  // and continue on the flat scans (decision-identical per the
  // equivalence property tests), not reject the insert.
  SubscriptionStore store(policy(CoveragePolicy::kNone));
  store.insert(box2(0, 10, 0, 10, 1));
  const Subscription three_wide(
      {Interval{0, 10}, Interval{0, 10}, Interval{0, 10}}, 2);
  EXPECT_NO_THROW(store.insert(three_wide));
  EXPECT_EQ(store.active_count(), 2u);
  // Both schema widths stay matchable after the fallback.
  EXPECT_EQ(store.match_active(Publication({5.0, 5.0})),
            (std::vector<SubscriptionId>{1}));
  EXPECT_EQ(store.match_active(Publication({5.0, 5.0, 5.0})),
            (std::vector<SubscriptionId>{2}));
}

}  // namespace
}  // namespace psc::store
