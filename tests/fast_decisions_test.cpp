// Tests for the deterministic fast paths (Corollaries 1-3), including the
// paper's Table 6 non-cover example whose polyhedron witness is the slab
// x1 > 870.
#include "core/fast_decisions.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(FastDecisions, PaperTable6NonCoverDetected) {
  // Paper Table 6: s=[830,890]x[1003,1006], s1=[820,850]x[1002,1009],
  // s2=[840,870]x[1001,1007]. The union misses the slab x1 in (870, 890].
  const Subscription s = box2(830, 890, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1002, 1009, 1),
                                      box2(840, 870, 1001, 1007, 2)};
  const ConflictTable table(s, set);

  // Row s1 defines x1 > 850; row s2 defines x1 < 840 and x1 > 870.
  EXPECT_EQ(table.defined_count(0), 1u);
  EXPECT_EQ(table.defined_count(1), 2u);

  // Sorted counts (1, 2) satisfy t_(j) >= j — Corollary 3 proves non-cover.
  EXPECT_TRUE(sorted_rows_prove_witness(table));
  const FastDecisionResult result = run_fast_decisions(table);
  EXPECT_EQ(result.decision, FastDecision::kNotCoveredWitness);
}

TEST(FastDecisions, PaperTable3CoverIsInconclusiveForFastPaths) {
  // Table 3's covering example: neither s1 nor s2 alone covers s, and the
  // sorted-count test (1, 1) fails at position 2 — so the fast paths leave
  // the decision to MCS + RSPC, exactly as the paper walks through it.
  const Subscription s = box2(830, 870, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  const ConflictTable table(s, set);
  EXPECT_FALSE(sorted_rows_prove_witness(table));
  EXPECT_EQ(run_fast_decisions(table).decision, FastDecision::kInconclusive);
}

TEST(FastDecisions, Corollary1PairwiseCover) {
  const Subscription s = box2(2, 8, 2, 8);
  const std::vector<Subscription> set{box2(5, 9, 0, 10, 1),
                                      box2(0, 10, 0, 10, 2)};
  const ConflictTable table(s, set);
  const auto covering = find_pairwise_cover(table);
  ASSERT_TRUE(covering.has_value());
  EXPECT_EQ(*covering, 1u);

  const FastDecisionResult result = run_fast_decisions(table);
  EXPECT_EQ(result.decision, FastDecision::kCoveredPairwise);
  ASSERT_TRUE(result.covering_row.has_value());
  EXPECT_EQ(*result.covering_row, 1u);
}

TEST(FastDecisions, Corollary1ExactBoundaryCover) {
  // s_i == s exactly: all negations are unsatisfiable, row all-undefined.
  const Subscription s = box2(2, 8, 2, 8);
  const std::vector<Subscription> set{box2(2, 8, 2, 8, 1)};
  const ConflictTable table(s, set);
  EXPECT_TRUE(find_pairwise_cover(table).has_value());
}

TEST(FastDecisions, Corollary2DetectsRowsCoveredByS) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{
      box2(2, 8, 2, 8, 1),    // strictly inside: all defined
      box2(0, 8, 2, 8, 2),    // shares lower x1 edge: not all defined
  };
  const ConflictTable table(s, set);
  const auto rows = find_rows_covered_by_s(table);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
}

TEST(FastDecisions, SortedRowTestNeedsEveryPosition) {
  // Three rows with counts {0-free} (2, 2, 2): positions 1,2 ok, position 3
  // needs t >= 3 but t = 2 — inconclusive, NOT witness-proved.
  const Subscription s = box2(0, 30, 0, 30);
  const std::vector<Subscription> set{
      box2(5, 25, -1, 31, 1),   // defined: x1<5, x1>25 => t=2
      box2(-1, 31, 5, 25, 2),   // defined: x2<5, x2>25 => t=2
      box2(10, 20, -1, 31, 3),  // defined: x1<10, x1>20 => t=2
  };
  const ConflictTable table(s, set);
  EXPECT_EQ(table.defined_count(0), 2u);
  EXPECT_EQ(table.defined_count(1), 2u);
  EXPECT_EQ(table.defined_count(2), 2u);
  EXPECT_FALSE(sorted_rows_prove_witness(table));
}

TEST(FastDecisions, SortedRowTestPassesWithStaircaseCounts) {
  // Counts 1, 2, 3 sorted: 1>=1, 2>=2, 3>=3 — witness proved.
  const Subscription s = box2(0, 30, 0, 30);
  const std::vector<Subscription> set{
      box2(-1, 20, -1, 31, 1),            // x1>20 only => t=1
      box2(5, 25, -1, 31, 2),             // x1<5, x1>25 => t=2
      box2(5, 25, 5, 31, 3),              // x1<5, x1>25, x2<5 => t=3
  };
  const ConflictTable table(s, set);
  EXPECT_EQ(table.defined_count(0), 1u);
  EXPECT_EQ(table.defined_count(1), 2u);
  EXPECT_EQ(table.defined_count(2), 3u);
  EXPECT_TRUE(sorted_rows_prove_witness(table));
  EXPECT_EQ(run_fast_decisions(table).decision,
            FastDecision::kNotCoveredWitness);
}

TEST(FastDecisions, SortedRowWitnessIsSoundAgainstGeometry) {
  // When Corollary 3 fires, the instance truly is non-covered: the three
  // staircase subscriptions above leave (25, 30] x (5, 30] uncovered...
  // verify one concrete point.
  const Subscription s = box2(0, 30, 0, 30);
  const std::vector<Subscription> set{
      box2(-1, 20, -1, 31, 1),
      box2(5, 25, -1, 31, 2),
      box2(5, 25, 5, 31, 3),
  };
  const std::vector<Value> point{27.0, 15.0};
  EXPECT_TRUE(s.contains_point(point));
  for (const auto& si : set) EXPECT_FALSE(si.contains_point(point));
}

TEST(FastDecisions, EmptySetIsWitnessProved) {
  const Subscription s = box2(0, 1, 0, 1);
  const std::vector<Subscription> set;
  const ConflictTable table(s, set);
  EXPECT_TRUE(sorted_rows_prove_witness(table));
}

TEST(FastDecisions, PairwiseCoverWinsOverWitnessOrdering) {
  // A covering row plus junk rows with huge counts: Corollary 1 must fire
  // first (the pipeline checks it before Corollary 3).
  const Subscription s = box2(2, 8, 2, 8);
  const std::vector<Subscription> set{
      box2(3, 4, 3, 4, 1),   // inside s: all 4 defined
      box2(0, 10, 0, 10, 2), // covers s: all undefined
  };
  const ConflictTable table(s, set);
  const FastDecisionResult result = run_fast_decisions(table);
  EXPECT_EQ(result.decision, FastDecision::kCoveredPairwise);
}

}  // namespace
}  // namespace psc::core
