// Tests for the integer-grid measure mode of the witness estimate — the
// paper's point-counting I(s) model and the source of Figure 12's
// false-decision profile.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/witness_estimate.hpp"

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(GridMeasure, PointCountsMatchIntegerModel) {
  // s = [0,10] x [0,4] on a unit grid: 11 x 5 = 55 points. One candidate
  // covering x0 <= 8 leaves a slab of width 2 (3 grid points).
  const Subscription s = box2(0, 10, 0, 4);
  const std::vector<Subscription> set{box2(-1, 8, -1, 5, 1)};
  const ConflictTable table(s, set);
  const auto est = estimate_witness_probability(table, /*grid_spacing=*/1.0);
  EXPECT_DOUBLE_EQ(est.tested_volume, 11.0 * 5.0);
  EXPECT_DOUBLE_EQ(est.witness_volume, 3.0 * 5.0);
  EXPECT_DOUBLE_EQ(est.rho_w, 15.0 / 55.0);
}

TEST(GridMeasure, ThinSlabInflationRelativeToContinuous) {
  // The +1 point-count inflates thin slabs: a 2-wide gap in a 400-wide s
  // is 0.5 % by measure but 3/401 ~ 0.75 % by points — the optimism that
  // shortens d and produces Fig. 12's small-gap false decisions.
  const Subscription s = box2(0, 400, 0, 400);
  const std::vector<Subscription> set{box2(-1, 398, -1, 401, 1)};
  const ConflictTable table(s, set);
  const auto continuous = estimate_witness_probability(table, 0.0);
  const auto grid = estimate_witness_probability(table, 1.0);
  EXPECT_NEAR(continuous.rho_w, 2.0 / 400.0, 1e-12);
  EXPECT_NEAR(grid.rho_w, 3.0 / 401.0, 1e-12);
  EXPECT_GT(grid.rho_w, continuous.rho_w);
  // Fewer trials under the (optimistic) grid estimate.
  EXPECT_LT(theoretical_trials(grid.rho_w, 1e-3),
            theoretical_trials(continuous.rho_w, 1e-3));
}

TEST(GridMeasure, CoarseGridSaturates) {
  // Grid coarser than the gap: the slab still counts 1 point, making
  // rho_w grossly optimistic — documented behaviour, caller's choice.
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{box2(-1, 99.5, -1, 101, 1)};
  const ConflictTable table(s, set);
  const auto est = estimate_witness_probability(table, 10.0);
  EXPECT_DOUBLE_EQ(est.witness_volume, 1.0 * 11.0);
}

TEST(GridMeasure, ZeroSpacingIsContinuous) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(-1, 5, -1, 11, 1)};
  const ConflictTable table(s, set);
  const auto a = estimate_witness_probability(table);
  const auto b = estimate_witness_probability(table, 0.0);
  EXPECT_DOUBLE_EQ(a.rho_w, b.rho_w);
  EXPECT_DOUBLE_EQ(a.witness_volume, b.witness_volume);
}

TEST(GridMeasure, EngineConfigValidatesSpacing) {
  EngineConfig bad;
  bad.grid_spacing = -1.0;
  EXPECT_THROW((void)SubsumptionEngine{bad}, std::invalid_argument);
}

TEST(GridMeasure, EngineUsesGridForTrialBudget) {
  // Same instance, grid vs continuous: the grid run must compute a
  // smaller-or-equal trial budget (thin-slab optimism).
  const Subscription s = box2(0, 400, 0, 400);
  const std::vector<Subscription> set{box2(-1, 398, -1, 401, 1),
                                      box2(-1, 401, -1, 398, 2)};
  EngineConfig continuous;
  continuous.use_fast_decisions = false;
  continuous.use_mcs = false;
  EngineConfig grid = continuous;
  grid.grid_spacing = 1.0;
  SubsumptionEngine engine_c(continuous, 5), engine_g(grid, 5);
  const auto rc = engine_c.check(s, set);
  const auto rg = engine_g.check(s, set);
  EXPECT_LE(rg.trial_budget, rc.trial_budget);
  EXPECT_GT(rg.rho_w, 0.0);
}

}  // namespace
}  // namespace psc::core
