// Tests for the discrete-event simulator and metrics.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace psc::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue queue;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 10) queue.schedule_in(1.0, chain);
  };
  queue.schedule_in(1.0, chain);
  queue.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(EventQueue, ScheduleInPastClampsToNow) {
  EventQueue queue;
  double fired_at = -1;
  queue.schedule_at(5.0, [&] {
    queue.schedule_at(1.0, [&] { fired_at = queue.now(); });
  });
  queue.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, NegativeDelayClampsToNow) {
  EventQueue queue;
  queue.schedule_at(2.0, [] {});
  queue.run();
  ASSERT_DOUBLE_EQ(queue.now(), 2.0);
  double fired_at = -1;
  queue.schedule_in(-5.0, [&] { fired_at = queue.now(); });
  queue.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);  // clamped, not scheduled in the past
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, NextTimeReportsEarliestPendingWithoutAdvancing) {
  EventQueue queue;
  EXPECT_DOUBLE_EQ(queue.next_time(), 0.0);  // empty: next_time == now
  queue.schedule_at(3.0, [] {});
  queue.schedule_at(1.5, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.5);
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);  // peeking does not advance the clock
  queue.run_step();
  EXPECT_DOUBLE_EQ(queue.next_time(), 3.0);
  queue.run();
  EXPECT_DOUBLE_EQ(queue.next_time(), queue.now());
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(2.0, [&] { ++fired; });
  queue.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(queue.run_until(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, MaxEventsBounds) {
  EventQueue queue;
  int fired = 0;
  for (int i = 0; i < 10; ++i) queue.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(queue.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(queue.pending(), 7u);
}

TEST(EventQueue, EmptyQueueRunsZero) {
  EventQueue queue;
  EXPECT_EQ(queue.run(), 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, BatchKeepsVectorOrderAmongEqualTimestamps) {
  EventQueue queue;
  std::vector<int> order;
  // An unrelated event at the same time, scheduled BEFORE the batch,
  // fires first (lower sequence); the batch then fires in vector order.
  queue.schedule_at(1.0, [&] { order.push_back(-1); });
  std::vector<EventQueue::Handler> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back([&order, i] { order.push_back(i); });
  }
  queue.schedule_batch_at(1.0, std::move(batch));
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(EventQueue, BatchClampsPastTimesToNow) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  queue.run();
  ASSERT_DOUBLE_EQ(queue.now(), 5.0);
  int fired = 0;
  std::vector<EventQueue::Handler> batch;
  batch.push_back([&] { ++fired; });
  queue.schedule_batch_at(1.0, std::move(batch));  // in the past
  queue.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);  // did not travel back in time
}

TEST(EventQueue, RunStepFiresExactlyTheEarliestTimestampGroup) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(1.0, [&] { order.push_back(2); });
  queue.schedule_at(2.0, [&] { order.push_back(3); });
  EXPECT_EQ(queue.run_step(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_DOUBLE_EQ(queue.now(), 1.0);
  EXPECT_EQ(queue.run_step(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.run_step(), 0u);  // empty queue: a no-op step
}

TEST(EventQueue, RunStepIncludesEventsScheduledAtTheStepTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(1.0, [&] {
    order.push_back(1);
    // Lands at the step's own timestamp (clamped to now): same step.
    queue.schedule_at(0.5, [&] { order.push_back(2); });
    // Strictly later: next step.
    queue.schedule_at(1.5, [&] { order.push_back(3); });
  });
  EXPECT_EQ(queue.run_step(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.run_step(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampOrderIsGlobalFifoAcrossScheduleForms) {
  // Churn-replay determinism regression pin: equal-timestamp events fire
  // in exact scheduling order no matter how they were scheduled (single,
  // batch, or from inside a handler) and no matter which drive API runs
  // them. TTL expiries armed by a subscription flood rely on this — a
  // heap that broke FIFO ties would reorder expiry against message
  // delivery and desynchronize the differential oracle.
  std::vector<int> order;
  const auto build = [&order](EventQueue& queue) {
    queue.schedule_at(1.0, [&order] { order.push_back(0); });
    std::vector<EventQueue::Handler> batch;
    batch.push_back([&order] { order.push_back(1); });
    batch.push_back([&order] { order.push_back(2); });
    queue.schedule_batch_at(1.0, std::move(batch));
    queue.schedule_at(1.0, [&order, &queue] {
      order.push_back(3);
      // Scheduled mid-step at the step's own timestamp: fires after every
      // already-queued 1.0 event, still within the same instant.
      queue.schedule_at(1.0, [&order] { order.push_back(5); });
    });
    queue.schedule_at(1.0, [&order] { order.push_back(4); });
  };
  const std::vector<int> expected{0, 1, 2, 3, 4, 5};

  EventQueue via_run;
  build(via_run);
  via_run.run();
  EXPECT_EQ(order, expected);

  order.clear();
  EventQueue via_run_until;
  build(via_run_until);
  via_run_until.run_until(1.0);
  EXPECT_EQ(order, expected);

  order.clear();
  EventQueue via_run_step;
  build(via_run_step);
  EXPECT_EQ(via_run_step.run_step(), 6u);
  EXPECT_EQ(order, expected);
}

TEST(Metrics, DeliveryRatio) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 1.0);  // nothing expected
  m.notifications_delivered = 9;
  m.notifications_lost = 1;
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.9);
}

TEST(Metrics, AdditionAndTotals) {
  Metrics a, b;
  a.subscription_messages = 5;
  a.publication_messages = 10;
  b.subscription_messages = 2;
  b.unsubscription_messages = 1;
  const Metrics sum = a + b;
  EXPECT_EQ(sum.subscription_messages, 7u);
  EXPECT_EQ(sum.total_messages(), 7u + 1u + 10u);
}

TEST(Metrics, ResetClears) {
  Metrics m;
  m.publication_messages = 3;
  m.reset();
  EXPECT_EQ(m.total_messages(), 0u);
}

TEST(Metrics, StreamOutput) {
  Metrics m;
  m.subscription_messages = 4;
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find("sub_msgs=4"), std::string::npos);
}

}  // namespace
}  // namespace psc::sim
