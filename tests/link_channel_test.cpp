// LinkChannels protocol unit tests: the reliable transport in isolation
// (no BrokerNetwork), driven by a bare EventQueue. Pin the protocol
// invariants the lossy differential soaks rely on: exactly-once in-order
// delivery under drop/dup/reorder/jitter, bounded-window backpressure,
// deterministic replay, and retry-cap escalation under scripted
// burst loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/link_channel.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "wire/codec.hpp"

namespace psc::routing {
namespace {

constexpr double kLatency = 0.001;

wire::Announcement unsub_msg(BrokerId from, core::SubscriptionId id) {
  wire::Announcement msg;
  msg.kind = wire::Announcement::Kind::kUnsubscribe;
  msg.from = from;
  msg.id = id;
  return msg;
}

/// Test harness: a LinkChannels instance plus recorded deliveries and
/// escalations.
struct Harness {
  struct Delivery {
    BrokerId from = 0;
    BrokerId to = 0;
    core::SubscriptionId id = 0;
  };

  sim::EventQueue queue;
  sim::Metrics metrics;
  std::vector<Delivery> delivered;
  std::vector<std::pair<BrokerId, BrokerId>> escalated;
  LinkChannels channels;

  explicit Harness(const LinkConfig& config, std::uint64_t seed = 42)
      : channels(
            queue, metrics, config, kLatency, seed,
            [this](BrokerId from, BrokerId to, const wire::Announcement& msg) {
              delivered.push_back({from, to, msg.id});
            },
            [this](BrokerId a, BrokerId b) { escalated.emplace_back(a, b); }) {}

  void drain() { queue.run(); }
};

LinkConfig faulty_config() {
  LinkConfig config;
  config.enabled = true;
  config.faults.drop_probability = 0.25;
  config.faults.dup_probability = 0.15;
  config.faults.reorder_probability = 0.15;
  config.faults.delay_jitter = 0.5;
  return config;
}

TEST(LinkChannel, DeliversExactlyOnceInOrderUnderHeavyFaults) {
  Harness h(faulty_config());
  constexpr std::size_t kCount = 400;
  for (std::size_t i = 0; i < kCount; ++i) {
    // Interleave sim time so RTO timers and arrivals interleave with
    // fresh sends instead of all landing in one burst.
    h.queue.run_until(static_cast<double>(i) * 0.0005);
    h.channels.send(1, 2, unsub_msg(1, i + 1));
  }
  h.drain();

  ASSERT_EQ(h.delivered.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(h.delivered[i].from, 1u);
    EXPECT_EQ(h.delivered[i].to, 2u);
    EXPECT_EQ(h.delivered[i].id, i + 1) << "out of order at position " << i;
  }
  EXPECT_TRUE(h.escalated.empty());
  EXPECT_EQ(h.channels.in_flight(), 0u);
  // The fault schedule at these rates must actually exercise every path.
  EXPECT_GT(h.metrics.frames_dropped, 0u);
  EXPECT_GT(h.metrics.frames_duplicated, 0u);
  EXPECT_GT(h.metrics.retransmits, 0u);
  EXPECT_GT(h.metrics.dups_suppressed, 0u);
  EXPECT_GT(h.metrics.reorders_healed, 0u);
  EXPECT_GT(h.metrics.acks_sent, 0u);
}

TEST(LinkChannel, BidirectionalTrafficPiggybacksAndStaysOrdered) {
  Harness h(faulty_config(), 7);
  constexpr std::size_t kCount = 200;
  for (std::size_t i = 0; i < kCount; ++i) {
    h.queue.run_until(static_cast<double>(i) * 0.0007);
    h.channels.send(1, 2, unsub_msg(1, 1000 + i));
    h.channels.send(2, 1, unsub_msg(2, 2000 + i));
  }
  h.drain();

  std::vector<core::SubscriptionId> at1, at2;
  for (const auto& d : h.delivered) {
    (d.to == 1 ? at1 : at2).push_back(d.id);
  }
  ASSERT_EQ(at1.size(), kCount);
  ASSERT_EQ(at2.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(at2[i], 1000 + i);
    EXPECT_EQ(at1[i], 2000 + i);
  }
  EXPECT_EQ(h.channels.in_flight(), 0u);
}

TEST(LinkChannel, WindowOverflowParksInBacklogAndStillDeliversAll) {
  LinkConfig config = faulty_config();
  config.window = 4;  // force backpressure on any burst
  Harness h(config);
  constexpr std::size_t kCount = 100;
  for (std::size_t i = 0; i < kCount; ++i) {
    h.channels.send(1, 2, unsub_msg(1, i + 1));  // one burst, no time passing
  }
  h.drain();

  ASSERT_EQ(h.delivered.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(h.delivered[i].id, i + 1);
  }
  EXPECT_GT(h.metrics.backpressure_stalls, 0u);
  EXPECT_EQ(h.channels.in_flight(), 0u);
}

TEST(LinkChannel, PerfectWireDeliversWithoutRetransmits) {
  LinkConfig config;
  config.enabled = true;
  Harness h(config);
  for (std::size_t i = 0; i < 50; ++i) {
    h.channels.send(3, 4, unsub_msg(3, i + 1));
  }
  h.drain();
  ASSERT_EQ(h.delivered.size(), 50u);
  EXPECT_EQ(h.metrics.frames_dropped, 0u);
  EXPECT_EQ(h.metrics.retransmits, 0u);
  EXPECT_EQ(h.metrics.dups_suppressed, 0u);
  EXPECT_GT(h.metrics.acks_sent, 0u);  // one-way traffic needs pure acks
  EXPECT_EQ(h.channels.in_flight(), 0u);
}

TEST(LinkChannel, DeterministicAcrossIdenticalRuns) {
  const auto run = [](std::uint64_t seed) {
    Harness h(faulty_config(), seed);
    for (std::size_t i = 0; i < 150; ++i) {
      h.queue.run_until(static_cast<double>(i) * 0.0004);
      h.channels.send(1, 2, unsub_msg(1, i + 1));
      if (i % 3 == 0) h.channels.send(2, 1, unsub_msg(2, 500 + i));
    }
    h.drain();
    return std::make_tuple(h.delivered.size(), h.metrics.frames_dropped,
                           h.metrics.retransmits, h.metrics.acks_sent,
                           h.queue.now());
  };
  EXPECT_EQ(run(9), run(9));    // same seed: byte-identical schedule
  const auto a = run(9), b = run(10);
  // Different seeds still deliver everything; fault schedules differ.
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_NE(std::get<1>(a), std::get<1>(b));
}

TEST(LinkChannel, BurstOutlivingRetransmitChainEscalatesOnce) {
  LinkConfig config;
  config.enabled = true;
  config.max_retries = 3;  // short chain so the test stays fast
  Harness h(config);
  // Burst covers the entire retransmit chain of a send at t=0.
  h.channels.set_bursts({{1, 2, 0.0, 10.0}});
  h.channels.send(1, 2, unsub_msg(1, 7));
  h.channels.send(1, 2, unsub_msg(1, 8));
  h.drain();

  EXPECT_TRUE(h.delivered.empty());
  ASSERT_EQ(h.escalated.size(), 1u);  // once per incarnation, not per frame
  EXPECT_EQ(h.escalated[0].first, 1u);
  EXPECT_EQ(h.escalated[0].second, 2u);
  EXPECT_EQ(h.metrics.link_escalations, 1u);
  EXPECT_EQ(h.channels.in_flight(), 0u);  // escalation clears the queues

  // Muted: further sends are silently dropped, no new escalation.
  h.channels.send(1, 2, unsub_msg(1, 9));
  h.drain();
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_EQ(h.escalated.size(), 1u);

  // reset_link revives the incarnation; past the burst window the wire is
  // perfect again and sequences restart from zero on both ends.
  h.queue.run_until(10.0);
  h.channels.reset_link(1, 2);
  h.channels.send(1, 2, unsub_msg(1, 10));
  h.channels.send(2, 1, unsub_msg(2, 11));
  h.drain();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].id, 10u);
  EXPECT_EQ(h.delivered[1].id, 11u);
  EXPECT_EQ(h.escalated.size(), 1u);
}

TEST(LinkChannel, TransientBurstRecoversWithoutEscalation) {
  LinkConfig config;
  config.enabled = true;
  Harness h(config);
  // Default chain: rto = 4 x latency doubling toward 8 x rto over 12
  // retries — far longer than this 20 ms outage.
  h.channels.set_bursts({{1, 2, 0.0, 0.02}});
  h.channels.send(1, 2, unsub_msg(1, 1));
  h.channels.send(1, 2, unsub_msg(1, 2));
  h.drain();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].id, 1u);
  EXPECT_EQ(h.delivered[1].id, 2u);
  EXPECT_TRUE(h.escalated.empty());
  EXPECT_GT(h.metrics.retransmits, 0u);
  EXPECT_GT(h.metrics.frames_dropped, 0u);
}

TEST(LinkChannel, WorstHopDelayBoundsObservedDeliveryTime) {
  LinkConfig config = faulty_config();
  const double bound = config.worst_hop_delay(kLatency);
  ASSERT_GT(bound, 0.0);
  Harness h(config);
  h.channels.send(1, 2, unsub_msg(1, 1));
  h.drain();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_LE(h.queue.now(), bound);
}

}  // namespace
}  // namespace psc::routing
