// Tests for util::FlatMap: API contract, backward-shift deletion under
// collision-heavy churn, reserve-based pointer stability, non-trivial value
// lifetime, and randomized differential equivalence with std::unordered_map.
#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace psc::util {
namespace {

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_FALSE(map.erase(1));

  auto [value, inserted] = map.try_emplace(1, 10);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*value, 10);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(1));

  // Duplicate insert leaves the existing value untouched.
  auto [again, inserted_again] = map.try_emplace(1, 99);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 10);
  EXPECT_EQ(map.size(), 1u);

  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.contains(1));
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, KeyZeroIsReserved) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_THROW((void)map.try_emplace(0, 1), std::invalid_argument);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_FALSE(map.erase(0));
}

TEST(FlatMap, ReserveKeepsPointersStable) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  const std::size_t n = 500;
  map.reserve(n);
  std::vector<std::uint64_t*> pointers;
  for (std::uint64_t key = 1; key <= n; ++key) {
    pointers.push_back(map.try_emplace(key, key * 3).first);
  }
  // No rehash happened below the reserved size, so every pointer is live.
  for (std::uint64_t key = 1; key <= n; ++key) {
    EXPECT_EQ(map.find(key), pointers[key - 1]);
    EXPECT_EQ(*pointers[key - 1], key * 3);
  }
}

TEST(FlatMap, DuplicateInsertAtMaxLoadDoesNotRehash) {
  // A no-op duplicate insert must never grow the table: growth would
  // invalidate every outstanding value pointer without inserting anything.
  FlatMap<std::uint64_t, std::uint64_t> map;
  (void)map.try_emplace(1, 100);
  while (map.size() < map.capacity()) {
    (void)map.try_emplace(map.size() + 1, map.size());
  }
  std::uint64_t* pinned = map.find(1);
  ASSERT_NE(pinned, nullptr);
  const auto [dup, inserted] = map.try_emplace(1, 999);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(dup, pinned) << "duplicate insert at max load must not rehash";
  EXPECT_EQ(*pinned, 100u);
}

TEST(FlatMap, NonTrivialValueLifetime) {
  // shared_ptr use-counts expose double-destroy or leaked copies across
  // rehash (growth) and backward-shift moves (erase).
  auto tracker = std::make_shared<int>(42);
  {
    FlatMap<std::uint64_t, std::shared_ptr<int>> map;
    for (std::uint64_t key = 1; key <= 200; ++key) {
      (void)map.try_emplace(key, tracker);
    }
    EXPECT_EQ(tracker.use_count(), 201);
    for (std::uint64_t key = 1; key <= 100; ++key) {
      EXPECT_TRUE(map.erase(key));
    }
    EXPECT_EQ(tracker.use_count(), 101);
    map.clear();
    EXPECT_EQ(tracker.use_count(), 1);
    (void)map.try_emplace(7, tracker);
  }  // destructor releases the last copy
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(FlatMap, MoveTransfersContents) {
  FlatMap<std::uint64_t, std::string> map;
  (void)map.try_emplace(5, "five");
  (void)map.try_emplace(9, "nine");
  FlatMap<std::uint64_t, std::string> moved(std::move(map));
  ASSERT_NE(moved.find(5), nullptr);
  EXPECT_EQ(*moved.find(5), "five");
  EXPECT_EQ(moved.size(), 2u);

  FlatMap<std::uint64_t, std::string> assigned;
  (void)assigned.try_emplace(1, "stale");
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_EQ(assigned.find(1), nullptr);
  EXPECT_EQ(*assigned.find(9), "nine");
}

TEST(FlatMap, ForEachVisitsEveryEntry) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t key = 1; key <= 50; ++key) {
    (void)map.try_emplace(key, key);
  }
  std::uint64_t key_sum = 0, value_sum = 0;
  map.for_each([&](std::uint64_t key, const std::uint64_t& value) {
    key_sum += key;
    value_sum += value;
  });
  EXPECT_EQ(key_sum, 50u * 51u / 2u);
  EXPECT_EQ(value_sum, key_sum);

  // Mutating visit.
  map.for_each([](std::uint64_t, std::uint64_t& value) { value *= 2; });
  EXPECT_EQ(*map.find(10), 20u);
}

TEST(FlatMap, BackwardShiftPreservesCollisionChains) {
  // Dense sequential keys at small table sizes force long probe chains;
  // erasing from the middle of a chain must keep every survivor findable.
  FlatMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t key = 1; key <= 64; ++key) {
    (void)map.try_emplace(key, key);
  }
  for (std::uint64_t key = 2; key <= 64; key += 2) {
    ASSERT_TRUE(map.erase(key));
  }
  for (std::uint64_t key = 1; key <= 64; ++key) {
    if (key % 2 == 1) {
      ASSERT_NE(map.find(key), nullptr) << key;
      EXPECT_EQ(*map.find(key), key);
    } else {
      EXPECT_EQ(map.find(key), nullptr) << key;
    }
  }
}

TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  util::Rng rng(20260730);

  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(700);  // dense => collisions
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t value = rng();
        const auto [ptr, inserted] = map.try_emplace(key, value);
        const auto [it, ref_inserted] = reference.try_emplace(key, value);
        ASSERT_EQ(inserted, ref_inserted) << step;
        ASSERT_EQ(*ptr, it->second) << step;
        break;
      }
      case 1:
        ASSERT_EQ(map.erase(key), reference.erase(key) > 0) << step;
        break;
      default: {
        const auto* ptr = map.find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(ptr != nullptr, it != reference.end()) << step;
        if (ptr != nullptr) {
          ASSERT_EQ(*ptr, it->second) << step;
        }
      }
    }
    ASSERT_EQ(map.size(), reference.size()) << step;
  }

  // Full-content sweep at the end.
  std::size_t visited = 0;
  map.for_each([&](std::uint64_t key, const std::uint64_t& value) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << key;
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, reference.size());
}

}  // namespace
}  // namespace psc::util
