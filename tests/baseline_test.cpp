// Tests for the pairwise-cover baseline and the counting matcher.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/counting_matcher.hpp"
#include "baseline/pairwise_cover.hpp"
#include "util/rng.hpp"
#include "workload/publications.hpp"

namespace psc::baseline {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  core::SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(PairwiseCover, FindsFirstCoveringSubscription) {
  const Subscription s = box2(2, 8, 2, 8);
  const std::vector<Subscription> set{box2(3, 7, 3, 7, 1),
                                      box2(0, 10, 0, 10, 2),
                                      box2(-5, 15, -5, 15, 3)};
  const auto idx = find_covering(s, set);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(pairwise_covered(s, set));
}

TEST(PairwiseCover, MissesGroupOnlyCover) {
  // The paper's central observation: pairwise checking cannot see that
  // Table 3's union covers s.
  const Subscription s = box2(830, 870, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  EXPECT_FALSE(pairwise_covered(s, set));
}

TEST(PairwiseCover, EmptySetNotCovered) {
  EXPECT_FALSE(pairwise_covered(box2(0, 1, 0, 1), std::vector<Subscription>{}));
}

TEST(PairwiseCover, ReverseDirectionFindsCoveredSubscriptions) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(2, 8, 2, 8, 1),
                                      box2(5, 15, 5, 15, 2),
                                      box2(0, 10, 0, 10, 3)};
  const auto covered = find_covered_by(s, set);
  ASSERT_EQ(covered.size(), 2u);
  EXPECT_EQ(covered[0], 0u);
  EXPECT_EQ(covered[1], 2u);  // equality counts as covered
}

TEST(CountingMatcher, MatchesLikeDirectEvaluation) {
  util::Rng rng(17);
  CountingMatcher matcher(3);
  std::vector<Subscription> subs;
  for (int i = 0; i < 80; ++i) {
    std::vector<Interval> ranges(3);
    for (auto& r : ranges) {
      const double lo = rng.uniform(0, 80);
      r = Interval{lo, lo + rng.uniform(1, 30)};
    }
    Subscription sub(std::move(ranges), static_cast<core::SubscriptionId>(i + 1));
    matcher.insert(sub);
    subs.push_back(std::move(sub));
  }
  for (int trial = 0; trial < 200; ++trial) {
    const Publication pub =
        workload::uniform_publication(3, 0.0, 100.0, rng);
    const auto slots = matcher.match(pub);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (pub.matches(subs[i])) expected.push_back(i);
    }
    EXPECT_EQ(slots, expected) << "trial " << trial;
  }
}

TEST(CountingMatcher, BoundaryValuesMatchInclusive) {
  CountingMatcher matcher(1);
  matcher.insert(Subscription({Interval{5, 10}}, 1));
  EXPECT_EQ(matcher.match(Publication({5.0})).size(), 1u);
  EXPECT_EQ(matcher.match(Publication({10.0})).size(), 1u);
  EXPECT_EQ(matcher.match(Publication({4.999})).size(), 0u);
  EXPECT_EQ(matcher.match(Publication({10.001})).size(), 0u);
}

TEST(CountingMatcher, EraseSwapsLastSlot) {
  CountingMatcher matcher(1);
  matcher.insert(Subscription({Interval{0, 1}}, 1));
  matcher.insert(Subscription({Interval{2, 3}}, 2));
  matcher.insert(Subscription({Interval{4, 5}}, 3));
  const std::size_t moved = matcher.erase(0);
  EXPECT_EQ(moved, 2u);  // last slot moved into 0
  EXPECT_EQ(matcher.size(), 2u);
  EXPECT_EQ(matcher.at(0).id(), 3u);
  // Matching still correct after the swap.
  EXPECT_EQ(matcher.match(Publication({4.5})).size(), 1u);
  EXPECT_EQ(matcher.match(Publication({0.5})).size(), 0u);
}

TEST(CountingMatcher, EraseLastSlot) {
  CountingMatcher matcher(1);
  matcher.insert(Subscription({Interval{0, 1}}, 1));
  EXPECT_EQ(matcher.erase(0), 0u);
  EXPECT_TRUE(matcher.empty());
}

TEST(CountingMatcher, SchemaMismatchThrows) {
  CountingMatcher matcher(2);
  EXPECT_THROW(matcher.insert(Subscription({Interval{0, 1}})),
               std::invalid_argument);
  EXPECT_THROW((void)matcher.match(Publication({1.0})), std::invalid_argument);
  EXPECT_THROW((void)matcher.erase(5), std::out_of_range);
}

TEST(CountingMatcher, EmptyMatcherMatchesNothing) {
  CountingMatcher matcher(2);
  EXPECT_TRUE(matcher.match(Publication({1.0, 2.0})).empty());
}

TEST(CountingMatcher, ClearResets) {
  CountingMatcher matcher(1);
  matcher.insert(Subscription({Interval{0, 1}}, 1));
  matcher.clear();
  EXPECT_TRUE(matcher.empty());
  EXPECT_TRUE(matcher.match(Publication({0.5})).empty());
}

TEST(CountingMatcher, NearMissPublicationsDoNotMatch) {
  util::Rng rng(23);
  CountingMatcher matcher(4);
  std::vector<Interval> ranges{{0, 10}, {5, 15}, {20, 30}, {1, 2}};
  const Subscription sub(std::move(ranges), 1);
  matcher.insert(sub);
  for (int i = 0; i < 100; ++i) {
    const Publication miss = workload::publication_near_miss(sub, rng);
    EXPECT_TRUE(matcher.match(miss).empty());
    const Publication hit = workload::publication_inside(sub, rng);
    EXPECT_EQ(matcher.match(hit).size(), 1u);
  }
}

}  // namespace
}  // namespace psc::baseline
