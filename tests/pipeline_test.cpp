// Property tests for the staged publish pipeline
// (routing/publish_pipeline.hpp): decision-for-decision equality with the
// sequential Broker::handle_publication path across the full knob grid
// (worker count × batch size × queue depth × lane shard count × origin),
// equality across routing-table mutations (the lane mirror), the route
// frame codec, and the zero-allocation inline steady state. This file is
// in the TSan label set: the threaded grid cells drive the slot rings
// cross-thread exactly as production does.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <stdexcept>
#include <vector>

#include "routing/broker.hpp"
#include "routing/publish_pipeline.hpp"
#include "wire/byte_buffer.hpp"
#include "wire/codec.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace psc::routing {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

class AllocationGuard {
 public:
  AllocationGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_counting.store(false, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

constexpr std::size_t kAttrs = 4;

struct Fixture {
  Broker broker{0, store::StoreConfig{}, 2006, /*match_shards=*/1};
  std::vector<Subscription> subs;
  std::vector<Origin> origins;
  std::vector<Publication> pubs;

  explicit Fixture(std::size_t actives, std::size_t probe_count,
                   std::uint64_t seed = 2006) {
    broker.add_neighbor(1);
    broker.add_neighbor(2);
    workload::ComparisonConfig stream_config;
    stream_config.attribute_count = kAttrs;
    stream_config.max_constrained = 3;
    workload::ComparisonStream stream(stream_config, seed);
    util::Rng origin_rng(seed + 1);
    for (std::size_t i = 0; i < actives; ++i) {
      Origin origin{true, kInvalidBroker};
      const auto draw = origin_rng.next_below(3);
      if (draw == 1) origin = Origin{false, 1};
      if (draw == 2) origin = Origin{false, 2};
      Subscription sub = stream.next();
      (void)broker.handle_subscription(sub, origin);
      subs.push_back(std::move(sub));
      origins.push_back(origin);
    }
    util::Rng probe_rng(seed + 2);
    for (std::size_t i = 0; i < probe_count; ++i) {
      pubs.push_back(
          workload::uniform_publication(kAttrs, 0.0, 1000.0, probe_rng));
    }
  }
};

/// One full equality sweep: every probe, from a local and a neighbour
/// origin, pipeline vs sequential. Route ORDER is part of the contract.
void expect_equal_decisions(PublishPipeline& pipeline, const Broker& broker,
                            const std::vector<Publication>& pubs,
                            const std::string& what) {
  Broker::PublishScratch scratch;
  std::vector<Broker::PublicationRoute> routes;
  for (const Origin& origin :
       {Origin{true, kInvalidBroker}, Origin{false, 1}, Origin{false, 2}}) {
    pipeline.run(broker, pubs, origin, routes);
    ASSERT_EQ(routes.size(), pubs.size());
    for (std::size_t p = 0; p < pubs.size(); ++p) {
      const Broker::PublicationRoute& expected =
          broker.handle_publication(pubs[p], origin, scratch);
      ASSERT_EQ(routes[p].local_matches, expected.local_matches)
          << what << " pub " << p << " origin "
          << (origin.local ? -1 : static_cast<int>(origin.neighbor));
      ASSERT_EQ(routes[p].destinations, expected.destinations)
          << what << " pub " << p << " origin "
          << (origin.local ? -1 : static_cast<int>(origin.neighbor));
    }
  }
}

TEST(PublishPipeline, RequiresPublishLanes) {
  Fixture fx(10, 1);
  PublishPipeline pipeline;
  std::vector<Broker::PublicationRoute> routes;
  EXPECT_THROW(pipeline.run(fx.broker, fx.pubs,
                            Origin{true, kInvalidBroker}, routes),
               std::logic_error);
}

TEST(PublishPipeline, AutoWorkersResolveFromHardware) {
  const PublishPipeline pipeline;
  // kAuto: 0 on a one-core host, otherwise cores - 1 capped at 4. Either
  // way the resolved count is bounded and the options echo the request.
  EXPECT_LE(pipeline.worker_count(), 4u);
  EXPECT_EQ(pipeline.options().workers, PublishPipelineOptions::kAuto);
}

TEST(PublishPipeline, DecisionEqualAcrossKnobGrid) {
  // The determinism contract, exhaustively: every knob combination must
  // reproduce the sequential path decision for decision, in order.
  Fixture fx(1200, 24);
  for (const std::size_t local_shards : {1UL, 4UL}) {
    fx.broker.enable_publish_lanes(local_shards);
    for (const std::size_t workers : {0UL, 1UL, 3UL}) {
      for (const std::size_t batch : {1UL, 3UL, 16UL}) {
        for (const std::size_t depth : {1UL, 4UL}) {
          PublishPipelineOptions options;
          options.workers = workers;
          options.batch_size = batch;
          options.queue_depth = depth;
          PublishPipeline pipeline(options);
          expect_equal_decisions(
              pipeline, fx.broker, fx.pubs,
              "shards=" + std::to_string(local_shards) + " workers=" +
                  std::to_string(workers) + " batch=" + std::to_string(batch) +
                  " depth=" + std::to_string(depth));
        }
      }
    }
  }
}

TEST(PublishPipeline, DecisionEqualAcrossTableMutations) {
  // The lane mirror must track unsubscription and expiry; equality is
  // re-checked after each mutation wave through one reused pipeline.
  Fixture fx(800, 16);
  fx.broker.enable_publish_lanes(2);
  PublishPipelineOptions options;
  options.workers = 2;
  options.batch_size = 4;
  PublishPipeline pipeline(options);
  expect_equal_decisions(pipeline, fx.broker, fx.pubs, "initial");

  // Wave 1: unsubscribe every 3rd id (unsubscriptions arrive from the
  // route's own reverse path in production; the origin only prunes
  // forwarding, the table/lane erase is unconditional).
  for (std::size_t i = 0; i < fx.subs.size(); i += 3) {
    (void)fx.broker.handle_unsubscription(fx.subs[i].id(),
                                          Origin{true, kInvalidBroker});
  }
  expect_equal_decisions(pipeline, fx.broker, fx.pubs, "after unsubscribe");

  // Wave 2: expire every 7th surviving id.
  for (std::size_t i = 1; i < fx.subs.size(); i += 7) {
    if (i % 3 == 0) continue;  // already gone
    (void)fx.broker.handle_expiry(fx.subs[i].id());
  }
  expect_equal_decisions(pipeline, fx.broker, fx.pubs, "after expiry");

  // Wave 3: fresh arrivals on every origin.
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = kAttrs;
  stream_config.max_constrained = 3;
  workload::ComparisonStream stream(stream_config, 777);
  for (std::size_t i = 0; i < 300; ++i) {
    const Origin origin = fx.origins[i % fx.origins.size()];
    (void)fx.broker.handle_subscription(stream.next(), origin);
  }
  expect_equal_decisions(pipeline, fx.broker, fx.pubs, "after resubscribe");
}

TEST(PublishPipeline, LanesEnabledOnPopulatedBrokerMatchSequential) {
  // enable_publish_lanes after the table is already populated must rebuild
  // an equivalent mirror (restore_all and late enablement both hit this).
  Fixture fx(1000, 16);
  fx.broker.enable_publish_lanes();
  PublishPipeline pipeline;
  expect_equal_decisions(pipeline, fx.broker, fx.pubs, "late enable");
}

TEST(PublishPipeline, RouteFrameCodecRoundTrips) {
  Broker::PublicationRoute route;
  route.local_matches = {1, 5, 42, 1ULL << 40};
  route.destinations = {2, 7};
  wire::ByteWriter out;
  PublishPipeline::encode_route(route, out);
  const std::vector<std::uint8_t> frame = out.take();
  wire::ByteReader in(frame);
  const Broker::PublicationRoute decoded = PublishPipeline::decode_route(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(decoded.local_matches, route.local_matches);
  EXPECT_EQ(decoded.destinations, route.destinations);
}

TEST(PublishPipeline, RunEncodedMatchesRunThroughWireFrames) {
  Fixture fx(600, 12);
  fx.broker.enable_publish_lanes();
  PublishPipeline pipeline;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const Publication& pub : fx.pubs) {
    wire::ByteWriter out;
    wire::write_publication(out, pub);
    frames.push_back(out.take());
  }
  const Origin origin{true, kInvalidBroker};
  std::vector<std::vector<std::uint8_t>> encoded;
  pipeline.run_encoded(fx.broker, frames, origin, encoded);
  ASSERT_EQ(encoded.size(), fx.pubs.size());

  std::vector<Broker::PublicationRoute> routes;
  pipeline.run(fx.broker, fx.pubs, origin, routes);
  for (std::size_t p = 0; p < fx.pubs.size(); ++p) {
    wire::ByteReader in(encoded[p]);
    const Broker::PublicationRoute decoded = PublishPipeline::decode_route(in);
    EXPECT_TRUE(in.at_end());
    EXPECT_EQ(decoded.local_matches, routes[p].local_matches) << p;
    EXPECT_EQ(decoded.destinations, routes[p].destinations) << p;
  }

  // Malformed frame: trailing garbage must throw, not route.
  frames[0].push_back(0xff);
  EXPECT_THROW(pipeline.run_encoded(fx.broker, frames, origin, encoded),
               wire::DecodeError);
}

TEST(PublishPipeline, InlineSteadyStateDoesNotAllocate) {
  // Inline mode (workers = 0, the one-core default): after a warm-up run
  // over the same batch, the match + route stages must be allocation-free
  // — slot buffers, lane scratch, radix scratch, and the caller's route
  // vectors are all reused.
  Fixture fx(2000, 32);
  fx.broker.enable_publish_lanes(2);
  PublishPipelineOptions options;
  options.workers = 0;
  options.batch_size = 8;
  PublishPipeline pipeline(options);
  const Origin origin{true, kInvalidBroker};
  std::vector<Broker::PublicationRoute> routes;
  pipeline.run(fx.broker, fx.pubs, origin, routes);  // warm-up
  pipeline.run(fx.broker, fx.pubs, origin, routes);

  AllocationGuard guard;
  pipeline.run(fx.broker, fx.pubs, origin, routes);
  EXPECT_EQ(guard.count(), 0u);
}

TEST(PublishPipeline, StreamingReuseAcrossManySmallRuns) {
  // The BrokerNetwork shares one pipeline across brokers and calls it once
  // per batch; repeated runs with varying sizes must stay correct.
  Fixture fx(500, 23);
  fx.broker.enable_publish_lanes();
  PublishPipelineOptions options;
  options.workers = 2;
  options.batch_size = 3;
  options.queue_depth = 2;
  PublishPipeline pipeline(options);
  Broker::PublishScratch scratch;
  std::vector<Broker::PublicationRoute> routes;
  const Origin origin{false, 1};
  for (std::size_t start = 0; start < fx.pubs.size(); ++start) {
    const std::size_t n =
        std::min<std::size_t>(1 + start % 5, fx.pubs.size() - start);
    pipeline.run(fx.broker,
                 std::span<const Publication>(fx.pubs.data() + start, n),
                 origin, routes);
    for (std::size_t p = 0; p < n; ++p) {
      const auto& expected =
          fx.broker.handle_publication(fx.pubs[start + p], origin, scratch);
      ASSERT_EQ(routes[p].local_matches, expected.local_matches);
      ASSERT_EQ(routes[p].destinations, expected.destinations);
    }
  }
}

}  // namespace
}  // namespace psc::routing
