// Verifies the EngineWorkspace refactor's zero-allocation guarantee: after
// a warm-up query has grown the workspace buffers to the working-set size,
// repeated SubsumptionEngine::check calls perform no heap allocations.
//
// Counting is done by overriding the global allocation functions for this
// test binary. The counters are plain atomics so instrumentation itself
// does not allocate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/engine.hpp"
#include "workload/scenarios.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace psc::core {
namespace {

class AllocationGuard {
 public:
  AllocationGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_counting.store(false, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(EngineWorkspace, SteadyStateChecksDoNotAllocate) {
  workload::ScenarioConfig config;
  config.attribute_count = 10;
  config.set_size = 120;
  util::Rng rng(2026);
  // Redundant covering: no pairwise fast path, so the full pipeline runs
  // (conflict table, fast decisions, MCS, estimate, RSPC) every check and
  // the verdict is a probabilistic YES — no witness copy.
  const auto inst = workload::make_redundant_covering(config, rng);

  EngineConfig engine_config;
  engine_config.max_iterations = 2'000;
  SubsumptionEngine engine(engine_config, 7);

  // Warm-up: grows every workspace buffer to the working-set size.
  for (int i = 0; i < 3; ++i) {
    const auto warm = engine.check(inst.tested, inst.existing);
    ASSERT_TRUE(warm.covered);
    ASSERT_EQ(warm.path, DecisionPath::kRspcProbabilistic);
  }

  AllocationGuard guard;
  for (int i = 0; i < 50; ++i) {
    const auto result = engine.check(inst.tested, inst.existing);
    ASSERT_TRUE(result.covered);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "steady-state engine checks must reuse the workspace";
}

TEST(EngineWorkspace, PairwiseFastPathDoesNotAllocate) {
  workload::ScenarioConfig config;
  config.attribute_count = 10;
  config.set_size = 80;
  util::Rng rng(11);
  const auto inst = workload::make_pairwise_covering(config, rng);

  SubsumptionEngine engine(EngineConfig{}, 13);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.check(inst.tested, inst.existing).covered);
  }

  AllocationGuard guard;
  for (int i = 0; i < 50; ++i) {
    const auto result = engine.check(inst.tested, inst.existing);
    ASSERT_EQ(result.path, DecisionPath::kPairwiseCover);
  }
  EXPECT_EQ(guard.count(), 0u);
}

TEST(EngineWorkspace, GrowingSetReusesAfterFirstGrowth) {
  // A larger instance after a smaller one may allocate once (growth), but
  // repeating the larger instance must be allocation-free again.
  workload::ScenarioConfig small_config;
  small_config.attribute_count = 8;
  small_config.set_size = 40;
  workload::ScenarioConfig big_config = small_config;
  big_config.set_size = 200;
  util::Rng rng(5);
  const auto small_inst = workload::make_redundant_covering(small_config, rng);
  const auto big_inst = workload::make_redundant_covering(big_config, rng);

  EngineConfig engine_config;
  engine_config.max_iterations = 1'000;
  SubsumptionEngine engine(engine_config, 3);
  (void)engine.check(small_inst.tested, small_inst.existing);
  (void)engine.check(big_inst.tested, big_inst.existing);  // growth
  (void)engine.check(big_inst.tested, big_inst.existing);  // warm

  AllocationGuard guard;
  for (int i = 0; i < 20; ++i) {
    (void)engine.check(big_inst.tested, big_inst.existing);
    (void)engine.check(small_inst.tested, small_inst.existing);
  }
  EXPECT_EQ(guard.count(), 0u);
}

}  // namespace
}  // namespace psc::core
