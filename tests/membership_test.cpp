// Tests for runtime membership: the LinkState forest state machine, the
// BrokerNetwork membership protocol (join/leave/crash/replace, link
// fail/heal with purge + re-announcement), the component-aware loss
// accounting, and the generator-driven differential soak across the
// membership topology family — partition-then-heal must reconverge to
// exactly the flat oracle's delivered sets with zero ghost routes and
// zero duplicates.
#include "routing/membership.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "routing/broker_network.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "wire/byte_buffer.hpp"
#include "wire/codec.hpp"
#include "workload/churn_workload.hpp"

namespace psc::routing {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Subscription box(SubscriptionId id, double lo, double hi) {
  return Subscription({{lo, hi}, {lo, hi}}, id);
}

Publication point(double x, double y) { return Publication({x, y}); }

// --- LinkState ---------------------------------------------------------

TEST(LinkState, EnforcesTheForestInvariant) {
  LinkState state;
  for (int i = 0; i < 4; ++i) (void)state.add_broker();
  state.add_link(0, 1);
  state.add_link(1, 2);
  EXPECT_THROW(state.add_link(0, 2), std::logic_error);  // would close a cycle
  EXPECT_THROW(state.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(state.add_link(0, 9), std::invalid_argument);
  state.add_link(2, 3);
  EXPECT_EQ(state.component_count(), 1u);
}

TEST(LinkState, FailAndHealMoveLinksBetweenSets) {
  LinkState state;
  for (int i = 0; i < 3; ++i) (void)state.add_broker();
  state.add_link(0, 1);
  state.add_link(1, 2);
  state.fail_link(0, 1);
  EXPECT_FALSE(state.has_link(0, 1));
  EXPECT_TRUE(state.has_failed_link(0, 1));
  EXPECT_EQ(state.component_count(), 2u);
  EXPECT_FALSE(state.same_component(0, 2));
  state.heal_link(0, 1);
  EXPECT_TRUE(state.same_component(0, 2));
  // Healing a link whose endpoints already reconnected would close a cycle.
  state.add_standby(0, 2);
  EXPECT_THROW(state.heal_link(0, 2), std::logic_error);
}

TEST(LinkState, RemovePeerStarsTheFormerNeighbors) {
  // Star of 0: removing the hub must re-span its four leaves.
  LinkState state;
  for (int i = 0; i < 5; ++i) (void)state.add_broker();
  for (BrokerId leaf = 1; leaf < 5; ++leaf) state.add_link(0, leaf);
  const auto repairs = state.remove_peer(0);
  EXPECT_FALSE(state.is_alive(0));
  // Hub is the lowest former neighbour; each other leaf gets one spoke.
  ASSERT_EQ(repairs.size(), 3u);
  for (const auto& [a, b] : repairs) EXPECT_EQ(a, 1u);
  EXPECT_EQ(state.component_count(), 1u);
}

TEST(LinkState, CrashFailsIncidentLinksAndReplaceHealsThem) {
  LinkState state;
  for (int i = 0; i < 4; ++i) (void)state.add_broker();
  state.add_link(0, 1);
  state.add_link(1, 2);
  state.add_link(2, 3);
  const auto downed = state.crash_peer(1);
  EXPECT_EQ(downed.size(), 2u);
  EXPECT_EQ(state.component_count(), 2u);  // {0} | {2,3}
  const auto healed = state.replace_peer(1);
  EXPECT_EQ(healed.size(), 2u);
  EXPECT_EQ(state.component_count(), 1u);
}

TEST(LinkState, ReplaceSkipsLinksThatWouldCloseACycle) {
  // Ring universe: chain 0-1-2 with standby (0,2). Crash 1, heal the
  // standby bridge, then replace 1: only ONE former link may come back.
  LinkState state;
  for (int i = 0; i < 3; ++i) (void)state.add_broker();
  state.add_link(0, 1);
  state.add_link(1, 2);
  state.add_standby(0, 2);
  (void)state.crash_peer(1);
  state.heal_link(0, 2);  // the bridge rotates up
  const auto healed = state.replace_peer(1);
  EXPECT_EQ(healed.size(), 1u);
  EXPECT_EQ(state.component_count(), 1u);
  EXPECT_EQ(state.live_links().size(), 2u);
}

TEST(LinkState, SetDeadRefusesLiveLinks) {
  LinkState state;
  for (int i = 0; i < 2; ++i) (void)state.add_broker();
  state.add_link(0, 1);
  EXPECT_THROW(state.set_dead(0), std::logic_error);
  state.fail_link(0, 1);
  state.set_dead(0);
  EXPECT_FALSE(state.is_alive(0));
}

// --- BrokerNetwork membership protocol ---------------------------------

NetworkConfig quiet_config() {
  NetworkConfig config;
  config.seed = 7;
  return config;
}

TEST(Membership, FailLinkPartitionsAndHealReconverges) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.subscribe(0, box(1, 100, 200));  // homed at B1, left of the backbone
  const Publication pub = point(150, 150);

  ASSERT_EQ(net.publish(7, pub), std::vector<SubscriptionId>{1});

  net.fail_link(2, 3);  // cut the B3-B4 backbone
  EXPECT_TRUE(net.publish(7, pub).empty());
  // Unreachable is not lost: the publisher's component has no matching sub.
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
  EXPECT_EQ(net.ghost_route_count(), 0u);

  net.heal_link(2, 3);
  EXPECT_EQ(net.publish(7, pub), std::vector<SubscriptionId>{1});
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
  EXPECT_EQ(net.metrics().notifications_duplicated, 0u);
  EXPECT_EQ(net.ghost_route_count(), 0u);
  EXPECT_GT(net.metrics().reannounced_subscriptions, 0u);
}

TEST(Membership, LeaveRepairsAroundTheHubAndDropsItsClients) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.subscribe(0, box(1, 100, 200));
  net.subscribe(3, box(2, 100, 200));  // homed at the backbone hub B4
  net.remove_peer(3);                  // B4 leaves gracefully

  EXPECT_FALSE(net.is_alive(3));
  // Its neighbours {2,4,5,6} were starred back into one component.
  EXPECT_EQ(net.link_state().component_count(), 1u);
  // Its client went with it; B1's subscription still delivers from B8.
  EXPECT_EQ(net.publish(7, point(150, 150)), std::vector<SubscriptionId>{1});
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
  EXPECT_EQ(net.ghost_route_count(), 0u);
  EXPECT_THROW(net.publish(3, point(150, 150)), std::invalid_argument);
}

TEST(Membership, JoinReceivesExistingSubscriptionsByReannouncement) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.subscribe(0, box(1, 100, 200));
  const BrokerId id = net.add_peer(6);  // attach to B7
  EXPECT_EQ(id, 9u);
  EXPECT_EQ(net.publish(id, point(150, 150)), std::vector<SubscriptionId>{1});
  net.subscribe(id, box(2, 100, 200));
  EXPECT_EQ(net.publish(0, point(150, 150)),
            (std::vector<SubscriptionId>{1, 2}));
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
  EXPECT_EQ(net.ghost_route_count(), 0u);
}

TEST(Membership, TtlExpiringExactlyAtThePartitionInstant) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.subscribe_with_ttl(0, box(1, 100, 200), 1.0);
  const Publication pub = point(150, 150);
  ASSERT_EQ(net.publish(7, pub), std::vector<SubscriptionId>{1});

  // Advance exactly to the expiry instant, then cut the link the expired
  // subscription was routed over at that same instant: the expiry already
  // removed every route, so the purge must find nothing and no ghost or
  // double-removal artifacts may appear.
  net.advance_time(1.5);  // comfortably past expiry + its cascades
  net.fail_link(2, 3);
  EXPECT_EQ(net.ghost_route_count(), 0u);
  EXPECT_TRUE(net.publish(7, pub).empty());
  net.heal_link(2, 3);
  EXPECT_TRUE(net.publish(7, pub).empty());  // stayed expired through repair
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
  EXPECT_EQ(net.ghost_route_count(), 0u);
}

TEST(Membership, CrashKeepsClientsRegisteredUntilReplacement) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.subscribe(6, box(1, 100, 200));  // homed at B7
  const std::vector<std::uint8_t> image = net.broker(6).snapshot();
  net.subscribe(6, box(2, 300, 400));  // after the image: the gap sub

  net.crash_peer(6);
  // B8 and B9 are cut off; the crashed broker's clients are unreachable
  // but still registered (component-aware accounting, not loss).
  EXPECT_TRUE(net.publish(0, point(150, 150)).empty());
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
  EXPECT_EQ(net.ghost_route_count(), 0u);

  const auto outcome = net.replace_peer(6, {image.data(), image.size()});
  EXPECT_EQ(outcome.restored_routes, 1u);    // sub 1, from the image
  EXPECT_EQ(outcome.gap_subs_replayed, 1u);  // sub 2, registry diff
  EXPECT_EQ(outcome.healed_links.size(), 3u);
  EXPECT_EQ(net.link_state().component_count(), 1u);

  EXPECT_EQ(net.publish(0, point(150, 150)), std::vector<SubscriptionId>{1});
  EXPECT_EQ(net.publish(8, point(350, 350)), std::vector<SubscriptionId>{2});
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
  EXPECT_EQ(net.metrics().notifications_duplicated, 0u);
  EXPECT_EQ(net.ghost_route_count(), 0u);
}

TEST(Membership, ReplacementFromImageEqualsNeverCrashedRun) {
  // Drive two identical networks through the same client ops; crash and
  // replace a broker in one of them. Deliveries afterwards must be
  // indistinguishable from the run that never crashed.
  BrokerNetwork crashed = BrokerNetwork::figure1_topology(quiet_config());
  BrokerNetwork control = BrokerNetwork::figure1_topology(quiet_config());
  for (auto* net : {&crashed, &control}) {
    net->subscribe(6, box(1, 100, 200));
    net->subscribe(1, box(2, 120, 180));
    net->subscribe(6, box(3, 500, 600));
  }
  const std::vector<std::uint8_t> image = crashed.broker(6).snapshot();
  crashed.crash_peer(6);
  (void)crashed.replace_peer(6, {image.data(), image.size()});

  for (const auto& pub : {point(150, 150), point(550, 550), point(10, 10)}) {
    for (std::size_t from = 0; from < 9; ++from) {
      EXPECT_EQ(crashed.publish(static_cast<BrokerId>(from), pub),
                control.publish(static_cast<BrokerId>(from), pub))
          << "publisher " << from;
    }
  }
  EXPECT_EQ(crashed.metrics().notifications_lost, 0u);
  EXPECT_EQ(crashed.ghost_route_count(), 0u);
}

TEST(Membership, ReplacementFromEmptyImageIsPureGapReplay) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.subscribe(6, box(1, 100, 200));
  net.crash_peer(6);
  const auto outcome = net.replace_peer(6, {});
  EXPECT_EQ(outcome.restored_routes, 0u);
  EXPECT_EQ(outcome.gap_subs_replayed, 1u);
  EXPECT_EQ(net.publish(0, point(150, 150)), std::vector<SubscriptionId>{1});
  EXPECT_EQ(net.ghost_route_count(), 0u);
}

TEST(Membership, GuardsRejectOpsOnDeadBrokers) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.crash_peer(8);
  EXPECT_THROW(net.subscribe(8, box(1, 0, 1)), std::invalid_argument);
  EXPECT_THROW(net.publish(8, point(0, 0)), std::invalid_argument);
  EXPECT_THROW(net.crash_peer(8), std::invalid_argument);
  EXPECT_THROW(net.remove_peer(8), std::invalid_argument);
  EXPECT_THROW(net.add_peer(8), std::invalid_argument);
  // Replacing an alive broker is a protocol violation, not bad input.
  EXPECT_THROW((void)net.replace_peer(0, {}), std::logic_error);
}

TEST(Membership, EngagementRejectsCyclicStaticTopologies) {
  BrokerNetwork net = BrokerNetwork::chain_topology(4, quiet_config());
  net.connect(0, 3);  // close the ring: legal while membership is off
  EXPECT_THROW(net.fail_link(0, 1), std::logic_error);
}

// --- snapshot round trip ------------------------------------------------

TEST(Membership, SnapshotRestoresTheLinkState) {
  BrokerNetwork net = BrokerNetwork::figure1_topology(quiet_config());
  net.subscribe(0, box(1, 100, 200));
  net.fail_link(2, 3);
  net.crash_peer(8);
  const auto bytes = net.snapshot_all();

  BrokerNetwork restored(quiet_config());
  restored.restore_all({bytes.data(), bytes.size()});
  ASSERT_TRUE(restored.membership_active());
  EXPECT_FALSE(restored.is_alive(8));
  EXPECT_TRUE(restored.link_state().has_failed_link(2, 3));
  EXPECT_EQ(restored.link_state().component_count(),
            net.link_state().component_count());
  // The restored replica keeps making the same decisions.
  restored.heal_link(2, 3);
  net.heal_link(2, 3);
  EXPECT_EQ(restored.publish(7, point(150, 150)),
            net.publish(7, point(150, 150)));
  EXPECT_EQ(restored.ghost_route_count(), 0u);
}

// --- generator + driver differential soak ------------------------------

workload::ChurnConfig soak_config(double duration, std::size_t brokers) {
  workload::ChurnConfig config;
  config.duration = duration;
  config.subscription_rate = 3.0;
  config.publication_rate = 6.0;
  config.membership.join_rate = 0.2;
  config.membership.leave_rate = 0.15;
  config.membership.crash_rate = 0.2;
  config.membership.partition_rate = 0.4;
  config.membership.partition_mean = 2.0;
  config.membership.replace_mean = 1.5;
  // Bound growth so the cascade slot contract holds at the default slot
  // width (slot/2 must clear (max_brokers + 1) hops of link latency).
  config.membership.max_brokers = brokers + 8;
  return config;
}

TEST(MembershipSoak, PartitionThenHealReconvergesOnEveryTopology) {
  for (const auto& topology : membership_topologies(24, 2006)) {
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
      NetworkConfig config = quiet_config();
      config.seed = seed;
      BrokerNetwork net = topology.build(config);
      const MembershipUniverse universe = topology.universe(net);
      const workload::ChurnTrace trace = workload::generate_churn_trace(
          soak_config(20.0, topology.brokers), universe, seed);

      sim::ChurnDriver::Options options;
      options.differential = true;
      const sim::ChurnReport report = sim::ChurnDriver::run(net, trace, options);

      EXPECT_EQ(report.mismatched_publishes, 0u)
          << topology.name << " seed " << seed;
      EXPECT_EQ(report.membership.ghost_routes, 0u)
          << topology.name << " seed " << seed;
      EXPECT_EQ(report.totals.notifications_lost, 0u)
          << topology.name << " seed " << seed;
      EXPECT_EQ(report.totals.notifications_duplicated, 0u)
          << topology.name << " seed " << seed;
      EXPECT_EQ(report.membership.events, trace.membership_count)
          << topology.name << " seed " << seed;
      EXPECT_GE(report.membership.final_alive_brokers,
                soak_config(20.0, topology.brokers).membership.min_brokers)
          << topology.name << " seed " << seed;
    }
  }
}

TEST(MembershipSoak, MembershipTraceSurvivesTheWireRoundTrip) {
  const auto topologies = membership_topologies(24, 2006);
  const auto& ring = topologies[5];
  ASSERT_EQ(ring.name, "ring");
  NetworkConfig config = quiet_config();
  BrokerNetwork net = ring.build(config);
  const workload::ChurnTrace trace = workload::generate_churn_trace(
      soak_config(15.0, ring.brokers), ring.universe(net), 99);
  ASSERT_TRUE(trace.has_membership);
  ASSERT_GT(trace.membership_count, 0u);

  wire::ByteWriter out;
  wire::write_churn_trace(out, trace);
  const auto bytes = out.take();
  wire::ByteReader in({bytes.data(), bytes.size()});
  const workload::ChurnTrace decoded = wire::read_churn_trace(in);

  // The decoded trace must drive a fresh network to the identical report.
  BrokerNetwork original = ring.build(config);
  BrokerNetwork replayed = ring.build(config);
  sim::ChurnDriver::Options options;
  options.differential = true;
  const auto a = sim::ChurnDriver::run(original, trace, options);
  const auto b = sim::ChurnDriver::run(replayed, decoded, options);
  EXPECT_EQ(a.mismatched_publishes, 0u);
  EXPECT_EQ(b.mismatched_publishes, 0u);
  EXPECT_EQ(a.totals.notifications_delivered, b.totals.notifications_delivered);
  EXPECT_EQ(a.membership.events, b.membership.events);
  EXPECT_EQ(decoded.universe.standby, trace.universe.standby);
}

}  // namespace
}  // namespace psc::routing
