// TCP loopback differential suite (tier 1): a real multi-process broker
// cluster — psc_brokerd processes peered over nonblocking epoll sockets —
// replaying churn traces with delivered sets gated byte-identical against
// the in-process FlatOracle, exactly like the sim's differential suites.
//
// Also the direct sim-vs-TCP leg: the same trace through a BrokerNetwork
// (SimTransport) and through the cluster must produce identical delivered
// sets publish for publish. Both are independently gated against the
// oracle, so this is implied transitively — asserting it directly makes a
// transport-behavior regression point at the transport, not the gate.
//
// The kill leg SIGKILLs a broker mid-trace: every surviving neighbour's
// EOF-triggered purge (the fail_link repair semantics) must quiesce before
// traffic resumes, and the oracle mirrors the crash — zero divergence,
// zero ghost deliveries from the dead component.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "net/cluster.hpp"
#include "net/cluster_driver.hpp"
#include "routing/broker_network.hpp"
#include "workload/churn_workload.hpp"

#ifndef PSC_BROKERD_BIN
#error "PSC_BROKERD_BIN must point at the psc_brokerd executable"
#endif

namespace psc {
namespace {

using Link = std::pair<routing::BrokerId, routing::BrokerId>;

workload::ChurnTrace make_trace(std::size_t brokers, std::uint64_t seed,
                                double duration) {
  workload::ChurnConfig config;
  config.duration = duration;
  // The TCP op vocabulary is TTL-free (wall clock is not sim time) and
  // membership-free (kills are driver-initiated). ttl_fraction = 0 routes
  // every mortal subscription through an explicit kUnsubscribe instead.
  config.ttl_fraction = 0.0;
  return workload::generate_churn_trace(config, brokers, seed);
}

net::ClusterOptions chain_options(std::size_t brokers, std::uint64_t seed) {
  net::ClusterOptions options;
  options.brokerd_path = PSC_BROKERD_BIN;
  options.brokers = brokers;
  for (routing::BrokerId b = 1; b < brokers; ++b) {
    options.links.emplace_back(b - 1, b);
  }
  options.seed = seed;
  return options;
}

TEST(TcpTransportTest, FiveBrokerChainMatchesOracle) {
  const auto trace = make_trace(5, 0x5eed1, 20.0);
  net::Cluster cluster(chain_options(5, 0x5eed1));
  cluster.start();
  const net::ReplayReport report =
      net::replay_trace_vs_oracle(cluster, trace);
  cluster.shutdown();
  EXPECT_GT(report.publishes, 0u);
  EXPECT_GT(report.subscribes, 0u);
  EXPECT_EQ(report.divergences, 0u);
  EXPECT_EQ(report.skipped, 0u);
}

TEST(TcpTransportTest, StarTopologyMatchesOracle) {
  net::ClusterOptions options;
  options.brokerd_path = PSC_BROKERD_BIN;
  options.brokers = 5;
  options.links = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  options.seed = 0x5eed2;
  const auto trace = make_trace(5, 0x5eed2, 15.0);
  net::Cluster cluster(std::move(options));
  cluster.start();
  const net::ReplayReport report =
      net::replay_trace_vs_oracle(cluster, trace);
  cluster.shutdown();
  EXPECT_GT(report.publishes, 0u);
  EXPECT_EQ(report.divergences, 0u);
}

TEST(TcpTransportTest, DeliveredSetsMatchSimTransportPublishForPublish) {
  const std::uint64_t seed = 0x5eed3;
  const auto trace = make_trace(5, seed, 15.0);

  // Sim twin: same chain, same seed, the differential kExact store policy
  // the brokerd default uses — decisions are deterministic on both sides.
  routing::NetworkConfig config =
      routing::NetworkConfig::Builder().seed(seed).build();
  config.store.policy = store::CoveragePolicy::kExact;
  auto sim_net = routing::BrokerNetwork::chain_topology(5, config);

  net::Cluster cluster(chain_options(5, seed));
  cluster.start();

  std::size_t publishes = 0;
  for (const workload::ChurnOp& op : trace.ops) {
    switch (op.kind) {
      case workload::ChurnOpKind::kSubscribe:
        sim_net.subscribe(op.broker, op.sub);
        cluster.subscribe(op.broker, op.sub);
        break;
      case workload::ChurnOpKind::kUnsubscribe: {
        sim_net.unsubscribe(op.broker, op.id);
        cluster.unsubscribe(op.broker, op.id);
        break;
      }
      case workload::ChurnOpKind::kPublish: {
        const auto sim_got = sim_net.publish(op.broker, op.pub);
        const auto tcp_got = cluster.publish(op.broker, op.pub);
        EXPECT_EQ(sim_got, tcp_got) << "publish #" << publishes;
        ++publishes;
        break;
      }
      default:
        break;  // kAdvance: wall clock needs no driving
    }
  }
  cluster.shutdown();
  EXPECT_GT(publishes, 0u);
}

TEST(TcpTransportTest, KillBrokerMidTraceEscalatesWithoutDivergence) {
  const std::uint64_t seed = 0x5eed4;
  const auto trace = make_trace(5, seed, 20.0);
  net::Cluster cluster(chain_options(5, seed));
  cluster.start();

  net::ReplayOptions options;
  options.kill_at_op = trace.ops.size() / 2;
  options.victim = 2;  // mid-chain: splits {0,1} from {3,4}
  const net::ReplayReport report =
      net::replay_trace_vs_oracle(cluster, trace, options);
  EXPECT_FALSE(cluster.is_alive(2));
  EXPECT_TRUE(cluster.is_alive(0));
  cluster.shutdown();
  EXPECT_TRUE(report.killed);
  EXPECT_GT(report.publishes, 0u);
  EXPECT_EQ(report.divergences, 0u);
}

TEST(TcpTransportTest, KillLeafPurgesItsSubscriptionsEverywhere) {
  // Targeted (non-trace) scenario: subs at a leaf must stop being
  // delivered the moment the leaf dies and its neighbour's purge ran.
  net::Cluster cluster(chain_options(3, 0x5eed5));
  cluster.start();
  cluster.subscribe(2, core::Subscription({{0.0, 100.0}}, 1));
  cluster.subscribe(0, core::Subscription({{0.0, 100.0}}, 2));

  auto delivered = cluster.publish(1, core::Publication({50.0}));
  EXPECT_EQ(delivered, (std::vector<core::SubscriptionId>{1, 2}));

  cluster.kill_broker(2);
  delivered = cluster.publish(1, core::Publication({50.0}));
  // Route to the dead leaf purged: only the surviving sub delivers, and no
  // ghost route makes broker 1 forward into the void.
  EXPECT_EQ(delivered, (std::vector<core::SubscriptionId>{2}));
  cluster.shutdown();
}

}  // namespace
}  // namespace psc
