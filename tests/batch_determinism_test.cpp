// Property tests for the exec layer's determinism contract
// (docs/ARCHITECTURE.md):
//
//   1. shard_count == 1 is decision-for-decision identical to the
//      sequential SubscriptionStore — same InsertResults (activation,
//      coverage, demotions, engine verdicts), same promotions on erase,
//      same match outputs IN ORDER — under randomized churn, for every
//      coverage policy (the exec analogue of index_equivalence_test).
//
//   2. match_batch notifications over shards = 1, 2, 8 are identical to
//      the sequential store's matches for randomized workloads, for any
//      pool size (0 = inline, or multi-worker), as id sets per
//      publication. For a coverage-free store matching is exact and
//      partition-independent, so this holds with equality.
//
//   3. Broker batch APIs reproduce their sequential counterparts:
//      insert_batch == handle_subscription loop (forward lists, link-store
//      states, suppression counts), match_batch == handle_publication loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "exec/sharded_store.hpp"
#include "exec/thread_pool.hpp"
#include "match/sharded_matcher.hpp"
#include "routing/broker.hpp"
#include "store/subscription_store.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace psc::exec {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

void expect_same_insert(const store::InsertResult& a,
                        const store::InsertResult& b, int step) {
  EXPECT_EQ(a.accepted_active, b.accepted_active) << step;
  EXPECT_EQ(a.covered, b.covered) << step;
  EXPECT_EQ(a.demoted, b.demoted) << step;
  ASSERT_EQ(a.engine_result.has_value(), b.engine_result.has_value()) << step;
  if (a.engine_result) {
    EXPECT_EQ(a.engine_result->covered, b.engine_result->covered) << step;
    EXPECT_EQ(a.engine_result->path, b.engine_result->path) << step;
    EXPECT_EQ(a.engine_result->iterations, b.engine_result->iterations) << step;
    EXPECT_EQ(a.engine_result->rho_w, b.engine_result->rho_w) << step;
  }
}

store::StoreConfig store_config(store::CoveragePolicy policy) {
  store::StoreConfig config;
  config.policy = policy;
  config.engine.max_iterations = 5'000;
  return config;
}

class SingleShardEquivalence
    : public ::testing::TestWithParam<store::CoveragePolicy> {};

// Property 1: the single-shard fallback IS the sequential path.
TEST_P(SingleShardEquivalence, DecisionForDecisionIdenticalUnderChurn) {
  const std::uint64_t seed = 0xabcdULL;
  ShardConfig config;
  config.shard_count = 1;
  config.store = store_config(GetParam());
  ShardedStore sharded(config, seed);
  // The contract names the reference seed explicitly: shard_seed(seed, 0).
  store::SubscriptionStore sequential(config.store, shard_seed(seed, 0));

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 8;
  workload::ComparisonStream stream(stream_config, 77);
  util::Rng rng(5);
  std::vector<SubscriptionId> live;

  for (int step = 0; step < 300; ++step) {
    if (!live.empty() && rng.bernoulli(0.2)) {
      const SubscriptionId victim = live[rng.next_below(live.size())];
      const auto erased_sharded = sharded.erase_reporting(victim);
      const auto erased_sequential = sequential.erase_reporting(victim);
      EXPECT_EQ(erased_sharded.erased, erased_sequential.erased) << step;
      EXPECT_EQ(erased_sharded.promoted, erased_sequential.promoted) << step;
      live.erase(std::find(live.begin(), live.end(), victim));
    } else {
      const Subscription sub = stream.next();
      expect_same_insert(sharded.insert(sub), sequential.insert(sub), step);
      live.push_back(sub.id());
    }
    ASSERT_EQ(sharded.active_count(), sequential.active_count()) << step;
    ASSERT_EQ(sharded.covered_count(), sequential.covered_count()) << step;

    const Publication pub = workload::uniform_publication(
        stream_config.attribute_count, 0.0, 1000.0, rng);
    // Including order: one shard's merge is that shard's own order.
    EXPECT_EQ(sharded.match_active(pub), sequential.match_active(pub)) << step;
    EXPECT_EQ(sharded.match(pub), sequential.match(pub)) << step;
  }
  for (const SubscriptionId id : live) {
    EXPECT_EQ(sharded.is_active(id), sequential.is_active(id));
    EXPECT_EQ(sharded.coverers_of(id), sequential.coverers_of(id));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SingleShardEquivalence,
                         ::testing::Values(store::CoveragePolicy::kNone,
                                           store::CoveragePolicy::kPairwise,
                                           store::CoveragePolicy::kGroup,
                                           store::CoveragePolicy::kExact),
                         [](const auto& info) {
                           return std::string(store::to_string(info.param));
                         });

// Property 2: notifications are shard-count- and pool-size-invariant.
TEST(MatchBatchDeterminism, ShardCountsAgreeWithSequentialStore) {
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 10;
  stream_config.min_constrained = 2;
  stream_config.max_constrained = 5;

  std::vector<Subscription> subs;
  {
    workload::ComparisonStream stream(stream_config, 2006);
    subs = stream.take(400);
  }
  std::vector<Publication> pubs;
  util::Rng pub_rng(17);
  for (int i = 0; i < 120; ++i) {
    pubs.push_back(workload::uniform_publication(stream_config.attribute_count,
                                                 0.0, 1000.0, pub_rng));
  }

  // Sequential reference: one coverage-free store holding everything.
  store::StoreConfig reference_config;
  reference_config.policy = store::CoveragePolicy::kNone;
  reference_config.demote_covered_actives = false;
  store::SubscriptionStore reference(reference_config, 1);
  for (const auto& sub : subs) (void)reference.insert(sub);
  std::vector<std::vector<SubscriptionId>> expected;
  expected.reserve(pubs.size());
  for (const auto& pub : pubs) {
    expected.push_back(reference.match_active(pub));  // already id-sorted
  }

  ThreadPool pool(3);
  for (const std::size_t shards : {1UL, 2UL, 8UL}) {
    ShardConfig config;
    config.shard_count = shards;
    config.store = reference_config;
    ShardedStore sharded(config, 99);
    (void)sharded.insert_batch(subs, &pool);

    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const auto batched = sharded.match_active_batch(pubs, p);
      ASSERT_EQ(batched.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        auto ids = batched[i];
        std::sort(ids.begin(), ids.end());
        EXPECT_EQ(ids, expected[i]) << "shards=" << shards << " pub=" << i;
      }
    }
  }
}

// Same property through the notification layer: ShardedMatcher's matched
// sets and destination fan-out are shard-count-invariant and agree with
// the sequential Matcher.
TEST(MatchBatchDeterminism, ShardedMatcherNotificationsMatchSequentialMatcher) {
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  std::vector<Subscription> subs;
  {
    workload::ComparisonStream stream(stream_config, 31);
    subs = stream.take(180);
  }
  std::vector<Publication> pubs;
  util::Rng pub_rng(32);
  for (int i = 0; i < 60; ++i) {
    pubs.push_back(workload::uniform_publication(stream_config.attribute_count,
                                                 0.0, 1000.0, pub_rng));
  }

  store::StoreConfig flat_config;
  flat_config.policy = store::CoveragePolicy::kNone;
  flat_config.demote_covered_actives = false;
  match::Matcher matcher(flat_config, 1);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    (void)matcher.subscribe(subs[i],
                            static_cast<match::NeighborId>(i % 5));
  }

  ThreadPool pool(2);
  for (const std::size_t shards : {1UL, 2UL, 8UL}) {
    ShardConfig config;
    config.shard_count = shards;
    config.store = flat_config;
    match::ShardedMatcher sharded(config, 1, &pool);
    for (std::size_t i = 0; i < subs.size(); ++i) {
      (void)sharded.subscribe(subs[i], static_cast<match::NeighborId>(i % 5));
    }
    const auto outcomes = sharded.match_batch(pubs);
    ASSERT_EQ(outcomes.size(), pubs.size());
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      auto expected = matcher.match(pubs[i]);
      std::sort(expected.matched.begin(), expected.matched.end());
      std::sort(expected.destinations.begin(), expected.destinations.end());
      auto destinations = outcomes[i].destinations;
      std::sort(destinations.begin(), destinations.end());
      EXPECT_EQ(outcomes[i].matched, expected.matched)
          << "shards=" << shards << " pub=" << i;
      EXPECT_EQ(destinations, expected.destinations)
          << "shards=" << shards << " pub=" << i;
    }
  }
}

// Property 3: broker batch entry points reproduce sequential handling.
TEST(BrokerBatchDeterminism, InsertAndMatchBatchesReproduceSequentialBroker) {
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 4;
  stream_config.max_constrained = 3;
  std::vector<Subscription> subs;
  {
    workload::ComparisonStream stream(stream_config, 55);
    subs = stream.take(120);
  }
  // Duplicate ids in the batch must be dropped like repeated deliveries.
  subs.push_back(subs.front());
  std::vector<Publication> pubs;
  util::Rng pub_rng(56);
  for (int i = 0; i < 40; ++i) {
    pubs.push_back(workload::uniform_publication(stream_config.attribute_count,
                                                 0.0, 1000.0, pub_rng));
  }

  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kGroup;
  config.engine.max_iterations = 2'000;

  const routing::Origin local{true, routing::kInvalidBroker};
  ThreadPool pool(2);

  routing::Broker sequential(7, config, 42, /*match_shards=*/1);
  routing::Broker batched(7, config, 42, /*match_shards=*/4);
  for (const routing::BrokerId n : {1u, 2u, 3u}) {
    sequential.add_neighbor(n);
    batched.add_neighbor(n);
  }

  // Three batches with distinct origins, so matching later exercises both
  // local delivery and reverse-path destinations (including the
  // never-send-back rule).
  const std::size_t third = subs.size() / 3;
  const std::vector<std::pair<routing::Origin, std::span<const Subscription>>>
      batches = {
          {local, std::span<const Subscription>(subs).subspan(0, third)},
          {routing::Origin{false, 1},
           std::span<const Subscription>(subs).subspan(third, third)},
          {routing::Origin{false, 3},
           std::span<const Subscription>(subs).subspan(2 * third)},
      };
  std::uint64_t suppressed_sequential = 0;
  std::uint64_t suppressed_batched = 0;
  for (const auto& [origin, slice] : batches) {
    std::vector<std::vector<routing::BrokerId>> expected_forwards;
    expected_forwards.reserve(slice.size());
    for (const auto& sub : slice) {
      expected_forwards.push_back(
          sequential.handle_subscription(sub, origin, &suppressed_sequential));
    }
    const auto forwards =
        batched.insert_batch(slice, origin, &pool, &suppressed_batched);
    EXPECT_EQ(forwards, expected_forwards);
  }
  EXPECT_EQ(suppressed_batched, suppressed_sequential);
  EXPECT_EQ(batched.routing_table_size(), sequential.routing_table_size());
  for (const routing::BrokerId n : {1u, 2u, 3u}) {
    ASSERT_NE(batched.forwarded_store(n), nullptr);
    ASSERT_NE(sequential.forwarded_store(n), nullptr);
    EXPECT_EQ(batched.forwarded_store(n)->active_count(),
              sequential.forwarded_store(n)->active_count());
    EXPECT_EQ(batched.forwarded_store(n)->covered_count(),
              sequential.forwarded_store(n)->covered_count());
  }

  const routing::Origin from_link{false, 2};
  const auto routes = batched.match_batch(pubs, from_link, &pool);
  ASSERT_EQ(routes.size(), pubs.size());
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    std::vector<SubscriptionId> expected_local;
    const auto expected_destinations =
        sequential.handle_publication(pubs[i], from_link, expected_local);
    EXPECT_EQ(routes[i].local_matches, expected_local) << i;
    EXPECT_EQ(routes[i].destinations, expected_destinations) << i;
    // And the batch path equals the same broker's own sequential path.
    std::vector<SubscriptionId> own_local;
    const auto own_destinations =
        batched.handle_publication(pubs[i], from_link, own_local);
    EXPECT_EQ(routes[i].local_matches, own_local) << i;
    EXPECT_EQ(routes[i].destinations, own_destinations) << i;
  }
}

}  // namespace
}  // namespace psc::exec
