// Frame-boundary torture suite for the TCP transport's byte-stream layer
// (net/frame.hpp) and the NetMessage envelope codec (net/message.hpp).
//
// The FrameReader is socket-agnostic by design so this suite can feed it
// every chunking a real TCP stream can produce: 1-byte reads, many frames
// coalesced into one read, a length prefix split across reads, a stream
// truncated mid-frame by a disconnect. Run under ASan/UBSan in CI like the
// rest of the wire suites — every rejection path must throw DecodeError,
// never touch memory it should not.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/frame.hpp"
#include "net/message.hpp"
#include "wire/byte_buffer.hpp"
#include "wire/codec.hpp"

namespace psc {
namespace {

std::vector<std::uint8_t> frame_of(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  net::append_frame(out, payload);
  return out;
}

TEST(FrameTortureTest, OneByteFeedsReassembleExactly) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint8_t> stream = frame_of(payload);

  net::FrameReader reader;
  std::vector<std::uint8_t> got;
  std::size_t frames = 0;
  for (const std::uint8_t byte : stream) {
    reader.feed(std::span(&byte, 1));
    while (reader.next(got)) {
      ++frames;
      EXPECT_EQ(got, payload);
    }
  }
  EXPECT_EQ(frames, 1u);
  EXPECT_TRUE(reader.at_boundary());
}

TEST(FrameTortureTest, CoalescedFramesSplitCorrectly) {
  // Five frames of different sizes delivered in ONE read, as TCP loves to.
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::uint8_t> stream;
  for (std::size_t n = 1; n <= 5; ++n) {
    std::vector<std::uint8_t> payload(n * 3, static_cast<std::uint8_t>(n));
    net::append_frame(stream, payload);
    payloads.push_back(std::move(payload));
  }
  net::FrameReader reader;
  reader.feed(stream);
  std::vector<std::uint8_t> got;
  for (const auto& expected : payloads) {
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_FALSE(reader.next(got));
  EXPECT_TRUE(reader.at_boundary());
}

TEST(FrameTortureTest, PrefixSplitAcrossFeeds) {
  const std::vector<std::uint8_t> payload{9, 9, 9};
  const std::vector<std::uint8_t> stream = frame_of(payload);
  // Split inside the 4-byte length prefix at every possible point.
  for (std::size_t split = 1; split < 4; ++split) {
    net::FrameReader reader;
    std::vector<std::uint8_t> got;
    reader.feed(std::span(stream.data(), split));
    EXPECT_FALSE(reader.next(got));
    reader.feed(std::span(stream.data() + split, stream.size() - split));
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(got, payload);
  }
}

TEST(FrameTortureTest, MidFrameDisconnectLeavesPartialVisible) {
  const std::vector<std::uint8_t> stream = frame_of({1, 2, 3, 4, 5, 6});
  net::FrameReader reader;
  // The connection dies after the prefix + half the payload.
  reader.feed(std::span(stream.data(), 4 + 3));
  std::vector<std::uint8_t> got;
  EXPECT_FALSE(reader.next(got));
  // EOF mid-frame is detectable: buffered bytes remain, not at a boundary.
  EXPECT_FALSE(reader.at_boundary());
  EXPECT_EQ(reader.buffered(), 7u);
}

TEST(FrameTortureTest, ZeroLengthFrameRejected) {
  net::FrameReader reader;
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_THROW(reader.feed(zeros), wire::DecodeError);
}

TEST(FrameTortureTest, OversizedFrameRejectedBeforePayloadArrives) {
  net::FrameReader reader;
  // Header announces kMaxFrameBytes + 1; must throw on the HEADER, not
  // after buffering gigabytes.
  const std::uint32_t len = net::kMaxFrameBytes + 1;
  const std::uint8_t header[4] = {
      static_cast<std::uint8_t>(len & 0xff),
      static_cast<std::uint8_t>((len >> 8) & 0xff),
      static_cast<std::uint8_t>((len >> 16) & 0xff),
      static_cast<std::uint8_t>((len >> 24) & 0xff)};
  EXPECT_THROW(reader.feed(header), wire::DecodeError);
  // The writer side enforces the same bound (and rejects empty payloads).
  std::vector<std::uint8_t> out;
  EXPECT_THROW(net::append_frame(out, std::vector<std::uint8_t>{}),
               std::length_error);
}

// --- NetMessage envelope round trips ------------------------------------

net::NetMessage round_trip(const net::NetMessage& msg) {
  wire::ByteWriter out;
  net::write_net_message(out, msg);
  wire::ByteReader in(out.buffer());
  net::NetMessage got = net::read_net_message(in);
  EXPECT_TRUE(in.at_end());
  return got;
}

TEST(NetMessageTest, HelloRoundTripsAndVersionGateHolds) {
  const net::NetMessage got = round_trip(net::make_hello(3));
  EXPECT_EQ(got.kind, net::NetMessage::Kind::kHello);
  EXPECT_EQ(got.version, wire::kCodecVersion);
  EXPECT_EQ(got.sender, 3u);

  EXPECT_TRUE(net::handshake_version_ok(wire::kCodecVersion));
  EXPECT_TRUE(net::handshake_version_ok(wire::kMinPeerVersion));
  EXPECT_FALSE(net::handshake_version_ok(wire::kMinPeerVersion - 1));
  EXPECT_FALSE(net::handshake_version_ok(wire::kCodecVersion + 1));
}

TEST(NetMessageTest, DataCarriesLinkFrameWithAnnouncement) {
  wire::Announcement ann;
  ann.kind = wire::Announcement::Kind::kPublication;
  ann.from = 2;
  ann.pub = core::Publication({1.5, -2.5});
  ann.token = 77;
  wire::ByteWriter encoded;
  wire::write_announcement(encoded, ann);

  wire::LinkFrame frame;
  frame.kind = wire::LinkFrame::Kind::kData;
  frame.seq = 5;
  frame.ack = 3;
  frame.payload = encoded.buffer();

  const net::NetMessage got = round_trip(net::make_data(99, frame));
  EXPECT_EQ(got.kind, net::NetMessage::Kind::kData);
  EXPECT_EQ(got.nonce, 99u);
  EXPECT_EQ(got.frame, frame);

  wire::ByteReader payload(got.frame.payload);
  EXPECT_EQ(wire::read_announcement(payload), ann);
}

TEST(NetMessageTest, DoneAndOpResultCarryIds) {
  const net::NetMessage done = round_trip(net::make_done(4, {10, 20, 30}));
  EXPECT_EQ(done.kind, net::NetMessage::Kind::kDone);
  EXPECT_EQ(done.nonce, 4u);
  EXPECT_EQ(done.ids, (std::vector<core::SubscriptionId>{10, 20, 30}));

  net::NetMessage result;
  result.kind = net::NetMessage::Kind::kOpResult;
  result.op_id = 12;
  result.ids = {7};
  const net::NetMessage got = round_trip(result);
  EXPECT_EQ(got.op_id, 12u);
  EXPECT_EQ(got.ids, (std::vector<core::SubscriptionId>{7}));
}

TEST(NetMessageTest, ClientOpsRoundTrip) {
  net::NetMessage sub_op;
  sub_op.kind = net::NetMessage::Kind::kClientOp;
  sub_op.op_id = 1;
  sub_op.op = net::ClientOpKind::kSubscribe;
  sub_op.sub = core::Subscription({{0.0, 10.0}, {5.0, 6.0}}, 42);
  net::NetMessage got = round_trip(sub_op);
  EXPECT_EQ(got.op, net::ClientOpKind::kSubscribe);
  EXPECT_EQ(got.sub.id(), 42u);
  EXPECT_EQ(got.sub, sub_op.sub);

  net::NetMessage unsub_op;
  unsub_op.kind = net::NetMessage::Kind::kClientOp;
  unsub_op.op_id = 2;
  unsub_op.op = net::ClientOpKind::kUnsubscribe;
  unsub_op.id = 42;
  got = round_trip(unsub_op);
  EXPECT_EQ(got.op, net::ClientOpKind::kUnsubscribe);
  EXPECT_EQ(got.id, 42u);

  net::NetMessage pub_op;
  pub_op.kind = net::NetMessage::Kind::kClientOp;
  pub_op.op_id = 3;
  pub_op.op = net::ClientOpKind::kPublish;
  pub_op.pub = core::Publication({3.25});
  pub_op.token = 1001;
  got = round_trip(pub_op);
  EXPECT_EQ(got.op, net::ClientOpKind::kPublish);
  EXPECT_EQ(got.token, 1001u);
  ASSERT_EQ(got.pub.values().size(), 1u);
  EXPECT_EQ(got.pub.values()[0], 3.25);
}

TEST(NetMessageTest, EventRoundTrips) {
  const net::NetMessage got =
      round_trip(net::make_event(net::EventKind::kPeerDown, 2, 5));
  EXPECT_EQ(got.kind, net::NetMessage::Kind::kEvent);
  EXPECT_EQ(got.event, net::EventKind::kPeerDown);
  EXPECT_EQ(got.a, 2u);
  EXPECT_EQ(got.b, 5u);
}

TEST(NetMessageTest, MalformedInputsThrowNeverUB) {
  // Unknown message kind.
  {
    const std::vector<std::uint8_t> bytes{0x7f};
    wire::ByteReader in(bytes);
    EXPECT_THROW((void)net::read_net_message(in), wire::DecodeError);
  }
  // Unknown client-op tag.
  {
    wire::ByteWriter out;
    out.u8(static_cast<std::uint8_t>(net::NetMessage::Kind::kClientOp));
    out.u64(1);
    out.varint(250);
    wire::ByteReader in(out.buffer());
    EXPECT_THROW((void)net::read_net_message(in), wire::DecodeError);
  }
  // Done whose id count exceeds the buffer.
  {
    wire::ByteWriter out;
    out.u8(static_cast<std::uint8_t>(net::NetMessage::Kind::kDone));
    out.u64(1);
    out.varint(1000000);
    wire::ByteReader in(out.buffer());
    EXPECT_THROW((void)net::read_net_message(in), wire::DecodeError);
  }
  // Truncated hello.
  {
    wire::ByteWriter out;
    out.u8(static_cast<std::uint8_t>(net::NetMessage::Kind::kHello));
    out.u8(1);
    wire::ByteReader in(out.buffer());
    EXPECT_THROW((void)net::read_net_message(in), wire::DecodeError);
  }
  // Trailing bytes after a complete message (decode_frame's guard).
  {
    wire::ByteWriter out;
    net::write_net_message(out, net::make_hello(1));
    out.u8(0xee);
    EXPECT_THROW((void)net::decode_frame(out.buffer()), wire::DecodeError);
  }
}

}  // namespace
}  // namespace psc
