// Unit tests for core::Subscription and core::Publication.
#include "core/subscription.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/publication.hpp"

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(Subscription, ConstructionStoresRanges) {
  const Subscription s = box2(0, 10, 5, 7, 42);
  EXPECT_EQ(s.attribute_count(), 2u);
  EXPECT_EQ(s.range(0), (Interval{0, 10}));
  EXPECT_EQ(s.range(1), (Interval{5, 7}));
  EXPECT_EQ(s.id(), 42u);
}

TEST(Subscription, EmptyRangeRejected) {
  EXPECT_THROW(Subscription({Interval{5, 3}}), std::invalid_argument);
}

TEST(Subscription, EverythingIsUnbounded) {
  const Subscription s = Subscription::everything(3);
  EXPECT_EQ(s.attribute_count(), 3u);
  EXPECT_TRUE(s.contains_point(std::vector<Value>{1e300, -1e300, 0.0}));
}

TEST(Subscription, VolumeIsProductOfWidths) {
  EXPECT_EQ(box2(0, 10, 0, 5).volume(), 50.0);
  EXPECT_EQ(box2(0, 10, 3, 3).volume(), 0.0);  // degenerate side
}

TEST(Subscription, VolumeUnboundedIsInfinite) {
  EXPECT_TRUE(std::isinf(Subscription::everything(2).volume()));
}

TEST(Subscription, ContainsPointChecksAllAttributes) {
  const Subscription s = box2(0, 10, 5, 7);
  EXPECT_TRUE(s.contains_point(std::vector<Value>{5, 6}));
  EXPECT_TRUE(s.contains_point(std::vector<Value>{0, 5}));   // corner
  EXPECT_TRUE(s.contains_point(std::vector<Value>{10, 7}));  // corner
  EXPECT_FALSE(s.contains_point(std::vector<Value>{11, 6}));
  EXPECT_FALSE(s.contains_point(std::vector<Value>{5, 8}));
}

TEST(Subscription, ContainsPointRejectsWrongWidth) {
  const Subscription s = box2(0, 10, 5, 7);
  EXPECT_FALSE(s.contains_point(std::vector<Value>{5}));
  EXPECT_FALSE(s.contains_point(std::vector<Value>{5, 6, 7}));
}

TEST(Subscription, CoversRequiresAllAttributes) {
  const Subscription outer = box2(0, 10, 0, 10);
  EXPECT_TRUE(outer.covers(box2(1, 9, 1, 9)));
  EXPECT_TRUE(outer.covers(outer));
  EXPECT_FALSE(outer.covers(box2(1, 11, 1, 9)));
  EXPECT_FALSE(outer.covers(box2(-1, 9, 1, 9)));
}

TEST(Subscription, CoversSchemaMismatchIsFalse) {
  EXPECT_FALSE(box2(0, 10, 0, 10).covers(Subscription({Interval{0, 1}})));
}

TEST(Subscription, IntersectsAndInterior) {
  const Subscription a = box2(0, 10, 0, 10);
  EXPECT_TRUE(a.intersects(box2(10, 20, 5, 6)));          // touching counts
  EXPECT_FALSE(a.overlaps_interior(box2(10, 20, 5, 6)));  // no measure
  EXPECT_TRUE(a.overlaps_interior(box2(9, 20, 5, 6)));
  EXPECT_FALSE(a.intersects(box2(11, 20, 5, 6)));
}

TEST(Subscription, IntersectProducesBoxOrEmptyMarker) {
  const Subscription a = box2(0, 10, 0, 10);
  const Subscription inter = a.intersect(box2(5, 15, -5, 5));
  EXPECT_EQ(inter.range(0), (Interval{5, 10}));
  EXPECT_EQ(inter.range(1), (Interval{0, 5}));
  EXPECT_TRUE(inter.is_satisfiable());

  const Subscription disjoint = a.intersect(box2(11, 20, 0, 10));
  EXPECT_FALSE(disjoint.is_satisfiable());
}

TEST(Subscription, IntersectSchemaMismatchThrows) {
  EXPECT_THROW(box2(0, 1, 0, 1).intersect(Subscription({Interval{0, 1}})),
               std::invalid_argument);
}

TEST(Subscription, EqualityIgnoresId) {
  EXPECT_EQ(box2(0, 1, 2, 3, 7), box2(0, 1, 2, 3, 9));
  EXPECT_FALSE(box2(0, 1, 2, 3) == box2(0, 1, 2, 4));
}

TEST(Subscription, ToStringMentionsIdAndRanges) {
  const std::string repr = to_string(box2(0, 1, 2, 3, 5));
  EXPECT_NE(repr.find("s5"), std::string::npos);
  EXPECT_NE(repr.find("[0, 1]"), std::string::npos);
  EXPECT_NE(repr.find("[2, 3]"), std::string::npos);
}

TEST(Publication, MatchesSubscription) {
  const Subscription s = box2(0, 10, 5, 7);
  EXPECT_TRUE(Publication({5.0, 6.0}).matches(s));
  EXPECT_FALSE(Publication({5.0, 7.5}).matches(s));
}

TEST(Publication, AsBoxIsDegenerate) {
  const Publication p({3.0, 4.0}, 11);
  const Subscription box = p.as_box();
  EXPECT_EQ(box.attribute_count(), 2u);
  EXPECT_EQ(box.range(0), Interval::point(3.0));
  EXPECT_EQ(box.range(1), Interval::point(4.0));
  EXPECT_EQ(box.volume(), 0.0);
}

TEST(Publication, BoxPublicationCoveredBySubscriptionItMatches) {
  const Subscription s = box2(0, 10, 5, 7);
  const Publication p({5.0, 6.0});
  EXPECT_TRUE(s.covers(p.as_box()));
}

TEST(Publication, ValuesAccessors) {
  const Publication p({1.0, 2.0, 3.0}, 99);
  EXPECT_EQ(p.attribute_count(), 3u);
  EXPECT_EQ(p.value(1), 2.0);
  EXPECT_EQ(p.id(), 99u);
}

}  // namespace
}  // namespace psc::core
