// Unit and stress tests for the bounded ring queues that connect the
// publish-pipeline stages: SPSC ordering/backpressure/close semantics,
// MPSC ticket ordering with per-producer FIFO, and threaded stress runs
// (this file is in the TSan label set — the cross-thread handoff pattern
// here is exactly the one the pipeline relies on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/ring_queue.hpp"

namespace psc::exec {
namespace {

// ---------------------------------------------------------------- spsc ----

TEST(SpscRingQueue, CapacityRoundsUpToPowerOfTwoMinTwo) {
  EXPECT_EQ(SpscRingQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRingQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRingQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRingQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRingQueue<int>(9).capacity(), 16u);
}

TEST(SpscRingQueue, FifoSingleThread) {
  SpscRingQueue<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingQueue, FullRingBackpressuresNotOverwrites) {
  SpscRingQueue<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full => refused, element 0 survives
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(99));  // one slot freed
}

TEST(SpscRingQueue, WrapsAroundManyTimes) {
  SpscRingQueue<std::uint64_t> ring(2);
  int out_of_order = 0;
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
    if (out != i) ++out_of_order;
  }
  EXPECT_EQ(out_of_order, 0);
}

TEST(SpscRingQueue, CloseDrainsPendingThenReportsEmpty) {
  SpscRingQueue<int> ring(8);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_FALSE(ring.try_push(3));  // closed => push refused...
  int out = -1;
  EXPECT_TRUE(ring.pop(out));  // ...but pending elements stay poppable
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.pop(out));  // closed AND drained => false, no block
}

TEST(SpscRingQueue, BlockingPopWakesOnClose) {
  SpscRingQueue<int> ring(4);
  std::thread consumer([&] {
    int out = -1;
    EXPECT_FALSE(ring.pop(out));  // empty + closed => wakes with false
  });
  ring.close();
  consumer.join();
}

TEST(SpscRingQueue, ThreadedStreamIsLosslessAndOrdered) {
  // Tight ring (capacity 4) so the producer constantly hits backpressure:
  // the test exercises both full-ring spinning and empty-ring spinning.
  SpscRingQueue<std::uint64_t> ring(4);
  constexpr std::uint64_t kCount = 50'000;
  std::vector<std::uint64_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    std::uint64_t out = 0;
    while (ring.pop(out)) received.push_back(out);
  });
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(ring.push(i));
  ring.close();
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

TEST(SpscRingQueue, PushHappensBeforePop) {
  // The pipeline's slot pattern: plain writes to a shared buffer are
  // published by passing the slot index through the ring. Under TSan this
  // fails if the release/acquire pairing is broken.
  std::vector<std::uint64_t> slots(4, 0);
  SpscRingQueue<std::uint32_t> ring(4);
  SpscRingQueue<std::uint32_t> back(4);
  std::thread worker([&] {
    std::uint32_t token = 0;
    while (ring.pop(token)) {
      slots[token] *= 2;  // plain read-modify-write, ordered by the rings
      ASSERT_TRUE(back.push(token));
    }
    back.close();
  });
  for (std::uint64_t round = 1; round <= 1000; ++round) {
    const auto token = static_cast<std::uint32_t>(round % slots.size());
    slots[token] = round;  // plain write before push
    ASSERT_TRUE(ring.push(token));
    std::uint32_t done = 0;
    ASSERT_TRUE(back.pop(done));
    ASSERT_EQ(done, token);
    ASSERT_EQ(slots[token], round * 2);  // plain read after pop
  }
  ring.close();
  worker.join();
}

// ---------------------------------------------------------------- mpsc ----

TEST(MpscRingQueue, FifoSingleThread) {
  MpscRingQueue<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(8));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRingQueue, CloseDrainsPending) {
  MpscRingQueue<int> ring(4);
  ASSERT_TRUE(ring.try_push(7));
  ring.close();
  EXPECT_FALSE(ring.try_push(8));
  int out = -1;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.pop(out));
}

TEST(MpscRingQueue, MultiProducerLosslessWithPerProducerFifo) {
  // 4 producers × 10k elements through a capacity-8 ring. The consumer
  // must see every element exactly once, and each producer's own stream
  // in its push order (ticket order guarantees it).
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 10'000;
  MpscRingQueue<std::uint64_t> ring(8);
  std::vector<std::uint64_t> received;
  received.reserve(kProducers * kPerProducer);
  std::thread consumer([&] {
    std::uint64_t out = 0;
    while (ring.pop(out)) received.push_back(out);
  });
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ring.push((p << 32) | i));
      }
    });
  }
  for (auto& t : producers) t.join();
  ring.close();
  consumer.join();

  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  std::vector<std::uint64_t> next(kProducers, 0);
  for (const std::uint64_t value : received) {
    const std::uint64_t p = value >> 32;
    const std::uint64_t i = value & 0xffffffffULL;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(i, next[p]) << "producer " << p << " reordered";
    ++next[p];
  }
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
}

}  // namespace
}  // namespace psc::exec
