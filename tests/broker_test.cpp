// Direct unit tests for the Broker node logic (routing table, per-link
// coverage state, duplicate suppression) independent of the network/event
// machinery.
#include "routing/broker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace psc::routing {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

store::StoreConfig pairwise() {
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kPairwise;
  return config;
}

Broker make_broker(std::initializer_list<BrokerId> neighbors,
                   store::StoreConfig config = pairwise()) {
  Broker broker(0, config, /*seed=*/1);
  for (const BrokerId n : neighbors) broker.add_neighbor(n);
  return broker;
}

TEST(Broker, ForwardsToAllNeighborsExceptOrigin) {
  Broker broker = make_broker({1, 2, 3});
  const auto targets =
      broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{false, 2});
  EXPECT_EQ(targets, (std::vector<BrokerId>{1, 3}));
}

TEST(Broker, LocalSubscriptionForwardsEverywhere) {
  Broker broker = make_broker({1, 2});
  const auto targets = broker.handle_subscription(box2(0, 10, 0, 10, 1),
                                                  Origin{true, kInvalidBroker});
  EXPECT_EQ(targets, (std::vector<BrokerId>{1, 2}));
  EXPECT_EQ(broker.routing_table_size(), 1u);
}

TEST(Broker, DuplicateSubscriptionNotReforwarded) {
  Broker broker = make_broker({1, 2});
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{false, 1});
  const auto second =
      broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{false, 2});
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(broker.routing_table_size(), 1u);
}

TEST(Broker, CoverageSuppressesPerLink) {
  Broker broker = make_broker({1});
  std::uint64_t suppressed = 0;
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{true, kInvalidBroker},
                                   &suppressed);
  EXPECT_EQ(suppressed, 0u);
  const auto covered = broker.handle_subscription(
      box2(2, 8, 2, 8, 2), Origin{true, kInvalidBroker}, &suppressed);
  EXPECT_TRUE(covered.empty());
  EXPECT_EQ(suppressed, 1u);
  // Both subscriptions are still routed locally.
  EXPECT_EQ(broker.routing_table_size(), 2u);
  // The link store knows one active + one covered.
  const auto* link = broker.forwarded_store(1);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->active_count(), 1u);
  EXPECT_EQ(link->covered_count(), 1u);
}

TEST(Broker, PublicationRoutedAlongReversePaths) {
  Broker broker = make_broker({1, 2, 3});
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{false, 1});
  (void)broker.handle_subscription(box2(20, 30, 0, 10, 2), Origin{false, 2});
  (void)broker.handle_subscription(box2(0, 5, 0, 5, 3), Origin{true, kInvalidBroker});

  std::vector<SubscriptionId> local;
  auto destinations =
      broker.handle_publication(Publication({3.0, 3.0}), Origin{false, 3}, local);
  std::sort(destinations.begin(), destinations.end());
  EXPECT_EQ(destinations, (std::vector<BrokerId>{1}));
  EXPECT_EQ(local, (std::vector<SubscriptionId>{3}));
}

TEST(Broker, PublicationNeverSentBackToOrigin) {
  Broker broker = make_broker({1, 2});
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{false, 1});
  std::vector<SubscriptionId> local;
  const auto destinations =
      broker.handle_publication(Publication({5.0, 5.0}), Origin{false, 1}, local);
  EXPECT_TRUE(destinations.empty());
  EXPECT_TRUE(local.empty());
}

TEST(Broker, UnsubscriptionOnlyToLinksThatCarriedIt) {
  Broker broker = make_broker({1, 2});
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{true, kInvalidBroker});
  (void)broker.handle_subscription(box2(2, 8, 2, 8, 2), Origin{true, kInvalidBroker});
  // #2 was suppressed on both links; unsubscribing it forwards nowhere.
  const auto outcome2 = broker.handle_unsubscription(2, Origin{true, kInvalidBroker});
  EXPECT_TRUE(outcome2.forward_to.empty());
  EXPECT_TRUE(outcome2.reannounce.empty());
}

TEST(Broker, UnsubscriptionReannouncesPromotedCoveredSubs) {
  Broker broker = make_broker({1});
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{true, kInvalidBroker});
  (void)broker.handle_subscription(box2(2, 8, 2, 8, 2), Origin{true, kInvalidBroker});
  const auto outcome = broker.handle_unsubscription(1, Origin{true, kInvalidBroker});
  EXPECT_EQ(outcome.forward_to, (std::vector<BrokerId>{1}));
  ASSERT_EQ(outcome.reannounce.size(), 1u);
  EXPECT_EQ(outcome.reannounce[0].first, 1u);
  EXPECT_EQ(outcome.reannounce[0].second.id(), 2u);
}

TEST(Broker, UnknownUnsubscriptionIsNoop) {
  Broker broker = make_broker({1});
  const auto outcome = broker.handle_unsubscription(99, Origin{true, kInvalidBroker});
  EXPECT_TRUE(outcome.forward_to.empty());
}

TEST(Broker, ExpiryDropsRouteAndReannounces) {
  Broker broker = make_broker({1});
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{true, kInvalidBroker});
  (void)broker.handle_subscription(box2(2, 8, 2, 8, 2), Origin{true, kInvalidBroker});
  const auto reannounce = broker.handle_expiry(1);
  EXPECT_EQ(broker.routing_table_size(), 1u);
  ASSERT_EQ(reannounce.size(), 1u);
  EXPECT_EQ(reannounce[0].second.id(), 2u);
}

TEST(Broker, SubscriptionsFromFiltersByOrigin) {
  Broker broker = make_broker({1, 2});
  (void)broker.handle_subscription(box2(0, 10, 0, 10, 1), Origin{false, 1});
  (void)broker.handle_subscription(box2(20, 30, 0, 10, 2), Origin{false, 2});
  (void)broker.handle_subscription(box2(40, 50, 0, 10, 3), Origin{false, 1});
  auto from1 = broker.subscriptions_from(Origin{false, 1});
  std::sort(from1.begin(), from1.end());
  EXPECT_EQ(from1, (std::vector<SubscriptionId>{1, 3}));
}

TEST(Broker, AddNeighborIdempotent) {
  Broker broker = make_broker({1, 1, 1});
  EXPECT_EQ(broker.neighbors().size(), 1u);
}

}  // namespace
}  // namespace psc::routing
