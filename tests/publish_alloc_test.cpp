// Pins the allocation-free publish pipeline: once warm, a steady-state
// publication performs ZERO heap allocations through every layer —
// IntervalIndex::stab into a reused buffer, the SubscriptionStore /
// ShardedStore out-parameter match overloads, and
// Broker::handle_publication with caller-owned PublishScratch (flat-map
// routing-table lookups included).
//
// Counting is done by overriding the global allocation functions for this
// test binary (same harness as tests/workspace_alloc_test.cpp). The
// counters are plain atomics so instrumentation itself does not allocate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "routing/broker.hpp"
#include "store/subscription_store.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace psc {
namespace {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

class AllocationGuard {
 public:
  AllocationGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_counting.store(false, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

std::vector<Publication> make_publications(std::size_t n, std::size_t attrs,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Publication> pubs;
  pubs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pubs.push_back(workload::uniform_publication(attrs, 0.0, 1000.0, rng));
  }
  return pubs;
}

TEST(PublishAlloc, StoreMatchOutParamsSteadyStateDoNotAllocate) {
  // Pairwise coverage gives a populated cover DAG, so match() exercises
  // the hierarchical descent as well as the index stab.
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kPairwise;
  store::SubscriptionStore store(config, 99);

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  workload::ComparisonStream stream(stream_config, 5);
  for (int i = 0; i < 400; ++i) (void)store.insert(stream.next());
  ASSERT_GT(store.covered_count(), 0u) << "want a non-trivial cover DAG";

  const auto pubs = make_publications(64, stream_config.attribute_count, 17);
  std::vector<SubscriptionId> actives, all;
  // Warm-up grows every scratch and output buffer to working-set size.
  for (int round = 0; round < 3; ++round) {
    for (const Publication& pub : pubs) {
      actives.clear();
      store.match_active(pub, actives);
      all.clear();
      store.match(pub, all);
    }
  }

  AllocationGuard guard;
  std::size_t matched = 0;
  for (const Publication& pub : pubs) {
    actives.clear();
    store.match_active(pub, actives);
    all.clear();
    store.match(pub, all);
    matched += all.size();
  }
  EXPECT_EQ(guard.count(), 0u)
      << "steady-state out-parameter matches must reuse every buffer";
  ASSERT_GT(matched, 0u) << "the probe set should actually match something";
}

TEST(PublishAlloc, BrokerPublishWithScratchSteadyStateDoesNotAllocate) {
  // A broker with two neighbour links and a sharded local match index:
  // the full publication path — sharded stab, routing-table flat-map
  // lookups, destination dedup — through caller-owned scratch.
  store::StoreConfig store_config;  // default kGroup + index
  routing::Broker broker(0, store_config, 1234, /*match_shards=*/2);
  broker.add_neighbor(1);
  broker.add_neighbor(2);

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 6;
  workload::ComparisonStream stream(stream_config, 21);
  util::Rng origin_rng(3);
  for (int i = 0; i < 300; ++i) {
    const Subscription sub = stream.next();
    // Mix of local subscribers and routes learned from both neighbours,
    // so publications fan out to local matches and link destinations.
    routing::Origin origin;
    switch (origin_rng.next_below(3)) {
      case 0: origin = routing::Origin{true, routing::kInvalidBroker}; break;
      case 1: origin = routing::Origin{false, 1}; break;
      default: origin = routing::Origin{false, 2}; break;
    }
    (void)broker.handle_subscription(sub, origin);
  }
  ASSERT_GT(broker.routing_table_size(), 0u);

  const auto pubs = make_publications(64, stream_config.attribute_count, 23);
  const routing::Origin pub_origin{true, routing::kInvalidBroker};
  routing::Broker::PublishScratch scratch;
  std::size_t warm_destinations = 0;
  for (int round = 0; round < 3; ++round) {
    for (const Publication& pub : pubs) {
      const auto& route = broker.handle_publication(pub, pub_origin, scratch);
      warm_destinations += route.destinations.size();
    }
  }
  ASSERT_GT(warm_destinations, 0u) << "publications should route somewhere";

  AllocationGuard guard;
  std::size_t local = 0, remote = 0;
  for (const Publication& pub : pubs) {
    const auto& route = broker.handle_publication(pub, pub_origin, scratch);
    local += route.local_matches.size();
    remote += route.destinations.size();
  }
  EXPECT_EQ(guard.count(), 0u)
      << "steady-state Broker::handle_publication must be allocation-free";
  EXPECT_GT(local + remote, 0u);
}

TEST(PublishAlloc, ScratchRouteMatchesReturningOverload) {
  // The scratch overload must produce exactly what the vector-returning
  // overload produces, publication for publication.
  store::StoreConfig store_config;
  routing::Broker broker(7, store_config, 77, /*match_shards=*/3);
  broker.add_neighbor(3);
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 4;
  stream_config.max_constrained = 3;
  workload::ComparisonStream stream(stream_config, 9);
  for (int i = 0; i < 150; ++i) {
    const bool local = i % 3 != 0;
    (void)broker.handle_subscription(
        stream.next(), local ? routing::Origin{true, routing::kInvalidBroker}
                             : routing::Origin{false, 3});
  }
  const auto pubs = make_publications(40, stream_config.attribute_count, 31);
  routing::Broker::PublishScratch scratch;
  const routing::Origin origin{true, routing::kInvalidBroker};
  for (const Publication& pub : pubs) {
    std::vector<SubscriptionId> legacy_local;
    const auto legacy_dests = broker.handle_publication(pub, origin, legacy_local);
    const auto& route = broker.handle_publication(pub, origin, scratch);
    EXPECT_EQ(route.local_matches, legacy_local);
    EXPECT_EQ(route.destinations, legacy_dests);
  }
}

}  // namespace
}  // namespace psc
