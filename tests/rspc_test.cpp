// Tests for the RSPC Monte-Carlo core (Algorithm 1).
#include "core/rspc.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(SamplePoint, PointsLieInsideSubscription) {
  util::Rng rng(1);
  const Subscription s = box2(830, 870, 1003, 1006);
  for (int i = 0; i < 1000; ++i) {
    const auto point = sample_point(s, rng);
    ASSERT_EQ(point.size(), 2u);
    EXPECT_TRUE(s.contains_point(point));
  }
}

TEST(SamplePoint, DegenerateRangeYieldsThePoint) {
  util::Rng rng(2);
  const Subscription s({Interval::point(3.0), Interval{0, 1}});
  const auto point = sample_point(s, rng);
  EXPECT_EQ(point[0], 3.0);
}

TEST(SamplePoint, UnboundedRangeThrows) {
  util::Rng rng(3);
  const Subscription s = Subscription::everything(2);
  EXPECT_THROW((void)sample_point(s, rng), std::invalid_argument);
}

TEST(PointInUnion, RespectsMembership) {
  const std::vector<Subscription> set{box2(0, 10, 0, 10, 1),
                                      box2(20, 30, 0, 10, 2)};
  EXPECT_TRUE(point_in_union(std::vector<Value>{5, 5}, set));
  EXPECT_TRUE(point_in_union(std::vector<Value>{25, 5}, set));
  EXPECT_FALSE(point_in_union(std::vector<Value>{15, 5}, set));
}

TEST(PointInUnion, EmptySetContainsNothing) {
  const std::vector<Subscription> set;
  EXPECT_FALSE(point_in_union(std::vector<Value>{0, 0}, set));
}

TEST(Rspc, CoveredInstanceAlwaysAnswersYes) {
  // Paper Table 3: genuinely covered, so no witness exists — RSPC must
  // exhaust its budget and answer YES regardless of seed.
  const Subscription s = box2(830, 870, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const RspcResult result = run_rspc(s, set, 200, rng);
    EXPECT_TRUE(result.covered) << "seed " << seed;
    EXPECT_EQ(result.iterations, 200u);
    EXPECT_FALSE(result.witness.has_value());
  }
}

TEST(Rspc, NonCoverFindsWitnessWithLargeGap) {
  // Table 6: the gap (870, 890] is 1/3 of s on x1; 200 trials miss it with
  // probability (2/3)^200 ~ 1e-36 — effectively never.
  const Subscription s = box2(830, 890, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1002, 1009, 1),
                                      box2(840, 870, 1001, 1007, 2)};
  util::Rng rng(7);
  const RspcResult result = run_rspc(s, set, 200, rng);
  ASSERT_FALSE(result.covered);
  ASSERT_TRUE(result.witness.has_value());
  // The witness is a genuine counter-example.
  EXPECT_TRUE(s.contains_point(*result.witness));
  EXPECT_FALSE(point_in_union(*result.witness, set));
  EXPECT_LT(result.iterations, 200u);  // early exit
}

TEST(Rspc, DefiniteNoIsAlwaysSound) {
  // Whenever RSPC says NO, the reported witness must check out. Randomized
  // instances with a forced gap.
  util::Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const Subscription s = box2(0, 100, 0, 100);
    const std::vector<Subscription> set{
        box2(-1, rng.uniform(20, 60), -1, 101, 1),
        box2(rng.uniform(61, 90), 101, -1, 101, 2)};
    util::Rng inner = rng.split();
    const RspcResult result = run_rspc(s, set, 500, inner);
    if (!result.covered) {
      ASSERT_TRUE(result.witness.has_value());
      EXPECT_TRUE(s.contains_point(*result.witness));
      EXPECT_FALSE(point_in_union(*result.witness, set));
    }
  }
}

TEST(Rspc, EmptySetIsDefiniteNoWithoutSampling) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set;
  util::Rng rng(5);
  const RspcResult result = run_rspc(s, set, 100, rng);
  EXPECT_FALSE(result.covered);
  EXPECT_EQ(result.iterations, 0u);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(s.contains_point(*result.witness));
}

TEST(Rspc, ZeroBudgetAnswersYes) {
  // With no trials allowed the algorithm must fall back to YES (its only
  // error mode) — never a spurious NO.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(100, 110, 100, 110, 1)};
  util::Rng rng(6);
  const RspcResult result = run_rspc(s, set, 0, rng);
  EXPECT_TRUE(result.covered);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Rspc, IterationCountGeometricallySmallForWideGap) {
  // Gap = half of s: expected trials to find a witness ~ 2. Average over
  // 200 runs must be well under 10.
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{box2(-1, 50, -1, 101, 1)};
  util::Rng rng(11);
  double total = 0;
  for (int i = 0; i < 200; ++i) {
    util::Rng inner = rng.split();
    const RspcResult result = run_rspc(s, set, 10'000, inner);
    ASSERT_FALSE(result.covered);
    total += static_cast<double>(result.iterations);
  }
  EXPECT_LT(total / 200.0, 10.0);
  EXPECT_GE(total / 200.0, 1.0);
}

TEST(Rspc, DeterministicGivenSeed) {
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{box2(-1, 80, -1, 101, 1)};
  util::Rng rng_a(42), rng_b(42);
  const RspcResult a = run_rspc(s, set, 1000, rng_a);
  const RspcResult b = run_rspc(s, set, 1000, rng_b);
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.witness.has_value(), b.witness.has_value());
  if (a.witness) {
    EXPECT_EQ(*a.witness, *b.witness);
  }
}

}  // namespace
}  // namespace psc::core
