// Tests for the Section 5 chain-propagation model (Equation 2).
#include "routing/chain_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace psc::routing {
namespace {

TEST(ChainModel, SingleBrokerIsJustRho) {
  ChainParams params;
  params.broker_count = 1;
  params.rho = 0.3;
  EXPECT_DOUBLE_EQ(chain_delivery_probability(params), 0.3);
}

TEST(ChainModel, PerfectDetectionGeometricSeries) {
  // With rho_w = 1 and d >= 1, detection is certain: the sum telescopes to
  // 1 - (1 - rho)^n (the publication is found iff any broker has it).
  ChainParams params;
  params.broker_count = 8;
  params.rho = 0.25;
  params.rho_w = 1.0;
  params.d = 1;
  const double expected = 1.0 - std::pow(1.0 - params.rho,
                                         static_cast<double>(params.broker_count));
  EXPECT_NEAR(chain_delivery_probability(params), expected, 1e-12);
}

TEST(ChainModel, ZeroDetectionStopsAtFirstBroker) {
  // rho_w = 0: the subscription never propagates past B1.
  ChainParams params;
  params.broker_count = 10;
  params.rho = 0.4;
  params.rho_w = 0.0;
  EXPECT_DOUBLE_EQ(chain_delivery_probability(params), 0.4);
}

TEST(ChainModel, MonotoneInD) {
  ChainParams low, high;
  low.broker_count = high.broker_count = 10;
  low.rho = high.rho = 0.1;
  low.rho_w = high.rho_w = 0.01;
  low.d = 10;
  high.d = 1000;
  EXPECT_LT(chain_delivery_probability(low), chain_delivery_probability(high));
}

TEST(ChainModel, MonotoneInN) {
  ChainParams short_chain, long_chain;
  short_chain.broker_count = 2;
  long_chain.broker_count = 20;
  short_chain.rho = long_chain.rho = 0.05;
  short_chain.rho_w = long_chain.rho_w = 0.05;
  short_chain.d = long_chain.d = 100;
  EXPECT_LT(chain_delivery_probability(short_chain),
            chain_delivery_probability(long_chain));
}

TEST(ChainModel, BoundedByOne) {
  ChainParams params;
  params.broker_count = 100;
  params.rho = 0.9;
  params.rho_w = 0.5;
  params.d = 1000;
  const double p = chain_delivery_probability(params);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(ChainModel, SimulationMatchesClosedForm) {
  util::Rng rng(2024);
  for (const double rho : {0.05, 0.2, 0.5}) {
    for (const std::uint64_t d : {10ull, 200ull}) {
      ChainParams params;
      params.broker_count = 12;
      params.rho = rho;
      params.rho_w = 0.01;
      params.d = d;
      const double analytic = chain_delivery_probability(params);
      const double simulated = simulate_chain_delivery(params, 200'000, rng);
      EXPECT_NEAR(simulated, analytic, 0.01)
          << "rho=" << rho << " d=" << d;
    }
  }
}

TEST(ChainModel, InvalidParamsThrow) {
  ChainParams params;
  params.broker_count = 0;
  EXPECT_THROW((void)chain_delivery_probability(params), std::invalid_argument);
  params.broker_count = 1;
  params.rho = 1.5;
  EXPECT_THROW((void)chain_delivery_probability(params), std::invalid_argument);
  params.rho = 0.5;
  params.rho_w = -0.1;
  EXPECT_THROW((void)chain_delivery_probability(params), std::invalid_argument);
  params.rho_w = 0.5;
  util::Rng rng(1);
  EXPECT_THROW((void)simulate_chain_delivery(params, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::routing
