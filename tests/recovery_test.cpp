// Crash-recovery differential tests: the ChurnDriver failure-injection
// mode (kill mid-churn -> restore from last snapshot -> WAL gap replay)
// must be delivery-invisible — delivered sets identical to FlatOracle
// before, across, and after the crash, with zero losses and zero replayed
// divergence — on every standard topology. This is the tier-1 version of
// bench/recovery_soak (same machinery, CI-friendly sizes).
#include "sim/churn_driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "routing/topology.hpp"
#include "workload/churn_workload.hpp"

namespace psc::sim {
namespace {

using routing::BrokerNetwork;
using routing::NetworkConfig;
using routing::Topology;
using workload::ChurnConfig;
using workload::generate_churn_trace;

ChurnConfig small_config() {
  ChurnConfig config;
  config.duration = 12.0;
  config.subscription_rate = 3.0;
  config.publication_rate = 5.0;
  return config;
}

ChurnDriver::Options failure_options(double kill_time, double cadence = 0.0) {
  ChurnDriver::Options options;
  options.differential = true;
  options.failure.enabled = true;
  options.failure.kill_time = kill_time;
  options.failure.snapshot_every = cadence;
  return options;
}

TEST(Recovery, CrashMidChurnIsDeliveryInvisibleOnAllTopologies) {
  const ChurnConfig config = small_config();
  for (Topology& topology : routing::standard_topologies(2006)) {
    NetworkConfig net_config;
    net_config.store.policy = store::CoveragePolicy::kExact;
    const auto trace = generate_churn_trace(config, topology.brokers, 2006);
    auto net = topology.build(net_config);
    // Kill mid-cadence (7.3s with 5s epochs) so the WAL gap is non-empty.
    const ChurnReport report =
        ChurnDriver::run(net, trace, failure_options(7.3));
    EXPECT_EQ(report.recovery.crashes, 1u) << topology.name;
    EXPECT_GT(report.recovery.snapshots, 0u) << topology.name;
    EXPECT_GT(report.recovery.gap_ops_replayed, 0u) << topology.name;
    EXPECT_EQ(report.recovery.replay_mismatches, 0u) << topology.name;
    EXPECT_EQ(report.mismatched_publishes, 0u) << topology.name;
    EXPECT_EQ(report.totals.notifications_lost, 0u) << topology.name;
  }
}

TEST(Recovery, PairwisePolicySurvivesCrashToo) {
  const ChurnConfig config = small_config();
  for (Topology& topology : routing::standard_topologies(11)) {
    NetworkConfig net_config;
    net_config.store.policy = store::CoveragePolicy::kPairwise;
    const auto trace = generate_churn_trace(config, topology.brokers, 11);
    auto net = topology.build(net_config);
    const ChurnReport report =
        ChurnDriver::run(net, trace, failure_options(6.2));
    EXPECT_EQ(report.recovery.crashes, 1u) << topology.name;
    EXPECT_EQ(report.recovery.replay_mismatches, 0u) << topology.name;
    EXPECT_EQ(report.mismatched_publishes, 0u) << topology.name;
    EXPECT_EQ(report.totals.notifications_lost, 0u) << topology.name;
  }
}

TEST(Recovery, FineAndCoarseSnapshotCadences) {
  const ChurnConfig config = small_config();
  const auto trace = generate_churn_trace(config, 9, 77);
  for (const double cadence : {1.0, 4.0, 10.0}) {
    auto net = BrokerNetwork::figure1_topology();
    const ChurnReport report =
        ChurnDriver::run(net, trace, failure_options(8.7, cadence));
    EXPECT_EQ(report.recovery.crashes, 1u) << "cadence " << cadence;
    EXPECT_EQ(report.recovery.replay_mismatches, 0u) << "cadence " << cadence;
    EXPECT_EQ(report.mismatched_publishes, 0u) << "cadence " << cadence;
    EXPECT_EQ(report.totals.notifications_lost, 0u) << "cadence " << cadence;
  }
  // Coarser cadence => older snapshot => longer WAL gap.
  auto fine_net = BrokerNetwork::figure1_topology();
  auto coarse_net = BrokerNetwork::figure1_topology();
  const auto fine = ChurnDriver::run(fine_net, trace, failure_options(8.7, 1.0));
  const auto coarse =
      ChurnDriver::run(coarse_net, trace, failure_options(8.7, 10.0));
  EXPECT_LT(fine.recovery.gap_ops_replayed, coarse.recovery.gap_ops_replayed);
}

TEST(Recovery, EpochAndTotalAccountingSplicesAcrossTheCrash) {
  // The same trace with and without failure injection must agree on the
  // client-visible accounting: ops, publishes, delivered/lost totals, and
  // the per-epoch delivered series (replayed traffic is excluded).
  const ChurnConfig config = small_config();
  const auto trace = generate_churn_trace(config, 9, 123);
  auto plain_net = BrokerNetwork::figure1_topology();
  auto crash_net = BrokerNetwork::figure1_topology();
  ChurnDriver::Options plain;
  plain.differential = true;
  const ChurnReport a = ChurnDriver::run(plain_net, trace, plain);
  const ChurnReport b =
      ChurnDriver::run(crash_net, trace, failure_options(7.3));
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.publishes, b.publishes);
  EXPECT_EQ(a.totals.notifications_delivered, b.totals.notifications_delivered);
  EXPECT_EQ(a.totals.notifications_lost, b.totals.notifications_lost);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].delivered, b.epochs[e].delivered) << "epoch " << e;
    EXPECT_EQ(a.epochs[e].live_subscriptions, b.epochs[e].live_subscriptions)
        << "epoch " << e;
    EXPECT_EQ(a.epochs[e].routing_entries, b.epochs[e].routing_entries)
        << "epoch " << e;
  }
}

TEST(Recovery, KillBeforeFirstSnapshotUsesBootImage) {
  const ChurnConfig config = small_config();
  const auto trace = generate_churn_trace(config, 9, 5);
  auto net = BrokerNetwork::figure1_topology();
  // Kill inside the first cadence interval: recovery replays from t=0.
  const ChurnReport report = ChurnDriver::run(net, trace, failure_options(2.3));
  EXPECT_EQ(report.recovery.crashes, 1u);
  EXPECT_EQ(report.recovery.replay_mismatches, 0u);
  EXPECT_EQ(report.mismatched_publishes, 0u);
  EXPECT_EQ(report.totals.notifications_lost, 0u);
}

TEST(Recovery, RestoreAllTwiceIsIdempotent) {
  // restore_all must fully wipe whatever state the target network holds —
  // including an engaged membership LinkState — so restoring the same
  // image twice (or over a dirtier network) converges to one state.
  auto source = BrokerNetwork::figure1_topology();
  source.subscribe(0, core::Subscription({{100, 200}, {100, 200}}, 1));
  source.subscribe(6, core::Subscription({{300, 400}, {300, 400}}, 2));
  source.fail_link(2, 3);
  source.crash_peer(8);
  const std::vector<std::uint8_t> image = source.snapshot_all();

  auto target = BrokerNetwork::figure1_topology();
  target.subscribe(4, core::Subscription({{0, 1}, {0, 1}}, 9));
  target.crash_peer(0);  // engage membership with different state
  target.restore_all({image.data(), image.size()});
  const std::vector<std::uint8_t> once = target.snapshot_all();
  target.restore_all({image.data(), image.size()});
  const std::vector<std::uint8_t> twice = target.snapshot_all();
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once, image);

  // The twice-restored replica behaves like the source.
  ASSERT_TRUE(target.membership_active());
  EXPECT_FALSE(target.is_alive(8));
  target.heal_link(2, 3);
  source.heal_link(2, 3);
  const core::Publication probe({150, 150});
  EXPECT_EQ(target.publish(7, probe), source.publish(7, probe));
  EXPECT_EQ(target.ghost_route_count(), 0u);
}

TEST(Recovery, InvalidFailureConfigsThrow) {
  const ChurnConfig config = small_config();
  const auto trace = generate_churn_trace(config, 9, 5);
  auto net = BrokerNetwork::figure1_topology();
  ChurnDriver::Options bad_kill = failure_options(0.0);
  EXPECT_THROW((void)ChurnDriver::run(net, trace, bad_kill),
               std::invalid_argument);
  ChurnDriver::Options bad_cadence = failure_options(5.0, -1.0);
  EXPECT_THROW((void)ChurnDriver::run(net, trace, bad_cadence),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::sim
