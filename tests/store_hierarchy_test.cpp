// Tests for the Section 4.4 multi-level covered hierarchy and the TTL
// expiration mechanism of Section 5.
#include <gtest/gtest.h>

#include <algorithm>

#include "routing/broker_network.hpp"
#include "store/subscription_store.hpp"
#include "util/rng.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace psc {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

store::StoreConfig hierarchical(bool on) {
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kPairwise;
  config.hierarchical_match = on;
  return config;
}

TEST(StoreHierarchy, CoverersRecordedOnDemotion) {
  store::SubscriptionStore store(hierarchical(true));
  store.insert(box2(2, 8, 2, 8, 1));
  store.insert(box2(0, 10, 0, 10, 2));  // demotes #1
  const auto coverers = store.coverers_of(1);
  ASSERT_EQ(coverers.size(), 1u);
  EXPECT_EQ(coverers[0], 2u);
  EXPECT_TRUE(store.coverers_of(2).empty());  // active: no coverers
}

TEST(StoreHierarchy, MultiLevelChainsForm) {
  store::SubscriptionStore store(hierarchical(true));
  store.insert(box2(3, 7, 3, 7, 1));
  store.insert(box2(2, 8, 2, 8, 2));    // demotes #1 -> coverer 2
  store.insert(box2(0, 10, 0, 10, 3));  // demotes #2 -> coverer 3
  EXPECT_EQ(store.coverers_of(1), (std::vector<SubscriptionId>{2}));
  EXPECT_EQ(store.coverers_of(2), (std::vector<SubscriptionId>{3}));
  EXPECT_TRUE(store.is_active(3));
  // Matching descends the two-level chain.
  auto ids = store.match(Publication({5.0, 5.0}));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<SubscriptionId>{1, 2, 3}));
}

TEST(StoreHierarchy, DescentPrunesNonMatchingBranches) {
  store::SubscriptionStore store(hierarchical(true));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(1, 3, 1, 3, 2));  // covered by 1 (left pocket)
  store.insert(box2(7, 9, 7, 9, 3));  // covered by 1 (right pocket)
  const auto before = store.covered_examined();
  // A point in the left pocket: both children of #1 get examined (they are
  // all at level 1), but a point outside #1 examines none.
  (void)store.match(Publication({2.0, 2.0}));
  const auto level1 = store.covered_examined() - before;
  EXPECT_EQ(level1, 2u);
  (void)store.match(Publication({50.0, 50.0}));
  EXPECT_EQ(store.covered_examined() - before, level1);  // no active hit
}

TEST(StoreHierarchy, DeepChainSkipsBelowNonMatch) {
  // #1 active covers all; #2 covered by 1; #3 inside 2 (covered by 2 after
  // demotion ordering). A publication inside 1 but outside 2 must examine
  // 2 and stop — 3 is only reachable below 2.
  store::SubscriptionStore store(hierarchical(true));
  store.insert(box2(4, 6, 4, 6, 3));
  store.insert(box2(2, 8, 2, 8, 2));    // demotes 3
  store.insert(box2(0, 10, 0, 10, 1));  // demotes 2
  EXPECT_EQ(store.coverers_of(3), (std::vector<SubscriptionId>{2}));
  EXPECT_EQ(store.coverers_of(2), (std::vector<SubscriptionId>{1}));
  const auto before = store.covered_examined();
  const auto ids = store.match(Publication({9.0, 9.0}));  // in 1 only
  EXPECT_EQ(ids, (std::vector<SubscriptionId>{1}));
  EXPECT_EQ(store.covered_examined() - before, 1u);  // examined 2, not 3
}

TEST(StoreHierarchy, FlatAndHierarchicalAgree) {
  // Property: both matching modes return the same id sets over random
  // nested workloads; the hierarchy only saves work.
  util::Rng rng(515);
  workload::ScenarioConfig config;
  config.attribute_count = 3;
  config.set_size = 1;
  store::SubscriptionStore flat(hierarchical(false), 1);
  store::SubscriptionStore tree(hierarchical(true), 1);
  SubscriptionId id = 1;
  for (int i = 0; i < 120; ++i) {
    auto sub = workload::random_box(config, 0.1, 0.6, rng);
    sub.set_id(id++);
    flat.insert(sub);
    tree.insert(sub);
  }
  ASSERT_EQ(flat.active_count(), tree.active_count());
  for (int round = 0; round < 300; ++round) {
    const auto pub = workload::uniform_publication(3, 0.0, 1000.0, rng);
    auto a = flat.match(pub);
    auto b = tree.match(pub);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "round " << round;
  }
  // The hierarchy must have examined no more covered entries than flat.
  EXPECT_LE(tree.covered_examined(), flat.covered_examined());
}

TEST(StoreHierarchy, EraseCleansDagEdges) {
  store::SubscriptionStore store(hierarchical(true));
  store.insert(box2(0, 10, 0, 10, 1));
  store.insert(box2(2, 8, 2, 8, 2));
  EXPECT_TRUE(store.erase(2));  // covered erase unlinks
  store.insert(box2(2, 8, 2, 8, 3));
  EXPECT_TRUE(store.erase(1));  // active erase promotes 3, no stale edges
  EXPECT_TRUE(store.is_active(3));
  auto ids = store.match(Publication({5.0, 5.0}));
  EXPECT_EQ(ids, (std::vector<SubscriptionId>{3}));
}

TEST(Ttl, ExpiryRemovesRoutesWithoutUnsubTraffic) {
  routing::NetworkConfig config;
  config.store.policy = store::CoveragePolicy::kPairwise;
  auto net = routing::BrokerNetwork::chain_topology(4, config);
  net.subscribe_with_ttl(0, box2(0, 10, 0, 10, 1), /*ttl=*/10.0);
  EXPECT_EQ(net.publish(3, Publication({5.0, 5.0})).size(), 1u);

  net.advance_time(11.0);
  const auto unsubs_before = net.metrics().unsubscription_messages;
  const auto delivered = net.publish(3, Publication({5.0, 5.0}));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(net.metrics().unsubscription_messages, unsubs_before);  // zero
  EXPECT_EQ(net.metrics().notifications_lost, 0u);  // nothing expected
  for (routing::BrokerId b = 0; b < 4; ++b) {
    EXPECT_EQ(net.broker(b).routing_table_size(), 0u);
  }
}

TEST(Ttl, CoveredSubscriptionReannouncedWhenCovererExpires) {
  routing::NetworkConfig config;
  config.store.policy = store::CoveragePolicy::kPairwise;
  auto net = routing::BrokerNetwork::chain_topology(3, config);
  net.subscribe_with_ttl(0, box2(0, 10, 0, 10, 1), /*ttl=*/5.0);
  net.subscribe(0, box2(2, 8, 2, 8, 2));  // suppressed: covered by #1
  // Before expiry both receive matching publications.
  auto delivered = net.publish(2, Publication({5.0, 5.0}));
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{1, 2}));
  // After #1 expires, #2 must have been re-announced and keep receiving.
  net.advance_time(6.0);
  delivered = net.publish(2, Publication({5.0, 5.0}));
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{2}));
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
}

TEST(Ttl, StaggeredExpiriesFireInOrder) {
  routing::NetworkConfig config;
  config.store.policy = store::CoveragePolicy::kPairwise;
  auto net = routing::BrokerNetwork::chain_topology(2, config);
  net.subscribe_with_ttl(0, box2(0, 10, 0, 10, 1), 3.0);
  net.subscribe_with_ttl(0, box2(20, 30, 0, 10, 2), 6.0);
  net.advance_time(4.0);
  EXPECT_TRUE(net.publish(1, Publication({5.0, 5.0})).empty());   // 1 gone
  EXPECT_EQ(net.publish(1, Publication({25.0, 5.0})).size(), 1u); // 2 alive
  net.advance_time(7.0);
  EXPECT_TRUE(net.publish(1, Publication({25.0, 5.0})).empty());
}

TEST(Ttl, InvalidTtlThrows) {
  auto net = routing::BrokerNetwork::chain_topology(2);
  EXPECT_THROW(net.subscribe_with_ttl(0, box2(0, 1, 0, 1, 1), 0.0),
               std::invalid_argument);
  EXPECT_THROW(net.subscribe_with_ttl(0, box2(0, 1, 0, 1, 0), 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc
