// Tests for the scenario generators: every generated instance must satisfy
// the structural guarantees its scenario promises, verified against the
// exact oracle.
#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include "baseline/exact_subsumption.hpp"
#include "baseline/pairwise_cover.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace psc::workload {
namespace {

using baseline::exactly_covered;
using baseline::pairwise_covered;

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.attribute_count = 4;
  config.set_size = 12;
  return config;
}

TEST(Scenarios, PairwiseCoveringHasSingleCover) {
  util::Rng rng(100);
  for (int round = 0; round < 20; ++round) {
    const Instance inst = make_pairwise_covering(small_config(), rng);
    EXPECT_TRUE(inst.expected_covered);
    EXPECT_EQ(inst.existing.size(), 12u);
    EXPECT_TRUE(pairwise_covered(inst.tested, inst.existing));
    EXPECT_TRUE(exactly_covered(inst.tested, inst.existing));
  }
}

TEST(Scenarios, PairwiseCoveringAllSatisfiable) {
  util::Rng rng(101);
  const Instance inst = make_pairwise_covering(small_config(), rng);
  for (const auto& si : inst.existing) EXPECT_TRUE(si.is_satisfiable());
}

TEST(Scenarios, RedundantCoveringIsGroupCoveredNotPairwise) {
  util::Rng rng(102);
  for (int round = 0; round < 20; ++round) {
    const Instance inst = make_redundant_covering(small_config(), rng);
    EXPECT_TRUE(inst.expected_covered);
    // Covered by the union...
    EXPECT_TRUE(exactly_covered(inst.tested, inst.existing)) << "round " << round;
    // ...but by no single subscription: this is the difficult setting.
    EXPECT_FALSE(pairwise_covered(inst.tested, inst.existing)) << "round " << round;
  }
}

TEST(Scenarios, RedundantCoveringSubscriptionsIntersectTested) {
  util::Rng rng(103);
  const Instance inst = make_redundant_covering(small_config(), rng);
  for (const auto& si : inst.existing) {
    EXPECT_TRUE(si.intersects(inst.tested));
  }
}

TEST(Scenarios, RedundantCoveringPrefixSufficient) {
  // By construction ~20 % of the set is enough: removing the other 80 %
  // cannot break coverage. We verify via exact oracle on the slab group:
  // find any minimal subset... simpler: the whole set covers, and the
  // instance stays covered after deleting each single non-slab member.
  util::Rng rng(104);
  const Instance inst = make_redundant_covering(small_config(), rng);
  ASSERT_TRUE(exactly_covered(inst.tested, inst.existing));
  // Dropping any one subscription: union of the rest must still cover s in
  // at least half the cases (redundancy). Count how many single deletions
  // preserve coverage.
  std::size_t preserved = 0;
  for (std::size_t skip = 0; skip < inst.existing.size(); ++skip) {
    std::vector<core::Subscription> rest;
    for (std::size_t i = 0; i < inst.existing.size(); ++i) {
      if (i != skip) rest.push_back(inst.existing[i]);
    }
    if (exactly_covered(inst.tested, rest)) ++preserved;
  }
  // All 80 % fillers are individually removable.
  EXPECT_GE(preserved, inst.existing.size() * 6 / 10);
}

TEST(Scenarios, NoIntersectionTrulyDisjoint) {
  util::Rng rng(105);
  for (int round = 0; round < 20; ++round) {
    const Instance inst = make_no_intersection(small_config(), rng);
    EXPECT_FALSE(inst.expected_covered);
    for (const auto& si : inst.existing) {
      EXPECT_FALSE(si.intersects(inst.tested));
    }
    EXPECT_FALSE(exactly_covered(inst.tested, inst.existing));
  }
}

TEST(Scenarios, NonCoverLeavesGap) {
  util::Rng rng(106);
  for (int round = 0; round < 20; ++round) {
    const Instance inst = make_non_cover(small_config(), rng);
    EXPECT_FALSE(inst.expected_covered);
    EXPECT_FALSE(exactly_covered(inst.tested, inst.existing)) << round;
    for (const auto& si : inst.existing) {
      EXPECT_TRUE(si.intersects(inst.tested));
      EXPECT_FALSE(si.covers(inst.tested));
    }
  }
}

TEST(Scenarios, ExtremeNonCoverGapSizeControlsResidue) {
  util::Rng rng(107);
  ScenarioConfig config = small_config();
  config.set_size = 50;
  config.attribute_count = 5;
  const Instance narrow = make_extreme_non_cover(config, 0.005, rng);
  const Instance wide = make_extreme_non_cover(config, 0.045, rng);
  const auto residue_narrow =
      baseline::exact_subsumption(narrow.tested, narrow.existing);
  const auto residue_wide =
      baseline::exact_subsumption(wide.tested, wide.existing);
  ASSERT_FALSE(residue_narrow.covered);
  ASSERT_FALSE(residue_wide.covered);
  // Residue volume scales with the requested gap fraction.
  EXPECT_LT(residue_narrow.uncovered_volume, residue_wide.uncovered_volume);
  // Relative residue of the narrow gap is near 0.5 %..1.5 % of I(s) (jitter
  // widens it slightly).
  const double rel =
      residue_narrow.uncovered_volume / narrow.tested.volume();
  EXPECT_GT(rel, 0.001);
  EXPECT_LT(rel, 0.05);
}

TEST(Scenarios, ExtremeNonCoverCoveredOffGapAxis) {
  util::Rng rng(108);
  const Instance inst = make_extreme_non_cover(small_config(), 0.02, rng);
  // Every subscription spans s fully on attributes 1..m-1.
  for (const auto& si : inst.existing) {
    for (std::size_t j = 1; j < si.attribute_count(); ++j) {
      EXPECT_TRUE(si.range(j).contains(inst.tested.range(j)));
    }
  }
}

TEST(Scenarios, InvalidConfigsThrow) {
  util::Rng rng(109);
  ScenarioConfig bad = small_config();
  bad.attribute_count = 0;
  EXPECT_THROW((void)make_non_cover(bad, rng), std::invalid_argument);
  ScenarioConfig bad_domain = small_config();
  bad_domain.domain_hi = bad_domain.domain_lo;
  EXPECT_THROW((void)make_pairwise_covering(bad_domain, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_extreme_non_cover(small_config(), 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_extreme_non_cover(small_config(), 1.0, rng),
               std::invalid_argument);
}

TEST(Scenarios, RandomBoxRespectsDomain) {
  util::Rng rng(110);
  const ScenarioConfig config = small_config();
  for (int i = 0; i < 100; ++i) {
    const auto box = random_box(config, 0.1, 0.5, rng);
    for (std::size_t j = 0; j < box.attribute_count(); ++j) {
      EXPECT_GE(box.range(j).lo, config.domain_lo);
      EXPECT_LE(box.range(j).hi, config.domain_hi);
      EXPECT_GE(box.range(j).width(), 0.1 * 1000.0 - 1e-9);
    }
  }
}

TEST(Scenarios, RandomOverlappingBoxNeverCovers) {
  util::Rng rng(111);
  const ScenarioConfig config = small_config();
  for (int i = 0; i < 200; ++i) {
    const auto target = random_box(config, 0.2, 0.4, rng);
    const auto overlap = random_overlapping_box(config, target, rng);
    EXPECT_TRUE(overlap.intersects(target));
    EXPECT_FALSE(overlap.covers(target));
  }
}

TEST(ComparisonStream, GeneratesSatisfiableSubscriptionsWithIds) {
  ComparisonConfig config;
  ComparisonStream stream(config, 7);
  const auto subs = stream.take(500);
  ASSERT_EQ(subs.size(), 500u);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_TRUE(subs[i].is_satisfiable());
    EXPECT_EQ(subs[i].id(), i + 1);
    EXPECT_EQ(subs[i].attribute_count(), config.attribute_count);
    for (std::size_t j = 0; j < config.attribute_count; ++j) {
      EXPECT_GE(subs[i].range(j).lo, config.domain_lo);
      EXPECT_LE(subs[i].range(j).hi, config.domain_hi);
    }
  }
}

TEST(ComparisonStream, PopularAttributesConstrainedMoreOften) {
  ComparisonConfig config;
  config.attribute_count = 10;
  ComparisonStream stream(config, 8);
  std::vector<int> constrained(config.attribute_count, 0);
  const auto subs = stream.take(2000);
  const double domain_width = config.domain_hi - config.domain_lo;
  for (const auto& sub : subs) {
    for (std::size_t j = 0; j < config.attribute_count; ++j) {
      if (sub.range(j).width() < domain_width) ++constrained[j];
    }
  }
  // Zipf(2.0): attribute 0 must be constrained far more often than 9.
  EXPECT_GT(constrained[0], constrained[9] * 3);
}

TEST(ComparisonStream, DeterministicFromSeed) {
  ComparisonConfig config;
  ComparisonStream a(config, 99), b(config, 99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(ComparisonStream, InvalidConfigThrows) {
  ComparisonConfig bad;
  bad.min_constrained = 0;
  EXPECT_THROW(ComparisonStream(bad, 1), std::invalid_argument);
  ComparisonConfig bad2;
  bad2.max_constrained = bad2.attribute_count + 1;
  EXPECT_THROW(ComparisonStream(bad2, 1), std::invalid_argument);
}

TEST(Publications, InsideAlwaysMatches) {
  util::Rng rng(300);
  const ScenarioConfig config = small_config();
  for (int i = 0; i < 100; ++i) {
    const auto sub = random_box(config, 0.1, 0.5, rng);
    const auto pub = publication_inside(sub, rng);
    EXPECT_TRUE(pub.matches(sub));
  }
}

TEST(Publications, NearMissNeverMatches) {
  util::Rng rng(301);
  const ScenarioConfig config = small_config();
  for (int i = 0; i < 100; ++i) {
    const auto sub = random_box(config, 0.1, 0.5, rng);
    const auto pub = publication_near_miss(sub, rng);
    EXPECT_FALSE(pub.matches(sub));
  }
}

TEST(Publications, UniformStaysInDomain) {
  util::Rng rng(302);
  for (int i = 0; i < 100; ++i) {
    const auto pub = uniform_publication(3, -5.0, 5.0, rng);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(pub.value(j), -5.0);
      EXPECT_LT(pub.value(j), 5.0);
    }
  }
}

}  // namespace
}  // namespace psc::workload
