// Tests for the IntervalIndex candidate-pruning structure: exactness of
// point-stab and box-intersect against flat scans, incremental insert/erase,
// unbounded and unconstrained attributes, and slot reuse after churn.
#include "index/interval_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace psc::index {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using core::Value;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

std::vector<SubscriptionId> sorted(std::vector<SubscriptionId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(IntervalIndex, StabFindsContainingBoxes) {
  IntervalIndex index(2);
  index.insert(box2(0, 10, 0, 10, 1));
  index.insert(box2(5, 15, 5, 15, 2));
  index.insert(box2(20, 30, 20, 30, 3));

  const std::vector<Value> inside_both{7.0, 7.0};
  EXPECT_EQ(sorted(index.stab(inside_both)), (std::vector<SubscriptionId>{1, 2}));
  const std::vector<Value> inside_first{1.0, 1.0};
  EXPECT_EQ(index.stab(inside_first), (std::vector<SubscriptionId>{1}));
  const std::vector<Value> nowhere{17.0, 17.0};
  EXPECT_TRUE(index.stab(nowhere).empty());
}

TEST(IntervalIndex, StabIsClosedOnEndpoints) {
  IntervalIndex index(1);
  index.insert(Subscription({Interval{2, 5}}, 1));
  EXPECT_EQ(index.stab(std::vector<Value>{2.0}).size(), 1u);
  EXPECT_EQ(index.stab(std::vector<Value>{5.0}).size(), 1u);
  EXPECT_TRUE(index.stab(std::vector<Value>{5.0001}).empty());
}

TEST(IntervalIndex, BoxIntersectMatchesPairwisePredicate) {
  IntervalIndex index(2);
  index.insert(box2(0, 10, 0, 10, 1));
  index.insert(box2(10, 20, 10, 20, 2));  // touches #1 at a corner
  index.insert(box2(11, 20, 0, 9, 3));    // disjoint from #1 on attr 0
  EXPECT_EQ(sorted(index.box_intersect(box2(5, 10, 5, 10, 99))),
            (std::vector<SubscriptionId>{1, 2}));
  EXPECT_EQ(index.box_intersect(box2(-5, -1, 0, 100, 99)).size(), 0u);
}

TEST(IntervalIndex, UnconstrainedAttributesNotIndexed) {
  IntervalIndex index(2);
  // Constrains only attribute 0; attribute 1 is the full line.
  index.insert(Subscription({Interval{0, 10}, Interval::everything()}, 1));
  // Constrains nothing: matches every probe.
  index.insert(Subscription({Interval::everything(), Interval::everything()}, 2));

  EXPECT_EQ(sorted(index.stab(std::vector<Value>{5.0, 1e12})),
            (std::vector<SubscriptionId>{1, 2}));
  EXPECT_EQ(index.stab(std::vector<Value>{50.0, 0.0}),
            (std::vector<SubscriptionId>{2}));
}

TEST(IntervalIndex, HalfBoundedIntervals) {
  IntervalIndex index(1);
  index.insert(Subscription({Interval{5, std::numeric_limits<Value>::infinity()}}, 1));
  index.insert(Subscription({Interval{-std::numeric_limits<Value>::infinity(), 5}}, 2));
  EXPECT_EQ(sorted(index.stab(std::vector<Value>{5.0})),
            (std::vector<SubscriptionId>{1, 2}));
  EXPECT_EQ(index.stab(std::vector<Value>{100.0}), (std::vector<SubscriptionId>{1}));
  EXPECT_EQ(index.stab(std::vector<Value>{-100.0}), (std::vector<SubscriptionId>{2}));
}

TEST(IntervalIndex, EraseRemovesAndReusesSlots) {
  IntervalIndex index(2);
  index.insert(box2(0, 10, 0, 10, 1));
  index.insert(box2(0, 10, 0, 10, 2));
  EXPECT_TRUE(index.erase(1));
  EXPECT_FALSE(index.erase(1));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_FALSE(index.contains(1));
  EXPECT_EQ(index.stab(std::vector<Value>{5.0, 5.0}),
            (std::vector<SubscriptionId>{2}));
  // Slot of #1 is reused by #3.
  index.insert(box2(20, 30, 20, 30, 3));
  EXPECT_EQ(index.stab(std::vector<Value>{25.0, 25.0}),
            (std::vector<SubscriptionId>{3}));
}

TEST(IntervalIndex, DuplicateIdAndSchemaMismatchThrow) {
  IntervalIndex index(2);
  index.insert(box2(0, 1, 0, 1, 1));
  EXPECT_THROW(index.insert(box2(2, 3, 2, 3, 1)), std::invalid_argument);
  EXPECT_THROW(index.insert(Subscription({Interval{0, 1}}, 2)),
               std::invalid_argument);
  EXPECT_THROW(index.insert(box2(0, 1, 0, 1, 0)), std::invalid_argument);
  EXPECT_THROW((void)index.stab(std::vector<Value>{1.0}), std::invalid_argument);
}

TEST(IntervalIndex, RandomizedEquivalenceWithFlatScanUnderChurn) {
  // Realistic power-law stream with partial schemas, interleaving inserts,
  // erasures and both query kinds; every query is cross-checked against a
  // flat scan of the currently-live subscriptions.
  workload::ComparisonConfig config;
  config.attribute_count = 6;
  workload::ComparisonStream stream(config, 20260730);
  util::Rng rng(42);

  IntervalIndex index(config.attribute_count);
  std::vector<Subscription> live;

  for (int step = 0; step < 600; ++step) {
    if (!live.empty() && rng.bernoulli(0.25)) {
      const std::size_t victim = rng.next_below(live.size());
      ASSERT_TRUE(index.erase(live[victim].id()));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      Subscription sub = stream.next();
      index.insert(sub);
      live.push_back(std::move(sub));
    }
    ASSERT_EQ(index.size(), live.size());

    const Publication pub = workload::uniform_publication(
        config.attribute_count, -100.0, 1100.0, rng);
    std::vector<SubscriptionId> expected_stab;
    for (const auto& sub : live) {
      if (pub.matches(sub)) expected_stab.push_back(sub.id());
    }
    EXPECT_EQ(sorted(index.stab(pub.values())), sorted(expected_stab)) << step;

    workload::ScenarioConfig box_config;
    box_config.attribute_count = config.attribute_count;
    const Subscription probe = workload::random_box(box_config, 0.05, 0.5, rng);
    std::vector<SubscriptionId> expected_intersect;
    for (const auto& sub : live) {
      if (sub.intersects(probe)) expected_intersect.push_back(sub.id());
    }
    EXPECT_EQ(sorted(index.box_intersect(probe)), sorted(expected_intersect))
        << step;
  }
}

TEST(IntervalIndex, QueryCostIsReported) {
  // last_query_cost counts candidates EXAMINED (certainty-emitted,
  // verified, or probed), comparable against the 50 a flat scan would
  // touch — on both query paths, so run the contract against each.
  for (const bool use_simd : {true, false}) {
    IndexConfig config;
    config.use_simd = use_simd;
    IntervalIndex index(1, config);
    for (SubscriptionId id = 1; id <= 50; ++id) {
      index.insert(
          Subscription({Interval{static_cast<double>(id), 1000.0}}, id));
    }
    // Stab below every lower bound: only the handful of subscriptions
    // whose lower bound shares the probe's edge bucket are examined.
    (void)index.stab(std::vector<Value>{0.5});
    const std::uint64_t cheap = index.last_query_cost();
    // Mid-domain stab: every subscription is a candidate.
    (void)index.stab(std::vector<Value>{500.0});
    EXPECT_GE(index.last_query_cost(), 50u);
    EXPECT_LT(cheap, index.last_query_cost());

    // Box probe below every interval. The counting path pays one probe
    // per pending delta slot; the mask path prunes to the probe's edge
    // bucket. Neither examines more than the delta tier holds.
    (void)index.box_intersect(Subscription({Interval{-100.0, -50.0}}, 999));
    EXPECT_LE(index.last_query_cost(), index.delta_size());
    index.compact();
    EXPECT_EQ(index.delta_size(), 0u);
    (void)index.box_intersect(Subscription({Interval{-100.0, -50.0}}, 999));
    EXPECT_LT(index.last_query_cost(), 50u);
    // A full-domain probe must examine every subscription.
    (void)index.box_intersect(Subscription({Interval{-100.0, 2000.0}}, 999));
    EXPECT_GE(index.last_query_cost(), 50u);
  }
}

}  // namespace
}  // namespace psc::index
