// Tests for the exact box-subtraction oracle.
#include "baseline/exact_subsumption.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psc::baseline {
namespace {

using core::Interval;
using core::Subscription;
using core::Value;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  core::SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(ExactSubsumption, PaperCoverExampleIsCovered) {
  const Subscription s = box2(830, 870, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  const ExactResult result = exact_subsumption(s, set);
  EXPECT_TRUE(result.covered);
  EXPECT_EQ(result.uncovered_volume, 0.0);
  EXPECT_FALSE(result.witness.has_value());
}

TEST(ExactSubsumption, PaperNonCoverExampleVolume) {
  // Table 6: the union misses exactly the slab (870, 890] x [1003, 1006]:
  // volume 20 * 3 = 60.
  const Subscription s = box2(830, 890, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1002, 1009, 1),
                                      box2(840, 870, 1001, 1007, 2)};
  const ExactResult result = exact_subsumption(s, set);
  ASSERT_FALSE(result.covered);
  EXPECT_NEAR(result.uncovered_volume, 60.0, 1e-9);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(s.contains_point(*result.witness));
  for (const auto& si : set) EXPECT_FALSE(si.contains_point(*result.witness));
}

TEST(ExactSubsumption, EmptySetNotCovered) {
  const Subscription s = box2(0, 10, 0, 10);
  const ExactResult result = exact_subsumption(s, std::vector<Subscription>{});
  EXPECT_FALSE(result.covered);
  EXPECT_NEAR(result.uncovered_volume, 100.0, 1e-9);
}

TEST(ExactSubsumption, SingleExactCover) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(0, 10, 0, 10, 1)};
  EXPECT_TRUE(exactly_covered(s, set));
}

TEST(ExactSubsumption, ZeroMeasureResidueCountsAsCovered) {
  // Two halves meeting exactly at x = 5: residue is the zero-width line.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(0, 5, 0, 10, 1), box2(5, 10, 0, 10, 2)};
  EXPECT_TRUE(exactly_covered(s, set));
}

TEST(ExactSubsumption, HairlineGapDetected) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(0, 5, 0, 10, 1),
                                      box2(5.001, 10, 0, 10, 2)};
  const ExactResult result = exact_subsumption(s, set);
  ASSERT_FALSE(result.covered);
  EXPECT_NEAR(result.uncovered_volume, 0.001 * 10, 1e-9);
}

TEST(ExactSubsumption, DegenerateTestedIsCovered) {
  const Subscription s = box2(0, 10, 5, 5);  // zero measure
  EXPECT_TRUE(exactly_covered(s, std::vector<Subscription>{}));
}

TEST(ExactSubsumption, CrossCoverFourQuadrants) {
  // Four overlapping quadrant boxes jointly covering s.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{
      box2(-1, 6, -1, 6, 1), box2(4, 11, -1, 6, 2),
      box2(-1, 6, 4, 11, 3), box2(4, 11, 4, 11, 4)};
  EXPECT_TRUE(exactly_covered(s, set));
}

TEST(ExactSubsumption, CenterHoleDetected) {
  // Frame of four slabs leaving the center square (4,6)^2 open.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{
      box2(-1, 4, -1, 11, 1),   // left slab
      box2(6, 11, -1, 11, 2),   // right slab
      box2(-1, 11, -1, 4, 3),   // bottom slab
      box2(-1, 11, 6, 11, 4)};  // top slab
  const ExactResult result = exact_subsumption(s, set);
  ASSERT_FALSE(result.covered);
  EXPECT_NEAR(result.uncovered_volume, 4.0, 1e-9);  // 2 x 2 hole
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_NEAR((*result.witness)[0], 5.0, 1.01);
  EXPECT_NEAR((*result.witness)[1], 5.0, 1.01);
}

TEST(ExactSubsumption, ThreeDimensionalCover) {
  const Subscription s({Interval{0, 4}, Interval{0, 4}, Interval{0, 4}});
  const std::vector<Subscription> set{
      Subscription({Interval{-1, 2}, Interval{-1, 5}, Interval{-1, 5}}, 1),
      Subscription({Interval{2, 5}, Interval{-1, 5}, Interval{-1, 5}}, 2)};
  EXPECT_TRUE(exactly_covered(s, set));
}

TEST(ExactSubsumption, ThreeDimensionalCornerGap) {
  const Subscription s({Interval{0, 4}, Interval{0, 4}, Interval{0, 4}});
  const std::vector<Subscription> set{
      Subscription({Interval{-1, 3}, Interval{-1, 5}, Interval{-1, 5}}, 1),
      Subscription({Interval{3, 5}, Interval{-1, 3}, Interval{-1, 5}}, 2),
      Subscription({Interval{3, 5}, Interval{3, 5}, Interval{-1, 3}}, 3)};
  const ExactResult result = exact_subsumption(s, set);
  ASSERT_FALSE(result.covered);
  // Residue: [3,4]^3 corner cube, volume 1.
  EXPECT_NEAR(result.uncovered_volume, 1.0, 1e-9);
}

TEST(ExactSubsumption, FragmentLimitThrows) {
  // Many interleaved cuts explode the residue; a tiny limit must trip.
  const Subscription s = box2(0, 100, 0, 100);
  std::vector<Subscription> set;
  for (int i = 0; i < 50; ++i) {
    set.push_back(box2(i, i + 0.5, i, i + 0.5, i + 1));
  }
  EXPECT_THROW((void)exact_subsumption(s, set, 10), std::runtime_error);
}

TEST(ExactSubsumption, VolumeConservation) {
  // Uncovered volume + covered volume == volume(s) for disjoint cuts.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(0, 3, 0, 10, 1),
                                      box2(7, 10, 0, 10, 2)};
  const ExactResult result = exact_subsumption(s, set);
  EXPECT_NEAR(result.uncovered_volume, 100.0 - 30.0 - 30.0, 1e-9);
}

TEST(ExactSubsumption, OverlappingCutsDoNotDoubleCount) {
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set{box2(0, 6, 0, 10, 1),
                                      box2(4, 10, 0, 10, 2)};
  EXPECT_TRUE(exactly_covered(s, set));
}

}  // namespace
}  // namespace psc::baseline
