// Tests for the SubsumptionEngine pipeline (Algorithm 4).
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(Engine, EmptySetIsDefiniteNo) {
  SubsumptionEngine engine;
  const auto result = engine.check(box2(0, 1, 0, 1), std::vector<Subscription>{});
  EXPECT_FALSE(result.covered);
  EXPECT_TRUE(result.is_definite);
  EXPECT_EQ(result.path, DecisionPath::kEmptySet);
}

TEST(Engine, PairwiseCoverFastPath) {
  SubsumptionEngine engine;
  const std::vector<Subscription> set{box2(0, 10, 0, 10, 1)};
  const auto result = engine.check(box2(2, 8, 2, 8), set);
  EXPECT_TRUE(result.covered);
  EXPECT_TRUE(result.is_definite);
  EXPECT_EQ(result.path, DecisionPath::kPairwiseCover);
  ASSERT_TRUE(result.covering_index.has_value());
  EXPECT_EQ(*result.covering_index, 0u);
  EXPECT_EQ(result.iterations, 0u);  // no sampling needed
}

TEST(Engine, PaperCoverExampleIsProbabilisticYes) {
  // Table 3: covered by the union but by no single subscription; the fast
  // paths are inconclusive and MCS keeps both rows, so the verdict must
  // come from RSPC as a probabilistic YES.
  SubsumptionEngine engine(EngineConfig{.delta = 1e-6, .max_iterations = 100'000});
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  const auto result = engine.check(box2(830, 870, 1003, 1006), set);
  EXPECT_TRUE(result.covered);
  EXPECT_FALSE(result.is_definite);
  EXPECT_EQ(result.path, DecisionPath::kRspcProbabilistic);
  EXPECT_EQ(result.reduced_set_size, 2u);
  EXPECT_GT(result.iterations, 0u);
}

TEST(Engine, PaperNonCoverExampleIsDefiniteNo) {
  // Table 6 instance: defined counts (1, 2) let Corollary 3 fire.
  SubsumptionEngine engine;
  const std::vector<Subscription> set{box2(820, 850, 1002, 1009, 1),
                                      box2(840, 870, 1001, 1007, 2)};
  const auto result = engine.check(box2(830, 890, 1003, 1006), set);
  EXPECT_FALSE(result.covered);
  EXPECT_TRUE(result.is_definite);
  EXPECT_EQ(result.path, DecisionPath::kPolyhedronWitness);
}

TEST(Engine, McsEmptyGivesDefiniteNo) {
  // Candidates intersect s but each has conflict-free entries (no joint
  // cover possible): MCS empties the set. Fast paths must not fire first:
  // counts must fail the staircase test... a single subscription covering
  // half of s on x2 only has t=1 >= 1, so use use_fast_decisions=false to
  // isolate the MCS path.
  EngineConfig config;
  config.use_fast_decisions = false;
  SubsumptionEngine engine(config);
  const std::vector<Subscription> set{box2(-1, 101, 50, 101, 1)};
  const auto result = engine.check(box2(0, 100, 0, 100), set);
  EXPECT_FALSE(result.covered);
  EXPECT_EQ(result.path, DecisionPath::kMcsEmpty);
  EXPECT_TRUE(result.mcs_ran);
  EXPECT_EQ(result.reduced_set_size, 0u);
}

TEST(Engine, RspcWitnessPathWhenFastPathsDisabled) {
  EngineConfig config;
  config.use_fast_decisions = false;
  config.use_mcs = false;
  SubsumptionEngine engine(config);
  const std::vector<Subscription> set{box2(-1, 40, -1, 101, 1),
                                      box2(60, 101, -1, 101, 2)};
  const auto result = engine.check(box2(0, 100, 0, 100), set);
  EXPECT_FALSE(result.covered);
  EXPECT_EQ(result.path, DecisionPath::kRspcWitness);
  ASSERT_TRUE(result.witness.has_value());
}

TEST(Engine, WitnessFromRspcIsSound) {
  EngineConfig config;
  config.use_fast_decisions = false;
  config.use_mcs = false;
  SubsumptionEngine engine(config);
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{box2(-1, 40, -1, 101, 1),
                                      box2(60, 101, -1, 101, 2)};
  const auto result = engine.check(s, set);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(s.contains_point(*result.witness));
  for (const auto& si : set) EXPECT_FALSE(si.contains_point(*result.witness));
}

TEST(Engine, ReportsTheoreticalDAndBudget) {
  EngineConfig config;
  config.delta = 1e-6;
  config.max_iterations = 1000;
  SubsumptionEngine engine(config);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  const auto result = engine.check(box2(830, 870, 1003, 1006), set);
  // rho_w = 0.25 (see witness_estimate_test) => d = ceil(ln 1e-6 / ln .75) = 49.
  EXPECT_DOUBLE_EQ(result.rho_w, 0.25);
  EXPECT_DOUBLE_EQ(result.theoretical_d, 49.0);
  EXPECT_EQ(result.trial_budget, 49u);
  EXPECT_EQ(result.iterations, 49u);  // covered => exhausts budget
}

TEST(Engine, BudgetCapRespected) {
  EngineConfig config;
  config.delta = 1e-10;
  config.max_iterations = 10;
  SubsumptionEngine engine(config);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  const auto result = engine.check(box2(830, 870, 1003, 1006), set);
  EXPECT_LE(result.iterations, 10u);
  EXPECT_EQ(result.trial_budget, 10u);
}

TEST(Engine, McsReducesBeforeSampling) {
  // Table 7/8 fixture: MCS removes s3, leaving 2 candidates.
  SubsumptionEngine engine;
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2),
                                      box2(810, 890, 1004, 1005, 3)};
  const auto result = engine.check(box2(830, 870, 1003, 1006), set);
  EXPECT_TRUE(result.mcs_ran);
  EXPECT_EQ(result.original_set_size, 3u);
  EXPECT_EQ(result.reduced_set_size, 2u);
  EXPECT_TRUE(result.covered);  // still covered by s1 v s2
}

TEST(Engine, DisablingMcsKeepsFullSet) {
  EngineConfig config;
  config.use_mcs = false;
  SubsumptionEngine engine(config);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2),
                                      box2(810, 890, 1004, 1005, 3)};
  const auto result = engine.check(box2(830, 870, 1003, 1006), set);
  EXPECT_FALSE(result.mcs_ran);
  EXPECT_EQ(result.reduced_set_size, 3u);
}

TEST(Engine, ConfigValidation) {
  EXPECT_THROW(SubsumptionEngine(EngineConfig{.delta = 0.0}), std::invalid_argument);
  EXPECT_THROW(SubsumptionEngine(EngineConfig{.delta = 1.0}), std::invalid_argument);
  EngineConfig zero_iter{};
  zero_iter.max_iterations = 0;
  EXPECT_THROW((void)SubsumptionEngine{zero_iter}, std::invalid_argument);
  SubsumptionEngine engine;
  EXPECT_THROW(engine.set_config(EngineConfig{.delta = 2.0}), std::invalid_argument);
}

TEST(Engine, DeterministicAcrossIdenticalSeeds) {
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  SubsumptionEngine a(EngineConfig{}, 123);
  SubsumptionEngine b(EngineConfig{}, 123);
  const auto ra = a.check(box2(830, 870, 1003, 1006), set);
  const auto rb = b.check(box2(830, 870, 1003, 1006), set);
  EXPECT_EQ(ra.covered, rb.covered);
  EXPECT_EQ(ra.iterations, rb.iterations);
}

TEST(Engine, SingleAttributeInstances) {
  SubsumptionEngine engine;
  const Subscription s({Interval{0, 10}});
  // Two pieces covering [0,10] jointly.
  const std::vector<Subscription> covering{
      Subscription({Interval{-1, 6}}, 1), Subscription({Interval{5, 11}}, 2)};
  EXPECT_TRUE(engine.check(s, covering).covered);
  // Gap at (6, 7).
  const std::vector<Subscription> gapped{
      Subscription({Interval{-1, 6}}, 1), Subscription({Interval{7, 11}}, 2)};
  EXPECT_FALSE(engine.check(s, gapped).covered);
}

TEST(Engine, DegenerateTestedSubscription) {
  // Zero-volume s (a point-like box). Pairwise containment decides it.
  SubsumptionEngine engine;
  const Subscription s({Interval::point(5.0), Interval{0, 1}});
  const std::vector<Subscription> set{box2(0, 10, -1, 2, 1)};
  const auto result = engine.check(s, set);
  EXPECT_TRUE(result.covered);
  EXPECT_EQ(result.path, DecisionPath::kPairwiseCover);
}

TEST(Engine, DecisionPathNames) {
  EXPECT_EQ(to_string(DecisionPath::kEmptySet), "empty-set");
  EXPECT_EQ(to_string(DecisionPath::kPairwiseCover), "pairwise-cover");
  EXPECT_EQ(to_string(DecisionPath::kPolyhedronWitness), "polyhedron-witness");
  EXPECT_EQ(to_string(DecisionPath::kMcsEmpty), "mcs-empty");
  EXPECT_EQ(to_string(DecisionPath::kRspcWitness), "rspc-witness");
  EXPECT_EQ(to_string(DecisionPath::kRspcProbabilistic), "rspc-probabilistic");
}

}  // namespace
}  // namespace psc::core
