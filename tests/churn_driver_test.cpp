// Tests for the churn workload generator and the churn driver: trace
// determinism and shape (the slot/mid-slot time discipline the
// differential oracle depends on), driver replay determinism, and the
// epoch-series bookkeeping.
#include "sim/churn_driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "routing/topology.hpp"
#include "workload/churn_workload.hpp"

namespace psc::sim {
namespace {

using routing::BrokerNetwork;
using routing::NetworkConfig;
using workload::ChurnConfig;
using workload::ChurnOp;
using workload::ChurnOpKind;
using workload::ChurnTrace;
using workload::generate_churn_trace;

bool ops_equal(const ChurnOp& a, const ChurnOp& b) {
  if (a.kind != b.kind || a.time != b.time || a.broker != b.broker ||
      a.ttl != b.ttl || a.id != b.id) {
    return false;
  }
  if (a.sub.id() != b.sub.id() || !(a.sub == b.sub)) return false;
  if (a.pub.attribute_count() != b.pub.attribute_count()) return false;
  for (std::size_t i = 0; i < a.pub.attribute_count(); ++i) {
    if (a.pub.value(i) != b.pub.value(i)) return false;
  }
  return true;
}

TEST(ChurnWorkload, TraceIsDeterministicPerSeed) {
  const ChurnConfig config;
  const ChurnTrace a = generate_churn_trace(config, 9, 42);
  const ChurnTrace b = generate_churn_trace(config, 9, 42);
  const ChurnTrace c = generate_churn_trace(config, 9, 43);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_TRUE(ops_equal(a.ops[i], b.ops[i])) << "op " << i;
  }
  bool any_difference = a.ops.size() != c.ops.size();
  for (std::size_t i = 0; !any_difference && i < a.ops.size(); ++i) {
    any_difference = !ops_equal(a.ops[i], c.ops[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChurnWorkload, TraceHonorsTheSlotTimeDiscipline) {
  ChurnConfig config;
  config.duration = 40.0;
  const ChurnTrace trace = generate_churn_trace(config, 36, 7);
  ASSERT_FALSE(trace.ops.empty());
  double previous = 0.0;
  for (const ChurnOp& op : trace.ops) {
    // One op per slot, strictly increasing, slot-aligned.
    EXPECT_GT(op.time, previous);
    const double slots = op.time / config.slot;
    EXPECT_NEAR(slots, std::round(slots), 1e-9);
    previous = op.time;
    if (op.kind == ChurnOpKind::kSubscribeTtl) {
      // TTLs are whole slots plus half a slot, so expiries fire mid-slot,
      // clear of every cascade window.
      const double offset = op.ttl / config.slot;
      EXPECT_NEAR(offset - std::floor(offset), 0.5, 1e-9);
      EXPECT_GE(op.ttl, config.slot);
    }
  }
}

TEST(ChurnWorkload, TraceMixesAllOpKinds) {
  ChurnConfig config;
  config.duration = 60.0;
  const ChurnTrace trace = generate_churn_trace(config, 9, 2006);
  std::set<ChurnOpKind> kinds;
  std::set<core::SubscriptionId> subscribed;
  for (const ChurnOp& op : trace.ops) {
    kinds.insert(op.kind);
    if (op.kind == ChurnOpKind::kSubscribe ||
        op.kind == ChurnOpKind::kSubscribeTtl) {
      EXPECT_TRUE(subscribed.insert(op.sub.id()).second)
          << "duplicate id " << op.sub.id();
      EXPECT_LT(op.broker, 9u);
    }
    if (op.kind == ChurnOpKind::kUnsubscribe) {
      EXPECT_TRUE(subscribed.count(op.id)) << "unsubscribe before subscribe";
    }
  }
  EXPECT_TRUE(kinds.count(ChurnOpKind::kSubscribe));
  EXPECT_TRUE(kinds.count(ChurnOpKind::kSubscribeTtl));
  EXPECT_TRUE(kinds.count(ChurnOpKind::kUnsubscribe));
  EXPECT_TRUE(kinds.count(ChurnOpKind::kPublish));
  EXPECT_TRUE(kinds.count(ChurnOpKind::kAdvance));
  EXPECT_EQ(trace.subscribe_count, subscribed.size());
}

TEST(ChurnWorkload, RejectsConfigsThatBreakTheTimeContract) {
  ChurnConfig config;
  // slot/2 must exceed (brokers + 1) * link_latency: 0.05 <= 0.101.
  EXPECT_THROW(generate_churn_trace(config, 100, 1), std::invalid_argument);
  config.slot = 0.5;
  EXPECT_NO_THROW(generate_churn_trace(config, 100, 1));
  config.ttl_fraction = 1.5;
  EXPECT_THROW(generate_churn_trace(config, 9, 1), std::invalid_argument);
  config.ttl_fraction = 0.5;
  config.subscription_rate = 0.0;
  config.publication_rate = 0.0;
  EXPECT_THROW(generate_churn_trace(config, 9, 1), std::invalid_argument);
  config.subscription_rate = 2.0;
  config.epoch_length = 0.0;  // would loop the driver's epoch closer forever
  EXPECT_THROW(generate_churn_trace(config, 9, 1), std::invalid_argument);
  config.epoch_length = 5.13;  // boundary would land mid-slot
  EXPECT_THROW(generate_churn_trace(config, 9, 1), std::invalid_argument);
}

TEST(ChurnDriver, ReplayIsDeterministic) {
  ChurnConfig config;
  config.duration = 30.0;
  const ChurnTrace trace = generate_churn_trace(config, 9, 11);
  auto net_a = BrokerNetwork::figure1_topology();
  auto net_b = BrokerNetwork::figure1_topology();
  ChurnDriver::Options options;
  options.differential = true;
  const ChurnReport a = ChurnDriver::run(net_a, trace, options);
  const ChurnReport b = ChurnDriver::run(net_b, trace, options);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.publishes, b.publishes);
  EXPECT_EQ(a.totals.total_messages(), b.totals.total_messages());
  EXPECT_EQ(a.totals.notifications_delivered, b.totals.notifications_delivered);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].delivered, b.epochs[i].delivered) << i;
    EXPECT_EQ(a.epochs[i].routing_entries, b.epochs[i].routing_entries) << i;
    EXPECT_EQ(a.epochs[i].forwarded_entries, b.epochs[i].forwarded_entries) << i;
  }
}

TEST(ChurnDriver, EpochSeriesAccountsForEveryOpAndMessage) {
  ChurnConfig config;
  config.duration = 30.0;
  config.epoch_length = 5.0;
  const ChurnTrace trace = generate_churn_trace(config, 8, 3);
  auto net = BrokerNetwork::chain_topology(8);
  const ChurnReport report = ChurnDriver::run(net, trace);
  ASSERT_FALSE(report.epochs.empty());
  std::size_t ops = 0, publishes = 0;
  std::uint64_t delivered = 0, messages = 0;
  double previous_end = 0.0;
  std::size_t peak = 0;
  for (const ChurnEpoch& epoch : report.epochs) {
    EXPECT_NEAR(epoch.end_time - previous_end, config.epoch_length, 1e-9);
    previous_end = epoch.end_time;
    ops += epoch.ops;
    publishes += epoch.publishes;
    delivered += epoch.delivered;
    messages += epoch.subscription_messages + epoch.unsubscription_messages +
                epoch.publication_messages;
    peak = std::max(peak, epoch.routing_entries);
  }
  EXPECT_EQ(ops, report.ops);
  EXPECT_EQ(publishes, report.publishes);
  EXPECT_EQ(delivered, report.totals.notifications_delivered);
  EXPECT_EQ(messages, report.totals.total_messages());
  EXPECT_EQ(peak, report.peak_routing_entries);
  EXPECT_EQ(report.final_live_subscriptions, net.local_subscription_count());
}

TEST(ChurnDriver, RejectsBrokerCountMismatch) {
  const ChurnTrace trace = generate_churn_trace(ChurnConfig{}, 9, 1);
  auto net = BrokerNetwork::chain_topology(4);
  EXPECT_THROW((void)ChurnDriver::run(net, trace), std::invalid_argument);
}

TEST(ChurnDriver, ExactPolicySoakIsLossFreeWithLiveChurn) {
  ChurnConfig config;
  config.duration = 60.0;
  NetworkConfig net_config;
  net_config.store.policy = store::CoveragePolicy::kExact;
  const ChurnTrace trace = generate_churn_trace(config, 9, 2006);
  auto net = BrokerNetwork::figure1_topology(net_config);
  ChurnDriver::Options options;
  options.differential = true;
  const ChurnReport report = ChurnDriver::run(net, trace, options);
  EXPECT_EQ(report.totals.notifications_lost, 0u);
  EXPECT_EQ(report.mismatched_publishes, 0u);
  EXPECT_GT(report.totals.notifications_delivered, 0u);
  EXPECT_GT(report.totals.subscriptions_suppressed, 0u)
      << "hotspot workload should trigger coverage pruning";
  // Churn actually happened: subscriptions arrived and left.
  EXPECT_GT(report.ops, 100u);
  EXPECT_LT(report.final_live_subscriptions, trace.subscribe_count);
}

}  // namespace
}  // namespace psc::sim
