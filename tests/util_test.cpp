// Tests for the util substrate: RNG, distributions, statistics, flags and
// table output.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "util/distributions.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_writer.hpp"
#include "util/timer.hpp"

namespace psc::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(9);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NextBelowUnbiasedSmoke) {
  Rng rng(10);
  std::map<std::uint64_t, int> histogram;
  const int n = 60'000;
  for (int i = 0; i < n; ++i) ++histogram[rng.next_below(6)];
  ASSERT_EQ(histogram.size(), 6u);
  for (const auto& [value, count] : histogram) {
    EXPECT_LT(value, 6u);
    EXPECT_NEAR(count, n / 6, n / 60);  // within 10 % of uniform
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRate) {
  Rng rng(12);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng rng(13);
  Rng a = rng.split();
  Rng b = rng.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfSampler zipf(100, 2.0);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
  double total = 0;
  for (std::size_t r = 0; r < 100; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SampleFrequenciesFollowPmf) {
  Rng rng(14);
  ZipfSampler zipf(10, 2.0);
  std::vector<int> histogram(10, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++histogram[zipf.sample(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(histogram[r]) / n, zipf.pmf(r), 0.01)
        << "rank " << r;
  }
}

TEST(Zipf, SkewZeroIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_NEAR(zipf.pmf(r), 0.25, 1e-9);
}

TEST(Zipf, InvalidArgsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -1.0), std::invalid_argument);
}

TEST(Pareto, SamplesAboveScale) {
  Rng rng(15);
  ParetoSampler pareto(2.0, 1.5);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(pareto.sample(rng), 2.0);
}

TEST(Pareto, TailHeavierForSmallerShape) {
  Rng rng(16);
  ParetoSampler heavy(1.0, 0.8), light(1.0, 3.0);
  int heavy_tail = 0, light_tail = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (heavy.sample(rng) > 10.0) ++heavy_tail;
    if (light.sample(rng) > 10.0) ++light_tail;
  }
  EXPECT_GT(heavy_tail, light_tail * 5);
}

TEST(Pareto, InvalidArgsThrow) {
  EXPECT_THROW(ParetoSampler(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParetoSampler(1.0, 0.0), std::invalid_argument);
}

TEST(Normal, MomentsApproximatelyCorrect) {
  Rng rng(17);
  NormalSampler normal(10.0, 2.0);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(normal.sample(rng));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Normal, ClampedStaysInBounds) {
  Rng rng(18);
  NormalSampler normal(0.0, 100.0);
  for (int i = 0; i < 10'000; ++i) {
    const double x = normal.sample_clamped(rng, -1.0, 1.0);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(SampleSet, PercentilesInterpolate) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(i);
  EXPECT_NEAR(set.median(), 50.5, 1e-9);
  EXPECT_NEAR(set.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(set.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(set.percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, EmptyPercentileThrows) {
  SampleSet set;
  EXPECT_THROW((void)set.percentile(50), std::logic_error);
}

TEST(SampleSet, P99OfHundredSamplesInterpolatesNotCollapses) {
  // The perf-gate contract: rank = pct/100 * (n-1). With 1..100 the p99
  // rank is 98.01, between the 99th and 100th sorted samples — NOT the
  // max, and never past the end.
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(i);
  EXPECT_NEAR(set.percentile(99), 99.01, 1e-9);
  EXPECT_NEAR(set.percentile(50), 50.5, 1e-9);
}

TEST(SampleSet, AddAfterPercentileQueryResorts) {
  // Regression: percentile() sorts the buffer lazily; an add() afterwards
  // must invalidate that order or later queries read a partially sorted
  // vector. Insert descending so a missing re-sort is guaranteed visible.
  SampleSet set;
  for (int i = 100; i >= 2; --i) set.add(i);
  EXPECT_NEAR(set.percentile(99), 99.02, 1e-9);  // sorts 2..100
  set.add(1.0);  // would land after 100 in the stale sorted buffer
  EXPECT_NEAR(set.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(set.percentile(99), 99.01, 1e-9);
  EXPECT_NEAR(set.median(), 50.5, 1e-9);
}

TEST(SampleSet, SingleSampleIsEveryPercentile) {
  SampleSet set;
  set.add(42.0);
  EXPECT_EQ(set.percentile(0), 42.0);
  EXPECT_EQ(set.percentile(50), 42.0);
  EXPECT_EQ(set.percentile(99), 42.0);
  EXPECT_EQ(set.percentile(100), 42.0);
}

TEST(Flags, ParsesAllForms) {
  // Note: a boolean switch immediately followed by a positional argument is
  // inherently ambiguous in the "--name value" form, so the switch goes last.
  const char* argv[] = {"prog", "--runs=100", "--delta", "1e-6", "positional",
                        "--verbose"};
  const Flags flags(6, argv);
  EXPECT_EQ(flags.get_int("runs", 0), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("delta", 0.0), 1e-6);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("quiet", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_EQ(flags.get_string("missing", "fallback"), "fallback");
}

TEST(Flags, BadBooleanThrows) {
  const char* argv[] = {"prog", "--flag=banana"};
  const Flags flags(2, argv);
  EXPECT_THROW((void)flags.get_bool("flag", false), std::invalid_argument);
}

TEST(TableWriter, AlignedOutputAndCsv) {
  TableWriter table({"k", "ratio"});
  table.add_row({static_cast<long long>(10), 0.5});
  table.add_row({static_cast<long long>(310), 0.925});
  std::ostringstream text;
  table.print(text);
  EXPECT_NE(text.str().find("ratio"), std::string::npos);
  EXPECT_NE(text.str().find("310"), std::string::npos);

  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_NE(csv.str().find("k,ratio"), std::string::npos);
  EXPECT_NE(csv.str().find("310,0.925"), std::string::npos);
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.add_row({1.0}), std::invalid_argument);
}

TEST(TableWriter, CsvEscapesCommas) {
  TableWriter table({"name"});
  table.add_row({std::string("a,b")});
  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_NE(csv.str().find("\"a,b\""), std::string::npos);
}

TEST(Timer, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100'000; ++i) sink = sink + 1.0;
  EXPECT_GE(timer.elapsed_seconds(), 0.0);
  EXPECT_GE(timer.elapsed_millis(), timer.elapsed_seconds() * 0.0);
}

}  // namespace
}  // namespace psc::util
