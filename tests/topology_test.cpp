// Tests for the topology generators and the standard descriptor family:
// every generated overlay must be a connected spanning tree (n - 1 links),
// deterministic per seed, and floodable edge-to-edge.
#include "routing/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/subscription.hpp"

namespace psc::routing {
namespace {

using core::Interval;
using core::Subscription;

/// Sorted undirected edge list of a network's overlay.
std::vector<std::pair<BrokerId, BrokerId>> edges_of(const BrokerNetwork& net) {
  std::vector<std::pair<BrokerId, BrokerId>> edges;
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    const auto id = static_cast<BrokerId>(b);
    for (const BrokerId peer : net.broker(id).neighbors()) {
      if (id < peer) edges.emplace_back(id, peer);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Brokers reachable from broker 0 over neighbor links.
std::size_t reachable_count(const BrokerNetwork& net) {
  std::vector<char> seen(net.broker_count(), 0);
  std::vector<BrokerId> frontier{0};
  seen[0] = 1;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const BrokerId at = frontier.back();
    frontier.pop_back();
    for (const BrokerId peer : net.broker(at).neighbors()) {
      if (seen[peer]) continue;
      seen[peer] = 1;
      frontier.push_back(peer);
      ++count;
    }
  }
  return count;
}

void expect_spanning_tree(const BrokerNetwork& net) {
  ASSERT_GT(net.broker_count(), 0u);
  EXPECT_EQ(edges_of(net).size(), net.broker_count() - 1);
  EXPECT_EQ(reachable_count(net), net.broker_count());
}

TEST(TopologyGenerators, RandomTreeIsConnectedSpanningTree) {
  const auto net = BrokerNetwork::random_tree_topology(32, 7);
  EXPECT_EQ(net.broker_count(), 32u);
  expect_spanning_tree(net);
}

TEST(TopologyGenerators, RandomTreeDeterministicPerSeed) {
  const auto a = BrokerNetwork::random_tree_topology(24, 42);
  const auto b = BrokerNetwork::random_tree_topology(24, 42);
  const auto c = BrokerNetwork::random_tree_topology(24, 43);
  EXPECT_EQ(edges_of(a), edges_of(b));
  EXPECT_NE(edges_of(a), edges_of(c));
}

TEST(TopologyGenerators, RandomTreeRejectsZeroBrokers) {
  EXPECT_THROW(BrokerNetwork::random_tree_topology(0, 1), std::invalid_argument);
}

TEST(TopologyGenerators, GridCombSpanningTreeShape) {
  const auto net = BrokerNetwork::grid_topology(6, 6);
  EXPECT_EQ(net.broker_count(), 36u);
  expect_spanning_tree(net);
  // Spine node (0,1) = broker 1: left + right + its column below.
  EXPECT_EQ(net.broker(1).neighbors().size(), 3u);
  // Bottom-row non-spine node (5,3) = broker 33: only its column above.
  EXPECT_EQ(net.broker(33).neighbors().size(), 1u);
}

TEST(TopologyGenerators, GridRejectsDegenerateDimensions) {
  EXPECT_THROW(BrokerNetwork::grid_topology(0, 4), std::invalid_argument);
  EXPECT_THROW(BrokerNetwork::grid_topology(4, 0), std::invalid_argument);
  EXPECT_THROW(BrokerNetwork::grid_topology(1, 1), std::invalid_argument);
}

TEST(TopologyGenerators, RandomRegularTreeBoundedDegree) {
  const auto net = BrokerNetwork::random_regular_topology(24, 3, 11);
  EXPECT_EQ(net.broker_count(), 24u);
  expect_spanning_tree(net);
  // BFS tree of a 3-regular graph: no node exceeds the graph degree.
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    EXPECT_LE(net.broker(static_cast<BrokerId>(b)).neighbors().size(), 3u);
  }
}

TEST(TopologyGenerators, RandomRegularDeterministicPerSeed) {
  const auto a = BrokerNetwork::random_regular_topology(24, 3, 5);
  const auto b = BrokerNetwork::random_regular_topology(24, 3, 5);
  EXPECT_EQ(edges_of(a), edges_of(b));
}

TEST(TopologyGenerators, RandomRegularRejectsBadParameters) {
  // n * degree odd.
  EXPECT_THROW(BrokerNetwork::random_regular_topology(9, 3, 1),
               std::invalid_argument);
  // degree < 2.
  EXPECT_THROW(BrokerNetwork::random_regular_topology(8, 1, 1),
               std::invalid_argument);
  // degree >= n.
  EXPECT_THROW(BrokerNetwork::random_regular_topology(4, 4, 1),
               std::invalid_argument);
}

TEST(StandardTopologies, FamilyHasFiveDistinctNamedShapes) {
  const auto family = standard_topologies(2006);
  ASSERT_EQ(family.size(), 5u);
  std::set<std::string> names;
  for (const Topology& topology : family) names.insert(topology.name);
  EXPECT_EQ(names.size(), 5u);
  EXPECT_TRUE(names.count("figure1"));
  EXPECT_TRUE(names.count("grid6x6"));
}

TEST(StandardTopologies, BuildersMatchDescriptorAndFloodWholeTree) {
  for (const Topology& topology : standard_topologies(2006)) {
    auto net = topology.build(NetworkConfig{});
    EXPECT_EQ(net.broker_count(), topology.brokers) << topology.name;
    expect_spanning_tree(net);
    // A subscription floods every link exactly once on a tree overlay.
    net.subscribe(0, Subscription({Interval{0, 10}, Interval{0, 10}}, 1));
    EXPECT_EQ(net.metrics().subscription_messages, topology.brokers - 1)
        << topology.name;
    for (std::size_t b = 0; b < net.broker_count(); ++b) {
      EXPECT_EQ(net.broker(static_cast<BrokerId>(b)).routing_table_size(), 1u)
          << topology.name << " broker " << b;
    }
  }
}

TEST(StandardTopologies, BuildersArePure) {
  const auto family = standard_topologies(99);
  const auto& tree = family[2];
  const auto first = tree.build(NetworkConfig{});
  const auto second = tree.build(NetworkConfig{});
  EXPECT_EQ(edges_of(first), edges_of(second));
}

}  // namespace
}  // namespace psc::routing
