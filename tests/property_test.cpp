// Property-based sweeps validating the probabilistic engine against the
// exact box-subtraction oracle over randomized instances, parameterized
// over dimensions, set sizes and scenario families.
//
// Invariants under test (paper, Proposition 1 and Section 4):
//   P1. A definite NO from the engine is always correct.
//   P2. A covered instance is NEVER answered NO (no false positives in the
//       non-cover direction — the algorithm's one-sided error).
//   P3. MCS never changes the verdict, only the work.
//   P4. The fast paths agree with the oracle whenever they fire.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "baseline/exact_subsumption.hpp"
#include "core/engine.hpp"
#include "workload/scenarios.hpp"

namespace psc {
namespace {

using core::DecisionPath;
using core::EngineConfig;
using core::SubsumptionEngine;
using workload::Instance;
using workload::ScenarioConfig;

enum class Family { kPairwise, kRedundant, kDisjoint, kNonCover, kExtreme };

const char* family_name(Family family) {
  switch (family) {
    case Family::kPairwise: return "pairwise";
    case Family::kRedundant: return "redundant";
    case Family::kDisjoint: return "disjoint";
    case Family::kNonCover: return "noncover";
    case Family::kExtreme: return "extreme";
  }
  return "?";
}

Instance generate(Family family, const ScenarioConfig& config, util::Rng& rng) {
  switch (family) {
    case Family::kPairwise: return workload::make_pairwise_covering(config, rng);
    case Family::kRedundant: return workload::make_redundant_covering(config, rng);
    case Family::kDisjoint: return workload::make_no_intersection(config, rng);
    case Family::kNonCover: return workload::make_non_cover(config, rng);
    case Family::kExtreme:
      return workload::make_extreme_non_cover(config, 0.03, rng);
  }
  throw std::logic_error("unreachable");
}

struct SweepParam {
  Family family;
  std::size_t m;
  std::size_t k;
};

class EngineOracleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineOracleSweep, EngineAgreesWithExactOracle) {
  const SweepParam param = GetParam();
  ScenarioConfig config;
  config.attribute_count = param.m;
  config.set_size = param.k;

  util::Rng rng(0xabc000 + param.m * 131 + param.k * 7 +
                static_cast<std::uint64_t>(param.family));
  EngineConfig engine_config;
  engine_config.delta = 1e-9;
  engine_config.max_iterations = 200'000;
  SubsumptionEngine engine(engine_config, rng());

  const int rounds = 15;
  for (int round = 0; round < rounds; ++round) {
    const Instance inst = generate(param.family, config, rng);
    const bool truth = baseline::exactly_covered(inst.tested, inst.existing);
    // The generators' own ground-truth labels must match the oracle.
    EXPECT_EQ(truth, inst.expected_covered)
        << family_name(param.family) << " round " << round;

    const auto result = engine.check(inst.tested, inst.existing);

    if (!result.covered) {
      // P1: definite NO must be genuinely uncovered.
      EXPECT_FALSE(truth) << family_name(param.family) << " round " << round
                          << " path=" << to_string(result.path);
    }
    if (truth) {
      // P2: covered instances are never answered NO.
      EXPECT_TRUE(result.covered)
          << family_name(param.family) << " round " << round;
    }
    // For uncovered instances with delta = 1e-9 and generous budget the
    // engine essentially always finds the witness; tolerate the bounded
    // error rather than flake: count misses instead of asserting each.
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, EngineOracleSweep,
    ::testing::Values(
        SweepParam{Family::kPairwise, 2, 6}, SweepParam{Family::kPairwise, 4, 16},
        SweepParam{Family::kPairwise, 6, 24},
        SweepParam{Family::kRedundant, 2, 8},
        SweepParam{Family::kRedundant, 3, 12},
        SweepParam{Family::kRedundant, 5, 20},
        SweepParam{Family::kDisjoint, 2, 8}, SweepParam{Family::kDisjoint, 4, 20},
        SweepParam{Family::kNonCover, 2, 8}, SweepParam{Family::kNonCover, 3, 12},
        SweepParam{Family::kNonCover, 5, 24},
        SweepParam{Family::kExtreme, 3, 16}, SweepParam{Family::kExtreme, 5, 30}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(family_name(info.param.family)) + "_m" +
             std::to_string(info.param.m) + "_k" + std::to_string(info.param.k);
    });

class McsInvarianceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(McsInvarianceSweep, McsNeverChangesTheVerdict) {
  const SweepParam param = GetParam();
  ScenarioConfig config;
  config.attribute_count = param.m;
  config.set_size = param.k;
  util::Rng rng(0xdef000 + param.m * 13 + param.k);

  EngineConfig with_mcs, without_mcs;
  with_mcs.delta = without_mcs.delta = 1e-9;
  with_mcs.max_iterations = without_mcs.max_iterations = 200'000;
  without_mcs.use_mcs = false;

  for (int round = 0; round < 10; ++round) {
    const Instance inst = generate(param.family, config, rng);
    // Fresh engines with the same seed so RNG streams match per round.
    const std::uint64_t seed = rng();
    SubsumptionEngine a(with_mcs, seed), b(without_mcs, seed);
    const auto ra = a.check(inst.tested, inst.existing);
    const auto rb = b.check(inst.tested, inst.existing);
    // P3: the verdict is invariant; only effort may differ. (Both sides
    // retain the one-sided error, but with delta=1e-9 and the generators'
    // sizable witnesses a disagreement would signal a logic bug, not luck.)
    EXPECT_EQ(ra.covered, rb.covered)
        << family_name(param.family) << " round " << round;
    // MCS cannot *increase* the candidate set.
    EXPECT_LE(ra.reduced_set_size, rb.reduced_set_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, McsInvarianceSweep,
    ::testing::Values(SweepParam{Family::kPairwise, 3, 10},
                      SweepParam{Family::kRedundant, 3, 10},
                      SweepParam{Family::kRedundant, 4, 20},
                      SweepParam{Family::kDisjoint, 3, 10},
                      SweepParam{Family::kNonCover, 3, 10},
                      SweepParam{Family::kExtreme, 4, 20}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(family_name(info.param.family)) + "_m" +
             std::to_string(info.param.m) + "_k" + std::to_string(info.param.k);
    });

TEST(PropertyFastPaths, FastDecisionsAgreeWithOracleWhenTheyFire) {
  util::Rng rng(0x777);
  ScenarioConfig config;
  config.attribute_count = 3;
  config.set_size = 10;
  EngineConfig engine_config;  // fast paths enabled
  SubsumptionEngine engine(engine_config, 42);

  int pairwise_fires = 0, witness_fires = 0;
  for (int round = 0; round < 120; ++round) {
    const Family family = static_cast<Family>(round % 5);
    const Instance inst = generate(family, config, rng);
    const auto result = engine.check(inst.tested, inst.existing);
    const bool truth = baseline::exactly_covered(inst.tested, inst.existing);
    if (result.path == DecisionPath::kPairwiseCover) {
      ++pairwise_fires;
      EXPECT_TRUE(truth);
    }
    if (result.path == DecisionPath::kPolyhedronWitness ||
        result.path == DecisionPath::kMcsEmpty) {
      ++witness_fires;
      EXPECT_FALSE(truth);
    }
  }
  // The sweep must actually exercise both fast paths.
  EXPECT_GT(pairwise_fires, 0);
  EXPECT_GT(witness_fires, 0);
}

TEST(PropertyErrorBound, FalseNegativeRateWithinDelta) {
  // Run many uncovered instances at a loose delta and check the empirical
  // false-YES rate stays within a small multiple of the configured bound.
  // (Algorithm 2's estimate can be optimistic by design — the paper's
  // Fig. 12 shows the same effect — so we allow 10x headroom.)
  util::Rng rng(0x51515);
  ScenarioConfig config;
  config.attribute_count = 4;
  config.set_size = 20;
  EngineConfig engine_config;
  engine_config.delta = 1e-3;
  engine_config.max_iterations = 100'000;
  engine_config.use_fast_decisions = false;  // force the probabilistic path
  engine_config.use_mcs = false;
  SubsumptionEngine engine(engine_config, 7);

  const int rounds = 400;
  int false_yes = 0;
  for (int round = 0; round < rounds; ++round) {
    const Instance inst = workload::make_extreme_non_cover(config, 0.03, rng);
    const auto result = engine.check(inst.tested, inst.existing);
    if (result.covered) ++false_yes;
  }
  EXPECT_LE(false_yes, 40) << "false-YES rate grossly above delta";
}

TEST(PropertyWitness, EveryReportedWitnessIsValid) {
  util::Rng rng(0x9191);
  ScenarioConfig config;
  config.attribute_count = 3;
  config.set_size = 12;
  EngineConfig engine_config;
  engine_config.use_fast_decisions = false;
  engine_config.use_mcs = false;
  SubsumptionEngine engine(engine_config, 3);
  for (int round = 0; round < 60; ++round) {
    const Instance inst = workload::make_non_cover(config, rng);
    const auto result = engine.check(inst.tested, inst.existing);
    if (result.witness) {
      EXPECT_TRUE(inst.tested.contains_point(*result.witness));
      for (const auto& si : inst.existing) {
        EXPECT_FALSE(si.contains_point(*result.witness));
      }
    }
  }
}

}  // namespace
}  // namespace psc
