// Tests for the broker network: the paper's Figure 1 walk-through,
// coverage-pruned flooding, reverse-path forwarding, delivery/loss
// accounting and unsubscription promotion.
#include "routing/broker_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace psc::routing {
namespace {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

NetworkConfig with_policy(store::CoveragePolicy policy) {
  NetworkConfig config;
  config.store.policy = policy;
  return config;
}

// Broker numbering helper to mirror the paper's B1..B9 names.
BrokerId B(int n) { return static_cast<BrokerId>(n - 1); }

TEST(BrokerNetwork, Figure1TopologyShape) {
  const auto net = BrokerNetwork::figure1_topology();
  EXPECT_EQ(net.broker_count(), 9u);
  EXPECT_EQ(net.broker(B(3)).neighbors().size(), 3u);  // B1, B2, B4
  EXPECT_EQ(net.broker(B(4)).neighbors().size(), 4u);  // B3, B5, B6, B7
  EXPECT_EQ(net.broker(B(7)).neighbors().size(), 3u);  // B4, B8, B9
  EXPECT_EQ(net.broker(B(1)).neighbors().size(), 1u);
}

TEST(BrokerNetwork, SubscriptionFloodsWholeTree) {
  auto net = BrokerNetwork::figure1_topology(
      with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(B(1), box2(0, 10, 0, 10, 1));
  // Tree with 9 nodes: 8 links, each crossed once.
  EXPECT_EQ(net.metrics().subscription_messages, 8u);
  // Every broker now routes s1.
  for (int b = 1; b <= 9; ++b) {
    EXPECT_EQ(net.broker(B(b)).routing_table_size(), 1u) << "B" << b;
  }
}

TEST(BrokerNetwork, PaperFigure1CoverageSuppressesSecondSubscription) {
  // s1 at S1 (B1) floods everywhere; s2 ⊑ s1 at S2 (B6) must NOT be
  // re-flooded past brokers that already forwarded s1 on the same links —
  // in the paper: B4 forwards s2 to B3 is suppressed... B4 forwards to B3?
  // The paper: "B4 will forward it to B3, but not to B5 nor B7 because B4
  // has previously subscribed to s1". With per-link covering state the
  // suppression happens at every link that already carries s1 toward the
  // publisher side. We assert the aggregate effect: s2 generates strictly
  // fewer messages than s1's 8, and brokers B5/B8/B9 never learn s2.
  auto net = BrokerNetwork::figure1_topology(
      with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(B(1), box2(0, 10, 0, 10, 1));  // s1
  const auto subs_before = net.metrics().subscription_messages;
  net.subscribe(B(6), box2(2, 8, 2, 8, 2));  // s2 ⊑ s1
  const auto s2_messages = net.metrics().subscription_messages - subs_before;
  EXPECT_LT(s2_messages, 8u);
  EXPECT_GT(net.metrics().subscriptions_suppressed, 0u);
  EXPECT_EQ(net.broker(B(5)).routing_table_size(), 1u);  // only s1
}

TEST(BrokerNetwork, PublicationFollowsReversePathOnly) {
  auto net = BrokerNetwork::figure1_topology(
      with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(B(1), box2(0, 10, 0, 10, 1));
  net.reset_metrics();
  // P1 at B9 publishes a matching notification: path B9-B7-B4-B3-B1 = 4 hops.
  const auto delivered = net.publish(B(9), Publication({5.0, 5.0}));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 1u);
  EXPECT_EQ(net.metrics().publication_messages, 4u);
  EXPECT_EQ(net.metrics().notifications_delivered, 1u);
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
}

TEST(BrokerNetwork, PaperDeliveryTreesForS1AndS2) {
  // n1 matches both s2 and s1 -> delivered to both subscribers.
  // n2 matches s1 only.
  auto net = BrokerNetwork::figure1_topology(
      with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(B(1), box2(0, 10, 0, 10, 1));  // s1 at S1/B1
  net.subscribe(B(6), box2(2, 8, 2, 8, 2));    // s2 ⊑ s1 at S2/B6
  const auto n1 = net.publish(B(9), Publication({5.0, 5.0}));  // inside s2
  EXPECT_EQ(n1, (std::vector<SubscriptionId>{1, 2}));
  const auto n2 = net.publish(B(5), Publication({9.5, 9.5}));  // s1 only
  EXPECT_EQ(n2, (std::vector<SubscriptionId>{1}));
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
}

TEST(BrokerNetwork, NonMatchingPublicationGoesNowhere) {
  auto net = BrokerNetwork::figure1_topology(
      with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(B(1), box2(0, 10, 0, 10, 1));
  net.reset_metrics();
  const auto delivered = net.publish(B(9), Publication({50.0, 50.0}));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(net.metrics().publication_messages, 0u);
}

TEST(BrokerNetwork, GroupCoverageSuppressesUnionCoveredSubscription) {
  // Two slab subscriptions whose union covers the third: the group policy
  // suppresses the third's flood entirely on links where both slabs
  // already travelled.
  auto net =
      BrokerNetwork::chain_topology(4, with_policy(store::CoveragePolicy::kGroup));
  net.subscribe(0, box2(820, 850, 1001, 1007, 1));
  net.subscribe(0, box2(840, 880, 1002, 1009, 2));
  net.reset_metrics();
  net.subscribe(0, box2(830, 870, 1003, 1006, 3));  // covered by 1 v 2
  // Suppressed at the very first link, so downstream brokers never see it:
  // exactly one suppression event and zero messages.
  EXPECT_EQ(net.metrics().subscription_messages, 0u);
  EXPECT_EQ(net.metrics().subscriptions_suppressed, 1u);
  // Pairwise policy would have forwarded it.
  auto net2 = BrokerNetwork::chain_topology(
      4, with_policy(store::CoveragePolicy::kPairwise));
  net2.subscribe(0, box2(820, 850, 1001, 1007, 1));
  net2.subscribe(0, box2(840, 880, 1002, 1009, 2));
  net2.reset_metrics();
  net2.subscribe(0, box2(830, 870, 1003, 1006, 3));
  EXPECT_EQ(net2.metrics().subscription_messages, 3u);
}

TEST(BrokerNetwork, SuppressedSubscriptionStillServedViaCoveringSet) {
  // The suppressed subscription's notifications still arrive: brokers
  // forward matching publications along the covering subscriptions' paths,
  // and the subscriber-side broker matches locally.
  auto net =
      BrokerNetwork::chain_topology(4, with_policy(store::CoveragePolicy::kGroup));
  net.subscribe(3, box2(820, 850, 1001, 1007, 1));
  net.subscribe(3, box2(840, 880, 1002, 1009, 2));
  net.subscribe(3, box2(830, 870, 1003, 1006, 3));  // covered; not flooded
  const auto delivered = net.publish(0, Publication({845.0, 1004.0}));
  // 845,1004 inside s3, also inside s1 and s2.
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{1, 2, 3}));
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
}

TEST(BrokerNetwork, FloodingPolicyDeliversEverythingAtHigherCost) {
  auto none = BrokerNetwork::chain_topology(
      6, with_policy(store::CoveragePolicy::kNone));
  auto pairwise = BrokerNetwork::chain_topology(
      6, with_policy(store::CoveragePolicy::kPairwise));
  for (auto* net : {&none, &pairwise}) {
    net->subscribe(0, box2(0, 10, 0, 10, 1));
    net->subscribe(0, box2(2, 8, 2, 8, 2));
    net->subscribe(0, box2(3, 7, 3, 7, 3));
  }
  EXPECT_GT(none.metrics().subscription_messages,
            pairwise.metrics().subscription_messages);
  // Both deliver the same notifications.
  const auto d1 = none.publish(5, Publication({5.0, 5.0}));
  const auto d2 = pairwise.publish(5, Publication({5.0, 5.0}));
  EXPECT_EQ(d1, d2);
}

TEST(BrokerNetwork, UnsubscribeRemovesRoutesAndPromotes) {
  auto net = BrokerNetwork::chain_topology(
      3, with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(0, box2(0, 10, 0, 10, 1));
  net.subscribe(0, box2(2, 8, 2, 8, 2));  // suppressed (covered by 1)
  net.unsubscribe(0, 1);
  // s2 must now be promoted and flooded so its publications still arrive.
  const auto delivered = net.publish(2, Publication({5.0, 5.0}));
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{2}));
  EXPECT_EQ(net.metrics().notifications_lost, 0u);
}

TEST(BrokerNetwork, UnsubscribeOfDemotedSubscriptionReachesAllBrokers) {
  // Regression (churn differential find): s1 floods while uncovered, THEN
  // s2 ⊇ s1 arrives. s1 was announced everywhere before s2 existed, so
  // s1's unsubscription must still flood — a link store that demoted s1
  // under s2 must not swallow it, or downstream brokers keep a ghost
  // route for s1 forever.
  auto net = BrokerNetwork::chain_topology(
      3, with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(0, box2(2, 8, 2, 8, 1));    // s1 floods first
  net.subscribe(0, box2(0, 10, 0, 10, 2));  // s2 covers s1, floods too
  net.unsubscribe(0, 1);
  for (BrokerId b = 0; b < 3; ++b) {
    EXPECT_EQ(net.broker(b).routing_table_size(), 1u) << "broker " << b;
  }
}

TEST(BrokerNetwork, PromotedTtlSubscriptionStillExpiresAfterReannounce) {
  // Regression (churn differential find): a TTL subscription suppressed as
  // covered is later promoted when its coverer unsubscribes. The
  // re-announcement must carry the original expiry — without it the
  // receiving broker would route the promoted subscription forever.
  auto net = BrokerNetwork::chain_topology(
      2, with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(0, box2(0, 10, 0, 10, 1));            // coverer
  net.subscribe_with_ttl(0, box2(2, 8, 2, 8, 2), 5.0);  // suppressed on link
  EXPECT_EQ(net.broker(1).routing_table_size(), 1u);  // only s1 announced
  net.unsubscribe(0, 1);  // promotes s2, reannounces it to broker 1
  EXPECT_EQ(net.broker(1).routing_table_size(), 1u);  // now s2
  net.advance_time(6.0);  // past s2's expiry
  EXPECT_EQ(net.broker(0).routing_table_size(), 0u);
  EXPECT_EQ(net.broker(1).routing_table_size(), 0u);
  EXPECT_EQ(net.local_subscription_count(), 0u);
}

TEST(BrokerNetwork, ExpectedRecipientsGroundTruth) {
  auto net = BrokerNetwork::chain_topology(
      3, with_policy(store::CoveragePolicy::kPairwise));
  net.subscribe(0, box2(0, 10, 0, 10, 1));
  net.subscribe(2, box2(5, 15, 5, 15, 2));
  const auto expected = net.expected_recipients(Publication({7.0, 7.0}));
  EXPECT_EQ(expected, (std::vector<SubscriptionId>{1, 2}));
}

TEST(BrokerNetwork, DuplicateSubscriptionIdThrows) {
  auto net = BrokerNetwork::chain_topology(2);
  net.subscribe(0, box2(0, 10, 0, 10, 1));
  EXPECT_THROW(net.subscribe(1, box2(0, 1, 0, 1, 1)), std::invalid_argument);
  EXPECT_THROW(net.subscribe(0, box2(0, 1, 0, 1, 0)), std::invalid_argument);
}

TEST(BrokerNetwork, UnsubscribeUnknownThrows) {
  auto net = BrokerNetwork::chain_topology(2);
  EXPECT_THROW(net.unsubscribe(0, 99), std::invalid_argument);
  net.subscribe(0, box2(0, 10, 0, 10, 1));
  EXPECT_THROW(net.unsubscribe(1, 1), std::invalid_argument);  // wrong home
}

TEST(BrokerNetwork, SelfLinkRejected) {
  BrokerNetwork net;
  const auto a = net.add_broker();
  EXPECT_THROW(net.connect(a, a), std::invalid_argument);
}

TEST(BrokerNetwork, PublishBatchMatchesSequentialPublishes) {
  // Two identical networks; one consumes the publications as a batch at a
  // single simulated instant, the other one by one. Deliveries and loss
  // accounting must agree, for a sharded local match index too.
  for (const std::size_t shards : {1UL, 4UL}) {
    NetworkConfig config = with_policy(store::CoveragePolicy::kGroup);
    config.match_shards = shards;
    auto sequential = BrokerNetwork::figure1_topology(config);
    auto batched = BrokerNetwork::figure1_topology(config);
    for (auto* net : {&sequential, &batched}) {
      net->subscribe(B(1), box2(0, 10, 0, 10, 1));
      net->subscribe(B(6), box2(2, 8, 2, 8, 2));
      net->subscribe(B(8), box2(5, 20, 5, 20, 3));
    }
    const std::vector<Publication> pubs{
        Publication({5.0, 5.0}), Publication({9.5, 9.5}),
        Publication({15.0, 15.0}), Publication({50.0, 50.0})};
    std::vector<std::vector<SubscriptionId>> expected;
    expected.reserve(pubs.size());
    for (const auto& pub : pubs) {
      expected.push_back(sequential.publish(B(9), pub));
    }
    EXPECT_EQ(batched.publish_batch(B(9), pubs), expected) << shards;
    EXPECT_EQ(batched.metrics().notifications_delivered,
              sequential.metrics().notifications_delivered)
        << shards;
    EXPECT_EQ(batched.metrics().notifications_lost,
              sequential.metrics().notifications_lost)
        << shards;
    EXPECT_EQ(batched.metrics().publication_messages,
              sequential.metrics().publication_messages)
        << shards;
  }
}

TEST(BrokerNetwork, CyclicTopologyTerminates) {
  // Ring of 4 brokers: duplicate suppression must stop infinite flooding.
  auto net = BrokerNetwork(with_policy(store::CoveragePolicy::kPairwise));
  for (int i = 0; i < 4; ++i) net.add_broker();
  net.connect(0, 1);
  net.connect(1, 2);
  net.connect(2, 3);
  net.connect(3, 0);
  net.subscribe(0, box2(0, 10, 0, 10, 1));
  // All brokers learn the subscription; message count is bounded (each of
  // the 4 links crossed at most twice).
  for (BrokerId b = 0; b < 4; ++b) {
    EXPECT_EQ(net.broker(b).routing_table_size(), 1u);
  }
  EXPECT_LE(net.metrics().subscription_messages, 8u);
  // Publication from the far side still arrives exactly once.
  const auto delivered = net.publish(2, Publication({5.0, 5.0}));
  EXPECT_EQ(delivered, (std::vector<SubscriptionId>{1}));
}

}  // namespace
}  // namespace psc::routing
