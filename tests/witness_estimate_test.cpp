// Tests for Algorithm 2 (rho_w estimation) and Equation 1 (trial bound d).
#include "core/witness_estimate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace psc::core {
namespace {

Subscription box2(double lo1, double hi1, double lo2, double hi2,
                  SubscriptionId id = 0) {
  return Subscription({Interval{lo1, hi1}, Interval{lo2, hi2}}, id);
}

TEST(WitnessEstimate, FullyCoveredAttributeYieldsZeroRho) {
  // One subscription covering s entirely: no defined entries, min gap per
  // attribute collapses... actually with no defined entries the min gap is
  // the full width, giving rho_w = 1. That is correct: with no constraints
  // the "witness" could be all of s — but the pipeline never reaches the
  // estimate in that case (Corollary 1 fires first). Here we verify the
  // estimator in isolation on a half-covered instance instead.
  const Subscription s = box2(0, 100, 0, 100);
  const std::vector<Subscription> set{box2(-1, 50, -1, 101, 1)};
  const ConflictTable table(s, set);
  const WitnessEstimate est = estimate_witness_probability(table);
  // Attribute 0: the single entry x1 > 50 leaves gap width 50.
  // Attribute 1: no entries -> gap = full width 100.
  EXPECT_DOUBLE_EQ(est.witness_volume, 50.0 * 100.0);
  EXPECT_DOUBLE_EQ(est.tested_volume, 100.0 * 100.0);
  EXPECT_DOUBLE_EQ(est.rho_w, 0.5);
}

TEST(WitnessEstimate, PaperCoverExampleGap) {
  // Table 3: row s1 leaves slab (850, 870] width 20; row s2 leaves
  // [830, 840) width 10. Min on x1 = 10; x2 unconstrained -> width 3.
  const Subscription s = box2(830, 870, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1001, 1007, 1),
                                      box2(840, 880, 1002, 1009, 2)};
  const ConflictTable table(s, set);
  const WitnessEstimate est = estimate_witness_probability(table);
  EXPECT_DOUBLE_EQ(est.witness_volume, 10.0 * 3.0);
  EXPECT_DOUBLE_EQ(est.tested_volume, 40.0 * 3.0);
  EXPECT_NEAR(est.rho_w, 0.25, 1e-12);
}

TEST(WitnessEstimate, NonCoverGapDominates) {
  // Table 6: s=[830,890], s1 ends at 850 (gap 40), s2 ends at 870 (gap 20)
  // and starts at 840 (gap 10). Min gap on x1 = 10.
  const Subscription s = box2(830, 890, 1003, 1006);
  const std::vector<Subscription> set{box2(820, 850, 1002, 1009, 1),
                                      box2(840, 870, 1001, 1007, 2)};
  const ConflictTable table(s, set);
  const WitnessEstimate est = estimate_witness_probability(table);
  EXPECT_DOUBLE_EQ(est.witness_volume, 10.0 * 3.0);
}

TEST(WitnessEstimate, DegenerateTestedVolumeGivesZeroRho) {
  const Subscription s = box2(0, 100, 5, 5);  // zero-measure box
  const std::vector<Subscription> set{box2(-1, 50, 0, 10, 1)};
  const ConflictTable table(s, set);
  const WitnessEstimate est = estimate_witness_probability(table);
  EXPECT_DOUBLE_EQ(est.rho_w, 0.0);
}

TEST(WitnessEstimate, RhoClampedToOne) {
  // No subscriptions at all: witness volume = tested volume -> rho = 1.
  const Subscription s = box2(0, 10, 0, 10);
  const std::vector<Subscription> set;
  const ConflictTable table(s, set);
  const WitnessEstimate est = estimate_witness_probability(table);
  EXPECT_DOUBLE_EQ(est.rho_w, 1.0);
}

TEST(TheoreticalTrials, MatchesClosedForm) {
  // d = ln(delta) / ln(1 - rho); spot-check rho = 0.5, delta = 1e-6:
  // ln(1e-6)/ln(0.5) = 19.93 -> ceil 20.
  EXPECT_DOUBLE_EQ(theoretical_trials(0.5, 1e-6), 20.0);
}

TEST(TheoreticalTrials, SmallRhoLargeD) {
  const double d = theoretical_trials(1e-4, 1e-10);
  // ln(1e-10)/ln(1-1e-4) ~ 23.026/1.00005e-4 ~ 230k.
  EXPECT_GT(d, 2.0e5);
  EXPECT_LT(d, 2.5e5);
}

TEST(TheoreticalTrials, ErrorBoundHolds) {
  // (1 - rho)^d <= delta for the returned d.
  for (const double rho : {0.001, 0.01, 0.1, 0.5, 0.9}) {
    for (const double delta : {1e-3, 1e-6, 1e-10}) {
      const double d = theoretical_trials(rho, delta);
      EXPECT_LE(std::pow(1.0 - rho, d), delta * (1 + 1e-9))
          << "rho=" << rho << " delta=" << delta;
    }
  }
}

TEST(TheoreticalTrials, ZeroRhoIsInfinite) {
  EXPECT_TRUE(std::isinf(theoretical_trials(0.0, 1e-6)));
  EXPECT_TRUE(std::isinf(theoretical_trials(-1.0, 1e-6)));
}

TEST(TheoreticalTrials, FullRhoIsOneTrial) {
  EXPECT_DOUBLE_EQ(theoretical_trials(1.0, 1e-6), 1.0);
}

TEST(TheoreticalTrials, BadDeltaThrows) {
  EXPECT_THROW((void)theoretical_trials(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)theoretical_trials(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)theoretical_trials(0.5, -0.1), std::invalid_argument);
}

TEST(CappedTrials, CapsInfiniteAndHuge) {
  EXPECT_EQ(capped_trials(0.0, 1e-6, 1000), 1000u);
  EXPECT_EQ(capped_trials(1e-12, 1e-10, 5000), 5000u);
}

TEST(CappedTrials, PassesThroughSmallD) {
  EXPECT_EQ(capped_trials(0.5, 1e-6, 1000), 20u);
  EXPECT_EQ(capped_trials(1.0, 1e-6, 1000), 1u);
}

TEST(CappedTrials, MonotoneInDelta) {
  // Tighter delta (smaller) demands at least as many trials.
  const auto loose = capped_trials(0.01, 1e-3, 1u << 30);
  const auto tight = capped_trials(0.01, 1e-10, 1u << 30);
  EXPECT_LE(loose, tight);
}

TEST(CappedTrials, MonotoneInRho) {
  // Larger witness probability needs fewer trials.
  const auto small_rho = capped_trials(0.001, 1e-6, 1u << 30);
  const auto large_rho = capped_trials(0.1, 1e-6, 1u << 30);
  EXPECT_GE(small_rho, large_rho);
}

}  // namespace
}  // namespace psc::core
