// Index-scaling harness: quantifies what the IntervalIndex buys over the
// seed's flat scans as the active set grows.
//
//   part 1 — publication matching: match_active() throughput, flat scan
//            (use_index=false) vs index point-stab, k = 1k .. 10k actives;
//   part 2 — subscription insertion under the group coverage policy: the
//            index prunes the candidate set handed to the subsumption
//            engine, so insert cost tracks the local neighbourhood size
//            instead of k.
//
// Usage: index_scaling [--runs=N] [--seed=S] [--csv=PATH] [--json=PATH]
//   --runs scales the publication count per cell (default 2000).
//   --json dumps part 1 in the same multi-scale section schema perf_gate
//   emits (one "scales" block per k, sections match_active_flat /
//   match_active_index), so scripts/check_bench.py can gate this harness
//   exactly like BENCH_core.json instead of parsing free-form text.
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/publication.hpp"
#include "store/subscription_store.hpp"
#include "util/json_writer.hpp"
#include "util/simd.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace {

using namespace psc;

store::StoreConfig store_config(bool use_index, store::CoveragePolicy policy) {
  store::StoreConfig config;
  config.policy = policy;
  config.use_index = use_index;
  config.engine.max_iterations = 5'000;
  // Part 1 measures pure matching at a fixed k: keep every inserted
  // subscription active (no pairwise demotion shrinking the set).
  config.demote_covered_actives = policy != store::CoveragePolicy::kNone;
  return config;
}

/// Fills a store with `k` subscriptions from a fresh stream (same seed for
/// both paths so the resulting states are identical).
store::SubscriptionStore populate(std::size_t k, bool use_index,
                                  store::CoveragePolicy policy,
                                  const workload::ComparisonConfig& config,
                                  std::uint64_t seed) {
  store::SubscriptionStore store(store_config(use_index, policy), 1);
  workload::ComparisonStream stream(config, seed);
  for (std::size_t i = 0; i < k; ++i) (void)store.insert(stream.next());
  return store;
}

/// One part-1 cell: both timed sections at a fixed active count.
struct MatchScale {
  std::size_t actives = 0;
  bench::SectionResult flat;
  bench::SectionResult index;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const std::size_t publications =
      static_cast<std::size_t>(args.runs_or(2'000));
  // Caps both sweeps' set sizes (--max-actives=1000 is the ctest smoke:
  // population cost, not the timed loops, dominates at full size).
  const auto max_actives = static_cast<std::size_t>(
      util::Flags(argc, argv).get_int("max-actives", 10'000));
  const std::string json_path = util::Flags(argc, argv).get_string("json", "");
  const util::Timer timer;

  // Wide schema, sparse selective predicates: the standard pub/sub
  // assumption (each subscriber constrains a handful of many attributes,
  // and "don't care" attributes span the whole domain). The flat scan must
  // walk every subscription past its wide attributes; the index sweeps
  // word-parallel candidate masks over the selective predicates only.
  workload::ComparisonConfig workload_config;
  workload_config.attribute_count = 20;
  workload_config.min_constrained = 2;
  workload_config.max_constrained = 6;
  workload_config.width_mean_fraction = 0.15;
  workload_config.width_stddev_fraction = 0.10;
  workload_config.zipf_skew = 0.3;           // spread popularity
  workload_config.center_cluster_scale = 0.35;  // spread interest centers

  util::print_banner(std::cout, "index_scaling",
                     "flat scan vs IntervalIndex on the store hot paths");
  std::cout << "simd backend: " << simd::backend_name() << "\n";

  // ---- part 1: publication matching over k actives -----------------------
  util::TableWriter match_table(
      {"actives", "pubs", "flat_us/pub", "index_us/pub", "speedup",
       "matches"},
      3);
  std::vector<MatchScale> match_scales;
  std::uint64_t checksum_sink = 0;
  for (const std::size_t k : {1'000UL, 2'500UL, 5'000UL, 10'000UL}) {
    if (k > max_actives) continue;
    // kNone keeps every subscription active so both stores hold exactly k.
    auto flat = populate(k, false, store::CoveragePolicy::kNone,
                         workload_config, args.seed);
    auto indexed = populate(k, true, store::CoveragePolicy::kNone,
                            workload_config, args.seed);

    util::Rng pub_rng(args.seed + 1);
    std::vector<core::Publication> pubs;
    pubs.reserve(publications);
    for (std::size_t i = 0; i < publications; ++i) {
      pubs.push_back(workload::uniform_publication(
          workload_config.attribute_count, workload_config.domain_lo,
          workload_config.domain_hi, pub_rng));
    }

    MatchScale scale;
    scale.actives = k;
    std::size_t flat_matches = 0;
    scale.flat = bench::time_section(
        "match_active_flat", publications, [&](std::uint64_t i) {
          flat_matches += flat.match_active(pubs[i]).size();
        });
    std::size_t index_matches = 0;
    scale.index = bench::time_section(
        "match_active_index", publications, [&](std::uint64_t i) {
          index_matches += indexed.match_active(pubs[i]).size();
        });

    if (flat_matches != index_matches) {
      std::cerr << "MISMATCH at k=" << k << ": flat " << flat_matches
                << " vs index " << index_matches << "\n";
      return 1;
    }
    checksum_sink += flat_matches;
    const double flat_us = 1e6 / scale.flat.ops_per_sec;
    const double index_us = 1e6 / scale.index.ops_per_sec;
    match_table.add_row({static_cast<long long>(k),
                         static_cast<long long>(publications), flat_us,
                         index_us, flat_us / index_us,
                         static_cast<long long>(flat_matches)});
    match_scales.push_back(std::move(scale));
  }
  std::cout << "\npublication matching (match_active):\n";
  match_table.print(std::cout);

  // ---- part 2: group-policy insertion with candidate pruning -------------
  util::TableWriter insert_table(
      {"inserts", "flat_ms", "index_ms", "speedup", "active_flat",
       "active_index"},
      3);
  for (const std::size_t k : {500UL, 1'000UL, 2'000UL}) {
    if (k > max_actives) continue;
    util::Timer flat_timer;
    auto flat = populate(k, false, store::CoveragePolicy::kGroup,
                         workload_config, args.seed);
    const double flat_ms = flat_timer.elapsed_millis();

    util::Timer index_timer;
    auto indexed = populate(k, true, store::CoveragePolicy::kGroup,
                            workload_config, args.seed);
    const double index_ms = index_timer.elapsed_millis();

    insert_table.add_row({static_cast<long long>(k), flat_ms, index_ms,
                          flat_ms / index_ms,
                          static_cast<long long>(flat.active_count()),
                          static_cast<long long>(indexed.active_count())});
  }
  std::cout << "\ngroup-policy insertion (coverage candidate pruning):\n";
  insert_table.print(std::cout);

  if (!args.csv_path.empty()) {
    match_table.write_csv(args.csv_path);
    std::cout << "\ncsv written to " << args.csv_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out_file(json_path);
    if (!out_file) {
      std::cerr << "cannot open --json path: " << json_path << "\n";
      return 1;
    }
    util::JsonWriter json(out_file);
    json.begin_object();
    json.member("bench", "index_scaling");
    json.member("seed", args.seed);
    json.begin_object("simd");
    json.member("backend", simd::backend_name());
    json.member("vectorized", simd::vectorized());
    json.end_object();
    json.begin_array("scales");
    for (const MatchScale& scale : match_scales) {
      json.begin_object();
      json.begin_object("config");
      json.member("actives", std::uint64_t{scale.actives});
      json.member("attributes",
                  std::uint64_t{workload_config.attribute_count});
      json.member("queries", std::uint64_t{publications});
      json.end_object();
      json.begin_object("sections");
      bench::write_section(json, scale.flat);
      bench::write_section(json, scale.index);
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.begin_object("gates");
    // The flat-vs-index equality above already exited non-zero on any
    // mismatch; reaching this point means zero divergences.
    json.member("oracle_divergences", std::uint64_t{0});
    json.end_object();
    json.member("checksum_sink", checksum_sink);
    json.end_object();
    out_file << '\n';
    std::cout << "\njson written to " << json_path << "\n";
  }
  std::cout << "\nelapsed: " << timer.elapsed_seconds() << " s\n";
  return 0;
}
