// TCP soak — the loopback multi-process differential gate at bench scale:
// a real psc_brokerd cluster per (topology, seed) cell replays a churn
// trace against the in-process FlatOracle, delivered sets byte-identical
// (zero divergence, zero loss, zero duplicates — the kOpResult ids ARE the
// delivered set, so any of those shows up as a set mismatch). Faults stay
// off for the base leg; the kill leg then SIGKILLs a mid-overlay broker
// half way through the trace and requires the surviving neighbours'
// EOF-triggered purges (the fail_link repair semantics) to keep the
// remaining components oracle-exact.
//
//   ./tcp_soak [--brokers=8] [--ops=300] [--seeds=2] [--seed=2006]
//       [--topology=NAME] [--policy=exact] [--match-shards=1]
//       [--kill=true] [--brokerd=PATH] [--json=PATH]
//
// Topology family: chain / star / random-tree (brokerd overlays are trees;
// random-tree draws each node's parent from a seeded stream). --topology
// substring-filters the family, like the other soaks.
//
// JSON artifact: per-run rows plus a top-level "gates" object with the
// aggregate oracle_divergences counter — scripts/check_bench.py validates
// that gate (recording-only: no perf baseline comparison for TCP runs,
// wall-clock here is scheduler noise, not a regression signal).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "net/cluster.hpp"
#include "net/cluster_driver.hpp"
#include "util/json_writer.hpp"

#ifndef PSC_BROKERD_BIN
#define PSC_BROKERD_BIN ""
#endif

namespace {

using namespace psc;

using LinkList = std::vector<std::pair<routing::BrokerId, routing::BrokerId>>;

struct SoakTopology {
  std::string name;
  LinkList links;
};

std::vector<SoakTopology> soak_topologies(std::size_t brokers,
                                          std::uint64_t seed) {
  std::vector<SoakTopology> family;
  LinkList chain;
  for (routing::BrokerId b = 1; b < brokers; ++b) chain.emplace_back(b - 1, b);
  family.push_back({"chain", std::move(chain)});

  LinkList star;
  for (routing::BrokerId b = 1; b < brokers; ++b) star.emplace_back(0, b);
  family.push_back({"star", std::move(star)});

  // Random tree: node i attaches to a uniformly drawn earlier node, so the
  // shape (depth, branching) varies with the seed while staying a tree.
  util::Rng rng(seed ^ 0x7c957ee5u);
  LinkList tree;
  for (routing::BrokerId b = 1; b < brokers; ++b) {
    tree.emplace_back(static_cast<routing::BrokerId>(rng.next_below(b)), b);
  }
  family.push_back({"random-tree", std::move(tree)});
  return family;
}

/// The kill victim: an internal (non-leaf) broker when one exists, so the
/// SIGKILL actually splits the overlay instead of trimming a leaf.
routing::BrokerId pick_victim(const SoakTopology& topology,
                              std::size_t brokers) {
  std::vector<std::size_t> degree(brokers, 0);
  for (const auto& [a, b] : topology.links) {
    ++degree[a];
    ++degree[b];
  }
  for (routing::BrokerId b = 1; b < brokers; ++b) {
    if (degree[b] > 1) return b;
  }
  return brokers > 1 ? 1 : 0;
}

struct SoakResult {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t brokers = 0;
  net::ReplayReport report;
  double elapsed_seconds = 0.0;

  [[nodiscard]] bool gates_pass() const {
    return report.divergences == 0 && report.publishes > 0;
  }
};

void write_json(const std::string& path, std::size_t brokers,
                const std::string& policy,
                const std::vector<SoakResult>& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open --json path: " + path);
  std::uint64_t total_divergences = 0;
  std::uint64_t total_publishes = 0;
  for (const SoakResult& result : results) {
    total_divergences += result.report.divergences;
    total_publishes += result.report.publishes;
  }
  util::JsonWriter json(out);
  json.begin_object();
  json.member("bench", "tcp_soak");
  json.member("policy", policy);
  json.member("brokers", std::uint64_t{brokers});
  json.begin_array("runs");
  for (const SoakResult& result : results) {
    json.begin_object();
    json.member("name", result.name);
    json.member("seed", result.seed);
    json.member("brokers", std::uint64_t{result.brokers});
    json.member("ops", std::uint64_t{result.report.ops});
    json.member("subscribes", std::uint64_t{result.report.subscribes});
    json.member("unsubscribes", std::uint64_t{result.report.unsubscribes});
    json.member("publishes", std::uint64_t{result.report.publishes});
    json.member("skipped", std::uint64_t{result.report.skipped});
    json.member("divergences", std::uint64_t{result.report.divergences});
    json.member("killed", result.report.killed);
    json.member("gates_pass", result.gates_pass());
    json.member("elapsed_seconds", result.elapsed_seconds);
    json.end_object();
  }
  json.end_array();
  // The aggregate gate scripts/check_bench.py validates for this artifact.
  json.begin_object("gates");
  json.member("oracle_divergences", total_divergences);
  json.member("total_publishes", total_publishes);
  json.end_object();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;
  const util::Flags flags(argc, argv);

  const auto brokers = static_cast<std::size_t>(flags.get_int("brokers", 8));
  const auto ops = static_cast<std::size_t>(flags.get_int("ops", 300));
  const auto seed_count = static_cast<std::size_t>(flags.get_int("seeds", 2));
  const auto base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 2006));
  const std::string policy = flags.get_string("policy", "exact");
  const auto match_shards =
      static_cast<std::size_t>(flags.get_int("match-shards", 1));
  const bool with_kill = flags.get_bool("kill", true);
  const std::string topology_filter = flags.get_string("topology", "");
  const std::string json_path = flags.get_string("json", "");
  const std::string brokerd_path =
      flags.get_string("brokerd", PSC_BROKERD_BIN);
  if (brokerd_path.empty()) {
    std::cerr << "tcp_soak: no psc_brokerd path (pass --brokerd=PATH)\n";
    return 2;
  }

  util::print_banner(std::cout, "tcp_soak",
                     "multi-process TCP cluster vs FlatOracle, loopback");

  util::TableWriter table({"topology", "seed", "leg", "brokers", "ops",
                           "publishes", "skipped", "divergences", "seconds"});
  std::vector<SoakResult> results;
  std::vector<std::string> failures;

  const auto run_one = [&](const SoakTopology& topology, std::uint64_t seed,
                           const char* leg, const net::ReplayOptions& replay) {
    net::ClusterOptions options;
    options.brokerd_path = brokerd_path;
    options.brokers = brokers;
    options.links = topology.links;
    options.seed = seed;
    options.match_shards = match_shards;
    options.policy = policy;

    workload::ChurnConfig config;
    // One op per slot; TTLs off routes every mortal subscription through an
    // explicit unsubscribe (wall clock is not sim time), membership rates
    // stay zero (kills are driver-initiated, not trace ops).
    config.ttl_fraction = 0.0;
    config.duration = config.slot * static_cast<double>(ops);
    const workload::ChurnTrace trace =
        workload::generate_churn_trace(config, brokers, seed);

    SoakResult result;
    result.name = topology.name + "/" + leg;
    result.seed = seed;
    result.brokers = brokers;
    const util::Timer timer;
    net::Cluster cluster(std::move(options));
    cluster.start();
    result.report = net::replay_trace_vs_oracle(cluster, trace, replay);
    cluster.shutdown();
    result.elapsed_seconds = timer.elapsed_seconds();

    table.add_row({result.name, static_cast<long long>(seed),
                   std::string(leg), static_cast<long long>(brokers),
                   static_cast<long long>(result.report.ops),
                   static_cast<long long>(result.report.publishes),
                   static_cast<long long>(result.report.skipped),
                   static_cast<long long>(result.report.divergences),
                   result.elapsed_seconds});
    if (!result.gates_pass()) {
      std::cerr << "\nGATE FAILURE on " << result.name << " (seed " << seed
                << "): divergences=" << result.report.divergences
                << " publishes=" << result.report.publishes << "\n"
                << "  reproduce: ./tcp_soak --brokers=" << brokers
                << " --ops=" << ops << " --seed=" << seed << " --seeds=1"
                << " --topology=" << topology.name
                << " --policy=" << policy << "\n";
      failures.push_back(result.name + "/" + std::to_string(seed));
    }
    results.push_back(std::move(result));
  };

  for (const SoakTopology& topology : soak_topologies(brokers, base_seed)) {
    if (!topology_filter.empty() &&
        topology.name.find(topology_filter) == std::string::npos) {
      continue;
    }
    for (std::size_t s = 0; s < seed_count; ++s) {
      const std::uint64_t seed = base_seed + s;
      // Faults-off leg first: the clean differential baseline.
      run_one(topology, seed, "clean", {});
      if (with_kill && brokers >= 3) {
        net::ReplayOptions replay;
        replay.kill_at_op = ops / 2;
        replay.victim = pick_victim(topology, brokers);
        run_one(topology, seed, "kill", replay);
      }
    }
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, brokers, policy, results);
    std::cout << "\njson written to " << json_path << "\n";
  }
  if (!failures.empty()) {
    std::cerr << "\nFAIL: gates tripped on " << failures.size() << " run(s)\n";
    return 1;
  }
  std::cout << "\nall tcp-loopback gates passed (" << results.size()
            << " runs)\n";
  return 0;
}
