// Figure 14 — Ratio of group-coverage to pairwise-coverage active-set size
// over the same comparison stream as Figure 13.
//
// Expected shape: ratio ~0.7-0.8 after 1000 subscriptions, decreasing and
// stabilizing toward 5000; larger (closer to 1) for larger m, with m = 15
// and m = 20 nearly coinciding.
#include "bench_common.hpp"
#include "store/subscription_store.hpp"
#include "util/flags.hpp"
#include "workload/comparison_stream.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const util::Flags flags(argc, argv);
  const auto total_subs = static_cast<std::size_t>(flags.get_int("subs", 2000));
  const std::size_t report_every = std::max<std::size_t>(1, total_subs / 10);
  util::Timer timer;

  util::print_banner(std::cout, "Figure 14: group/pairwise active-set size ratio",
                     "comparison scenario; delta=1e-6; stream length=" +
                         std::to_string(total_subs));

  util::TableWriter table({"subs", "m=10", "m=15", "m=20"}, 4);
  const std::size_t checkpoints = total_subs / report_every;
  std::vector<std::vector<double>> ratios(checkpoints);

  for (const std::size_t m : bench::paper_m_values()) {
    workload::ComparisonConfig stream_config;
    stream_config.attribute_count = m;
    stream_config.min_constrained = std::min<std::size_t>(3, m);
    stream_config.max_constrained = std::min<std::size_t>(6, m);

    store::StoreConfig pairwise_config;
    pairwise_config.policy = store::CoveragePolicy::kPairwise;
    store::StoreConfig group_config;
    group_config.policy = store::CoveragePolicy::kGroup;
    group_config.engine.delta = 1e-6;
    group_config.engine.max_iterations = 20'000;

    store::SubscriptionStore pairwise(pairwise_config, args.seed);
    store::SubscriptionStore group(group_config, args.seed);
    workload::ComparisonStream stream_a(stream_config, args.seed + m);
    workload::ComparisonStream stream_b(stream_config, args.seed + m);

    for (std::size_t i = 1; i <= total_subs; ++i) {
      pairwise.insert(stream_a.next());
      group.insert(stream_b.next());
      if (i % report_every == 0) {
        const double pair_size = static_cast<double>(pairwise.active_count());
        const double group_size = static_cast<double>(group.active_count());
        ratios[i / report_every - 1].push_back(
            pair_size > 0 ? group_size / pair_size : 1.0);
      }
    }
  }

  for (std::size_t c = 0; c < checkpoints; ++c) {
    table.add_row({static_cast<long long>((c + 1) * report_every),
                   ratios[c][0], ratios[c][1], ratios[c][2]});
  }
  bench::finish(table, args, timer);
  return 0;
}
