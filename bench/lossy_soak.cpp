// Lossy soak — subscription/publication/membership churn replayed over
// UNRELIABLE wires: every directed link injects seeded iid drop / dup /
// reorder / jitter faults plus scripted burst-loss windows, and the
// reliable link protocol (per-link sequencing, cumulative acks,
// retransmit with exponential backoff, receiver dedup/reorder windows)
// must make all of it invisible to the application. The run is
// differentially gated against the flat oracle across the membership
// topology family and multiple seeds: zero divergent publishes, zero
// lost deliveries, zero duplicates, zero ghost routes — with the fault
// counters proving the wire was actually hostile, and the scripted
// bursts forcing retry-cap escalations into the fail_link degradation
// path (which the driver mirrors into the oracle).
//
//   ./lossy_soak [--brokers=24] [--ops=400] [--seeds=3] [--seed=2006]
//       [--policy=exact] [--latency=0.0001] [--drop=0.2] [--dup=0.1]
//       [--reorder=0.1] [--jitter=0.5] [--bursts=4] [--burst-slots=2.5]
//       [--rto=0] [--rto-max=0] [--retries=12] [--window=128]
//       [--sub-rate=2.0] [--pub-rate=4.0] [--membership=true]
//       [--differential=true] [--json=PATH] [--topology=NAME]
//       [--dump-dir=.] [--replay=FILE]
//
// The op slot is derived from the protocol's worst-case hop time
// (LinkConfig::worst_hop_delay: the full retransmit-backoff chain plus
// jitter/reorder delays), so cascades — including retransmit storms —
// always quiesce inside half a slot. Sim-seconds are free; --ops fixes
// the amount of work per run.
//
// Failure reproducibility: a tripped gate dumps the trace (PSCT, with
// embedded universe, fault rates, and burst schedule) and prints the
// exact --replay one-liner. The link-protocol knobs ride the command
// line, not the trace, so pass the same --rto/--retries/... on replay.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "routing/link_channel.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "util/json_writer.hpp"
#include "workload/churn_workload.hpp"

namespace {

using namespace psc;

struct SoakResult {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t brokers = 0;
  workload::ChurnTrace trace;
  sim::ChurnReport report;
  double elapsed_seconds = 0.0;
  bool bursts_scripted = false;

  [[nodiscard]] bool gates_pass() const {
    const sim::Metrics& m = report.totals;
    // Oracle exactness through every fault and escalation…
    if (report.mismatched_publishes != 0 || m.notifications_lost != 0 ||
        m.notifications_duplicated != 0 ||
        report.membership.ghost_routes != 0) {
      return false;
    }
    // …and proof the protocol actually fought a hostile wire.
    return m.frames_dropped > 0 && m.retransmits > 0 && m.acks_sent > 0;
  }
};

routing::BrokerNetwork build_from_universe(
    const routing::MembershipUniverse& universe,
    routing::NetworkConfig config) {
  routing::BrokerNetwork net(config);
  for (std::size_t i = 0; i < universe.brokers; ++i) (void)net.add_broker();
  for (const auto& [a, b] : universe.links) net.connect(a, b);
  return net;
}

/// Slot sizing under faults: half a slot must clear the worst-case
/// cascade, where one hop can cost the whole retransmit-backoff chain.
workload::ChurnConfig shape_time(workload::ChurnConfig config,
                                 const routing::LinkConfig& link,
                                 std::size_t max_brokers, std::size_t ops) {
  config.faults.cascade_hop_bound = link.worst_hop_delay(config.link_latency);
  config.slot = 2.2 * static_cast<double>(max_brokers + 1) *
                config.faults.cascade_hop_bound;
  config.epoch_length = config.slot * 50.0;
  config.duration = config.slot * static_cast<double>(ops);
  return config;
}

void write_json(const std::string& path, const workload::ChurnConfig& config,
                const routing::LinkConfig& link, store::CoveragePolicy policy,
                const std::vector<SoakResult>& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open --json path: " + path);
  util::JsonWriter json(out);
  json.begin_object();
  json.member("bench", "lossy_soak");
  json.member("policy", store::to_string(policy));
  json.begin_object("config");
  json.member("link_latency", config.link_latency);
  json.member("drop", link.faults.drop_probability);
  json.member("dup", link.faults.dup_probability);
  json.member("reorder", link.faults.reorder_probability);
  json.member("jitter", link.faults.delay_jitter);
  json.member("burst_count", std::uint64_t{config.faults.burst_count});
  json.member("burst_length", config.faults.burst_length);
  json.member("rto", link.effective_rto(config.link_latency));
  json.member("rto_max", link.effective_rto_max(config.link_latency));
  json.member("max_retries", std::uint64_t{link.max_retries});
  json.member("window", std::uint64_t{link.window});
  json.end_object();
  json.begin_array("runs");
  for (const SoakResult& result : results) {
    const sim::ChurnReport& report = result.report;
    const sim::Metrics& m = report.totals;
    json.begin_object();
    json.member("name", result.name);
    json.member("seed", result.seed);
    // Shaped per run: the slot scales with this overlay's broker cap and
    // the protocol's worst-case hop delay (rto chain + jitter).
    json.member("slot", result.trace.config.slot);
    json.member("cascade_hop_bound",
                result.trace.config.faults.cascade_hop_bound);
    json.member("brokers", std::uint64_t{result.brokers});
    json.member("ops", std::uint64_t{report.ops});
    json.member("publishes", std::uint64_t{report.publishes});
    json.member("delivered", m.notifications_delivered);
    json.member("lost", m.notifications_lost);
    json.member("duplicated", m.notifications_duplicated);
    json.member("mismatched_publishes", report.mismatched_publishes);
    json.member("ghost_routes", std::uint64_t{report.membership.ghost_routes});
    json.member("publish_coalescing", report.publish_coalescing);
    json.begin_object("link_protocol");
    json.member("frames_dropped", m.frames_dropped);
    json.member("frames_duplicated", m.frames_duplicated);
    json.member("retransmits", m.retransmits);
    json.member("dups_suppressed", m.dups_suppressed);
    json.member("reorders_healed", m.reorders_healed);
    json.member("acks_sent", m.acks_sent);
    json.member("backpressure_stalls", m.backpressure_stalls);
    json.member("link_escalations",
                std::uint64_t{report.membership.link_escalations});
    json.member("skipped_link_failures",
                std::uint64_t{report.membership.skipped_link_failures});
    json.member("skipped_link_heals",
                std::uint64_t{report.membership.skipped_link_heals});
    json.end_object();
    json.member("gates_pass", result.gates_pass());
    json.member("elapsed_seconds", result.elapsed_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;
  const util::Flags flags(argc, argv);

  const auto brokers = static_cast<std::size_t>(flags.get_int("brokers", 24));
  const auto ops = static_cast<std::size_t>(flags.get_int("ops", 400));
  const auto seed_count = static_cast<std::size_t>(flags.get_int("seeds", 3));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 2006));
  const auto policy =
      store::parse_coverage_policy(flags.get_string("policy", "exact"));
  const bool differential = flags.get_bool("differential", true);
  const bool with_membership = flags.get_bool("membership", true);
  const std::string json_path = flags.get_string("json", "");
  const std::string topology_filter = flags.get_string("topology", "");
  const std::string dump_dir = flags.get_string("dump-dir", ".");
  const std::string replay_path = flags.get_string("replay", "");

  workload::ChurnConfig config;
  config.link_latency = flags.get_double("latency", 0.0001);
  config.subscription_rate = flags.get_double("sub-rate", 2.0);
  config.publication_rate = flags.get_double("pub-rate", 4.0);
  config.faults.link.drop_probability = flags.get_double("drop", 0.2);
  config.faults.link.dup_probability = flags.get_double("dup", 0.1);
  config.faults.link.reorder_probability = flags.get_double("reorder", 0.1);
  config.faults.link.delay_jitter = flags.get_double("jitter", 0.5);
  config.faults.burst_count =
      static_cast<std::size_t>(flags.get_int("bursts", 4));

  routing::LinkConfig link;
  link.enabled = true;
  // Default to a short explicit chain (4x/8x latency instead of the
  // 4x/32x auto-derivation) so the slot — which scales with the whole
  // chain — stays dense. 4x is the floor that avoids systematic spurious
  // retransmits: an ack round trip is ~3 latencies (data flight +
  // delayed-ack timer + ack flight), so rto=2x fires one useless
  // retransmit per frame. The retry cap stays at 12: an escalation from
  // iid loss alone needs 13 consecutive silent rounds (~0.2^13).
  link.rto = flags.get_double("rto", 4.0 * config.link_latency);
  link.rto_max = flags.get_double("rto-max", 8.0 * config.link_latency);
  link.max_retries = static_cast<std::size_t>(flags.get_int("retries", 12));
  link.window = static_cast<std::size_t>(flags.get_int("window", 128));
  link.faults = config.faults.link;

  store::StoreConfig store_config;
  store_config.policy = policy;
  routing::NetworkConfig net_config = routing::NetworkConfig::Builder()
                                          .store(store_config)
                                          .link_latency(config.link_latency)
                                          .link(link)
                                          .build();

  util::print_banner(std::cout, "lossy_soak",
                     "drop/dup/reorder/burst wire faults, oracle-gated");

  util::TableWriter table({"topology", "seed", "brokers", "ops", "publishes",
                           "delivered", "mismatch", "dup", "ghosts", "dropped",
                           "retx", "dupsup", "escal", "seconds"});
  std::vector<SoakResult> results;
  std::vector<std::string> failures;
  bool any_bursts_scripted = false;

  const auto run_one = [&](const std::string& name, std::uint64_t seed,
                           std::size_t broker_count, routing::BrokerNetwork net,
                           workload::ChurnTrace trace) {
    SoakResult result;
    result.name = name;
    result.seed = seed;
    result.brokers = broker_count;
    result.bursts_scripted = !trace.bursts.empty();
    result.trace = std::move(trace);
    any_bursts_scripted |= result.bursts_scripted;
    const util::Timer timer;
    sim::ChurnDriver::Options driver_options;
    driver_options.differential = differential;
    result.report = sim::ChurnDriver::run(net, result.trace, driver_options);
    result.elapsed_seconds = timer.elapsed_seconds();

    const sim::ChurnReport& report = result.report;
    table.add_row({result.name, static_cast<long long>(seed),
                   static_cast<long long>(result.brokers),
                   static_cast<long long>(report.ops),
                   static_cast<long long>(report.publishes),
                   static_cast<long long>(report.totals.notifications_delivered),
                   static_cast<long long>(report.mismatched_publishes),
                   static_cast<long long>(report.totals.notifications_duplicated),
                   static_cast<long long>(report.membership.ghost_routes),
                   static_cast<long long>(report.totals.frames_dropped),
                   static_cast<long long>(report.totals.retransmits),
                   static_cast<long long>(report.totals.dups_suppressed),
                   static_cast<long long>(report.membership.link_escalations),
                   result.elapsed_seconds});

    if (differential && !result.gates_pass()) {
      const std::string dump = dump_dir + "/lossy_soak_fail_" + result.name +
                               "_" + std::to_string(seed) + ".psct";
      bench::write_trace_file(dump, result.trace);
      std::cerr << "\nGATE FAILURE on " << result.name << " (seed " << seed
                << ", policy " << store::to_string(policy) << "):\n"
                << "  mismatched=" << report.mismatched_publishes
                << " lost=" << report.totals.notifications_lost
                << " duplicated=" << report.totals.notifications_duplicated
                << " ghosts=" << report.membership.ghost_routes
                << " dropped=" << report.totals.frames_dropped
                << " retransmits=" << report.totals.retransmits << "\n"
                << "  trace dumped; replay with:\n"
                << "    ./lossy_soak --replay=" << dump << " --seed=" << seed
                << " --policy=" << store::to_string(policy)
                << " --rto=" << link.rto << " --rto-max=" << link.rto_max
                << " --retries=" << link.max_retries
                << " --window=" << link.window << "\n";
      failures.push_back(result.name + "/" + std::to_string(seed));
    }
    results.push_back(std::move(result));
  };

  if (!replay_path.empty()) {
    workload::ChurnTrace trace = bench::read_trace_file(replay_path);
    config = trace.config;  // the dump carries slot/faults/rates verbatim
    net_config.link_latency = trace.config.link_latency;
    net_config.link.faults = trace.config.faults.link;
    net_config.seed = trace.seed;
    if (trace.has_membership) {
      const std::size_t replay_brokers = trace.universe.brokers;
      auto net = build_from_universe(trace.universe, net_config);
      run_one("replay", trace.seed, replay_brokers, std::move(net),
              std::move(trace));
    } else {
      std::cerr << "replay file has no membership universe: " << replay_path
                << "\n";
      return 2;
    }
  } else {
    for (const routing::MembershipTopology& topology :
         routing::membership_topologies(brokers, base_seed)) {
      if (!topology_filter.empty() &&
          topology.name.find(topology_filter) == std::string::npos) {
        continue;
      }
      for (std::size_t s = 0; s < seed_count; ++s) {
        const std::uint64_t seed = base_seed + s;
        workload::ChurnConfig shaped = config;
        shaped.membership.max_brokers =
            topology.brokers + std::max<std::size_t>(8, topology.brokers / 16);
        shaped = shape_time(shaped, link, shaped.membership.max_brokers, ops);
        if (with_membership) {
          // Per-slot event budgets, expressed against the derived slot
          // width so the trace sees the same churn density at any scale.
          shaped.membership.join_rate = 0.2 / shaped.slot;
          shaped.membership.leave_rate = 0.15 / shaped.slot;
          shaped.membership.crash_rate = 0.2 / shaped.slot;
          shaped.membership.partition_rate = 0.4 / shaped.slot;
        }
        // Bursts span multiple slots so any frame sent into one exhausts
        // a full retransmit chain deterministically.
        shaped.faults.burst_length =
            shaped.slot * flags.get_double("burst-slots", 2.5);
        routing::NetworkConfig run_config = net_config;
        run_config.seed = seed;  // per-seed fault substreams
        routing::BrokerNetwork net = topology.build(run_config);
        const routing::MembershipUniverse universe = topology.universe(net);
        run_one(topology.name, seed, topology.brokers, std::move(net),
                workload::generate_churn_trace(shaped, universe, seed));
      }
    }
  }
  table.print(std::cout);

  // Escalation coverage is a matrix-level gate: each scripted burst only
  // forces an escalation if traffic crosses its link inside the window,
  // but across topologies x seeds the degradation path must fire.
  std::size_t total_escalations = 0;
  for (const SoakResult& result : results) {
    total_escalations += result.report.membership.link_escalations;
  }
  if (differential && any_bursts_scripted && total_escalations == 0) {
    std::cerr << "\nFAIL: scripted bursts never escalated into fail_link\n";
    failures.push_back("escalation-coverage");
  }

  if (!json_path.empty()) {
    write_json(json_path, config, link, policy, results);
    std::cout << "\njson written to " << json_path << "\n";
  }

  if (!failures.empty()) {
    std::cerr << "\nFAIL: gates tripped on " << failures.size() << " run(s)\n";
    return 1;
  }
  std::cout << "\nall lossy-link gates passed (" << results.size() << " runs, "
            << total_escalations << " escalations mirrored)\n";
  return 0;
}
