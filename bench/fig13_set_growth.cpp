// Figure 13 — Active subscription-set growth: pair-wise vs group coverage.
//
// Paper setup: one stream of 5000 subscriptions per m in {10, 15, 20},
// generated with the popularity model (Zipf 2.0 attributes, Pareto 1.0
// centers, normal widths); delta = 1e-6. Each incoming subscription is
// checked against the current active set under (a) pairwise coverage and
// (b) group coverage via the probabilistic engine; covered subscriptions
// are not added to the active set.
//
// Expected shape: group << pairwise for every m; after 5000 subscriptions
// the active set is ~10 % of the stream for m = 10/15 (pairwise ~15 %) and
// ~33 % for m = 20 (pairwise ~50 %); absolute sizes grow with m.
//
// Default stream length is 2000 for a quick run; --subs=5000 reproduces
// the paper's axis. (Runtime is dominated by the group checks.)
#include "bench_common.hpp"
#include "store/subscription_store.hpp"
#include "util/flags.hpp"
#include "workload/comparison_stream.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const util::Flags flags(argc, argv);
  const auto total_subs = static_cast<std::size_t>(flags.get_int("subs", 2000));
  const std::size_t report_every = std::max<std::size_t>(1, total_subs / 10);
  util::Timer timer;

  util::print_banner(std::cout, "Figure 13: active-set growth, pairwise vs group coverage",
                     "comparison scenario; delta=1e-6; stream length=" +
                         std::to_string(total_subs));

  std::vector<std::string> headers{"subs"};
  for (const std::size_t m : bench::paper_m_values()) {
    headers.push_back("m=" + std::to_string(m) + ",pair");
    headers.push_back("m=" + std::to_string(m) + ",group");
  }
  util::TableWriter table(std::move(headers));

  // One pass per m: feed identical streams into both stores and sample the
  // active-set size every report_every subscriptions.
  std::vector<std::vector<long long>> series;  // [checkpoint][column]
  const std::size_t checkpoints = total_subs / report_every;
  series.assign(checkpoints, {});

  for (const std::size_t m : bench::paper_m_values()) {
    workload::ComparisonConfig stream_config;
    stream_config.attribute_count = m;
    stream_config.min_constrained = std::min<std::size_t>(3, m);
    stream_config.max_constrained = std::min<std::size_t>(6, m);

    store::StoreConfig pairwise_config;
    pairwise_config.policy = store::CoveragePolicy::kPairwise;
    store::StoreConfig group_config;
    group_config.policy = store::CoveragePolicy::kGroup;
    group_config.engine.delta = 1e-6;
    group_config.engine.max_iterations = 20'000;

    store::SubscriptionStore pairwise(pairwise_config, args.seed);
    store::SubscriptionStore group(group_config, args.seed);

    workload::ComparisonStream stream_a(stream_config, args.seed + m);
    workload::ComparisonStream stream_b(stream_config, args.seed + m);

    for (std::size_t i = 1; i <= total_subs; ++i) {
      pairwise.insert(stream_a.next());
      group.insert(stream_b.next());
      if (i % report_every == 0) {
        auto& row = series[i / report_every - 1];
        row.push_back(static_cast<long long>(pairwise.active_count()));
        row.push_back(static_cast<long long>(group.active_count()));
      }
    }
    std::cout << "m=" << m << " done after " << timer.elapsed_seconds()
              << " s (group checks: " << group.group_checks() << ")\n";
  }

  for (std::size_t c = 0; c < checkpoints; ++c) {
    std::vector<util::Cell> row{
        static_cast<long long>((c + 1) * report_every)};
    for (const long long v : series[c]) row.push_back(v);
    table.add_row(std::move(row));
  }
  bench::finish(table, args, timer);
  return 0;
}
