// Ablation — what each stage of the Algorithm-4 pipeline contributes.
//
// Runs the same mixed instance stream through four engine configurations:
//   full         fast decisions + MCS + prefilter
//   no-fast      MCS + prefilter only
//   no-mcs       fast decisions + prefilter only
//   rspc-only    bare Monte-Carlo
// and reports, per configuration: decision-path distribution, mean RSPC
// iterations, mean candidate-set size at sampling time, wall time, and
// (against the exact oracle) the number of wrong verdicts.
#include <array>
#include <iostream>

#include "baseline/exact_subsumption.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace psc;

struct Variant {
  const char* name;
  core::EngineConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = args.runs_or(200);
  util::Timer total;

  util::print_banner(std::cout, "Ablation: pipeline stages (fast paths / MCS / prefilter)",
                     "mixed scenario stream; m=6, k=40; instances=" +
                         std::to_string(runs * 4) + " per variant");

  core::EngineConfig base;
  base.delta = 1e-6;
  base.max_iterations = 50'000;

  std::array<Variant, 4> variants{{
      {"full", base},
      {"no-fast", base},
      {"no-mcs", base},
      {"rspc-only", base},
  }};
  variants[1].config.use_fast_decisions = false;
  variants[2].config.use_mcs = false;
  variants[3].config.use_fast_decisions = false;
  variants[3].config.use_mcs = false;
  variants[3].config.prefilter_intersecting = false;

  util::TableWriter table({"variant", "pairwise", "witness", "mcs-empty",
                           "rspc-no", "rspc-yes", "avg-iters", "avg-cands",
                           "wrong", "ms"},
                          4);

  workload::ScenarioConfig config;
  config.attribute_count = 6;
  config.set_size = 40;

  for (const auto& variant : variants) {
    util::Rng rng(args.seed);  // identical stream per variant
    core::SubsumptionEngine engine(variant.config, args.seed);
    std::array<long long, 6> paths{};
    util::RunningStats iters, cands;
    long long wrong = 0;
    util::Timer timer;
    for (std::int64_t run = 0; run < runs; ++run) {
      for (int family = 0; family < 4; ++family) {
        workload::Instance inst;
        switch (family) {
          case 0: inst = workload::make_pairwise_covering(config, rng); break;
          case 1: inst = workload::make_redundant_covering(config, rng); break;
          case 2: inst = workload::make_non_cover(config, rng); break;
          default:
            inst = workload::make_extreme_non_cover(config, 0.05, rng);
        }
        const auto result = engine.check(inst.tested, inst.existing);
        ++paths[static_cast<std::size_t>(result.path)];
        iters.add(static_cast<double>(result.iterations));
        cands.add(static_cast<double>(result.reduced_set_size));
        if (result.covered != inst.expected_covered) ++wrong;
      }
    }
    const double ms = timer.elapsed_millis();
    table.add_row({std::string(variant.name),
                   paths[1],          // kPairwiseCover
                   paths[2],          // kPolyhedronWitness
                   paths[3],          // kMcsEmpty
                   paths[4],          // kRspcWitness
                   paths[5],          // kRspcProbabilistic
                   iters.mean(), cands.mean(), wrong, ms});
  }
  bench::finish(table, args, total);
  return 0;
}
