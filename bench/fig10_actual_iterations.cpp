// Figure 10 — ACTUAL RSPC iterations performed in the non-cover scenario,
// with and without MCS, using the full decision pipeline.
//
// Expected shape: averages far below the theoretical d — under ~5 without
// MCS (the witness gap is sizable, geometric discovery is fast) and under
// ~0.5 with MCS (the reduced set is usually empty, so the probabilistic
// phase rarely runs at all).
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = args.runs_or(100);
  util::Timer timer;

  util::print_banner(std::cout, "Figure 10: actual RSPC iterations, non-cover scenario",
                     "full pipeline; delta=1e-10; runs/cell=" + std::to_string(runs));

  util::TableWriter table({"k", "m=10", "m=15", "m=20", "m=10;MCS", "m=15;MCS",
                           "m=20;MCS"},
                          4);
  util::Rng rng(args.seed);

  core::EngineConfig with_mcs;
  with_mcs.delta = 1e-10;
  with_mcs.max_iterations = 100'000;
  // The paper's Figure 10 isolates RSPC behaviour: the deterministic
  // Corollary-3 test would answer most instances outright, so it is off.
  with_mcs.use_fast_decisions = false;
  core::EngineConfig without_mcs = with_mcs;
  without_mcs.use_mcs = false;

  for (const std::size_t k : bench::paper_k_sweep()) {
    std::vector<double> plain(3, 0.0), reduced(3, 0.0);
    for (std::size_t mi = 0; mi < 3; ++mi) {
      const std::size_t m = bench::paper_m_values()[mi];
      workload::ScenarioConfig config;
      config.attribute_count = m;
      config.set_size = k;
      util::RunningStats plain_stats, reduced_stats;
      for (std::int64_t run = 0; run < runs; ++run) {
        const auto inst = workload::make_non_cover(config, rng);
        const std::uint64_t seed = rng();
        core::SubsumptionEngine engine_plain(without_mcs, seed);
        core::SubsumptionEngine engine_mcs(with_mcs, seed);
        plain_stats.add(static_cast<double>(
            engine_plain.check(inst.tested, inst.existing).iterations));
        reduced_stats.add(static_cast<double>(
            engine_mcs.check(inst.tested, inst.existing).iterations));
      }
      plain[mi] = plain_stats.mean();
      reduced[mi] = reduced_stats.mean();
    }
    table.add_row({static_cast<long long>(k), plain[0], plain[1], plain[2],
                   reduced[0], reduced[1], reduced[2]});
  }
  bench::finish(table, args, timer);
  return 0;
}
