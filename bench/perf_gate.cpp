// perf_gate — the repo's persistent performance trajectory, in one binary.
//
// Measures ops/sec and p50/p99 latency for the hot paths every PR is
// judged against, emits machine-readable BENCH_core.json, and GATES on
// correctness while doing so: every timed section cross-checks its results
// against a flat-scan oracle, the vectorized and scalar index paths must
// produce identical result checksums in the same run, and the
// five-topology churn soak runs with the differential network oracle on.
// Any divergence exits non-zero (the CI perf-smoke job relies on this).
//
//   ./perf_gate [--small] [--json=BENCH_core.json]
//               [--actives=100000,1000000] [--attrs=4] [--queries=N]
//               [--churn-ops=N] [--seed=2006] [--soak-duration=20]
//
// --actives is a comma-separated list of SCALE TIERS. The first tier is
// the primary one and runs every section below; later tiers (the 1M-active
// tier in the default full run) re-measure the index-bound sections only —
// stab, box_intersect, insert_erase_churn_amortized — and are recorded as
// separate "scales" blocks in the JSON so scripts/check_bench.py can gate
// each tier independently.
//
// Sections (see docs/PERFORMANCE.md for the methodology):
//   * stab           — point-stab on the interval index at tier size
//   * box_intersect  — box-intersect on the same index
//   * insert_erase_churn — mutation-heavy steady state (erase+insert per
//     op) on BOTH the churn-amortized tiered index and the eager pre-tier
//     ablation (IndexConfig::amortize_mutations = false); the ratio is the
//     PR 4 headline speedup and is gated >= 3x in full runs (primary tier
//     only: eager at 1M actives would take hours by construction)
//   * broker_publish — Broker::handle_publication through PublishScratch
//     (the zero-allocation publish path) against a routed table
//   * broker_publish_pipelined — the same routed table through the staged
//     PublishPipeline (origin-partitioned lanes + radix route stage);
//     gated decision-identical to broker_publish in-run and >= 5x its
//     throughput in full runs. Latency samples are per pipeline chunk
//     (--pipeline-chunk publications each), not per publication.
//     Knobs: --pipeline-workers=-1 (auto) --pipeline-batch=16
//     --pipeline-depth=4 --pipeline-chunk=256 (see docs/TUNING.md)
//   * churn_soak     — sim::ChurnDriver over the five standard topologies
//     with the differential oracle on (ops/sec per topology); runs with
//     the pipelined network config + publish coalescing, so the soak
//     differentially exercises the staged path under churn
//
// --small shrinks every size for the CI smoke / ctest registration; small
// runs still gate on correctness (oracles + checksums) but skip the
// speedup threshold (tiny sizes are all noise).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "index/interval_index.hpp"
#include "routing/broker.hpp"
#include "routing/publish_pipeline.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "util/json_writer.hpp"
#include "util/simd.hpp"
#include "workload/churn_workload.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace psc;
using bench::SectionResult;
using bench::time_section;
using bench::write_section;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;

std::vector<SubscriptionId> sorted(std::vector<SubscriptionId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

struct GateState {
  std::uint64_t divergences = 0;

  void check(bool ok, const std::string& what) {
    if (!ok) {
      ++divergences;
      std::cerr << "ORACLE DIVERGENCE: " << what << "\n";
    }
  }
};

/// One scale tier's measurements: the index-bound sections plus the
/// order-independent result checksums of the vectorized and scalar paths
/// over the same sampled queries (gated equal — the in-run ablation
/// oracle, and a dead-code-elimination defeat for the SIMD sweeps).
struct ScaleResult {
  std::size_t actives = 0;
  std::uint64_t queries = 0;
  std::uint64_t churn_ops = 0;
  SectionResult stab;
  SectionResult box;
  SectionResult churn_amortized;
  std::uint64_t checksum_simd = 0;
  std::uint64_t checksum_scalar = 0;
};

std::vector<std::size_t> parse_actives_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string item = csv.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoull(item)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const bool small = flags.get_bool("small", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2006));
  const std::vector<std::size_t> actives_tiers = parse_actives_list(
      flags.get_string("actives", small ? "2000,6000" : "100000,1000000"));
  const auto attrs =
      static_cast<std::size_t>(flags.get_int("attrs", 4));
  const auto queries = static_cast<std::uint64_t>(
      flags.get_int("queries", small ? 2'000 : 20'000));
  const auto churn_ops = static_cast<std::uint64_t>(
      flags.get_int("churn-ops", small ? 2'000 : 20'000));
  const double soak_duration = flags.get_double("soak-duration", small ? 5.0 : 20.0);
  const std::string json_path = flags.get_string("json", "BENCH_core.json");
  if (actives_tiers.empty()) {
    std::cerr << "--actives needs at least one tier\n";
    return 1;
  }
  const std::size_t actives = actives_tiers.front();  // primary tier

  util::print_banner(std::cout, "perf_gate",
                     "hot-path throughput/latency trajectory + oracle gates");
  std::cout << "simd backend: " << simd::backend_name() << "\n\n";

  GateState gate;
  std::uint64_t sink = 0;
  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = attrs;
  stream_config.max_constrained = std::min<std::size_t>(attrs, 3);

  // ---------------------------------------------------------------------
  // Churn section runner (own fixture: the mutation mix must not disturb
  // the query fixtures). Oracle: exact stab equality against a flat scan
  // over the mirrored live set after the full run — catches both ghost ids
  // and silently dropped matches.
  const auto run_churn = [&](index::IndexConfig config, std::size_t fixture,
                             std::uint64_t ops, const std::string& label,
                             const std::vector<Publication>& oracle_probes) {
    workload::ComparisonStream churn_stream(stream_config, seed);
    index::IntervalIndex index(attrs, config);
    std::vector<Subscription> live_subs;
    live_subs.reserve(fixture);
    for (std::size_t i = 0; i < fixture; ++i) {
      Subscription sub = churn_stream.next();
      index.insert(sub);
      live_subs.push_back(std::move(sub));
    }
    std::vector<Subscription> incoming;
    incoming.reserve(ops);
    for (std::uint64_t i = 0; i < ops; ++i) incoming.push_back(churn_stream.next());
    util::Rng churn_rng(seed ^ 0x5eedULL);
    SectionResult result = time_section(label, ops, [&](std::uint64_t i) {
      const std::size_t victim = churn_rng.next_below(live_subs.size());
      index.erase(live_subs[victim].id());
      index.insert(incoming[i]);
      live_subs[victim] = incoming[i];
    });
    gate.check(index.size() == live_subs.size(), label + ": size drift");
    const std::uint64_t probe_count = oracle_probes.size();
    for (std::uint64_t p = 0; p < probe_count;
         p += std::max<std::uint64_t>(probe_count / 8, 1)) {
      std::vector<SubscriptionId> expected;
      for (const Subscription& sub : live_subs) {
        if (oracle_probes[p].matches(sub)) expected.push_back(sub.id());
      }
      gate.check(sorted(index.stab(oracle_probes[p].values())) == sorted(expected),
                 label + ": post-churn stab drift at probe " + std::to_string(p));
    }
    return result;
  };

  // ---------------------------------------------------------------------
  // One scale tier: query fixture at `tier_actives` mirrored in a flat
  // vector (the oracle), the production index, and a scalar-path twin
  // (IndexConfig::use_simd = false) for the in-run checksum ablation.
  const auto run_scale = [&](std::size_t tier_actives) {
    ScaleResult scale;
    scale.actives = tier_actives;
    scale.queries = queries;
    scale.churn_ops = churn_ops;
    const std::string suffix = " @" + std::to_string(tier_actives);

    workload::ComparisonStream stream(stream_config, seed);
    std::vector<Subscription> live;
    live.reserve(tier_actives);
    index::IntervalIndex tiered(attrs);
    index::IndexConfig scalar_config;
    scalar_config.use_simd = false;
    index::IntervalIndex scalar_twin(attrs, scalar_config);
    for (std::size_t i = 0; i < tier_actives; ++i) {
      Subscription sub = stream.next();
      tiered.insert(sub);
      scalar_twin.insert(sub);
      live.push_back(std::move(sub));
    }

    std::uint64_t probe_seed = seed;
    util::Rng probe_rng(util::splitmix64(probe_seed));
    std::vector<Publication> probes;
    probes.reserve(queries);
    for (std::uint64_t i = 0; i < queries; ++i) {
      probes.push_back(workload::uniform_publication(attrs, 0.0, 1000.0, probe_rng));
    }
    workload::ScenarioConfig box_config;
    box_config.attribute_count = attrs;
    std::vector<Subscription> box_probes;
    box_probes.reserve(queries);
    for (std::uint64_t i = 0; i < queries; ++i) {
      box_probes.push_back(workload::random_box(box_config, 0.02, 0.2, probe_rng));
    }

    // --- stab ----------------------------------------------------------
    std::vector<SubscriptionId> out;
    scale.stab = time_section("stab", queries, [&](std::uint64_t i) {
      out.clear();
      tiered.stab(probes[i].values(), out);
      sink += out.size();
    });
    for (std::uint64_t i = 0; i < queries;
         i += std::max<std::uint64_t>(queries / 16, 1)) {
      std::vector<SubscriptionId> expected;
      for (const Subscription& sub : live) {
        if (probes[i].matches(sub)) expected.push_back(sub.id());
      }
      gate.check(sorted(tiered.stab(probes[i].values())) == sorted(expected),
                 "stab probe " + std::to_string(i) + suffix);
    }

    // --- box_intersect -------------------------------------------------
    scale.box = time_section("box_intersect", queries, [&](std::uint64_t i) {
      out.clear();
      tiered.box_intersect(box_probes[i], out);
      sink += out.size();
    });
    for (std::uint64_t i = 0; i < queries;
         i += std::max<std::uint64_t>(queries / 16, 1)) {
      std::vector<SubscriptionId> expected;
      for (const Subscription& sub : live) {
        if (sub.intersects(box_probes[i])) expected.push_back(sub.id());
      }
      gate.check(sorted(tiered.box_intersect(box_probes[i])) == sorted(expected),
                 "box_intersect probe " + std::to_string(i) + suffix);
    }

    // --- scalar/SIMD checksum ablation ---------------------------------
    // Sampled queries run on both the production index and the scalar
    // twin; the id-sum fold is order-independent, so equal checksums pin
    // identical RESULT SETS without sorting. This is also the fold that
    // keeps the compiler from dead-code-eliminating either sweep.
    for (std::uint64_t i = 0; i < queries;
         i += std::max<std::uint64_t>(queries / 64, 1)) {
      for (const auto* index : {&tiered, &scalar_twin}) {
        auto& checksum =
            index == &tiered ? scale.checksum_simd : scale.checksum_scalar;
        out.clear();
        index->stab(probes[i].values(), out);
        for (const SubscriptionId id : out) checksum += id;
        out.clear();
        index->box_intersect(box_probes[i], out);
        for (const SubscriptionId id : out) checksum += id;
      }
    }
    gate.check(scale.checksum_simd == scale.checksum_scalar,
               "scalar/SIMD checksum mismatch" + suffix);
    sink += scale.checksum_simd;

    // --- churn (amortized only; the eager ablation runs at the primary
    // tier, where its quadratic fixture build is still tractable) --------
    scale.churn_amortized =
        run_churn(index::IndexConfig{}, tier_actives, churn_ops,
                  "insert_erase_churn_amortized", probes);
    return scale;
  };

  std::vector<ScaleResult> scales;
  scales.reserve(actives_tiers.size());
  for (const std::size_t tier : actives_tiers) {
    scales.push_back(run_scale(tier));
  }
  const ScaleResult& primary = scales.front();

  // --- Section: insert_erase_churn_eager (primary tier, full ablation) --
  // The eager path is orders of magnitude slower at 100k actives; cap its
  // op count so the baseline measurement stays tractable.
  std::vector<Publication> primary_probes;
  {
    std::uint64_t probe_seed = seed;
    util::Rng probe_rng(util::splitmix64(probe_seed));
    primary_probes.reserve(queries);
    for (std::uint64_t i = 0; i < queries; ++i) {
      primary_probes.push_back(
          workload::uniform_publication(attrs, 0.0, 1000.0, probe_rng));
    }
  }
  index::IndexConfig eager_config;
  eager_config.amortize_mutations = false;
  const std::uint64_t eager_ops = std::min<std::uint64_t>(
      churn_ops, small ? churn_ops : 4'000);
  const SectionResult churn_eager =
      run_churn(eager_config, actives, eager_ops, "insert_erase_churn_eager",
                primary_probes);
  const SectionResult& churn_amortized = primary.churn_amortized;
  const double speedup = churn_eager.ops_per_sec > 0
                             ? churn_amortized.ops_per_sec / churn_eager.ops_per_sec
                             : 0.0;

  // Deep equivalence check between the two mutation modes on a smaller
  // churned instance: identical stab/box results op for op.
  {
    const std::size_t n = small ? 300 : 2'000;
    workload::ComparisonStream a_stream(stream_config, seed + 1);
    workload::ComparisonStream b_stream(stream_config, seed + 1);
    index::IntervalIndex amortized(attrs);
    index::IntervalIndex eager(attrs, eager_config);
    std::vector<SubscriptionId> ids;
    util::Rng rng(seed + 2);
    for (std::size_t i = 0; i < n; ++i) {
      if (!ids.empty() && rng.bernoulli(0.4)) {
        const std::size_t victim = rng.next_below(ids.size());
        amortized.erase(ids[victim]);
        eager.erase(ids[victim]);
        ids[victim] = ids.back();
        ids.pop_back();
      } else {
        const Subscription sub = a_stream.next();
        (void)b_stream.next();
        amortized.insert(sub);
        eager.insert(sub);
        ids.push_back(sub.id());
      }
      const Publication probe =
          workload::uniform_publication(attrs, 0.0, 1000.0, rng);
      gate.check(sorted(amortized.stab(probe.values())) ==
                     sorted(eager.stab(probe.values())),
                 "amortized/eager stab drift at op " + std::to_string(i));
    }
  }

  // --- Section: broker_publish ------------------------------------------
  // One broker, two links, `actives` routed subscriptions from a mix of
  // local and neighbour origins; the zero-allocation scratch publish path.
  store::StoreConfig broker_store;
  routing::Broker broker(0, broker_store, seed, /*match_shards=*/1);
  broker.add_neighbor(1);
  broker.add_neighbor(2);
  {
    workload::ComparisonStream route_stream(stream_config, seed + 3);
    util::Rng origin_rng(seed + 4);
    for (std::size_t i = 0; i < actives; ++i) {
      routing::Origin origin{true, routing::kInvalidBroker};
      const auto draw = origin_rng.next_below(3);
      if (draw == 1) origin = routing::Origin{false, 1};
      if (draw == 2) origin = routing::Origin{false, 2};
      (void)broker.handle_subscription(route_stream.next(), origin);
    }
  }
  routing::Broker::PublishScratch scratch;
  const routing::Origin publish_origin{true, routing::kInvalidBroker};
  const SectionResult broker_publish =
      time_section("broker_publish", queries, [&](std::uint64_t i) {
        const auto& route =
            broker.handle_publication(primary_probes[i], publish_origin, scratch);
        sink += route.local_matches.size() + route.destinations.size();
      });
  // Oracle: scratch overload against the legacy vector-returning overload.
  for (std::uint64_t i = 0; i < queries; i += std::max<std::uint64_t>(queries / 8, 1)) {
    std::vector<SubscriptionId> legacy_local;
    const auto legacy_dests =
        broker.handle_publication(primary_probes[i], publish_origin, legacy_local);
    const auto& route =
        broker.handle_publication(primary_probes[i], publish_origin, scratch);
    gate.check(route.local_matches == legacy_local &&
                   route.destinations == legacy_dests,
               "broker_publish route drift at probe " + std::to_string(i));
  }

  // --- Section: broker_publish_pipelined --------------------------------
  // Same broker, same routed table, same probes — through the staged
  // pipeline. Chunked timing: each latency sample covers one run() call of
  // up to --pipeline-chunk publications (the pipeline amortizes across a
  // chunk, so per-publication timing would measure the harness, not the
  // path). ops stays the publication count, so ops_per_sec is comparable
  // with broker_publish.
  routing::PublishPipelineOptions pipeline_options;
  const auto pipeline_workers = flags.get_int("pipeline-workers", -1);
  if (pipeline_workers >= 0) {
    pipeline_options.workers = static_cast<std::size_t>(pipeline_workers);
  }
  pipeline_options.batch_size =
      static_cast<std::size_t>(flags.get_int("pipeline-batch", 16));
  pipeline_options.queue_depth =
      static_cast<std::size_t>(flags.get_int("pipeline-depth", 4));
  const auto pipeline_chunk = static_cast<std::uint64_t>(
      flags.get_int("pipeline-chunk", 256));
  broker.enable_publish_lanes();
  routing::PublishPipeline pipeline(pipeline_options);
  std::vector<routing::Broker::PublicationRoute> pipe_routes;
  const SectionResult broker_publish_pipelined = [&] {
    bench::LatencyRecorder latencies;
    const util::Timer timer;
    std::uint64_t done = 0;
    while (done < queries) {
      const std::uint64_t n = std::min(pipeline_chunk, queries - done);
      latencies.time([&] {
        pipeline.run(broker,
                     std::span<const Publication>(
                         primary_probes.data() + done, n),
                     publish_origin, pipe_routes);
        for (const auto& route : pipe_routes) {
          sink += route.local_matches.size() + route.destinations.size();
        }
      });
      done += n;
    }
    return latencies.section("broker_publish_pipelined", queries,
                             timer.elapsed_seconds());
  }();
  // Oracle: decision-for-decision equality against the sequential scratch
  // path, from both a local and a neighbour origin (never-send-back).
  for (std::uint64_t i = 0; i < queries;
       i += std::max<std::uint64_t>(queries / 8, 1)) {
    for (const routing::Origin& origin :
         {publish_origin, routing::Origin{false, 1}}) {
      pipeline.run(broker,
                   std::span<const Publication>(primary_probes.data() + i, 1),
                   origin, pipe_routes);
      const auto& route =
          broker.handle_publication(primary_probes[i], origin, scratch);
      gate.check(pipe_routes.at(0).local_matches == route.local_matches &&
                     pipe_routes.at(0).destinations == route.destinations,
                 "broker_publish_pipelined route drift at probe " +
                     std::to_string(i) +
                     (origin.local ? " (local)" : " (neighbour)"));
    }
  }
  const double pipeline_speedup =
      broker_publish.ops_per_sec > 0
          ? broker_publish_pipelined.ops_per_sec / broker_publish.ops_per_sec
          : 0.0;

  // --- Section: churn_soak (five topologies, differential oracle on) ---
  struct SoakRow {
    std::string name;
    std::size_t brokers = 0;
    std::uint64_t ops = 0;
    std::uint64_t publishes = 0;
    std::uint64_t mismatched = 0;
    std::uint64_t lost = 0;
    double ops_per_sec = 0.0;
  };
  std::vector<SoakRow> soak_rows;
  {
    workload::ChurnConfig churn_config;
    churn_config.duration = soak_duration;
    churn_config.subscription_rate = 3.0;
    churn_config.publication_rate = 5.0;
    for (routing::Topology& topology : routing::standard_topologies(seed)) {
      const routing::NetworkConfig net_config =
          routing::NetworkConfig::Builder()
              .pipelined(true, pipeline_options)
              .build();
      churn_config.link_latency = net_config.link_latency;
      const auto trace =
          workload::generate_churn_trace(churn_config, topology.brokers, seed);
      auto net = topology.build(net_config);
      const util::Timer timer;
      sim::ChurnDriver::Options driver_options;
      driver_options.differential = true;
      driver_options.pipelined_publish = true;
      const auto report = sim::ChurnDriver::run(net, trace, driver_options);
      const double elapsed = timer.elapsed_seconds();
      SoakRow row;
      row.name = topology.name;
      row.brokers = topology.brokers;
      row.ops = report.ops;
      row.publishes = report.publishes;
      row.mismatched = report.mismatched_publishes;
      row.lost = report.totals.notifications_lost;
      row.ops_per_sec =
          elapsed > 0 ? static_cast<double>(report.ops) / elapsed : 0.0;
      gate.check(row.mismatched == 0,
                 "churn_soak differential mismatch on " + row.name);
      gate.check(row.lost == 0, "churn_soak lost notifications on " + row.name);
      soak_rows.push_back(std::move(row));
    }
  }

  // ---------------------------------------------------------------- table
  util::TableWriter table(
      {"section", "actives", "ops", "ops_per_sec", "p50_ns", "p99_ns"});
  for (const ScaleResult& scale : scales) {
    for (const SectionResult* r :
         {&scale.stab, &scale.box, &scale.churn_amortized}) {
      table.add_row({r->name, static_cast<long long>(scale.actives),
                     static_cast<long long>(r->ops), r->ops_per_sec, r->p50_ns,
                     r->p99_ns});
    }
  }
  for (const SectionResult* r :
       {&churn_eager, &broker_publish, &broker_publish_pipelined}) {
    table.add_row({r->name, static_cast<long long>(actives),
                   static_cast<long long>(r->ops), r->ops_per_sec, r->p50_ns,
                   r->p99_ns});
  }
  table.print(std::cout);
  std::cout << "\nchurn speedup (amortized / eager) at " << actives
            << " actives: " << speedup << "x\n";
  std::cout << "publish speedup (pipelined / sequential) at " << actives
            << " actives: " << pipeline_speedup << "x\n";
  for (const SoakRow& row : soak_rows) {
    std::cout << "soak " << row.name << ": " << row.ops_per_sec
              << " ops/sec, mismatched=" << row.mismatched
              << ", lost=" << row.lost << "\n";
  }

  // ----------------------------------------------------------------- json
  // Top-level config/sections describe the PRIMARY tier (schema-compatible
  // with pre-multi-scale consumers); "scales" carries every tier.
  if (!json_path.empty()) {
    std::ofstream out_file(json_path);
    if (!out_file) {
      std::cerr << "cannot open --json path: " << json_path << "\n";
      return 1;
    }
    util::JsonWriter json(out_file);
    json.begin_object();
    json.member("bench", "perf_gate");
    json.member("seed", seed);
    json.member("small", small);
    json.begin_object("simd");
    json.member("backend", simd::backend_name());
    json.member("vectorized", simd::vectorized());
    json.end_object();
    json.begin_object("config");
    json.member("actives", std::uint64_t{actives});
    json.member("attributes", std::uint64_t{attrs});
    json.member("queries", queries);
    json.member("churn_ops", churn_ops);
    json.member("soak_duration", soak_duration);
    json.end_object();
    json.begin_object("sections");
    write_section(json, primary.stab);
    write_section(json, primary.box);
    write_section(json, primary.churn_amortized);
    write_section(json, churn_eager);
    write_section(json, broker_publish);
    write_section(json, broker_publish_pipelined);
    json.begin_object("churn_soak");
    json.begin_array("topologies");
    for (const SoakRow& row : soak_rows) {
      json.begin_object();
      json.member("name", row.name);
      json.member("brokers", std::uint64_t{row.brokers});
      json.member("ops", row.ops);
      json.member("publishes", row.publishes);
      json.member("ops_per_sec", row.ops_per_sec);
      json.member("mismatched_publishes", row.mismatched);
      json.member("lost", row.lost);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    json.end_object();
    json.begin_array("scales");
    for (const ScaleResult& scale : scales) {
      json.begin_object();
      json.begin_object("config");
      json.member("actives", std::uint64_t{scale.actives});
      json.member("attributes", std::uint64_t{attrs});
      json.member("queries", scale.queries);
      json.member("churn_ops", scale.churn_ops);
      json.end_object();
      json.begin_object("sections");
      write_section(json, scale.stab);
      write_section(json, scale.box);
      write_section(json, scale.churn_amortized);
      json.end_object();
      json.member("checksum_simd", scale.checksum_simd);
      json.member("checksum_scalar", scale.checksum_scalar);
      json.end_object();
    }
    json.end_array();
    json.begin_object("gates");
    json.member("oracle_divergences", gate.divergences);
    json.member("churn_speedup_vs_eager", speedup);
    json.member("churn_speedup_required",
                small ? 0.0 : 3.0);
    json.member("publish_speedup_pipelined", pipeline_speedup);
    json.member("publish_speedup_required", small ? 0.0 : 5.0);
    json.end_object();
    json.member("checksum_sink", sink);  // defeats dead-code elimination
    json.end_object();
    out_file << '\n';
    std::cout << "\njson written to " << json_path << "\n";
  }

  // ---------------------------------------------------------------- gates
  if (gate.divergences > 0) {
    std::cerr << "\nFAIL: " << gate.divergences << " oracle divergences\n";
    return 1;
  }
  if (!small && speedup < 3.0) {
    std::cerr << "\nFAIL: churn speedup " << speedup
              << "x below the 3x acceptance gate\n";
    return 1;
  }
  if (!small && pipeline_speedup < 5.0) {
    std::cerr << "\nFAIL: pipelined publish speedup " << pipeline_speedup
              << "x below the 5x acceptance gate\n";
    return 1;
  }
  return 0;
}
