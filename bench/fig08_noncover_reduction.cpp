// Figure 8 — Reduction for the non-cover scenario.
//
// Paper setup: the union leaves a slab of s uncovered (scenario 2.b), so
// the WHOLE set is redundant. MCS removal ratio = removed / k, swept over
// k = 10..310 for m = 10, 15, 20.
//
// Expected shape: even better than Figure 6 — ratios >= 0.88 rising
// toward 1.0, because non-covering rows are removed quickly.
#include "bench_common.hpp"
#include "core/conflict_table.hpp"
#include "core/mcs.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = args.runs_or(100);
  util::Timer timer;

  util::print_banner(std::cout, "Figure 8: redundant-subscription reduction (non-cover case)",
                     "MCS removal ratio; scenario 2.b; runs/cell=" +
                         std::to_string(runs));

  util::TableWriter table({"k", "m=10", "m=15", "m=20"}, 4);
  util::Rng rng(args.seed);

  for (const std::size_t k : bench::paper_k_sweep()) {
    std::vector<util::Cell> row{static_cast<long long>(k)};
    for (const std::size_t m : bench::paper_m_values()) {
      workload::ScenarioConfig config;
      config.attribute_count = m;
      config.set_size = k;
      util::RunningStats reduction;
      for (std::int64_t run = 0; run < runs; ++run) {
        const auto inst = workload::make_non_cover(config, rng);
        const core::ConflictTable ct(inst.tested, inst.existing);
        const auto mcs = core::run_mcs(ct);
        reduction.add(static_cast<double>(k - mcs.kept.size()) /
                      static_cast<double>(k));
      }
      row.push_back(reduction.mean());
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args, timer);
  return 0;
}
