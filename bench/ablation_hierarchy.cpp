// Ablation — the Section 4.4 multi-level covered-matching hierarchy.
//
// Same store contents, two matching modes: flat scan of the covered set vs
// descent through the cover DAG (children examined only below matching
// parents). Reports covered-entries examined per publication and wall
// time, for increasingly nested subscription populations.
#include <iostream>

#include "bench_common.hpp"
#include "store/subscription_store.hpp"
#include "util/flags.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const util::Flags flags(argc, argv);
  const auto pubs = static_cast<std::size_t>(flags.get_int("pubs", 5000));
  util::Timer total;

  util::print_banner(std::cout, "Ablation: flat vs hierarchical covered matching (Section 4.4)",
                     std::to_string(pubs) + " uniform publications per cell");

  util::TableWriter table({"subs", "covered", "flat exam/pub", "tree exam/pub",
                           "flat ms", "tree ms"},
                          4);

  for (const std::size_t total_subs : {500ul, 1500ul, 3000ul}) {
    workload::ComparisonConfig stream_config;
    stream_config.attribute_count = 10;

    store::StoreConfig flat_config;
    flat_config.policy = store::CoveragePolicy::kGroup;
    flat_config.engine.max_iterations = 20'000;
    flat_config.hierarchical_match = false;
    store::StoreConfig tree_config = flat_config;
    tree_config.hierarchical_match = true;

    store::SubscriptionStore flat(flat_config, args.seed);
    store::SubscriptionStore tree(tree_config, args.seed);
    workload::ComparisonStream stream_a(stream_config, args.seed);
    workload::ComparisonStream stream_b(stream_config, args.seed);
    for (std::size_t i = 0; i < total_subs; ++i) {
      flat.insert(stream_a.next());
      tree.insert(stream_b.next());
    }

    util::Rng rng(args.seed ^ total_subs);
    std::vector<core::Publication> workload_pubs;
    workload_pubs.reserve(pubs);
    for (std::size_t p = 0; p < pubs; ++p) {
      workload_pubs.push_back(workload::uniform_publication(
          stream_config.attribute_count, stream_config.domain_lo,
          stream_config.domain_hi, rng));
    }

    util::Timer flat_timer;
    for (const auto& pub : workload_pubs) (void)flat.match(pub);
    const double flat_ms = flat_timer.elapsed_millis();

    util::Timer tree_timer;
    for (const auto& pub : workload_pubs) (void)tree.match(pub);
    const double tree_ms = tree_timer.elapsed_millis();

    table.add_row(
        {static_cast<long long>(total_subs),
         static_cast<long long>(tree.covered_count()),
         static_cast<double>(flat.covered_examined()) / static_cast<double>(pubs),
         static_cast<double>(tree.covered_examined()) / static_cast<double>(pubs),
         flat_ms, tree_ms});
  }
  bench::finish(table, args, total);
  return 0;
}
