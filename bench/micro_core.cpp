// Micro-benchmarks (google-benchmark) for the core operations: conflict
// table construction, fast decisions, MCS, witness estimation, RSPC,
// the full engine pipeline, the exact oracle, the counting matcher and
// store insertion. These quantify the per-component costs behind the
// figure harnesses and back the complexity claims in DESIGN.md.
#include <benchmark/benchmark.h>

#include "baseline/counting_matcher.hpp"
#include "baseline/exact_subsumption.hpp"
#include "baseline/pairwise_cover.hpp"
#include "core/engine.hpp"
#include "core/fast_decisions.hpp"
#include "core/mcs.hpp"
#include "store/subscription_store.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace psc;

workload::Instance covering_instance(std::size_t m, std::size_t k,
                                     std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.attribute_count = m;
  config.set_size = k;
  util::Rng rng(seed);
  return workload::make_redundant_covering(config, rng);
}

workload::Instance noncover_instance(std::size_t m, std::size_t k,
                                     std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.attribute_count = m;
  config.set_size = k;
  util::Rng rng(seed);
  return workload::make_non_cover(config, rng);
}

void BM_ConflictTableBuild(benchmark::State& state) {
  const auto inst = covering_instance(static_cast<std::size_t>(state.range(0)),
                                      static_cast<std::size_t>(state.range(1)), 1);
  for (auto _ : state) {
    core::ConflictTable table(inst.tested, inst.existing);
    benchmark::DoNotOptimize(table.row_count());
  }
  state.SetComplexityN(state.range(1));
}
BENCHMARK(BM_ConflictTableBuild)
    ->Args({10, 50})->Args({10, 200})->Args({10, 800})
    ->Args({20, 200});

void BM_FastDecisions(benchmark::State& state) {
  const auto inst = noncover_instance(10, static_cast<std::size_t>(state.range(0)), 2);
  const core::ConflictTable table(inst.tested, inst.existing);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_fast_decisions(table).decision);
  }
}
BENCHMARK(BM_FastDecisions)->Arg(50)->Arg(200)->Arg(800);

void BM_Mcs(benchmark::State& state) {
  const auto inst = covering_instance(10, static_cast<std::size_t>(state.range(0)), 3);
  const core::ConflictTable table(inst.tested, inst.existing);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_mcs(table).kept.size());
  }
}
BENCHMARK(BM_Mcs)->Arg(50)->Arg(200)->Arg(800);

void BM_WitnessEstimate(benchmark::State& state) {
  const auto inst = covering_instance(10, static_cast<std::size_t>(state.range(0)), 4);
  const core::ConflictTable table(inst.tested, inst.existing);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimate_witness_probability(table).rho_w);
  }
}
BENCHMARK(BM_WitnessEstimate)->Arg(50)->Arg(200)->Arg(800);

void BM_RspcPerTrialCost(benchmark::State& state) {
  // Covered instance => every trial runs the full membership scan; the
  // per-iteration figure is time/trials.
  const auto inst = covering_instance(10, static_cast<std::size_t>(state.range(0)), 5);
  util::Rng rng(6);
  const std::uint64_t trials = 256;
  for (auto _ : state) {
    const auto result = core::run_rspc(inst.tested, inst.existing, trials, rng);
    benchmark::DoNotOptimize(result.covered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trials));
}
BENCHMARK(BM_RspcPerTrialCost)->Arg(50)->Arg(200);

void BM_EngineCovering(benchmark::State& state) {
  const auto inst = covering_instance(10, static_cast<std::size_t>(state.range(0)), 7);
  core::EngineConfig config;
  config.max_iterations = 10'000;
  core::SubsumptionEngine engine(config, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.check(inst.tested, inst.existing).covered);
  }
}
BENCHMARK(BM_EngineCovering)->Arg(50)->Arg(200)->Arg(800);

void BM_EngineNonCover(benchmark::State& state) {
  const auto inst = noncover_instance(10, static_cast<std::size_t>(state.range(0)), 9);
  core::SubsumptionEngine engine(core::EngineConfig{}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.check(inst.tested, inst.existing).covered);
  }
}
BENCHMARK(BM_EngineNonCover)->Arg(50)->Arg(200)->Arg(800);

void BM_ExactOracle(benchmark::State& state) {
  // Exponential worst case — benchmarked at test-suite scale to document
  // why it is a test oracle, not a production path.
  const auto inst = covering_instance(4, static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::exact_subsumption(inst.tested, inst.existing).covered);
  }
}
BENCHMARK(BM_ExactOracle)->Arg(8)->Arg(16)->Arg(32);

void BM_PairwiseCover(benchmark::State& state) {
  const auto inst = covering_instance(10, static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::pairwise_covered(inst.tested, inst.existing));
  }
}
BENCHMARK(BM_PairwiseCover)->Arg(50)->Arg(200)->Arg(800);

void BM_CountingMatcherMatch(benchmark::State& state) {
  const std::size_t m = 10;
  workload::ComparisonConfig config;
  config.attribute_count = m;
  workload::ComparisonStream stream(config, 13);
  baseline::CountingMatcher matcher(m);
  for (std::int64_t i = 0; i < state.range(0); ++i) matcher.insert(stream.next());
  util::Rng rng(14);
  const auto pub = workload::uniform_publication(m, 0.0, 1000.0, rng);
  (void)matcher.match(pub);  // force the index build outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(pub).size());
  }
}
BENCHMARK(BM_CountingMatcherMatch)->Arg(100)->Arg(1000)->Arg(5000);

// Publication matching through the store, flat scan vs IntervalIndex.
// The same wide-schema population is loaded into both configurations; the
// benchmark argument is the active-set size.
void store_match_benchmark(benchmark::State& state, bool use_index) {
  workload::ComparisonConfig config;
  config.attribute_count = 20;
  config.min_constrained = 2;
  config.max_constrained = 6;
  config.width_mean_fraction = 0.15;
  config.width_stddev_fraction = 0.10;
  config.zipf_skew = 0.3;
  workload::ComparisonStream stream(config, 19);
  store::StoreConfig store_config;
  store_config.policy = store::CoveragePolicy::kNone;
  store_config.demote_covered_actives = false;
  store_config.use_index = use_index;
  store::SubscriptionStore store(store_config, 20);
  for (std::int64_t i = 0; i < state.range(0); ++i) store.insert(stream.next());
  util::Rng rng(21);
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto pub =
        workload::uniform_publication(config.attribute_count, 0.0, 1000.0, rng);
    matched += store.match_active(pub).size();
    benchmark::DoNotOptimize(matched);
  }
}

void BM_StoreMatchActiveFlat(benchmark::State& state) {
  store_match_benchmark(state, /*use_index=*/false);
}
BENCHMARK(BM_StoreMatchActiveFlat)->Arg(1000)->Arg(10000);

void BM_StoreMatchActiveIndex(benchmark::State& state) {
  store_match_benchmark(state, /*use_index=*/true);
}
BENCHMARK(BM_StoreMatchActiveIndex)->Arg(1000)->Arg(10000);

// Insertion benchmarks run both candidate-gathering paths: the second
// argument toggles StoreConfig::use_index (0 = flat scans, 1 = index).
void BM_StoreInsertGroup(benchmark::State& state) {
  workload::ComparisonConfig config;
  config.attribute_count = 10;
  for (auto _ : state) {
    state.PauseTiming();
    workload::ComparisonStream stream(config, 15);
    store::StoreConfig store_config;
    store_config.policy = store::CoveragePolicy::kGroup;
    store_config.engine.max_iterations = 5'000;
    store_config.use_index = state.range(1) != 0;
    store::SubscriptionStore store(store_config, 16);
    state.ResumeTiming();
    for (std::int64_t i = 0; i < state.range(0); ++i) store.insert(stream.next());
    benchmark::DoNotOptimize(store.active_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreInsertGroup)
    ->Args({100, 0})->Args({100, 1})
    ->Args({400, 0})->Args({400, 1})
    ->Unit(benchmark::kMillisecond);

void BM_StoreInsertPairwise(benchmark::State& state) {
  workload::ComparisonConfig config;
  config.attribute_count = 10;
  for (auto _ : state) {
    state.PauseTiming();
    workload::ComparisonStream stream(config, 17);
    store::StoreConfig store_config;
    store_config.policy = store::CoveragePolicy::kPairwise;
    store_config.use_index = state.range(1) != 0;
    store::SubscriptionStore store(store_config, 18);
    state.ResumeTiming();
    for (std::int64_t i = 0; i < state.range(0); ++i) store.insert(stream.next());
    benchmark::DoNotOptimize(store.active_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreInsertPairwise)
    ->Args({100, 0})->Args({100, 1})
    ->Args({400, 0})->Args({400, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
