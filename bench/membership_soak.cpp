// Membership soak — live broker churn (join / graceful leave / crash /
// replacement, link failure and heal with rotating standby bridges)
// interleaved with subscription/publication churn, across the membership
// topology family, differentially gated against the flat oracle. The gates
// demand exact reconvergence after every partition repair: zero divergent
// publishes, zero lost deliveries, zero duplicates, zero ghost routes.
//
//   ./membership_soak [--brokers=60] [--duration=40] [--seed=2006]
//       [--policy=exact] [--latency=0.001] [--sub-rate=2.0] [--pub-rate=4.0]
//       [--join-rate=0.15] [--leave-rate=0.1] [--crash-rate=0.15]
//       [--partition-rate=0.3] [--differential=true] [--json=PATH]
//       [--topology=NAME] [--dump-dir=.] [--replay=FILE]
//
// Scale runs (the nightly leg uses --brokers=500) shrink --latency so the
// slot/cascade time contract holds without stretching op slots: the slot
// must exceed twice the worst-case cascade depth in link latencies.
//
// Failure reproducibility: when a gate trips, the run dumps the offending
// trace (a self-contained PSCT file embedding the overlay universe) and
// prints the exact --replay one-liner that reproduces the failure.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "util/json_writer.hpp"
#include "workload/churn_workload.hpp"

namespace {

using namespace psc;

struct SoakResult {
  std::string name;
  std::size_t brokers = 0;
  workload::ChurnTrace trace;
  sim::ChurnReport report;
  double elapsed_seconds = 0.0;

  [[nodiscard]] bool gates_pass() const {
    return report.mismatched_publishes == 0 &&
           report.totals.notifications_lost == 0 &&
           report.totals.notifications_duplicated == 0 &&
           report.membership.ghost_routes == 0;
  }
};

/// Rebuilds the overlay a (possibly replayed) trace was generated against:
/// brokers and live links from the embedded universe; the driver registers
/// the standby bridges itself.
routing::BrokerNetwork build_from_universe(
    const routing::MembershipUniverse& universe,
    routing::NetworkConfig config) {
  routing::BrokerNetwork net(config);
  for (std::size_t i = 0; i < universe.brokers; ++i) (void)net.add_broker();
  for (const auto& [a, b] : universe.links) net.connect(a, b);
  return net;
}

/// Keeps the generator's slot contract (slot/2 must exceed the worst-case
/// cascade depth in link latencies) valid at any scale by widening the slot
/// to the next exact divisor of the epoch length when needed.
workload::ChurnConfig tune_slot(workload::ChurnConfig config,
                                std::size_t max_brokers) {
  const double need = 2.2 * static_cast<double>(max_brokers + 1) *
                      config.link_latency;
  if (config.slot < need) {
    const auto per_epoch = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.epoch_length / need));
    config.slot = config.epoch_length / static_cast<double>(per_epoch);
  }
  return config;
}

void write_json(const std::string& path, const workload::ChurnConfig& config,
                store::CoveragePolicy policy, std::uint64_t seed,
                const std::vector<SoakResult>& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open --json path: " + path);
  util::JsonWriter json(out);
  json.begin_object();
  json.member("bench", "membership_soak");
  json.member("seed", seed);
  json.member("policy", store::to_string(policy));
  json.begin_object("config");
  json.member("duration", config.duration);
  json.member("epoch_length", config.epoch_length);
  json.member("link_latency", config.link_latency);
  json.member("subscription_rate", config.subscription_rate);
  json.member("publication_rate", config.publication_rate);
  json.member("join_rate", config.membership.join_rate);
  json.member("leave_rate", config.membership.leave_rate);
  json.member("crash_rate", config.membership.crash_rate);
  json.member("partition_rate", config.membership.partition_rate);
  json.member("partition_mean", config.membership.partition_mean);
  json.member("replace_mean", config.membership.replace_mean);
  json.end_object();
  json.begin_array("topologies");
  for (const SoakResult& result : results) {
    const sim::ChurnReport& report = result.report;
    json.begin_object();
    json.member("name", result.name);
    json.member("brokers", std::uint64_t{result.brokers});
    json.member("ops", std::uint64_t{report.ops});
    json.member("publishes", std::uint64_t{report.publishes});
    json.member("delivered", report.totals.notifications_delivered);
    json.member("lost", report.totals.notifications_lost);
    json.member("duplicated", report.totals.notifications_duplicated);
    json.member("mismatched_publishes", report.mismatched_publishes);
    json.member("reannounced_subscriptions",
                report.totals.reannounced_subscriptions);
    json.member("gates_pass", result.gates_pass());
    json.begin_object("membership");
    json.member("events", std::uint64_t{report.membership.events});
    json.member("joins", std::uint64_t{report.membership.joins});
    json.member("leaves", std::uint64_t{report.membership.leaves});
    json.member("crashes", std::uint64_t{report.membership.crashes});
    json.member("replaces", std::uint64_t{report.membership.replaces});
    json.member("link_failures", std::uint64_t{report.membership.link_failures});
    json.member("link_heals", std::uint64_t{report.membership.link_heals});
    json.member("replace_restored_routes",
                std::uint64_t{report.membership.replace_restored_routes});
    json.member("replace_gap_subs",
                std::uint64_t{report.membership.replace_gap_subs});
    json.member("ghost_routes", std::uint64_t{report.membership.ghost_routes});
    json.member("final_alive_brokers",
                std::uint64_t{report.membership.final_alive_brokers});
    json.end_object();
    json.member("publish_coalescing", report.publish_coalescing);
    json.member("elapsed_seconds", result.elapsed_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;
  const util::Flags flags(argc, argv);

  const auto brokers = static_cast<std::size_t>(flags.get_int("brokers", 60));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2006));
  const auto policy =
      store::parse_coverage_policy(flags.get_string("policy", "exact"));
  const bool differential = flags.get_bool("differential", true);
  const std::string json_path = flags.get_string("json", "");
  const std::string topology_filter = flags.get_string("topology", "");
  const std::string dump_dir = flags.get_string("dump-dir", ".");
  const std::string replay_path = flags.get_string("replay", "");

  workload::ChurnConfig config;
  config.duration = flags.get_double("duration", 40.0);
  config.link_latency = flags.get_double("latency", 0.001);
  config.subscription_rate = flags.get_double("sub-rate", 2.0);
  config.publication_rate = flags.get_double("pub-rate", 4.0);
  config.membership.join_rate = flags.get_double("join-rate", 0.15);
  config.membership.leave_rate = flags.get_double("leave-rate", 0.1);
  config.membership.crash_rate = flags.get_double("crash-rate", 0.15);
  config.membership.partition_rate = flags.get_double("partition-rate", 0.3);

  store::StoreConfig store_config;
  store_config.policy = policy;
  routing::NetworkConfig net_config = routing::NetworkConfig::Builder()
                                          .store(store_config)
                                          .link_latency(config.link_latency)
                                          .build();

  util::print_banner(std::cout, "membership_soak",
                     "broker churn + partition repair, oracle-gated");

  util::TableWriter table({"topology", "brokers", "ops", "publishes",
                           "delivered", "mismatch", "dup", "ghosts", "members",
                           "joins", "crashes", "heals", "alive_end",
                           "seconds"});
  std::vector<SoakResult> results;
  std::vector<std::string> failures;

  const auto run_one = [&](const std::string& name, std::size_t broker_count,
                           routing::BrokerNetwork net,
                           workload::ChurnTrace trace) {
    SoakResult result;
    result.name = name;
    result.brokers = broker_count;
    result.trace = std::move(trace);
    const util::Timer timer;
    sim::ChurnDriver::Options driver_options;
    driver_options.differential = differential;
    result.report = sim::ChurnDriver::run(net, result.trace, driver_options);
    result.elapsed_seconds = timer.elapsed_seconds();

    const sim::ChurnReport& report = result.report;
    table.add_row({result.name, static_cast<long long>(result.brokers),
                   static_cast<long long>(report.ops),
                   static_cast<long long>(report.publishes),
                   static_cast<long long>(report.totals.notifications_delivered),
                   static_cast<long long>(report.mismatched_publishes),
                   static_cast<long long>(report.totals.notifications_duplicated),
                   static_cast<long long>(report.membership.ghost_routes),
                   static_cast<long long>(report.membership.events),
                   static_cast<long long>(report.membership.joins),
                   static_cast<long long>(report.membership.crashes),
                   static_cast<long long>(report.membership.link_heals),
                   static_cast<long long>(report.membership.final_alive_brokers),
                   result.elapsed_seconds});

    if (differential && !result.gates_pass()) {
      const std::string dump = dump_dir + "/membership_soak_fail_" +
                               result.name + "_" + std::to_string(seed) +
                               ".psct";
      bench::write_trace_file(dump, result.trace);
      std::cerr << "\nGATE FAILURE on " << result.name << " (seed " << seed
                << ", policy " << store::to_string(policy) << ", latency "
                << config.link_latency << "):\n"
                << "  mismatched=" << report.mismatched_publishes
                << " lost=" << report.totals.notifications_lost
                << " duplicated=" << report.totals.notifications_duplicated
                << " ghosts=" << report.membership.ghost_routes << "\n"
                << "  trace dumped; replay with:\n"
                << "    ./membership_soak --replay=" << dump
                << " --seed=" << seed
                << " --policy=" << store::to_string(policy)
                << " --latency=" << config.link_latency << "\n";
      failures.push_back(result.name);
    }
    results.push_back(std::move(result));
  };

  if (!replay_path.empty()) {
    workload::ChurnTrace trace = bench::read_trace_file(replay_path);
    if (!trace.has_membership) {
      std::cerr << "replay file has no membership universe: " << replay_path
                << "\n";
      return 2;
    }
    net_config.link_latency = trace.config.link_latency;
    const std::size_t replay_brokers = trace.universe.brokers;
    routing::BrokerNetwork net = build_from_universe(trace.universe, net_config);
    run_one("replay", replay_brokers, std::move(net), std::move(trace));
  } else {
    for (const routing::MembershipTopology& topology :
         routing::membership_topologies(brokers, seed)) {
      if (!topology_filter.empty() &&
          topology.name.find(topology_filter) == std::string::npos) {
        continue;
      }
      workload::ChurnConfig shaped = config;
      // Bound join growth so the slot contract stays tight at scale.
      shaped.membership.max_brokers =
          topology.brokers + std::max<std::size_t>(8, topology.brokers / 16);
      shaped = tune_slot(shaped, shaped.membership.max_brokers);
      routing::BrokerNetwork net = topology.build(net_config);
      const routing::MembershipUniverse universe = topology.universe(net);
      run_one(topology.name, topology.brokers, std::move(net),
              workload::generate_churn_trace(shaped, universe, seed));
    }
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, config, policy, seed, results);
    std::cout << "\njson written to " << json_path << "\n";
  }

  if (!failures.empty()) {
    std::cerr << "\nFAIL: gates tripped on " << failures.size()
              << " topology(ies)\n";
    return 1;
  }
  std::cout << "\nall membership gates passed\n";
  return 0;
}
