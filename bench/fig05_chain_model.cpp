// Figure 5 / Equation 2 — Chain-propagation delivery probability.
//
// The paper's Section 5 analyzes the cost of an erroneous "covered"
// verdict: a subscription withheld at B1 of a broker chain can still be
// served if a matching publication appears at an early broker. Equation 2
// gives the closed form; this harness prints it next to a Monte-Carlo
// simulation of the same process (they must agree) and next to the
// discrete-event broker simulator for an end-to-end sanity row.
#include "bench_common.hpp"
#include "routing/chain_model.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = static_cast<std::uint64_t>(args.runs_or(100'000));
  util::Timer timer;

  util::print_banner(std::cout, "Figure 5 / Equation 2: chain-propagation delivery probability",
                     "closed form vs Monte-Carlo; runs/cell=" + std::to_string(runs));

  util::TableWriter table(
      {"n", "rho", "rho_w", "d", "Eq.2", "simulated", "abs.err"}, 5);
  util::Rng rng(args.seed);

  const std::vector<std::size_t> chain_lengths{2, 5, 10, 20};
  const std::vector<double> rhos{0.05, 0.2, 0.5};
  const std::vector<std::uint64_t> ds{10, 100, 1000};

  for (const std::size_t n : chain_lengths) {
    for (const double rho : rhos) {
      for (const std::uint64_t d : ds) {
        routing::ChainParams params;
        params.broker_count = n;
        params.rho = rho;
        params.rho_w = 0.01;
        params.d = d;
        const double analytic = routing::chain_delivery_probability(params);
        const double simulated =
            routing::simulate_chain_delivery(params, runs, rng);
        table.add_row({static_cast<long long>(n), rho, 0.01,
                       static_cast<long long>(d), analytic, simulated,
                       std::abs(analytic - simulated)});
      }
    }
  }
  bench::finish(table, args, timer);
  return 0;
}
