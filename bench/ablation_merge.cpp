// Ablation — stacking subscription MERGING on top of group coverage.
//
// Covering removes subscriptions that are exactly redundant; merging
// additionally collapses near-redundant ones at the price of false
// positives (publications delivered to nobody who asked). This bench feeds
// the Fig. 13 comparison stream into a group-coverage store, then merges
// the surviving active set at several waste thresholds, and measures:
//   * residual active-set size,
//   * measured false-positive rate on uniform publications
//     (matched by the merged set but by no original subscription).
#include <iostream>

#include "bench_common.hpp"
#include "merge/subscription_merger.hpp"
#include "store/subscription_store.hpp"
#include "util/flags.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const util::Flags flags(argc, argv);
  const auto total_subs = static_cast<std::size_t>(flags.get_int("subs", 1500));
  const auto probes = static_cast<std::size_t>(flags.get_int("probes", 20000));
  util::Timer timer;

  util::print_banner(std::cout, "Ablation: merging stacked on group coverage",
                     "comparison stream (m=10), " + std::to_string(total_subs) +
                         " subscriptions; false positives per " +
                         std::to_string(probes) + " uniform publications");

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 10;
  // Match the Fig. 13 configuration: 3-6 constrained attributes keeps the
  // active set large enough for merging to have something to do.
  stream_config.min_constrained = 3;
  stream_config.max_constrained = 6;

  store::StoreConfig group_config;
  group_config.policy = store::CoveragePolicy::kGroup;
  group_config.engine.delta = 1e-6;
  group_config.engine.max_iterations = 20'000;
  store::SubscriptionStore store(group_config, args.seed);

  workload::ComparisonStream stream(stream_config, args.seed);
  std::vector<core::Subscription> originals;
  originals.reserve(total_subs);
  for (std::size_t i = 0; i < total_subs; ++i) {
    auto sub = stream.next();
    originals.push_back(sub);
    store.insert(sub);
  }
  const auto actives = store.active_snapshot();
  std::cout << "group-coverage active set: " << actives.size() << " of "
            << total_subs << "\n\n";

  util::TableWriter table(
      {"max-waste", "set-size", "merges", "false-pos rate"}, 4);
  util::Rng rng(args.seed ^ 0xabcdef);

  for (const double threshold : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    merge::MergeConfig merge_config;
    merge_config.max_waste_ratio = threshold;
    merge::MergeStats stats;
    const auto merged = merge::merge_set(actives, merge_config, &stats);

    // False positives: uniform publications matched by the merged set but
    // by NO original subscription.
    std::size_t false_pos = 0, merged_matches = 0;
    util::Rng probe_rng = rng;  // same probes for every threshold
    for (std::size_t p = 0; p < probes; ++p) {
      const auto pub = workload::uniform_publication(
          stream_config.attribute_count, stream_config.domain_lo,
          stream_config.domain_hi, probe_rng);
      bool in_merged = false;
      for (const auto& box : merged) {
        if (pub.matches(box)) {
          in_merged = true;
          break;
        }
      }
      if (!in_merged) continue;
      ++merged_matches;
      bool in_original = false;
      for (const auto& sub : originals) {
        if (pub.matches(sub)) {
          in_original = true;
          break;
        }
      }
      if (!in_original) ++false_pos;
    }
    table.add_row({threshold, static_cast<long long>(merged.size()),
                   static_cast<long long>(stats.merges_performed),
                   merged_matches > 0
                       ? static_cast<double>(false_pos) /
                             static_cast<double>(probes)
                       : 0.0});
  }
  bench::finish(table, args, timer);
  return 0;
}
