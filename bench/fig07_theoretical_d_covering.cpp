// Figure 7 — Theoretical number of RSPC iterations d (log10) for the
// redundant covering scenario, with and without the MCS reduction.
//
// d is Equation 1's bound computed from Algorithm 2's rho_w estimate,
// once on the full set S and once on the MCS-reduced set S'. delta = 1e-10.
//
// Expected shape: without MCS log10(d) is enormous (tens) and grows with k
// and m; with MCS it collapses (d < 1e5 for k = 100, m = 10; smaller for
// larger m).
#include <cmath>

#include "bench_common.hpp"
#include "core/conflict_table.hpp"
#include "core/mcs.hpp"
#include "core/witness_estimate.hpp"
#include "workload/scenarios.hpp"

namespace {

/// log10 of the Eq. 1 bound; capped for presentation like the paper's plot
/// (rho_w = 0 would be +inf).
double log10_d(const psc::core::ConflictTable& table, double delta) {
  const auto est = psc::core::estimate_witness_probability(table);
  const double d = est.rho_w > 0.0 ? psc::core::theoretical_trials(est.rho_w, delta)
                                   : std::numeric_limits<double>::infinity();
  if (!std::isfinite(d)) return 60.0;  // presentation cap, beyond the plot
  return std::log10(std::max(1.0, d));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = args.runs_or(50);
  const double delta = 1e-10;
  util::Timer timer;

  util::print_banner(std::cout,
                     "Figure 7: theoretical log10(d), redundant covering scenario",
                     "Equation 1 bound before/after MCS; delta=1e-10; runs/cell=" +
                         std::to_string(runs));

  util::TableWriter table({"k", "m=10", "m=15", "m=20", "m=10;MCS", "m=15;MCS",
                           "m=20;MCS"},
                          4);
  util::Rng rng(args.seed);

  for (const std::size_t k : bench::paper_k_sweep()) {
    std::vector<double> full(3, 0.0), reduced(3, 0.0);
    for (std::size_t mi = 0; mi < 3; ++mi) {
      const std::size_t m = bench::paper_m_values()[mi];
      workload::ScenarioConfig config;
      config.attribute_count = m;
      config.set_size = k;
      util::RunningStats full_stats, reduced_stats;
      for (std::int64_t run = 0; run < runs; ++run) {
        const auto inst = workload::make_redundant_covering(config, rng);
        const core::ConflictTable ct(inst.tested, inst.existing);
        full_stats.add(log10_d(ct, delta));
        const auto mcs = core::run_mcs(ct);
        std::vector<core::Subscription> kept;
        kept.reserve(mcs.kept.size());
        for (const std::size_t idx : mcs.kept) kept.push_back(inst.existing[idx]);
        const core::ConflictTable reduced_ct(inst.tested, kept);
        reduced_stats.add(log10_d(reduced_ct, delta));
      }
      full[mi] = full_stats.mean();
      reduced[mi] = reduced_stats.mean();
    }
    table.add_row({static_cast<long long>(k), full[0], full[1], full[2],
                   reduced[0], reduced[1], reduced[2]});
  }
  bench::finish(table, args, timer);
  return 0;
}
