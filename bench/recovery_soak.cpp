// Recovery soak — the crash-recovery scenario class over the standard
// topology family: every topology runs a churn trace with the differential
// oracle ON and failure injection enabled, so mid-churn the whole broker
// state is killed and recovered from its last snapshot plus a WAL replay
// of the gap ops. The run GATES on full recovery fidelity:
//   * zero differential mismatches (pre- and post-crash publishes),
//   * zero replay mismatches (every replayed publish re-delivers exactly
//     the oracle set recorded in its first life),
//   * zero lost notifications, and
//   * the crash actually fired on every topology.
//
//   ./recovery_soak [--duration=60] [--seed=2006] [--policy=exact]
//                   [--snapshot-every=0]     (sim-seconds; 0 = epoch length)
//                   [--kill-fraction=0.5]    (kill at fraction of duration)
//                   [--drop=0] [--dup=0] [--reorder=0] [--jitter=0]
//                   [--shards=1] [--json=PATH] [--topology=NAME]
//
// Nonzero fault flags run the crash/recovery discipline over lossy wires
// behind the reliable link protocol; the slot is re-derived per topology
// from the protocol's worst-case hop delay (see bench/churn_soak.cpp).
// No burst windows are scripted here, so the retry cap is never exhausted
// and recovery fidelity is tested orthogonally to link escalation.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "util/json_writer.hpp"
#include "workload/churn_workload.hpp"

namespace {

using namespace psc;

struct RecoveryResult {
  routing::Topology topology;
  sim::ChurnReport report;
  double elapsed_seconds = 0.0;
};

void write_json(const std::string& path, const workload::ChurnConfig& config,
                store::CoveragePolicy policy, std::uint64_t seed,
                double snapshot_every, double kill_time,
                const std::vector<RecoveryResult>& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open --json path: " + path);
  util::JsonWriter json(out);
  json.begin_object();
  json.member("bench", "recovery_soak");
  json.member("seed", seed);
  json.member("policy", store::to_string(policy));
  json.begin_object("config");
  json.member("duration", config.duration);
  json.member("epoch_length", config.epoch_length);
  json.member("subscription_rate", config.subscription_rate);
  json.member("publication_rate", config.publication_rate);
  json.member("snapshot_every", snapshot_every);
  json.member("kill_time", kill_time);
  json.member("drop", config.faults.link.drop_probability);
  json.member("dup", config.faults.link.dup_probability);
  json.member("reorder", config.faults.link.reorder_probability);
  json.member("jitter", config.faults.link.delay_jitter);
  json.end_object();
  json.begin_array("topologies");
  for (const RecoveryResult& result : results) {
    const sim::ChurnReport& report = result.report;
    json.begin_object();
    json.member("name", result.topology.name);
    json.member("brokers", std::uint64_t{result.topology.brokers});
    json.member("ops", std::uint64_t{report.ops});
    json.member("publishes", std::uint64_t{report.publishes});
    json.member("delivered", report.totals.notifications_delivered);
    json.member("lost", report.totals.notifications_lost);
    json.member("mismatched_publishes", report.mismatched_publishes);
    json.begin_object("recovery");
    json.member("snapshots", std::uint64_t{report.recovery.snapshots});
    json.member("snapshot_bytes", std::uint64_t{report.recovery.snapshot_bytes});
    json.member("crashes", std::uint64_t{report.recovery.crashes});
    json.member("gap_ops_replayed",
                std::uint64_t{report.recovery.gap_ops_replayed});
    json.member("gap_publishes_replayed",
                std::uint64_t{report.recovery.gap_publishes_replayed});
    json.member("replay_mismatches", report.recovery.replay_mismatches);
    json.member("recovery_sim_gap", report.recovery.recovery_sim_gap);
    json.end_object();
    json.member("frames_dropped", report.totals.frames_dropped);
    json.member("retransmits", report.totals.retransmits);
    json.member("dups_suppressed", report.totals.dups_suppressed);
    json.member("publish_coalescing", report.publish_coalescing);
    json.member("elapsed_seconds", result.elapsed_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;
  const util::Flags flags(argc, argv);

  workload::ChurnConfig config;
  config.duration = flags.get_double("duration", 60.0);
  config.subscription_rate = flags.get_double("sub-rate", 2.0);
  config.publication_rate = flags.get_double("pub-rate", 5.0);
  config.ttl_fraction = flags.get_double("ttl-fraction", 0.5);
  config.faults.link.drop_probability = flags.get_double("drop", 0.0);
  config.faults.link.dup_probability = flags.get_double("dup", 0.0);
  config.faults.link.reorder_probability = flags.get_double("reorder", 0.0);
  config.faults.link.delay_jitter = flags.get_double("jitter", 0.0);
  const bool lossy = config.faults.any();
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2006));
  const auto policy =
      store::parse_coverage_policy(flags.get_string("policy", "exact"));
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 1));
  const double snapshot_every = flags.get_double("snapshot-every", 0.0);
  const double kill_fraction = flags.get_double("kill-fraction", 0.5);
  const std::string json_path = flags.get_string("json", "");
  const std::string topology_filter = flags.get_string("topology", "");
  // Land the kill mid-cadence (half a snapshot interval past the fraction
  // point) so the recovery always replays a non-trivial WAL gap instead of
  // restoring a snapshot taken at the kill instant itself.
  const double cadence =
      snapshot_every > 0 ? snapshot_every : config.epoch_length;
  const double kill_time = config.duration * kill_fraction + cadence / 2;

  util::print_banner(std::cout, "recovery_soak",
                     "mid-churn crash + snapshot/WAL recovery, differential-gated");

  util::TableWriter table({"topology", "brokers", "ops", "publishes",
                           "mismatch", "lost", "snapshots", "snap_bytes",
                           "gap_ops", "replay_mismatch", "seconds"});
  std::vector<RecoveryResult> results;
  for (routing::Topology& topology : routing::standard_topologies(seed)) {
    if (!topology_filter.empty() &&
        topology.name.find(topology_filter) == std::string::npos) {
      continue;
    }
    store::StoreConfig store_config;
    store_config.policy = policy;
    routing::NetworkConfig net_config = routing::NetworkConfig::Builder()
                                            .store(store_config)
                                            .match_shards(shards)
                                            .build();
    config.link_latency = net_config.link_latency;

    workload::ChurnConfig topo_config = config;
    if (lossy) {
      routing::LinkConfig link;
      link.enabled = true;
      link.faults = config.faults.link;
      net_config.link = link;
      net_config.seed = seed;
      // Same slot discipline as churn_soak: the slot must outlast a
      // worst-case retransmit chain across the overlay diameter so every
      // op (and the snapshot taken at each epoch close) observes a
      // quiescent wire.
      topo_config.faults.cascade_hop_bound =
          link.worst_hop_delay(net_config.link_latency);
      topo_config.slot = 2.2 * static_cast<double>(topology.brokers + 1) *
                         topo_config.faults.cascade_hop_bound;
      topo_config.epoch_length = topo_config.slot * 50;
      if (topo_config.slot > topo_config.duration) {
        std::cerr << "FAIL: --duration=" << topo_config.duration
                  << " is shorter than the lossy settle slot ("
                  << topo_config.slot << "s) that " << topology.name
                  << " needs for a worst-case retransmit cascade; rerun "
                     "with --duration >= "
                  << topo_config.slot << "\n";
        return 1;
      }
    }

    RecoveryResult result;
    result.topology = topology;
    const auto trace =
        workload::generate_churn_trace(topo_config, topology.brokers, seed);
    auto net = topology.build(net_config);
    sim::ChurnDriver::Options options;
    options.differential = true;
    options.failure.enabled = true;
    options.failure.snapshot_every = snapshot_every;
    options.failure.kill_time = kill_time;
    const util::Timer timer;
    result.report = sim::ChurnDriver::run(net, trace, options);
    result.elapsed_seconds = timer.elapsed_seconds();

    const sim::ChurnReport& report = result.report;
    table.add_row({topology.name, static_cast<long long>(topology.brokers),
                   static_cast<long long>(report.ops),
                   static_cast<long long>(report.publishes),
                   static_cast<long long>(report.mismatched_publishes),
                   static_cast<long long>(report.totals.notifications_lost),
                   static_cast<long long>(report.recovery.snapshots),
                   static_cast<long long>(report.recovery.snapshot_bytes),
                   static_cast<long long>(report.recovery.gap_ops_replayed),
                   static_cast<long long>(report.recovery.replay_mismatches),
                   result.elapsed_seconds});
    results.push_back(std::move(result));
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, config, policy, seed, snapshot_every, kill_time,
               results);
    std::cout << "\njson written to " << json_path << "\n";
  }

  // Gate: recovery must be invisible to subscribers on every topology.
  // An empty run (filter matched nothing) must fail, not pass vacuously.
  if (results.empty()) {
    std::cerr << "\nFAIL: no topology matched --topology=" << topology_filter
              << "\n";
    return 1;
  }
  std::uint64_t mismatches = 0, lost = 0, replay_mismatches = 0;
  std::size_t without_crash = 0;
  for (const RecoveryResult& result : results) {
    mismatches += result.report.mismatched_publishes;
    lost += result.report.totals.notifications_lost;
    replay_mismatches += result.report.recovery.replay_mismatches;
    if (result.report.recovery.crashes == 0) ++without_crash;
  }
  if (mismatches > 0 || lost > 0 || replay_mismatches > 0 || without_crash > 0) {
    std::cerr << "\nFAIL: " << mismatches << " mismatched publishes, " << lost
              << " lost notifications, " << replay_mismatches
              << " replay mismatches, " << without_crash
              << " topologies where the kill never fired\n";
    return 1;
  }
  std::cout << "\nrecovery gate: all topologies recovered with zero loss and "
               "zero ghosts\n";
  return 0;
}
