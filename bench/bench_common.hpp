// Shared plumbing for the figure-reproduction harnesses.
//
// Every fig* binary accepts:
//   --runs=N    per-cell repetitions (defaults are scaled-down but shape-
//               preserving; use the paper's counts for full fidelity)
//   --seed=S    RNG seed (default 2006, the paper's publication year)
//   --csv=PATH  also dump the series as CSV
// and prints an aligned table with the same rows/series the paper plots.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_writer.hpp"
#include "util/timer.hpp"
#include "wire/byte_buffer.hpp"
#include "wire/codec.hpp"
#include "workload/churn_workload.hpp"

namespace psc::bench {

// --- failure reproducibility --------------------------------------------
//
// When a soak gate trips, the harness dumps the offending trace as a PSCT
// file and prints a `--replay=FILE` one-liner. Membership traces embed
// their universe, so a dumped file is self-contained: replay rebuilds the
// overlay from it without knowing which named topology produced it.

inline void write_trace_file(const std::string& path,
                             const workload::ChurnTrace& trace) {
  wire::ByteWriter out;
  wire::write_churn_trace(out, trace);
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open trace dump path: " + path);
  file.write(reinterpret_cast<const char*>(out.buffer().data()),
             static_cast<std::streamsize>(out.buffer().size()));
}

inline workload::ChurnTrace read_trace_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open --replay path: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  wire::ByteReader in(bytes);
  workload::ChurnTrace trace = wire::read_churn_trace(in);
  if (!in.at_end()) {
    throw std::runtime_error("trailing bytes after trace in " + path);
  }
  return trace;
}

/// One timed section in the shared regression-gate JSON schema: every
/// harness that feeds scripts/check_bench.py (perf_gate, index_scaling)
/// emits sections in exactly this shape.
struct SectionResult {
  std::string name;
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

/// Latency accumulator behind every gated section: record one sample per
/// timed unit (an op, or a batch on the pipelined paths), then fold the
/// percentiles into a SectionResult. Percentile semantics are
/// util::SampleSet's linear interpolation over the sorted samples
/// (rank = pct/100 * (n-1)): with samples 1..100, p50 = 50.5 and
/// p99 = 99.01 — pinned by tests/bench_stats_test.cpp, including the
/// record-after-query re-sort at small sample counts that the perf gate's
/// incremental sections exercise.
class LatencyRecorder {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Records one latency sample in nanoseconds. Safe to call after a
  /// percentile query (the sample set re-sorts lazily).
  void record(double ns) { samples_.add(ns); }

  /// Times one invocation of `op` and records it.
  template <typename Op>
  void time(Op&& op) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    op();
    const auto t1 = clock::now();
    record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }

  [[nodiscard]] std::size_t count() const { return samples_.count(); }
  /// Empty-safe: 0.0 with no samples (a zero-op section is a config error
  /// the throughput number already makes obvious; don't crash the harness).
  [[nodiscard]] double percentile(double pct) const {
    return samples_.count() == 0 ? 0.0 : samples_.percentile(pct);
  }

  /// Folds the recorded samples into the shared gate schema. `ops` is the
  /// logical operation count for throughput (== count() for per-op timing,
  /// larger when each sample covers a batch).
  [[nodiscard]] SectionResult section(const std::string& name,
                                      std::uint64_t ops,
                                      double elapsed_seconds) const {
    SectionResult result;
    result.name = name;
    result.ops = ops;
    result.ops_per_sec =
        elapsed_seconds > 0 ? static_cast<double>(ops) / elapsed_seconds : 0.0;
    result.p50_ns = percentile(50.0);
    result.p99_ns = percentile(99.0);
    return result;
  }

 private:
  util::SampleSet samples_;
};

/// Times `op(i)` for i in [0, ops), returning throughput and latency
/// percentiles. Per-op timing: the measured operations are microsecond-
/// scale, so the ~20ns clock overhead is in the noise.
template <typename Op>
SectionResult time_section(const std::string& name, std::uint64_t ops, Op&& op) {
  using clock = std::chrono::steady_clock;
  LatencyRecorder latencies;
  latencies.reserve(ops);
  const auto begin = clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    latencies.time([&] { op(i); });
  }
  const double elapsed =
      std::chrono::duration<double>(clock::now() - begin).count();
  return latencies.section(name, ops, elapsed);
}

inline void write_section(util::JsonWriter& json, const SectionResult& result) {
  json.begin_object(result.name);
  json.member("ops", result.ops);
  json.member("ops_per_sec", result.ops_per_sec);
  json.member("p50_ns", result.p50_ns);
  json.member("p99_ns", result.p99_ns);
  json.end_object();
}

struct HarnessArgs {
  std::int64_t runs = 0;       ///< 0 = use the harness default
  std::uint64_t seed = 2006;
  std::string csv_path;        ///< empty = no CSV dump

  static HarnessArgs parse(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    HarnessArgs args;
    args.runs = flags.get_int("runs", 0);
    args.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2006));
    args.csv_path = flags.get_string("csv", "");
    return args;
  }

  [[nodiscard]] std::int64_t runs_or(std::int64_t fallback) const {
    return runs > 0 ? runs : fallback;
  }
};

inline void finish(const util::TableWriter& table, const HarnessArgs& args,
                   const util::Timer& timer) {
  table.print(std::cout);
  if (!args.csv_path.empty()) {
    table.write_csv(args.csv_path);
    std::cout << "\ncsv written to " << args.csv_path << "\n";
  }
  std::cout << "\nelapsed: " << timer.elapsed_seconds() << " s\n";
}

/// The paper's sweep for Figures 6-10: k = 10..310 step 30.
inline std::vector<std::size_t> paper_k_sweep() {
  std::vector<std::size_t> ks;
  for (std::size_t k = 10; k <= 310; k += 30) ks.push_back(k);
  return ks;
}

/// The paper's attribute counts for Figures 6-10 and 13-14.
inline std::vector<std::size_t> paper_m_values() { return {10, 15, 20}; }

}  // namespace psc::bench
