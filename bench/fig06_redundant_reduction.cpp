// Figure 6 — Reduction for the redundant covering scenario.
//
// Paper setup: s is covered by the first ~20 % of S (jointly, no pairwise
// cover); the remaining ~80 % overlap s and are redundant. MCS efficiency
// is the fraction of redundant subscriptions it removes, swept over
// k = 10..310 (step 30) for m = 10, 15, 20. delta = 1e-10, 1000 runs/cell
// in the paper (default here: 100, override with --runs=1000).
//
// Expected shape: reduction in the 0.7-1.0 band; dips for small m at mid-k
// and recovers; higher m reduces better at large k.
#include <cmath>

#include "bench_common.hpp"
#include "core/conflict_table.hpp"
#include "core/mcs.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = args.runs_or(100);
  util::Timer timer;

  util::print_banner(std::cout, "Figure 6: redundant-subscription reduction (covering case)",
                     "MCS removal ratio; scenario 1.b; delta=1e-10; runs/cell=" +
                         std::to_string(runs));

  util::TableWriter table({"k", "m=10", "m=15", "m=20"}, 4);
  util::Rng rng(args.seed);

  for (const std::size_t k : bench::paper_k_sweep()) {
    std::vector<util::Cell> row{static_cast<long long>(k)};
    for (const std::size_t m : bench::paper_m_values()) {
      workload::ScenarioConfig config;
      config.attribute_count = m;
      config.set_size = k;
      util::RunningStats reduction;
      for (std::int64_t run = 0; run < runs; ++run) {
        const auto inst = workload::make_redundant_covering(config, rng);
        const core::ConflictTable ct(inst.tested, inst.existing);
        const auto mcs = core::run_mcs(ct);
        // Redundant = everything beyond the covering prefix (~20 %).
        const auto cover_count = static_cast<double>(std::max<std::size_t>(
            2, static_cast<std::size_t>(std::ceil(0.2 * static_cast<double>(k)))));
        const double redundant = static_cast<double>(k) - cover_count;
        const double removed =
            static_cast<double>(k - mcs.kept.size());
        reduction.add(redundant > 0 ? std::min(1.0, removed / redundant) : 1.0);
      }
      row.push_back(reduction.mean());
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args, timer);
  return 0;
}
