// Figure 11 — Actual RSPC iterations vs gap size, extreme non-cover.
//
// Paper setup: k = 50, m = 5; s covered entirely except a slice of
// 0.5 %..4.5 % (step 0.5) on one attribute; delta in {1e-3, 1e-6, 1e-10};
// 3000 runs per cell (default here 1000; --runs=3000 for paper-exact).
// The probabilistic core is isolated (fast paths and MCS off) exactly
// because the deterministic aids would answer these instances outright.
//
// Expected shape: average iterations ~ 1/gap-fraction (about 200 at 0.5 %
// down to ~20 at 4.5 %) and nearly IDENTICAL across delta values — the
// discovery time is geometric in the true witness mass, not in delta.
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = args.runs_or(1000);
  util::Timer timer;

  util::print_banner(std::cout, "Figure 11: actual iterations vs gap size (extreme non-cover)",
                     "k=50, m=5; probabilistic core isolated; runs/cell=" +
                         std::to_string(runs));

  util::TableWriter table(
      {"gap%", "err=1e-3", "err=1e-6", "err=1e-10"}, 5);
  util::Rng rng(args.seed);

  workload::ScenarioConfig config;
  config.attribute_count = 5;
  config.set_size = 50;

  const std::vector<double> deltas{1e-3, 1e-6, 1e-10};
  for (int gap_step = 1; gap_step <= 9; ++gap_step) {
    const double gap = 0.005 * gap_step;
    std::vector<util::Cell> row{gap * 100.0};
    for (const double delta : deltas) {
      core::EngineConfig engine_config;
      engine_config.delta = delta;
      engine_config.max_iterations = 1'000'000;
      engine_config.use_fast_decisions = false;
      engine_config.use_mcs = false;
      // The paper's integer data model: s spans 40 % of a 1000-wide
      // domain, discretized to unit steps (the bike-rental attributes are
      // ids/sizes/dates — integers).
      engine_config.grid_spacing = 1.0;
      core::SubsumptionEngine engine(engine_config, rng());
      util::RunningStats iterations;
      for (std::int64_t run = 0; run < runs; ++run) {
        const auto inst = workload::make_extreme_non_cover(config, gap, rng);
        iterations.add(static_cast<double>(
            engine.check(inst.tested, inst.existing).iterations));
      }
      row.push_back(iterations.mean());
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args, timer);
  return 0;
}
