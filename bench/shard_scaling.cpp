// Shard-scaling harness: throughput of the exec layer's batch APIs as the
// shard count grows, at production-scale active-set sizes.
//
//   part 1 — batch publication matching: ShardedStore::match_active_batch
//            over shards = 1, 2, 4, 8 with a fixed thread pool. Matching
//            work is conserved across shard counts (the harness verifies
//            the match totals agree and exits 1 otherwise), so the speedup
//            column isolates what partitioning + parallel fan-out buy.
//   part 2 — batch insertion: building the same store sharded. This one
//            scales even on a single core: an insert pays an O(k) memmove
//            in its shard's endpoint arrays, and sharding divides k.
//
// The match-throughput acceptance target (>= 3x at 8 shards vs 1 shard at
// 100k actives) needs >= 4 hardware lanes; the harness prints the lane
// count so runs on smaller machines are interpretable. See docs/TUNING.md
// for measured guidance.
//
// Usage: shard_scaling [--runs=N] [--actives=K] [--seed=S] [--csv=PATH]
//   --runs     publications per batch (default 2000)
//   --actives  subscriptions in the store (default 100000)
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/publication.hpp"
#include "exec/sharded_store.hpp"
#include "exec/thread_pool.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace {

using namespace psc;

exec::ShardConfig shard_config(std::size_t shards) {
  exec::ShardConfig config;
  config.shard_count = shards;
  // Coverage-free: every subscription stays active, so all shard counts
  // hold exactly the same k subscriptions and matching is exact.
  config.store.policy = store::CoveragePolicy::kNone;
  config.store.demote_covered_actives = false;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const util::Flags flags(argc, argv);
  const std::size_t publications =
      static_cast<std::size_t>(args.runs_or(2'000));
  const std::size_t actives =
      static_cast<std::size_t>(flags.get_int("actives", 100'000));
  const util::Timer timer;

  // Same wide-schema workload as bench/index_scaling: 20 attributes, 2-6
  // selective predicates per subscription.
  workload::ComparisonConfig workload_config;
  workload_config.attribute_count = 20;
  workload_config.min_constrained = 2;
  workload_config.max_constrained = 6;
  workload_config.width_mean_fraction = 0.15;
  workload_config.width_stddev_fraction = 0.10;
  workload_config.zipf_skew = 0.3;
  workload_config.center_cluster_scale = 0.35;

  util::print_banner(std::cout, "shard_scaling",
                     "ShardedStore batch throughput vs shard count");

  exec::ThreadPool pool;  // default: hardware lanes
  std::cout << "thread pool: " << pool.worker_count() << " workers ("
            << pool.lane_count() << " lanes incl. caller); actives=" << actives
            << ", batch=" << publications << " publications\n\n";

  std::vector<core::Subscription> subs;
  subs.reserve(actives);
  {
    workload::ComparisonStream stream(workload_config, args.seed);
    for (std::size_t i = 0; i < actives; ++i) subs.push_back(stream.next());
  }
  std::vector<core::Publication> pubs;
  pubs.reserve(publications);
  {
    util::Rng pub_rng(args.seed + 1);
    for (std::size_t i = 0; i < publications; ++i) {
      pubs.push_back(workload::uniform_publication(
          workload_config.attribute_count, workload_config.domain_lo,
          workload_config.domain_hi, pub_rng));
    }
  }

  util::TableWriter table({"shards", "build_ms", "match_ms", "kpubs/s",
                           "speedup", "matches"},
                          3);
  double baseline_match_ms = 0.0;
  std::size_t baseline_matches = 0;
  bool mismatch = false;
  for (const std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
    exec::ShardedStore store(shard_config(shards), args.seed);

    util::Timer build_timer;
    (void)store.insert_batch(subs, &pool);
    const double build_ms = build_timer.elapsed_millis();

    (void)store.match_active_batch(pubs, &pool);  // warm-up pass
    util::Timer match_timer;
    const auto results = store.match_active_batch(pubs, &pool);
    const double match_ms = match_timer.elapsed_millis();

    std::size_t matches = 0;
    for (const auto& ids : results) matches += ids.size();
    if (shards == 1) {
      baseline_match_ms = match_ms;
      baseline_matches = matches;
    } else if (matches != baseline_matches) {
      std::cerr << "MISMATCH at shards=" << shards << ": " << matches
                << " vs baseline " << baseline_matches << "\n";
      mismatch = true;
    }

    table.add_row({static_cast<long long>(shards), build_ms, match_ms,
                   static_cast<double>(publications) / match_ms,
                   baseline_match_ms / match_ms,
                   static_cast<long long>(matches)});
  }
  std::cout << "batch matching (match_active_batch) and store build:\n";
  bench::finish(table, args, timer);
  return mismatch ? 1 : 0;
}
