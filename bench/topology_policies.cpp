// Traffic matrix: coverage policy x overlay topology.
//
// Complements the figure harnesses with the distributed view the paper's
// Section 5 argues qualitatively: the longer the broker paths, the more a
// suppressed subscription saves — the local reduction is "exponentially
// amplified in the network diameter". Measures subscription messages,
// publication messages and delivery ratio for flooding / pairwise / group
// across chain, star, balanced-tree and ring topologies of 15 brokers.
#include <iostream>

#include "bench_common.hpp"
#include "routing/broker_network.hpp"
#include "util/flags.hpp"
#include "workload/comparison_stream.hpp"
#include "workload/publications.hpp"

namespace {

using namespace psc;
using routing::BrokerId;
using routing::BrokerNetwork;
using routing::NetworkConfig;

constexpr std::size_t kBrokers = 15;

BrokerNetwork make_topology(const std::string& name, NetworkConfig config) {
  if (name == "chain") return BrokerNetwork::chain_topology(kBrokers, config);
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < kBrokers; ++i) net.add_broker();
  if (name == "star") {
    for (BrokerId leaf = 1; leaf < kBrokers; ++leaf) net.connect(0, leaf);
  } else if (name == "tree") {
    for (BrokerId child = 1; child < kBrokers; ++child) {
      net.connect((child - 1) / 2, child);  // balanced binary tree
    }
  } else if (name == "ring") {
    for (BrokerId i = 0; i < kBrokers; ++i) {
      net.connect(i, static_cast<BrokerId>((i + 1) % kBrokers));
    }
  } else {
    throw std::invalid_argument("unknown topology " + name);
  }
  return net;
}

const char* policy_name(store::CoveragePolicy policy) {
  switch (policy) {
    case store::CoveragePolicy::kNone: return "flood";
    case store::CoveragePolicy::kPairwise: return "pair";
    case store::CoveragePolicy::kGroup: return "group";
    case store::CoveragePolicy::kExact: return "exact";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const util::Flags flags(argc, argv);
  const auto subs = static_cast<std::size_t>(flags.get_int("subs", 150));
  const auto pubs = static_cast<std::size_t>(flags.get_int("pubs", 300));
  util::Timer timer;

  util::print_banner(std::cout, "Distributed traffic: coverage policy x topology",
                     std::to_string(kBrokers) + " brokers, " + std::to_string(subs) +
                         " subscriptions, " + std::to_string(pubs) + " publications");

  util::TableWriter table({"topology", "policy", "sub_msgs", "suppressed",
                           "pub_msgs", "delivery", "lost"},
                          4);

  workload::ComparisonConfig stream_config;
  stream_config.attribute_count = 8;
  stream_config.min_constrained = 3;
  stream_config.max_constrained = 6;

  for (const std::string topology : {"chain", "star", "tree", "ring"}) {
    for (const auto policy :
         {store::CoveragePolicy::kNone, store::CoveragePolicy::kPairwise,
          store::CoveragePolicy::kGroup}) {
      NetworkConfig config;
      config.store.policy = policy;
      config.store.engine.delta = 1e-6;
      config.store.engine.max_iterations = 20'000;
      auto net = make_topology(topology, config);

      workload::ComparisonStream stream(stream_config, args.seed);
      util::Rng rng(args.seed ^ 0x70f0);
      for (std::size_t i = 0; i < subs; ++i) {
        net.subscribe(static_cast<BrokerId>(rng.next_below(kBrokers)),
                      stream.next());
      }
      for (std::size_t i = 0; i < pubs; ++i) {
        (void)net.publish(static_cast<BrokerId>(rng.next_below(kBrokers)),
                          workload::uniform_publication(
                              stream_config.attribute_count,
                              stream_config.domain_lo, stream_config.domain_hi,
                              rng));
      }
      table.add_row({topology, std::string(policy_name(policy)),
                     static_cast<long long>(net.metrics().subscription_messages),
                     static_cast<long long>(net.metrics().subscriptions_suppressed),
                     static_cast<long long>(net.metrics().publication_messages),
                     net.metrics().delivery_ratio(),
                     static_cast<long long>(net.metrics().notifications_lost)});
    }
  }
  bench::finish(table, args, timer);
  return 0;
}
