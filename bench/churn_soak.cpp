// Churn soak — sustained open-workload churn over the standard topology
// family, with a per-epoch metrics time series and machine-readable JSON
// output so successive PRs can track the trajectory.
//
//   ./churn_soak [--duration=60] [--seed=2006] [--policy=exact]
//                [--sub-rate=2.0] [--pub-rate=5.0] [--ttl-fraction=0.5]
//                [--shards=1] [--differential=true] [--pipelined=false]
//                [--drop=0] [--dup=0] [--reorder=0] [--jitter=0]
//                [--json=PATH]
//                [--topology=NAME]   (substring filter, e.g. "grid")
//                [--dump-dir=.] [--replay=FILE]
//
// Nonzero --drop/--dup/--reorder/--jitter run the soak over lossy wires
// behind the reliable link protocol (routing/link_channel.hpp): the slot
// is re-derived per topology from the protocol's worst-case hop delay so
// retransmit chains quiesce between ops, and the differential gate then
// additionally demands the wire was actually hostile. bench/lossy_soak is
// the dedicated fault matrix; these flags exist so the plain churn soak
// can be spot-checked under loss without switching harnesses.
//
// Every run replays the same seeded trace per topology, so two runs with
// equal flags produce identical counters; wall-clock timing is the only
// nondeterministic field in the JSON.
//
// Failure reproducibility: a tripped gate dumps the offending trace as a
// PSCT file and prints the `--replay=FILE --topology=NAME ...` one-liner
// that reruns exactly that trace on exactly that overlay.
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "routing/topology.hpp"
#include "sim/churn_driver.hpp"
#include "util/json_writer.hpp"
#include "workload/churn_workload.hpp"

namespace {

using namespace psc;

struct SoakResult {
  routing::Topology topology;
  workload::ChurnTrace trace;
  sim::ChurnReport report;
  double elapsed_seconds = 0.0;
};

void write_json(const std::string& path, const workload::ChurnConfig& config,
                store::CoveragePolicy policy, std::uint64_t seed,
                const std::vector<SoakResult>& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open --json path: " + path);
  util::JsonWriter json(out);
  json.begin_object();
  json.member("bench", "churn_soak");
  json.member("seed", seed);
  json.member("policy", store::to_string(policy));
  json.begin_object("config");
  json.member("duration", config.duration);
  json.member("epoch_length", config.epoch_length);
  json.member("subscription_rate", config.subscription_rate);
  json.member("publication_rate", config.publication_rate);
  json.member("ttl_fraction", config.ttl_fraction);
  json.member("immortal_fraction", config.immortal_fraction);
  json.member("mean_lifetime", config.mean_lifetime);
  json.member("attribute_count", std::uint64_t{config.attribute_count});
  json.member("hotspot_count", std::uint64_t{config.hotspot_count});
  json.member("zipf_skew", config.zipf_skew);
  json.member("drop", config.faults.link.drop_probability);
  json.member("dup", config.faults.link.dup_probability);
  json.member("reorder", config.faults.link.reorder_probability);
  json.member("jitter", config.faults.link.delay_jitter);
  json.end_object();
  json.begin_array("topologies");
  for (const SoakResult& result : results) {
    const sim::ChurnReport& report = result.report;
    json.begin_object();
    json.member("name", result.topology.name);
    json.member("brokers", std::uint64_t{result.topology.brokers});
    json.member("ops", std::uint64_t{report.ops});
    json.member("publishes", std::uint64_t{report.publishes});
    json.member("delivered", report.totals.notifications_delivered);
    json.member("lost", report.totals.notifications_lost);
    json.member("mismatched_publishes", report.mismatched_publishes);
    json.member("messages", report.totals.total_messages());
    json.member("suppressed", report.totals.subscriptions_suppressed);
    json.member("peak_routing_entries", std::uint64_t{report.peak_routing_entries});
    json.member("publish_coalescing", report.publish_coalescing);
    json.member("frames_dropped", report.totals.frames_dropped);
    json.member("retransmits", report.totals.retransmits);
    json.member("dups_suppressed", report.totals.dups_suppressed);
    json.member("link_escalations",
                std::uint64_t{report.membership.link_escalations});
    json.member("elapsed_seconds", result.elapsed_seconds);
    json.begin_array("epochs");
    for (const sim::ChurnEpoch& epoch : report.epochs) {
      json.begin_object();
      json.member("end_time", epoch.end_time);
      json.member("ops", std::uint64_t{epoch.ops});
      json.member("publishes", std::uint64_t{epoch.publishes});
      json.member("delivered", epoch.delivered);
      json.member("lost", epoch.lost);
      json.member("live_subscriptions", std::uint64_t{epoch.live_subscriptions});
      json.member("routing_entries", std::uint64_t{epoch.routing_entries});
      json.member("forwarded_entries", std::uint64_t{epoch.forwarded_entries});
      json.member("forwarded_active", std::uint64_t{epoch.forwarded_active});
      json.member("subscription_messages", epoch.subscription_messages);
      json.member("unsubscription_messages", epoch.unsubscription_messages);
      json.member("publication_messages", epoch.publication_messages);
      json.member("suppressed", epoch.suppressed);
      json.member("hops_per_publication", epoch.hops_per_publication());
      json.member("mismatched_publishes", epoch.mismatched_publishes);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;
  const util::Flags flags(argc, argv);

  workload::ChurnConfig config;
  config.duration = flags.get_double("duration", 60.0);
  config.subscription_rate = flags.get_double("sub-rate", 2.0);
  config.publication_rate = flags.get_double("pub-rate", 5.0);
  config.ttl_fraction = flags.get_double("ttl-fraction", 0.5);
  config.faults.link.drop_probability = flags.get_double("drop", 0.0);
  config.faults.link.dup_probability = flags.get_double("dup", 0.0);
  config.faults.link.reorder_probability = flags.get_double("reorder", 0.0);
  config.faults.link.delay_jitter = flags.get_double("jitter", 0.0);
  const bool lossy = config.faults.any();
  const bool pipelined = flags.get_bool("pipelined", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2006));
  const auto policy =
      store::parse_coverage_policy(flags.get_string("policy", "exact"));
  const auto shards =
      static_cast<std::size_t>(flags.get_int("shards", 1));
  const bool differential = flags.get_bool("differential", true);
  const std::string json_path = flags.get_string("json", "");
  const std::string topology_filter = flags.get_string("topology", "");
  const std::string dump_dir = flags.get_string("dump-dir", ".");
  const std::string replay_path = flags.get_string("replay", "");
  if (!replay_path.empty() && topology_filter.empty()) {
    std::cerr << "--replay needs --topology=NAME to pick the overlay the "
                 "trace was recorded against\n";
    return 2;
  }

  util::print_banner(std::cout, "churn_soak",
                     "open-workload churn across the standard topologies");

  util::TableWriter table({"topology", "brokers", "ops", "publishes",
                           "delivered", "lost", "mismatch", "messages",
                           "suppressed", "peak_routing", "live_end",
                           "seconds"});
  std::vector<SoakResult> results;
  for (routing::Topology& topology : routing::standard_topologies(seed)) {
    if (!topology_filter.empty() &&
        topology.name.find(topology_filter) == std::string::npos) {
      continue;
    }
    store::StoreConfig store_config;
    store_config.policy = policy;
    routing::NetworkConfig net_config = routing::NetworkConfig::Builder()
                                            .store(store_config)
                                            .match_shards(shards)
                                            .pipelined(pipelined)
                                            .build();
    config.link_latency = net_config.link_latency;

    workload::ChurnConfig topo_config = config;
    if (lossy) {
      routing::LinkConfig link;
      link.enabled = true;
      link.faults = config.faults.link;
      net_config.link = link;
      net_config.seed = seed;
      // The slot must outlast a worst-case retransmit chain across the
      // overlay diameter, or cascades bleed into the next op's settle
      // point and the trace validator rejects the schedule.
      topo_config.faults.cascade_hop_bound =
          link.worst_hop_delay(net_config.link_latency);
      topo_config.slot = 2.2 * static_cast<double>(topology.brokers + 1) *
                         topo_config.faults.cascade_hop_bound;
      topo_config.epoch_length = topo_config.slot * 50;
      if (topo_config.slot > topo_config.duration) {
        std::cerr << "FAIL: --duration=" << topo_config.duration
                  << " is shorter than the lossy settle slot ("
                  << topo_config.slot << "s) that " << topology.name
                  << " needs for a worst-case retransmit cascade; rerun "
                     "with --duration >= "
                  << topo_config.slot << "\n";
        return 1;
      }
    }

    SoakResult result;
    result.topology = topology;
    result.trace =
        replay_path.empty()
            ? workload::generate_churn_trace(topo_config, topology.brokers,
                                             seed)
            : bench::read_trace_file(replay_path);
    auto net = topology.build(net_config);
    const util::Timer timer;
    sim::ChurnDriver::Options driver_options;
    driver_options.differential = differential;
    driver_options.pipelined_publish = pipelined;
    result.report = sim::ChurnDriver::run(net, result.trace, driver_options);
    result.elapsed_seconds = timer.elapsed_seconds();

    const sim::ChurnReport& report = result.report;
    table.add_row({topology.name, static_cast<long long>(topology.brokers),
                   static_cast<long long>(report.ops),
                   static_cast<long long>(report.publishes),
                   static_cast<long long>(report.totals.notifications_delivered),
                   static_cast<long long>(report.totals.notifications_lost),
                   static_cast<long long>(report.mismatched_publishes),
                   static_cast<long long>(report.totals.total_messages()),
                   static_cast<long long>(report.totals.subscriptions_suppressed),
                   static_cast<long long>(report.peak_routing_entries),
                   static_cast<long long>(report.final_live_subscriptions),
                   result.elapsed_seconds});
    results.push_back(std::move(result));
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, config, policy, seed, results);
    std::cout << "\njson written to " << json_path << "\n";
  }

  // With the differential oracle on, the soak doubles as a gate: any
  // divergence or lost notification fails the run (CI smoke relies on
  // this). Under --policy=group losses bounded by delta are legal — run
  // with --differential=false to soak group without gating.
  if (differential) {
    std::uint64_t mismatches = 0, lost = 0;
    for (const SoakResult& result : results) {
      mismatches += result.report.mismatched_publishes;
      lost += result.report.totals.notifications_lost;
      if (result.report.mismatched_publishes == 0 &&
          result.report.totals.notifications_lost == 0) {
        continue;
      }
      // Reproducibility: dump the offending trace and print the one-liner
      // that replays it on exactly this overlay.
      const std::string dump = dump_dir + "/churn_soak_fail_" +
                               result.topology.name + "_" +
                               std::to_string(seed) + ".psct";
      bench::write_trace_file(dump, result.trace);
      std::cerr << "\nGATE FAILURE on " << result.topology.name << " (seed "
                << seed << ", policy " << store::to_string(policy)
                << "): mismatched=" << result.report.mismatched_publishes
                << " lost=" << result.report.totals.notifications_lost << "\n"
                << "  trace dumped; replay with:\n"
                << "    ./churn_soak --replay=" << dump
                << " --topology=" << result.topology.name
                << " --seed=" << seed
                << " --policy=" << store::to_string(policy)
                << " --shards=" << shards;
      if (lossy) {
        // Fault rates ride the trace, but the wire config (and its seed)
        // rides the command line — repeat it for a faithful replay.
        std::cerr << " --drop=" << config.faults.link.drop_probability
                  << " --dup=" << config.faults.link.dup_probability
                  << " --reorder=" << config.faults.link.reorder_probability
                  << " --jitter=" << config.faults.link.delay_jitter;
      }
      std::cerr << "\n";
    }
    if (mismatches > 0 || lost > 0) {
      std::cerr << "\nFAIL: " << mismatches << " mismatched publishes, "
                << lost << " lost notifications\n";
      return 1;
    }
  }
  return 0;
}
