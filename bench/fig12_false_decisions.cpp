// Figure 12 — False decisions (wrongly answering "covered") vs gap size,
// extreme non-cover scenario.
//
// Same setup as Figure 11. A false decision withholds a non-covered
// subscription — the algorithm's one-sided error. The integer-grid point
// counting (the paper's I(s) model) makes Algorithm 2's rho_w estimate
// optimistic for thin gaps, so the executed d falls short of the exact
// requirement and the false-decision count exceeds runs*delta at the
// smallest gaps — the effect the paper plots.
//
// Expected shape: counts decrease with gap size and with smaller delta;
// zero for delta <= 1e-6 once the gap reaches ~1-2 %.
#include "bench_common.hpp"
#include "baseline/exact_subsumption.hpp"
#include "core/engine.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace psc;
  const auto args = bench::HarnessArgs::parse(argc, argv);
  const auto runs = args.runs_or(1000);
  util::Timer timer;

  util::print_banner(std::cout, "Figure 12: false decisions vs gap size (extreme non-cover)",
                     "k=50, m=5; counts per " + std::to_string(runs) + " runs");

  util::TableWriter table(
      {"gap%", "err=1e-3", "err=1e-6", "err=1e-10"}, 5);
  util::Rng rng(args.seed);

  workload::ScenarioConfig config;
  config.attribute_count = 5;
  config.set_size = 50;

  const std::vector<double> deltas{1e-3, 1e-6, 1e-10};
  for (int gap_step = 1; gap_step <= 9; ++gap_step) {
    const double gap = 0.005 * gap_step;
    std::vector<util::Cell> row{gap * 100.0};
    for (const double delta : deltas) {
      core::EngineConfig engine_config;
      engine_config.delta = delta;
      engine_config.max_iterations = 1'000'000;
      engine_config.use_fast_decisions = false;
      engine_config.use_mcs = false;
      engine_config.grid_spacing = 1.0;
      core::SubsumptionEngine engine(engine_config, rng());
      long long false_decisions = 0;
      for (std::int64_t run = 0; run < runs; ++run) {
        const auto inst = workload::make_extreme_non_cover(config, gap, rng);
        const auto result = engine.check(inst.tested, inst.existing);
        // Every instance is non-covered by construction; answering
        // "covered" is a false decision. (The exact oracle cross-checks
        // construction on a sample to guard against generator drift.)
        if (result.covered) ++false_decisions;
        if (run % 997 == 0 &&
            baseline::exactly_covered(inst.tested, inst.existing)) {
          std::cerr << "generator drift: instance unexpectedly covered\n";
          return 1;
        }
      }
      row.push_back(false_decisions);
    }
    table.add_row(std::move(row));
  }
  bench::finish(table, args, timer);
  return 0;
}
