// IntervalIndex — per-attribute candidate index over a set of box
// subscriptions, the production generalization of the counting matcher
// baseline (src/baseline/counting_matcher): fully incremental (insert and
// erase by subscription id) and answering two queries:
//
//   * stab(point): ids of subscriptions whose box CONTAINS the point —
//     publication matching (Algorithm 5's active scan) without touching
//     subscriptions that cannot match;
//   * box_intersect(box): ids of subscriptions whose box INTERSECTS the
//     query box — the candidate-pruning step in front of the coverage
//     policies: a subscription disjoint from s can neither cover s
//     (pairwise or as part of a group) nor be covered by it, so the
//     subsumption pipeline only ever sees index-pruned candidates.
//
// The index distinguishes, per slot and attribute, between
//   * SELECTIVE intervals — those that do NOT cover the whole configured
//     domain (IndexConfig) — which enter the search structures below, and
//   * WIDE intervals — Interval::everything() or any interval containing
//     [domain_lo, domain_hi] — which cannot prune anything inside the
//     domain and are therefore kept out of the hot structures entirely
//     and handled by the exact verification pass (this matters: realistic
//     workloads encode "don't care" as the full domain, and indexing those
//     predicates would only add dead weight to every query).
// required_[slot] counts the selective attributes of a slot.
//
// Two complementary structures hold the selective intervals per attribute:
//
// 1. Sorted endpoint arrays (lower and upper bounds by value). Queries run
//    the counting algorithm in two phases over a probe box [qlo, qhi]
//    (interval [lo,hi] intersects it iff lo <= qhi AND hi >= qlo):
//      phase 1:  counts[slot] -= 1  for every upper endpoint hi <  qlo[j]
//      phase 2:  counts[slot] += 1  for every lower endpoint lo <= qhi[j]
//    Per selective attribute the net contribution is 1 iff the predicate
//    holds, so a slot survives iff its count reaches required_[slot];
//    since all decrements precede all increments the phase-2 running
//    count is monotone and crosses required_[slot] exactly once —
//    survivors are emitted mid-pass and the classical O(k) counts sweep
//    disappears. Counts are epoch-stamped, so a query touches only passed
//    endpoints. box_intersect runs on this structure, then re-checks the
//    emitted slots' wide attributes against the probe (a handful of
//    comparisons; selective attributes were counted exactly).
//
// 2. Bucketed candidate-mask bitmaps, stored as PAIRED LANES: the
//    attribute domain is split into B buckets, and each row mask[j][b] is
//    a 32-byte-aligned bitmap over slots with TWO interleaved 64-bit words
//    per slot group (even word then odd word, always in the same cache
//    line, so mutations pay for one line whether they write one lane or
//    both):
//      * POSSIBLE lane (even words): bit 1 iff the slot could match a
//        point in bucket b on attribute j — its selective interval
//        overlaps the bucket, or the attribute is wide for it (free slots
//        also stay 1; liveness is a separate occupancy bitmap);
//      * CERTAIN lane (odd words): bit 1 iff the slot's interval FULLY
//        COVERS bucket b — every point of the bucket matches attribute j,
//        so a slot whose certain bit survives the sweep on every
//        attribute needs NO verification at all. The lane is computed
//        exactly from bucket monotonicity, never from float boundary
//        arithmetic: with bl = bucket(lo) (-1 when lo = -inf) and
//        bh = bucket(hi) (B when hi = +inf), the certain span is
//        (bl, bh) exclusive — bucket(lo) < b < bucket(hi) forces
//        lo < v < hi for every real v in bucket b.
//    A point probe is one fused word-parallel sweep
//        acc[w] &= mask[j][bucket(v_j)][w]
//    over both lanes of the attributes somebody constrains — a SIMD
//    kernel (util/simd.hpp) with block-level early exit on an all-zero
//    accumulator — leaving the possible-lane superset partitioned into
//    certain survivors (emitted directly; with ~97% of candidates being
//    true matches under realistic workloads this removes the dominant
//    verification cost) and an uncertain residue (possible & ~certain,
//    verified exactly against the packed verify records below). stab runs
//    here. Values outside the configured domain clamp to the edge
//    buckets, and the certain lane of an attribute is only TRUSTED when
//    the probe value is inside [domain_lo, domain_hi] (wide slots carry
//    all-ones rows whose certain bits are only valid for in-domain
//    points, and NaN probes must fail every comparison); untrusted
//    attributes zero the certainty lane and degrade to verify-everything.
//    Only pruning power degrades, never correctness.
//
// HOT-PATH SLOT DATA (structure-of-arrays, SIMD-friendly). Candidate
// emission is cache-miss-bound, so the per-slot state it touches lives in
// dedicated linear arrays instead of the colder bookkeeping vectors:
//   * verify_blob_ — per slot, ceil(m/4) packed 64-byte records [lo x4 |
//     hi x4] (32-byte aligned; padding lanes hold -inf/+inf so they pass
//     any real value), consumed by the branchless 4-lane SIMD verify;
//   * ids32_ — a 32-bit shadow of ids_; while every live id fits in 32
//     bits (big_id_count_ == 0) emission reads this array instead and
//     halves the id-fetch cache-line traffic.
// semantic_attrs_ / wide_attrs_ / the occupancy bitmap remain the scan
// metadata for the scalar ablation path.
//
// CHURN AMORTIZATION (two-tier mutation model). Endpoint arrays are cheap
// to query but O(k) to mutate (one memmove per selective attribute), which
// made sustained subscribe/unsubscribe churn dominate end-to-end cost at
// 100k+ actives. Mutations are therefore tiered:
//
//   * insert appends the slot to a small DELTA TIER: its candidate-mask
//     bits and occupancy bit are written immediately (O(bucket_count) per
//     selective attribute — so stab needs no special delta handling and
//     keeps full bitmap pruning), but its endpoints are NOT merged into
//     the sorted arrays yet. Instead they are appended to per-attribute
//     DELTA RUNS — generation-tagged endpoint logs sorted in small
//     cache-resident blocks as they fill — so the next compaction
//     consumes a linear, mostly-sorted stream instead of gathering
//     scattered ranges_ rows. box_intersect's counting path flat-scans
//     the delta tier after the counting pass (the delta is bounded by the
//     compaction threshold); the SIMD mask path needs no delta special
//     case at all (mask bits are already live).
//   * erase of a main-tier slot TOMBSTONES it: the occupancy bit is
//     cleared (stab exact immediately) and the slot is marked dead; its
//     stale endpoints stay in the sorted arrays until the next compaction
//     and are ignored at emission via an O(1) liveness check. Erase of a
//     delta-tier slot restores its mask bits and frees it outright.
//   * when delta + tombstones exceed the compaction threshold (see
//     IndexConfig), COMPACTION merges the delta endpoints into the sorted
//     arrays (one filter + sorted merge per attribute, no per-element
//     memmove) and releases tombstoned slots — O(k + d log d) for d
//     pending mutations, so mutation cost is amortized O(log k) while
//     both query paths stay decision-for-decision identical to the eager
//     index (property-tested over churn traces in
//     tests/tiered_index_test.cpp).
//
// IndexConfig::amortize_mutations = false restores the eager pre-tier
// behavior (sorted-insert + immediate endpoint removal) — kept as the
// measured ablation baseline for bench/perf_gate.
//
// Both query paths are exact (closed-interval semantics identical to
// Subscription::contains_point / Subscription::intersects). Queries mutate
// only epoch/scratch state and are const, but not safe to run concurrently
// on one instance.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/subscription.hpp"
#include "util/flat_map.hpp"
#include "util/simd.hpp"

namespace psc::index {

/// Bucketing and churn-amortization parameters. The domain is a
/// performance hint, not a constraint: out-of-domain values clamp to the
/// edge buckets and are resolved by the exact verification pass. Query
/// RESULTS never depend on any of these knobs — only the work performed
/// does (see docs/TUNING.md for measured effects).
struct IndexConfig {
  core::Value domain_lo = 0.0;
  core::Value domain_hi = 1000.0;
  std::size_t bucket_count = 128;

  /// Two-tier mutation model (delta tier + tombstones + compaction). Off =
  /// the eager pre-tier path: O(k) sorted-insert / erase per mutation,
  /// kept as the perf-gate ablation baseline.
  bool amortize_mutations = true;
  /// Compaction fires when pending mutations (delta inserts + tombstones)
  /// exceed max(compaction_min, compaction_slack * live size). The
  /// threshold bounds both the box_intersect delta scan and the stale
  /// endpoints a query may skip, so it trades mutation amortization
  /// against query-time overhead.
  std::size_t compaction_min = 256;
  double compaction_slack = 0.02;

  /// Use the vectorized query kernels when a SIMD backend was compiled in
  /// (simd::vectorized()); false forces the scalar ablation path in the
  /// same binary. Pure performance knob: both paths are property-tested
  /// decision-for-decision identical, so query RESULTS never depend on it
  /// (which is also why it is deliberately NOT part of the wire snapshot —
  /// a restoring process keeps its own default).
  bool use_simd = true;
};

/// Incremental candidate index over one fixed attribute schema (see file
/// comment for the data structures, query algorithms, and the two-tier
/// churn-amortized mutation model).
///
/// Thread-safety: externally single-threaded. stab/box_intersect are
/// const but advance epoch counters and reuse scratch buffers, so two
/// queries must not run concurrently on one instance; one index per
/// thread (or per shard) is the supported model. Query results never
/// depend on IndexConfig — only pruning power and mutation cost do.
class IntervalIndex {
 public:
  /// Index over a fixed schema of `attribute_count` attributes.
  /// `attribute_count` must be >= 1 and every inserted subscription and
  /// probe must carry exactly that many attributes.
  explicit IntervalIndex(std::size_t attribute_count, IndexConfig config = {});

  /// Indexes `sub` under its id. Throws std::invalid_argument on a schema
  /// mismatch, a duplicate id, or the invalid id 0; the index is
  /// unchanged when it throws. Amortized O(log k): the slot lands in the
  /// delta tier and endpoint merging is deferred to compaction.
  void insert(const core::Subscription& sub);

  /// Removes the subscription stored under `id`; false if unknown.
  /// Amortized O(1) plus its share of the next compaction (tombstoned lazy
  /// erase; see file comment).
  bool erase(core::SubscriptionId id);

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t attribute_count() const noexcept { return m_; }
  [[nodiscard]] const IndexConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool contains(core::SubscriptionId id) const {
    return slot_of_.contains(id);
  }

  /// Appends to `out` the ids of all subscriptions whose box contains
  /// `point` (one value per attribute; throws std::invalid_argument on a
  /// size mismatch). Order is unspecified — callers needing determinism
  /// sort, as SubscriptionStore::match_active does. Exact closed-interval
  /// semantics, identical to Subscription::contains_point.
  void stab(std::span<const core::Value> point,
            std::vector<core::SubscriptionId>& out) const;
  [[nodiscard]] std::vector<core::SubscriptionId> stab(
      std::span<const core::Value> point) const;

  /// Appends to `out` the ids of all subscriptions whose box shares at
  /// least one point with `box` (throws std::invalid_argument on a schema
  /// mismatch). Order is unspecified. Exact, identical to
  /// Subscription::intersects.
  void box_intersect(const core::Subscription& box,
                     std::vector<core::SubscriptionId>& out) const;
  [[nodiscard]] std::vector<core::SubscriptionId> box_intersect(
      const core::Subscription& box) const;

  /// Candidates the most recent query EXAMINED: slots that reached the
  /// emission stage and were either certainty-emitted or exactly verified
  /// (for the counting path of box_intersect: emissions plus delta-tier
  /// and unselective probes). Deliberately NOT kernel work (bitmap words
  /// swept, endpoints passed): ops/sec regressions catch kernel
  /// slowdowns, while this number isolates PRUNING regressions — it is
  /// directly comparable against the k subscriptions a flat scan would
  /// examine, on every backend and scale tier.
  [[nodiscard]] std::uint64_t last_query_cost() const noexcept {
    return last_query_cost_;
  }

  // --- two-tier introspection (tests, benches, tuning) -----------------

  /// Live slots whose endpoints are not yet merged into the sorted arrays.
  [[nodiscard]] std::size_t delta_size() const noexcept {
    return delta_slots_.size();
  }
  /// Erased main-tier slots whose endpoints are still awaiting compaction.
  [[nodiscard]] std::size_t tombstone_count() const noexcept {
    return dead_slots_.size();
  }
  /// Compactions performed so far (threshold-triggered + forced).
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }
  /// Forces an immediate compaction (merges the delta tier, releases
  /// tombstones). Queries before and after return identical results; only
  /// the work distribution changes. No-op when nothing is pending.
  void compact();

 private:
  struct Endpoint {
    core::Value value;
    std::uint32_t slot;
  };
  /// Delta-run log entry: a pending endpoint plus the generation its slot
  /// had when appended. An entry is live iff the slot is still in the
  /// delta tier with the same generation — erased (and possibly reused)
  /// slots are filtered out by the tag, never by log surgery.
  struct DeltaEndpoint {
    core::Value value;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;
  static constexpr std::uint32_t kNoPos = 0xffffffffU;
  /// Delta-run block size: appended log entries are sorted in place every
  /// time a block fills, while still cache-resident.
  static constexpr std::size_t kDeltaRun = 128;
  /// Verify records pack attributes in groups of 4 (one 64-byte record:
  /// four lows then four highs).
  static constexpr std::size_t kVerifyGroup = 4;

  std::size_t m_;
  IndexConfig config_;
  std::size_t size_ = 0;

  /// Per attribute: lower/upper endpoints of SELECTIVE intervals, sorted
  /// by value (ties in arbitrary order). Entries may reference tombstoned
  /// slots between compactions; emission checks liveness.
  std::vector<std::vector<Endpoint>> lows_;
  std::vector<std::vector<Endpoint>> highs_;
  /// Live slots (either tier) with a selective interval on attribute j —
  /// the stab sweep's skip test (endpoint-array emptiness no longer works:
  /// the delta tier has mask bits but no endpoints).
  std::vector<std::uint32_t> selective_count_;

  /// Slot-indexed state. Slots are stable across erasures (free list), so
  /// endpoint entries and bitmap bits never need renumbering. A tombstoned
  /// slot keeps its ranges_/required_ until compaction releases it.
  std::vector<core::SubscriptionId> ids_;      ///< kInvalid for free/dead slots
  std::vector<std::uint32_t> required_;        ///< selective attributes
  std::vector<core::Interval> ranges_;         ///< slot-major, m_ per slot
  /// Per-slot attribute bitmasks (bit j = attribute j; only meaningful for
  /// m_ <= 64, with a full-loop fallback otherwise):
  ///   semantic_attrs_ — attributes whose interval != everything() (what
  ///                     stab must verify on a candidate);
  ///   wide_attrs_     — semantically constrained but domain-covering
  ///                     (what box_intersect must re-check on a survivor).
  std::vector<std::uint64_t> semantic_attrs_;
  std::vector<std::uint64_t> wide_attrs_;
  std::vector<std::uint32_t> free_slots_;
  util::FlatMap<core::SubscriptionId, std::uint32_t> slot_of_;

  /// Hot emission data (see file comment): packed 4-lane verify records,
  /// verify_groups_ * 8 doubles per slot, and the 32-bit id shadow used
  /// while big_id_count_ == 0. Stale rows of dead slots are never read
  /// (emission starts from the occupancy bitmap).
  std::size_t verify_groups_ = 1;
  simd::AlignedVector<double> verify_blob_;
  std::vector<std::uint32_t> ids32_;
  std::size_t big_id_count_ = 0;
  /// Slot reuse generations backing the DeltaEndpoint tags.
  std::vector<std::uint32_t> slot_gen_;

  /// Slots with no selective attribute bypass the counting pass of
  /// box_intersect entirely (they are emitted subject to wide-attribute
  /// verification only). unselective_pos_[slot] is the slot's position in
  /// unselective_slots_ (kNoPos otherwise) so erase is O(1).
  std::vector<std::uint32_t> unselective_slots_;
  std::vector<std::uint32_t> unselective_pos_;

  /// Delta tier: live slots whose endpoints await the next compaction.
  /// delta_pos_[slot] is the slot's position in delta_slots_ (kNoPos for
  /// main-tier slots); dead_slots_ are tombstoned main-tier slots.
  std::vector<std::uint32_t> delta_slots_;
  std::vector<std::uint32_t> delta_pos_;
  std::vector<std::uint32_t> dead_slots_;
  std::uint64_t compactions_ = 0;
  /// Per-attribute delta-run logs (pending low/high endpoints of delta-
  /// tier slots, block-sorted as they fill; see file comment).
  std::vector<std::vector<DeltaEndpoint>> delta_lows_;
  std::vector<std::vector<DeltaEndpoint>> delta_highs_;

  /// Candidate-mask rows, m_ * bucket_count of them, 2 * words_ words
  /// each in the paired possible/certain lane layout (even word =
  /// possible, odd word = certain; see file comment); free and
  /// wide/unconstrained slots carry 1-bits in BOTH lanes. The occupancy
  /// row is paired the same way (both lanes identical) so the stab
  /// accumulator initializes with one aligned copy. 32-byte aligned,
  /// words_ always a multiple of simd::kBlockWords.
  std::size_t words_ = 0;          ///< words per bitmap LANE
  std::size_t slot_capacity_ = 0;  ///< slots representable, words_ * 64
  simd::AlignedVector<Word> mask_bits_;
  simd::AlignedVector<Word> occupied_bits_;

  /// Lazily-reset counting state for box_intersect (epoch stamp instead of
  /// an O(k) clear).
  mutable std::vector<std::int32_t> counts_;
  mutable std::vector<std::uint64_t> epochs_;
  mutable std::uint64_t epoch_ = 0;
  mutable std::uint64_t last_query_cost_ = 0;
  mutable simd::AlignedVector<Word> acc_scratch_;  ///< paired accumulator
  mutable std::vector<Word> or_possible_scratch_;  ///< box OR over span
  mutable std::vector<Word> or_certain_scratch_;   ///< box OR over interior
  mutable std::vector<std::uint32_t> certain_scratch_;  ///< emitted directly
  mutable std::vector<std::uint32_t> verify_scratch_;   ///< exact-verified
  mutable simd::AlignedVector<double> query_pad_;  ///< padded probe values

  /// True iff the interval cannot prune inside the configured domain.
  [[nodiscard]] bool is_wide(const core::Interval& iv) const noexcept;
  [[nodiscard]] std::size_t bucket_of(core::Value v) const noexcept;
  [[nodiscard]] std::size_t words_in_use() const noexcept {
    return (ids_.size() + kWordBits - 1) / kWordBits;
  }
  /// Words per lane actually swept: words_in_use padded to a whole SIMD
  /// block (padding words hold zero occupancy, so sweeping them is inert).
  [[nodiscard]] std::size_t sweep_words() const noexcept {
    return std::min(simd::padded_words(words_in_use()), words_);
  }
  /// A row's paired lanes: word 2w is the possible lane, 2w + 1 the
  /// certain lane of slot group w.
  [[nodiscard]] Word* pair_row(std::size_t attribute, std::size_t bucket) noexcept {
    return mask_bits_.data() +
           (attribute * config_.bucket_count + bucket) * 2 * words_;
  }
  [[nodiscard]] const Word* pair_row(std::size_t attribute,
                                     std::size_t bucket) const noexcept {
    return mask_bits_.data() +
           (attribute * config_.bucket_count + bucket) * 2 * words_;
  }
  /// True iff the slot's box contains the point / intersects the box,
  /// checking only the attributes in `attrs` (m_ <= 64) or all of them.
  [[nodiscard]] bool verify_stab(std::uint32_t slot,
                                 std::span<const core::Value> point) const;
  [[nodiscard]] bool verify_box(std::uint32_t slot, const core::Subscription& box,
                                std::uint64_t attrs) const;
  /// Vectorized query paths (candidate-mask sweep + certainty lane + SIMD
  /// verify); selected when config_.use_simd and a SIMD backend exists,
  /// and the probe carries no NaN (a NaN value must fail its own
  /// attribute but pass unconstrained ones — only the scalar semantic-
  /// mask verify distinguishes the two).
  void stab_simd(std::span<const core::Value> point,
                 std::vector<core::SubscriptionId>& out) const;
  void box_intersect_simd(const core::Subscription& box,
                          std::vector<core::SubscriptionId>& out) const;
  /// Drains the paired accumulator: certain survivors emit their id
  /// directly, uncertain ones (possible & ~certain) go through `verify`
  /// (a slot -> bool predicate). Returns candidates examined.
  template <typename Verify>
  std::uint64_t emit_candidates(std::vector<core::SubscriptionId>& out,
                                Verify&& verify) const;
  /// Writes the slot's mask bits for one selective attribute: possible
  /// lane 1 in the buckets its interval overlaps, certain lane 1 in the
  /// buckets it fully covers (both lanes 1 everywhere on erase-restore).
  void write_mask_bits(std::size_t attribute, std::uint32_t slot,
                       const core::Interval& iv, bool erase_restore);
  /// Writes the slot's packed verify records (padding lanes -inf/+inf).
  void write_verify_row(std::uint32_t slot, const core::Subscription& sub);
  void grow_bitmaps();
  void remove_endpoint(std::vector<Endpoint>& endpoints, core::Value value,
                       std::uint32_t slot);
  /// Restores a slot's mask rows to the free-slot all-ones state.
  void restore_mask_bits(std::uint32_t slot);
  /// Resets per-slot state and returns the slot to the free list. The
  /// caller must already have removed its endpoints and restored its mask.
  void release_slot(std::uint32_t slot);
  /// Pending mutations that the next compaction will fold in.
  [[nodiscard]] std::size_t pending_mutations() const noexcept {
    return delta_slots_.size() + dead_slots_.size();
  }
  [[nodiscard]] std::size_t compaction_threshold() const noexcept;
  void maybe_compact();
};

}  // namespace psc::index
