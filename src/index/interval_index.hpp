// IntervalIndex — per-attribute candidate index over a set of box
// subscriptions, the production generalization of the counting matcher
// baseline (src/baseline/counting_matcher): fully incremental (insert and
// erase by subscription id) and answering two queries:
//
//   * stab(point): ids of subscriptions whose box CONTAINS the point —
//     publication matching (Algorithm 5's active scan) without touching
//     subscriptions that cannot match;
//   * box_intersect(box): ids of subscriptions whose box INTERSECTS the
//     query box — the candidate-pruning step in front of the coverage
//     policies: a subscription disjoint from s can neither cover s
//     (pairwise or as part of a group) nor be covered by it, so the
//     subsumption pipeline only ever sees index-pruned candidates.
//
// The index distinguishes, per slot and attribute, between
//   * SELECTIVE intervals — those that do NOT cover the whole configured
//     domain (IndexConfig) — which enter the search structures below, and
//   * WIDE intervals — Interval::everything() or any interval containing
//     [domain_lo, domain_hi] — which cannot prune anything inside the
//     domain and are therefore kept out of the hot structures entirely
//     and handled by the exact verification pass (this matters: realistic
//     workloads encode "don't care" as the full domain, and indexing those
//     predicates would only add dead weight to every query).
// required_[slot] counts the selective attributes of a slot.
//
// Two complementary structures hold the selective intervals per attribute:
//
// 1. Sorted endpoint arrays (lower and upper bounds by value). Queries run
//    the counting algorithm in two phases over a probe box [qlo, qhi]
//    (interval [lo,hi] intersects it iff lo <= qhi AND hi >= qlo):
//      phase 1:  counts[slot] -= 1  for every upper endpoint hi <  qlo[j]
//      phase 2:  counts[slot] += 1  for every lower endpoint lo <= qhi[j]
//    Per selective attribute the net contribution is 1 iff the predicate
//    holds, so a slot survives iff its count reaches required_[slot];
//    since all decrements precede all increments the phase-2 running
//    count is monotone and crosses required_[slot] exactly once —
//    survivors are emitted mid-pass and the classical O(k) counts sweep
//    disappears. Counts are epoch-stamped, so a query touches only passed
//    endpoints. box_intersect runs on this structure, then re-checks the
//    emitted slots' wide attributes against the probe (a handful of
//    comparisons; selective attributes were counted exactly).
//
// 2. Bucketed candidate-mask bitmaps: the attribute domain is split into B
//    buckets; mask[j][b] is a bitmap over slots whose bit is 1 iff the
//    slot is a POSSIBLE match for a point in bucket b on attribute j —
//    its selective interval overlaps the bucket, or the attribute is wide
//    for it (free slots also stay 1; liveness is a separate occupancy
//    bitmap). A point probe is then one fused word-parallel sweep
//        acc[w] &= mask[j][bucket(v_j)][w]
//    over the attributes somebody constrains — O(m * k/64) single-load
//    word ops — leaving a small bucket-granularity superset that is
//    verified exactly (each slot stores a bitmask of its semantically
//    constrained attributes, so only real predicates are re-checked).
//    stab runs here: publication matching is the hot path (millions of
//    publications against a slowly-churning subscription set), and the
//    fused bitmap sweep beats both the flat scan's early-exit walk and
//    endpoint counting by a wide margin at 10k actives. Values outside
//    the configured domain clamp to the edge buckets: only pruning power
//    degrades, never correctness.
//
// Both query paths are exact (closed-interval semantics identical to
// Subscription::contains_point / Subscription::intersects). Mutation cost
// is O(m log k) search + O(k) memmove on the endpoint arrays plus
// O(bucket_count) bitmap updates per selective attribute — fine for
// subscription churn, which is orders of magnitude rarer than matching in
// pub/sub workloads. Queries mutate only epoch/scratch state and are
// const, but not safe to run concurrently on one instance.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/subscription.hpp"

namespace psc::index {

/// Bucketing parameters for the stab-acceleration bitmaps. The domain is a
/// performance hint, not a constraint: out-of-domain values clamp to the
/// edge buckets and are resolved by the exact verification pass.
struct IndexConfig {
  core::Value domain_lo = 0.0;
  core::Value domain_hi = 1000.0;
  std::size_t bucket_count = 128;
};

/// Incremental candidate index over one fixed attribute schema (see file
/// comment for the data structures and query algorithms).
///
/// Thread-safety: externally single-threaded. stab/box_intersect are
/// const but advance epoch counters and reuse scratch buffers, so two
/// queries must not run concurrently on one instance; one index per
/// thread (or per shard) is the supported model. Query results never
/// depend on IndexConfig — only pruning power does.
class IntervalIndex {
 public:
  /// Index over a fixed schema of `attribute_count` attributes.
  /// `attribute_count` must be >= 1 and every inserted subscription and
  /// probe must carry exactly that many attributes.
  explicit IntervalIndex(std::size_t attribute_count, IndexConfig config = {});

  /// Indexes `sub` under its id. Throws std::invalid_argument on a schema
  /// mismatch, a duplicate id, or the invalid id 0; the index is
  /// unchanged when it throws.
  void insert(const core::Subscription& sub);

  /// Removes the subscription stored under `id`; false if unknown.
  bool erase(core::SubscriptionId id);

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t attribute_count() const noexcept { return m_; }
  [[nodiscard]] const IndexConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool contains(core::SubscriptionId id) const {
    return slot_of_.count(id) > 0;
  }

  /// Appends to `out` the ids of all subscriptions whose box contains
  /// `point` (one value per attribute; throws std::invalid_argument on a
  /// size mismatch). Order is unspecified — callers needing determinism
  /// sort, as SubscriptionStore::match_active does. Exact closed-interval
  /// semantics, identical to Subscription::contains_point.
  void stab(std::span<const core::Value> point,
            std::vector<core::SubscriptionId>& out) const;
  [[nodiscard]] std::vector<core::SubscriptionId> stab(
      std::span<const core::Value> point) const;

  /// Appends to `out` the ids of all subscriptions whose box shares at
  /// least one point with `box` (throws std::invalid_argument on a schema
  /// mismatch). Order is unspecified. Exact, identical to
  /// Subscription::intersects.
  void box_intersect(const core::Subscription& box,
                     std::vector<core::SubscriptionId>& out) const;
  [[nodiscard]] std::vector<core::SubscriptionId> box_intersect(
      const core::Subscription& box) const;

  /// Work performed by the most recent query (bitmap words + verification
  /// probes for stab; endpoint passes for box_intersect) — comparable
  /// against the k subscriptions a flat scan would examine.
  [[nodiscard]] std::uint64_t last_query_cost() const noexcept {
    return last_query_cost_;
  }

 private:
  struct Endpoint {
    core::Value value;
    std::uint32_t slot;
  };
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  std::size_t m_;
  IndexConfig config_;
  std::size_t size_ = 0;

  /// Per attribute: lower/upper endpoints of SELECTIVE intervals, sorted
  /// by value (ties in arbitrary order; slot disambiguates on erase).
  std::vector<std::vector<Endpoint>> lows_;
  std::vector<std::vector<Endpoint>> highs_;

  /// Slot-indexed state. Slots are stable across erasures (free list), so
  /// endpoint entries and bitmap bits never need renumbering.
  std::vector<core::SubscriptionId> ids_;      ///< kInvalid for free slots
  std::vector<std::uint32_t> required_;        ///< selective attributes
  std::vector<core::Interval> ranges_;         ///< slot-major, m_ per slot
  /// Per-slot attribute bitmasks (bit j = attribute j; only meaningful for
  /// m_ <= 64, with a full-loop fallback otherwise):
  ///   semantic_attrs_ — attributes whose interval != everything() (what
  ///                     stab must verify on a candidate);
  ///   wide_attrs_     — semantically constrained but domain-covering
  ///                     (what box_intersect must re-check on a survivor).
  std::vector<std::uint64_t> semantic_attrs_;
  std::vector<std::uint64_t> wide_attrs_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<core::SubscriptionId, std::uint32_t> slot_of_;

  /// Slots with no selective attribute bypass the counting pass of
  /// box_intersect entirely (they are emitted subject to wide-attribute
  /// verification only).
  std::vector<std::uint32_t> unselective_slots_;

  /// Candidate-mask rows, m_ * bucket_count of them, words_ words each;
  /// free and wide/unconstrained slots carry 1-bits (see file comment).
  /// The occupancy row has 1-bits exactly at live slots.
  std::size_t words_ = 0;          ///< words per bitmap row
  std::size_t slot_capacity_ = 0;  ///< slots representable, words_ * 64
  std::vector<Word> mask_bits_;
  std::vector<Word> occupied_bits_;

  /// Lazily-reset counting state for box_intersect (epoch stamp instead of
  /// an O(k) clear).
  mutable std::vector<std::int32_t> counts_;
  mutable std::vector<std::uint64_t> epochs_;
  mutable std::uint64_t epoch_ = 0;
  mutable std::uint64_t last_query_cost_ = 0;
  mutable std::vector<Word> acc_scratch_;  ///< stab accumulator

  /// True iff the interval cannot prune inside the configured domain.
  [[nodiscard]] bool is_wide(const core::Interval& iv) const noexcept;
  [[nodiscard]] std::size_t bucket_of(core::Value v) const noexcept;
  [[nodiscard]] std::size_t words_in_use() const noexcept {
    return (ids_.size() + kWordBits - 1) / kWordBits;
  }
  [[nodiscard]] Word* mask_row(std::size_t attribute, std::size_t bucket) noexcept {
    return mask_bits_.data() + (attribute * config_.bucket_count + bucket) * words_;
  }
  [[nodiscard]] const Word* mask_row(std::size_t attribute,
                                     std::size_t bucket) const noexcept {
    return mask_bits_.data() + (attribute * config_.bucket_count + bucket) * words_;
  }
  /// True iff the slot's box contains the point / intersects the box,
  /// checking only the attributes the corresponding query path left
  /// unverified (used on bucket-granularity survivors).
  [[nodiscard]] bool verify_stab(std::uint32_t slot,
                                 std::span<const core::Value> point) const;
  [[nodiscard]] bool verify_box(std::uint32_t slot,
                                const core::Subscription& box) const;
  /// Writes the slot's mask bits for one selective attribute: 1 in the
  /// buckets its interval overlaps (all of them on erase), 0 elsewhere.
  void write_mask_bits(std::size_t attribute, std::uint32_t slot,
                       const core::Interval& iv, bool erase_restore);
  void grow_bitmaps();
  void remove_endpoint(std::vector<Endpoint>& endpoints, core::Value value,
                       std::uint32_t slot);
};

}  // namespace psc::index
