#include "index/interval_index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace psc::index {

using core::Interval;
using core::Subscription;
using core::SubscriptionId;
using core::Value;

IntervalIndex::IntervalIndex(std::size_t attribute_count, IndexConfig config)
    : m_(attribute_count), config_(config), lows_(attribute_count),
      highs_(attribute_count) {
  if (!(config_.domain_lo < config_.domain_hi)) {
    throw std::invalid_argument("IndexConfig: domain_lo must be < domain_hi");
  }
  if (config_.bucket_count == 0) {
    throw std::invalid_argument("IndexConfig: bucket_count must be > 0");
  }
}

bool IntervalIndex::is_wide(const Interval& iv) const noexcept {
  return iv.lo <= config_.domain_lo && iv.hi >= config_.domain_hi;
}

std::size_t IntervalIndex::bucket_of(Value v) const noexcept {
  // Clamp out-of-domain (and infinite) values to the edge buckets; the
  // exact verification pass absorbs the lost selectivity.
  if (!(v > config_.domain_lo)) return 0;
  if (!(v < config_.domain_hi)) return config_.bucket_count - 1;
  const double fraction =
      (v - config_.domain_lo) / (config_.domain_hi - config_.domain_lo);
  std::size_t bucket =
      static_cast<std::size_t>(fraction * static_cast<double>(config_.bucket_count));
  if (bucket >= config_.bucket_count) bucket = config_.bucket_count - 1;
  return bucket;
}

void IntervalIndex::grow_bitmaps() {
  const std::size_t new_words = words_ == 0 ? 4 : words_ * 2;
  // Mask rows default to all-ones (free and wide slots must not block the
  // sweep); the occupancy row defaults to zero.
  std::vector<Word> mask_bits(m_ * config_.bucket_count * new_words, ~Word{0});
  std::vector<Word> occupied_bits(new_words, 0);
  for (std::size_t row = 0; row < m_ * config_.bucket_count; ++row) {
    std::copy_n(mask_bits_.begin() + static_cast<std::ptrdiff_t>(row * words_),
                words_,
                mask_bits.begin() + static_cast<std::ptrdiff_t>(row * new_words));
  }
  std::copy_n(occupied_bits_.begin(), words_, occupied_bits.begin());
  mask_bits_ = std::move(mask_bits);
  occupied_bits_ = std::move(occupied_bits);
  words_ = new_words;
  slot_capacity_ = words_ * kWordBits;
}

void IntervalIndex::write_mask_bits(std::size_t attribute, std::uint32_t slot,
                                    const Interval& iv, bool erase_restore) {
  const std::size_t word = slot / kWordBits;
  const Word mask = Word{1} << (slot % kWordBits);
  const std::size_t first = erase_restore ? 0 : bucket_of(iv.lo);
  const std::size_t last =
      erase_restore ? config_.bucket_count - 1 : bucket_of(iv.hi);
  for (std::size_t bucket = 0; bucket < config_.bucket_count; ++bucket) {
    Word* row = mask_row(attribute, bucket);
    if (bucket >= first && bucket <= last) {
      row[word] |= mask;
    } else {
      row[word] &= ~mask;
    }
  }
}

void IntervalIndex::insert(const Subscription& sub) {
  if (sub.attribute_count() != m_) {
    throw std::invalid_argument("IntervalIndex::insert: schema mismatch");
  }
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("IntervalIndex::insert: id must be non-zero");
  }
  if (slot_of_.count(sub.id()) > 0) {
    throw std::invalid_argument("IntervalIndex::insert: duplicate id " +
                                std::to_string(sub.id()));
  }

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(core::kInvalidSubscriptionId);
    required_.push_back(0);
    ranges_.resize(ranges_.size() + m_, Interval::everything());
    semantic_attrs_.push_back(0);
    wide_attrs_.push_back(0);
    counts_.push_back(0);
    epochs_.push_back(0);
    if (slot >= slot_capacity_) grow_bitmaps();
  }

  ids_[slot] = sub.id();
  slot_of_.emplace(sub.id(), slot);

  std::uint32_t required = 0;
  std::uint64_t semantic_mask = 0;
  std::uint64_t wide_mask = 0;
  auto by_value = [](const Endpoint& a, const Endpoint& b) {
    return a.value < b.value;
  };
  for (std::size_t j = 0; j < m_; ++j) {
    const Interval& iv = sub.range(j);
    ranges_[slot * m_ + j] = iv;
    const std::uint64_t bit = j < 64 ? std::uint64_t{1} << j : 0;
    if (iv != Interval::everything()) semantic_mask |= bit;
    if (is_wide(iv)) {
      if (iv != Interval::everything()) wide_mask |= bit;
      continue;
    }
    ++required;
    auto& lows = lows_[j];
    lows.insert(std::upper_bound(lows.begin(), lows.end(),
                                 Endpoint{iv.lo, slot}, by_value),
                Endpoint{iv.lo, slot});
    auto& highs = highs_[j];
    highs.insert(std::upper_bound(highs.begin(), highs.end(),
                                  Endpoint{iv.hi, slot}, by_value),
                 Endpoint{iv.hi, slot});
    write_mask_bits(j, slot, iv, /*erase_restore=*/false);
  }
  required_[slot] = required;
  semantic_attrs_[slot] = semantic_mask;
  wide_attrs_[slot] = wide_mask;
  if (required == 0) unselective_slots_.push_back(slot);
  occupied_bits_[slot / kWordBits] |= Word{1} << (slot % kWordBits);
  ++size_;
}

void IntervalIndex::remove_endpoint(std::vector<Endpoint>& endpoints,
                                    Value value, std::uint32_t slot) {
  auto by_value = [](const Endpoint& a, const Endpoint& b) {
    return a.value < b.value;
  };
  const auto [first, last] = std::equal_range(
      endpoints.begin(), endpoints.end(), Endpoint{value, slot}, by_value);
  for (auto it = first; it != last; ++it) {
    if (it->slot == slot) {
      endpoints.erase(it);
      return;
    }
  }
  throw std::logic_error("IntervalIndex: endpoint missing on erase");
}

bool IntervalIndex::erase(SubscriptionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  const std::uint32_t slot = it->second;
  slot_of_.erase(it);

  occupied_bits_[slot / kWordBits] &= ~(Word{1} << (slot % kWordBits));
  for (std::size_t j = 0; j < m_; ++j) {
    const Interval& iv = ranges_[slot * m_ + j];
    if (is_wide(iv)) continue;
    remove_endpoint(lows_[j], iv.lo, slot);
    remove_endpoint(highs_[j], iv.hi, slot);
    write_mask_bits(j, slot, iv, /*erase_restore=*/true);
  }
  if (required_[slot] == 0) {
    const auto pos = std::find(unselective_slots_.begin(),
                               unselective_slots_.end(), slot);
    if (pos != unselective_slots_.end()) {
      *pos = unselective_slots_.back();
      unselective_slots_.pop_back();
    }
  }
  ids_[slot] = core::kInvalidSubscriptionId;
  required_[slot] = 0;
  semantic_attrs_[slot] = 0;
  wide_attrs_[slot] = 0;
  free_slots_.push_back(slot);
  --size_;
  return true;
}

void IntervalIndex::clear() {
  for (std::size_t j = 0; j < m_; ++j) {
    lows_[j].clear();
    highs_[j].clear();
  }
  ids_.clear();
  required_.clear();
  ranges_.clear();
  semantic_attrs_.clear();
  wide_attrs_.clear();
  free_slots_.clear();
  slot_of_.clear();
  unselective_slots_.clear();
  counts_.clear();
  epochs_.clear();
  mask_bits_.clear();
  occupied_bits_.clear();
  words_ = 0;
  slot_capacity_ = 0;
  size_ = 0;
}

bool IntervalIndex::verify_stab(std::uint32_t slot,
                                std::span<const Value> point) const {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  if (m_ <= 64) {
    std::uint64_t attrs = semantic_attrs_[slot];
    while (attrs != 0) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(attrs));
      attrs &= attrs - 1;
      if (!slot_ranges[j].contains(point[j])) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < m_; ++j) {
    if (!slot_ranges[j].contains(point[j])) return false;
  }
  return true;
}

bool IntervalIndex::verify_box(std::uint32_t slot,
                               const Subscription& box) const {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  if (m_ <= 64) {
    // Selective attributes were counted exactly; only the wide ones (full
    // domain or beyond, but not everything) still need the intersection
    // check — it can fail only for probes reaching outside the domain.
    std::uint64_t attrs = wide_attrs_[slot];
    while (attrs != 0) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(attrs));
      attrs &= attrs - 1;
      if (!slot_ranges[j].intersects(box.range(j))) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < m_; ++j) {
    if (!slot_ranges[j].intersects(box.range(j))) return false;
  }
  return true;
}

void IntervalIndex::stab(std::span<const Value> point,
                         std::vector<SubscriptionId>& out) const {
  if (point.size() != m_) {
    throw std::invalid_argument("IntervalIndex::stab: schema mismatch");
  }
  if (size_ == 0) {
    last_query_cost_ = 0;
    return;
  }
  std::uint64_t cost = 0;
  const std::size_t words = words_in_use();

  // Fused word-parallel sweep: start from the live slots and AND in each
  // attribute's candidate-mask row for the probe's bucket. Attributes with
  // no selective interval anywhere are all-ones rows — skipped outright.
  acc_scratch_.assign(occupied_bits_.begin(),
                      occupied_bits_.begin() + static_cast<std::ptrdiff_t>(words));
  Word* acc = acc_scratch_.data();
  for (std::size_t j = 0; j < m_; ++j) {
    if (lows_[j].empty()) continue;
    const Word* row = mask_row(j, bucket_of(point[j]));
    for (std::size_t w = 0; w < words; ++w) acc[w] &= row[w];
    cost += words;
  }

  // Exact verification of the surviving bucket-granularity superset.
  for (std::size_t w = 0; w < words; ++w) {
    Word bits = acc[w];
    while (bits != 0) {
      const std::uint32_t slot = static_cast<std::uint32_t>(
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      ++cost;
      if (verify_stab(slot, point)) out.push_back(ids_[slot]);
    }
  }
  last_query_cost_ = cost;
}

std::vector<SubscriptionId> IntervalIndex::stab(
    std::span<const Value> point) const {
  std::vector<SubscriptionId> out;
  stab(point, out);
  return out;
}

void IntervalIndex::box_intersect(const Subscription& box,
                                  std::vector<SubscriptionId>& out) const {
  if (box.attribute_count() != m_) {
    throw std::invalid_argument("IntervalIndex::box_intersect: schema mismatch");
  }
  const std::uint64_t epoch = ++epoch_;
  std::uint64_t cost = 0;
  auto touch = [&](std::uint32_t slot) {
    if (epochs_[slot] != epoch) {
      epochs_[slot] = epoch;
      counts_[slot] = 0;
    }
  };

  // Two-phase counting over the sorted endpoints; see the header. Phase 1
  // rules out slots whose interval lies entirely below the probe; all
  // decrements precede every increment, so phase 2's running count is
  // monotone and crossing required_[slot] certifies that every selective
  // attribute intersects. Wide attributes are re-checked on emission.
  for (std::size_t j = 0; j < m_; ++j) {
    const Value qlo = box.range(j).lo;
    for (const Endpoint& e : highs_[j]) {
      if (!(e.value < qlo)) break;
      touch(e.slot);
      --counts_[e.slot];
      ++cost;
    }
  }
  for (std::size_t j = 0; j < m_; ++j) {
    const Value qhi = box.range(j).hi;
    for (const Endpoint& e : lows_[j]) {
      if (e.value > qhi) break;
      touch(e.slot);
      if (static_cast<std::uint32_t>(++counts_[e.slot]) == required_[e.slot]) {
        ++cost;
        if (verify_box(e.slot, box)) out.push_back(ids_[e.slot]);
      }
      ++cost;
    }
  }

  for (const std::uint32_t slot : unselective_slots_) {
    ++cost;
    if (verify_box(slot, box)) out.push_back(ids_[slot]);
  }
  last_query_cost_ = cost;
}

std::vector<SubscriptionId> IntervalIndex::box_intersect(
    const Subscription& box) const {
  std::vector<SubscriptionId> out;
  box_intersect(box, out);
  return out;
}

}  // namespace psc::index
