#include "index/interval_index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace psc::index {

using core::Interval;
using core::Subscription;
using core::SubscriptionId;
using core::Value;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct EndpointLess {
  template <typename Endpoint>
  bool operator()(const Endpoint& a, const Endpoint& b) const {
    return a.value < b.value;
  }
};

}  // namespace

IntervalIndex::IntervalIndex(std::size_t attribute_count, IndexConfig config)
    : m_(attribute_count), config_(config), lows_(attribute_count),
      highs_(attribute_count), selective_count_(attribute_count, 0),
      verify_groups_((attribute_count + kVerifyGroup - 1) / kVerifyGroup),
      delta_lows_(attribute_count), delta_highs_(attribute_count) {
  if (!(config_.domain_lo < config_.domain_hi)) {
    throw std::invalid_argument("IndexConfig: domain_lo must be < domain_hi");
  }
  if (config_.bucket_count == 0) {
    throw std::invalid_argument("IndexConfig: bucket_count must be > 0");
  }
  if (config_.compaction_slack < 0.0) {
    throw std::invalid_argument("IndexConfig: compaction_slack must be >= 0");
  }
  // Two padded probe rows (stab point / box lows+highs), zero-filled so
  // padding lanes always hold comparable reals.
  query_pad_.assign(2 * verify_groups_ * kVerifyGroup, 0.0);
}

bool IntervalIndex::is_wide(const Interval& iv) const noexcept {
  return iv.lo <= config_.domain_lo && iv.hi >= config_.domain_hi;
}

std::size_t IntervalIndex::bucket_of(Value v) const noexcept {
  // Clamp out-of-domain (and infinite) values to the edge buckets; the
  // exact verification pass absorbs the lost selectivity.
  if (!(v > config_.domain_lo)) return 0;
  if (!(v < config_.domain_hi)) return config_.bucket_count - 1;
  const double fraction =
      (v - config_.domain_lo) / (config_.domain_hi - config_.domain_lo);
  std::size_t bucket =
      static_cast<std::size_t>(fraction * static_cast<double>(config_.bucket_count));
  if (bucket >= config_.bucket_count) bucket = config_.bucket_count - 1;
  return bucket;
}

std::size_t IntervalIndex::compaction_threshold() const noexcept {
  const auto slack = static_cast<std::size_t>(
      config_.compaction_slack * static_cast<double>(size_));
  return std::max<std::size_t>(std::max(config_.compaction_min, slack), 1);
}

void IntervalIndex::grow_bitmaps() {
  const std::size_t new_words =
      words_ == 0 ? simd::kBlockWords : words_ * 2;
  // Mask rows default to all-ones in BOTH lanes (free and wide slots must
  // neither block the sweep nor void certainty); occupancy defaults to 0.
  simd::AlignedVector<Word> mask_bits(m_ * config_.bucket_count * 2 * new_words,
                                      ~Word{0});
  simd::AlignedVector<Word> occupied_bits(2 * new_words, 0);
  for (std::size_t row = 0; row < m_ * config_.bucket_count; ++row) {
    std::copy_n(
        mask_bits_.begin() + static_cast<std::ptrdiff_t>(row * 2 * words_),
        2 * words_,
        mask_bits.begin() + static_cast<std::ptrdiff_t>(row * 2 * new_words));
  }
  std::copy_n(occupied_bits_.begin(), 2 * words_, occupied_bits.begin());
  mask_bits_ = std::move(mask_bits);
  occupied_bits_ = std::move(occupied_bits);
  words_ = new_words;
  slot_capacity_ = words_ * kWordBits;
}

void IntervalIndex::write_mask_bits(std::size_t attribute, std::uint32_t slot,
                                    const Interval& iv, bool erase_restore) {
  const std::size_t word = 2 * (slot / kWordBits);
  const Word mask = Word{1} << (slot % kWordBits);
  const auto buckets = static_cast<std::ptrdiff_t>(config_.bucket_count);
  std::ptrdiff_t first = 0, last = buckets - 1;      // possible span
  std::ptrdiff_t cfirst = 0, clast = buckets - 1;    // certain span
  if (!erase_restore) {
    first = static_cast<std::ptrdiff_t>(bucket_of(iv.lo));
    last = static_cast<std::ptrdiff_t>(bucket_of(iv.hi));
    // Exact certain span via bucket monotonicity (header file comment):
    // strictly between the endpoint buckets, saturating past the edges
    // for infinite endpoints. bucket(lo) < b < bucket(hi) forces
    // lo < v < hi for every real v in bucket b — pure integer compares,
    // no float boundary arithmetic to get subtly wrong. A NaN or empty
    // interval voids every certainty claim (its possible bits already
    // come from the clamped endpoint buckets; verification rejects).
    const std::ptrdiff_t bl = iv.lo == -kInf ? -1 : first;
    const std::ptrdiff_t bh = iv.hi == kInf ? buckets : last;
    cfirst = bl + 1;
    clast = bh - 1;
    if (!(iv.lo <= iv.hi)) {
      cfirst = 1;
      clast = 0;
    }
  }
  for (std::ptrdiff_t bucket = 0; bucket < buckets; ++bucket) {
    Word* row = pair_row(attribute, static_cast<std::size_t>(bucket)) + word;
    if (bucket >= first && bucket <= last) {
      row[0] |= mask;
    } else {
      row[0] &= ~mask;
    }
    if (bucket >= cfirst && bucket <= clast) {
      row[1] |= mask;
    } else {
      row[1] &= ~mask;
    }
  }
}

void IntervalIndex::write_verify_row(std::uint32_t slot,
                                     const Subscription& sub) {
  const std::size_t row_doubles = verify_groups_ * 2 * kVerifyGroup;
  if (verify_blob_.size() < (slot + 1) * row_doubles) {
    verify_blob_.resize((slot + 1) * row_doubles);
  }
  double* rec = verify_blob_.data() + slot * row_doubles;
  for (std::size_t g = 0; g < verify_groups_; ++g) {
    for (std::size_t lane = 0; lane < kVerifyGroup; ++lane) {
      const std::size_t j = g * kVerifyGroup + lane;
      rec[g * 2 * kVerifyGroup + lane] = j < m_ ? sub.range(j).lo : -kInf;
      rec[g * 2 * kVerifyGroup + kVerifyGroup + lane] =
          j < m_ ? sub.range(j).hi : kInf;
    }
  }
}

void IntervalIndex::restore_mask_bits(std::uint32_t slot) {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  for (std::size_t j = 0; j < m_; ++j) {
    if (is_wide(slot_ranges[j])) continue;  // never written: still all-ones
    write_mask_bits(j, slot, slot_ranges[j], /*erase_restore=*/true);
  }
}

void IntervalIndex::release_slot(std::uint32_t slot) {
  ids_[slot] = core::kInvalidSubscriptionId;
  required_[slot] = 0;
  semantic_attrs_[slot] = 0;
  wide_attrs_[slot] = 0;
  delta_pos_[slot] = kNoPos;
  unselective_pos_[slot] = kNoPos;
  ++slot_gen_[slot];  // invalidates this slot's pending delta-run entries
  free_slots_.push_back(slot);
}

void IntervalIndex::insert(const Subscription& sub) {
  if (sub.attribute_count() != m_) {
    throw std::invalid_argument("IntervalIndex::insert: schema mismatch");
  }
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("IntervalIndex::insert: id must be non-zero");
  }
  if (slot_of_.contains(sub.id())) {
    throw std::invalid_argument("IntervalIndex::insert: duplicate id " +
                                std::to_string(sub.id()));
  }

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(core::kInvalidSubscriptionId);
    ids32_.push_back(0);
    slot_gen_.push_back(0);
    required_.push_back(0);
    ranges_.resize(ranges_.size() + m_, Interval::everything());
    semantic_attrs_.push_back(0);
    wide_attrs_.push_back(0);
    delta_pos_.push_back(kNoPos);
    unselective_pos_.push_back(kNoPos);
    counts_.push_back(0);
    epochs_.push_back(0);
    if (slot >= slot_capacity_) grow_bitmaps();
  }

  ids_[slot] = sub.id();
  ids32_[slot] = static_cast<std::uint32_t>(sub.id());
  if ((sub.id() >> 32) != 0) ++big_id_count_;
  (void)slot_of_.try_emplace(sub.id(), slot);
  write_verify_row(slot, sub);

  std::uint32_t required = 0;
  std::uint64_t semantic_mask = 0;
  std::uint64_t wide_mask = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    const Interval& iv = sub.range(j);
    ranges_[slot * m_ + j] = iv;
    const std::uint64_t bit = j < 64 ? std::uint64_t{1} << j : 0;
    if (iv != Interval::everything()) semantic_mask |= bit;
    if (is_wide(iv)) {
      if (iv != Interval::everything()) wide_mask |= bit;
      continue;
    }
    ++required;
    ++selective_count_[j];
    if (!config_.amortize_mutations) {
      // Eager (pre-tier) path: O(k) sorted insert per selective attribute.
      auto& lows = lows_[j];
      lows.insert(std::upper_bound(lows.begin(), lows.end(),
                                   Endpoint{iv.lo, slot}, EndpointLess{}),
                  Endpoint{iv.lo, slot});
      auto& highs = highs_[j];
      highs.insert(std::upper_bound(highs.begin(), highs.end(),
                                    Endpoint{iv.hi, slot}, EndpointLess{}),
                   Endpoint{iv.hi, slot});
    } else {
      // Delta-run logs: cheap appends now, a linear mostly-sorted stream
      // for the next compaction. Block-sort each run as it fills, while
      // its entries are still cache-resident.
      const auto append = [&](std::vector<DeltaEndpoint>& log, Value value) {
        log.push_back(DeltaEndpoint{value, slot, slot_gen_[slot]});
        if (log.size() % kDeltaRun == 0) {
          std::sort(log.end() - static_cast<std::ptrdiff_t>(kDeltaRun),
                    log.end(), EndpointLess{});
        }
      };
      append(delta_lows_[j], iv.lo);
      append(delta_highs_[j], iv.hi);
    }
    write_mask_bits(j, slot, iv, /*erase_restore=*/false);
  }
  required_[slot] = required;
  semantic_attrs_[slot] = semantic_mask;
  wide_attrs_[slot] = wide_mask;
  if (required == 0) {
    unselective_pos_[slot] =
        static_cast<std::uint32_t>(unselective_slots_.size());
    unselective_slots_.push_back(slot);
  } else if (config_.amortize_mutations) {
    // Delta tier: masks are live (stab prunes normally); endpoints wait
    // for the next compaction.
    delta_pos_[slot] = static_cast<std::uint32_t>(delta_slots_.size());
    delta_slots_.push_back(slot);
  }
  const std::size_t occ_word = 2 * (slot / kWordBits);
  const Word occ_mask = Word{1} << (slot % kWordBits);
  occupied_bits_[occ_word] |= occ_mask;
  occupied_bits_[occ_word + 1] |= occ_mask;
  ++size_;
  maybe_compact();
}

void IntervalIndex::remove_endpoint(std::vector<Endpoint>& endpoints,
                                    Value value, std::uint32_t slot) {
  const auto [first, last] = std::equal_range(
      endpoints.begin(), endpoints.end(), Endpoint{value, slot}, EndpointLess{});
  for (auto it = first; it != last; ++it) {
    if (it->slot == slot) {
      endpoints.erase(it);
      return;
    }
  }
  throw std::logic_error("IntervalIndex: endpoint missing on erase");
}

bool IntervalIndex::erase(SubscriptionId id) {
  const std::uint32_t* found = slot_of_.find(id);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  slot_of_.erase(id);
  if ((id >> 32) != 0) --big_id_count_;

  const std::size_t occ_word = 2 * (slot / kWordBits);
  const Word occ_mask = Word{1} << (slot % kWordBits);
  occupied_bits_[occ_word] &= ~occ_mask;
  occupied_bits_[occ_word + 1] &= ~occ_mask;
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  for (std::size_t j = 0; j < m_; ++j) {
    if (!is_wide(slot_ranges[j])) --selective_count_[j];
  }

  if (required_[slot] == 0) {
    // Unselective slots have no endpoints and untouched (all-ones) masks:
    // release immediately in O(1) via the position index.
    const std::uint32_t pos = unselective_pos_[slot];
    const std::uint32_t moved = unselective_slots_.back();
    unselective_slots_[pos] = moved;
    unselective_pos_[moved] = pos;
    unselective_slots_.pop_back();
    unselective_pos_[slot] = kNoPos;
    release_slot(slot);
  } else if (delta_pos_[slot] != kNoPos) {
    // Delta-tier slot: no merged endpoints exist yet; restore its mask
    // rows and release outright. Its delta-run entries die with the
    // generation bump in release_slot — no log surgery.
    const std::uint32_t pos = delta_pos_[slot];
    const std::uint32_t moved = delta_slots_.back();
    delta_slots_[pos] = moved;
    delta_pos_[moved] = pos;
    delta_slots_.pop_back();
    delta_pos_[slot] = kNoPos;
    restore_mask_bits(slot);
    release_slot(slot);
  } else if (config_.amortize_mutations) {
    // Tombstoned lazy erase: the occupancy bit already hides the slot from
    // stab; its stale endpoints are skipped at emission (ids_ == kInvalid)
    // and reclaimed by the next compaction. ranges_/required_ survive
    // until then (compaction needs them to restore the mask rows).
    ids_[slot] = core::kInvalidSubscriptionId;
    dead_slots_.push_back(slot);
  } else {
    // Eager path: O(k) endpoint removal per selective attribute.
    for (std::size_t j = 0; j < m_; ++j) {
      const Interval& iv = slot_ranges[j];
      if (is_wide(iv)) continue;
      remove_endpoint(lows_[j], iv.lo, slot);
      remove_endpoint(highs_[j], iv.hi, slot);
      write_mask_bits(j, slot, iv, /*erase_restore=*/true);
    }
    release_slot(slot);
  }
  --size_;
  maybe_compact();
  return true;
}

void IntervalIndex::maybe_compact() {
  if (!config_.amortize_mutations) return;
  if (pending_mutations() >= compaction_threshold()) compact();
}

void IntervalIndex::compact() {
  if (pending_mutations() == 0) return;
  ++compactions_;

  // Per attribute: drop endpoints of tombstoned slots in place (they are
  // exactly the entries whose slot id is kInvalid — dead slots are not
  // released, so no freed-and-reused slot can alias one), then fold the
  // delta-run log in. The log is consumed linearly (block-sorted runs, so
  // the tail sort sees mostly-ordered input); entries of erased delta
  // slots are dropped by their generation tag.
  const auto is_dead = [this](const Endpoint& e) {
    return ids_[e.slot] == core::kInvalidSubscriptionId;
  };
  for (std::size_t j = 0; j < m_; ++j) {
    auto merge_in = [&](std::vector<Endpoint>& endpoints,
                        std::vector<DeltaEndpoint>& log) {
      if (!dead_slots_.empty()) {
        endpoints.erase(
            std::remove_if(endpoints.begin(), endpoints.end(), is_dead),
            endpoints.end());
      }
      const auto mid = static_cast<std::ptrdiff_t>(endpoints.size());
      for (const DeltaEndpoint& e : log) {
        if (delta_pos_[e.slot] != kNoPos && slot_gen_[e.slot] == e.gen) {
          endpoints.push_back(Endpoint{e.value, e.slot});
        }
      }
      log.clear();
      std::sort(endpoints.begin() + mid, endpoints.end(), EndpointLess{});
      std::inplace_merge(endpoints.begin(), endpoints.begin() + mid,
                         endpoints.end(), EndpointLess{});
    };
    merge_in(lows_[j], delta_lows_[j]);
    merge_in(highs_[j], delta_highs_[j]);
  }

  for (const std::uint32_t slot : dead_slots_) {
    restore_mask_bits(slot);
    release_slot(slot);
  }
  dead_slots_.clear();
  for (const std::uint32_t slot : delta_slots_) delta_pos_[slot] = kNoPos;
  delta_slots_.clear();
}

void IntervalIndex::clear() {
  for (std::size_t j = 0; j < m_; ++j) {
    lows_[j].clear();
    highs_[j].clear();
    delta_lows_[j].clear();
    delta_highs_[j].clear();
    selective_count_[j] = 0;
  }
  ids_.clear();
  ids32_.clear();
  slot_gen_.clear();
  big_id_count_ = 0;
  required_.clear();
  ranges_.clear();
  verify_blob_.clear();
  semantic_attrs_.clear();
  wide_attrs_.clear();
  free_slots_.clear();
  slot_of_.clear();
  unselective_slots_.clear();
  unselective_pos_.clear();
  delta_slots_.clear();
  delta_pos_.clear();
  dead_slots_.clear();
  counts_.clear();
  epochs_.clear();
  mask_bits_.clear();
  occupied_bits_.clear();
  words_ = 0;
  slot_capacity_ = 0;
  size_ = 0;
}

bool IntervalIndex::verify_stab(std::uint32_t slot,
                                std::span<const Value> point) const {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  if (m_ <= 64) {
    std::uint64_t attrs = semantic_attrs_[slot];
    while (attrs != 0) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(attrs));
      attrs &= attrs - 1;
      if (!slot_ranges[j].contains(point[j])) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < m_; ++j) {
    if (!slot_ranges[j].contains(point[j])) return false;
  }
  return true;
}

bool IntervalIndex::verify_box(std::uint32_t slot, const Subscription& box,
                               std::uint64_t attrs) const {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  if (m_ <= 64) {
    while (attrs != 0) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(attrs));
      attrs &= attrs - 1;
      if (!slot_ranges[j].intersects(box.range(j))) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < m_; ++j) {
    if (!slot_ranges[j].intersects(box.range(j))) return false;
  }
  return true;
}

template <typename Verify>
std::uint64_t IntervalIndex::emit_candidates(
    std::vector<SubscriptionId>& out, Verify&& verify) const {
  const std::size_t paired = 2 * sweep_words();
  const Word* acc = acc_scratch_.data();
  if (certain_scratch_.size() < slot_capacity_) {
    certain_scratch_.resize(slot_capacity_);
    verify_scratch_.resize(slot_capacity_);
  }
  // Pass 1: decode the paired accumulator into certain / uncertain slot
  // lists (word-at-a-time bit iteration, whole zero blocks skipped).
  std::uint32_t* certain = certain_scratch_.data();
  std::uint32_t* uncertain = verify_scratch_.data();
  std::size_t n_certain = 0, n_uncertain = 0;
  for (std::size_t w = 0; w < paired; w += 2 * simd::kBlockWords) {
    if (simd::testz(acc + w, 2 * simd::kBlockWords)) continue;
    for (std::size_t k = w; k < w + 2 * simd::kBlockWords; k += 2) {
      const Word possible = acc[k];
      if (possible == 0) continue;
      const Word sure = possible & acc[k + 1];
      const auto base = static_cast<std::uint32_t>((k / 2) * kWordBits);
      Word bits = sure;
      while (bits != 0) {
        certain[n_certain++] =
            base + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
      }
      bits = possible & ~sure;
      while (bits != 0) {
        uncertain[n_uncertain++] =
            base + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
  }
  // Pass 2: emit. Certainty-certified slots only touch the id array (the
  // 32-bit shadow while every live id fits); the uncertain residue runs
  // the exact SIMD verify against the packed records. Software prefetch
  // hides the data-dependent line fetches both loops are bound by.
  const bool small_ids = big_id_count_ == 0;
  const double* blob = verify_blob_.data();
  const std::size_t row_doubles = verify_groups_ * 2 * kVerifyGroup;
  for (std::size_t i = 0; i < n_certain; ++i) {
    if (i + 32 < n_certain) {
      simd::prefetch(small_ids
                         ? static_cast<const void*>(ids32_.data() + certain[i + 32])
                         : static_cast<const void*>(ids_.data() + certain[i + 32]));
    }
    const std::uint32_t slot = certain[i];
    out.push_back(small_ids ? ids32_[slot] : ids_[slot]);
  }
  for (std::size_t i = 0; i < n_uncertain; ++i) {
    if (i + 16 < n_uncertain) {
      simd::prefetch(blob + uncertain[i + 16] * row_doubles);
    }
    const std::uint32_t slot = uncertain[i];
    if (verify(slot)) out.push_back(small_ids ? ids32_[slot] : ids_[slot]);
  }
  return n_certain + n_uncertain;
}

void IntervalIndex::stab_simd(std::span<const Value> point,
                              std::vector<SubscriptionId>& out) const {
  const std::size_t paired = 2 * sweep_words();
  if (acc_scratch_.size() < 2 * words_) acc_scratch_.resize(2 * words_);
  Word* acc = acc_scratch_.data();
  std::copy_n(occupied_bits_.begin(), paired, acc);

  // Fused paired-lane sweep with per-attribute early exit. The certain
  // lane of an attribute is only trusted for in-domain probe values (see
  // the header): out-of-domain or non-comparable values zero it and fall
  // back to verify-everything, for that attribute's contribution.
  bool zero_certain = false;
  for (std::size_t j = 0; j < m_; ++j) {
    const Value v = point[j];
    const bool trusted = v >= config_.domain_lo && v <= config_.domain_hi;
    if (selective_count_[j] == 0) {
      // Nobody live constrains j selectively: every live slot is wide on
      // it, so the possible lane is all-ones and the sweep skips the AND.
      // The implicit all-ones certain lane is only valid in-domain.
      if (!trusted) zero_certain = true;
      continue;
    }
    const Word* row = pair_row(j, bucket_of(v));
    const bool alive = trusted ? simd::and_into(acc, row, paired)
                               : simd::and_into_even(acc, row, paired);
    if (!alive) {
      last_query_cost_ = 0;
      return;
    }
  }
  if (zero_certain) simd::zero_odd_words(acc, paired);

  double* padded = query_pad_.data();
  for (std::size_t lane = 0; lane < verify_groups_ * kVerifyGroup; ++lane) {
    padded[lane] = lane < m_ ? point[lane] : 0.0;
  }
  const double* blob = verify_blob_.data();
  const std::size_t row_doubles = verify_groups_ * 2 * kVerifyGroup;
  last_query_cost_ = emit_candidates(out, [&](std::uint32_t slot) {
    const double* rec = blob + slot * row_doubles;
    for (std::size_t g = 0; g < verify_groups_; ++g) {
      if (!simd::contains4(padded + g * kVerifyGroup,
                           rec + g * 2 * kVerifyGroup)) {
        return false;
      }
    }
    return true;
  });
}

void IntervalIndex::stab(std::span<const Value> point,
                         std::vector<SubscriptionId>& out) const {
  if (point.size() != m_) {
    throw std::invalid_argument("IntervalIndex::stab: schema mismatch");
  }
  if (size_ == 0) {
    last_query_cost_ = 0;
    return;
  }
  if (config_.use_simd && simd::vectorized()) {
    // The vectorized verify checks the full padded schema, which is only
    // equivalent to the semantic-mask verify for comparable values: a NaN
    // must fail constrained attributes yet pass unconstrained ones.
    bool has_nan = false;
    for (std::size_t j = 0; j < m_; ++j) {
      if (std::isnan(point[j])) {
        has_nan = true;
        break;
      }
    }
    if (!has_nan) {
      stab_simd(point, out);
      return;
    }
  }

  std::uint64_t cost = 0;
  const std::size_t words = words_in_use();

  // Scalar ablation path: the pre-vectorization fused word sweep, reading
  // the possible lane of the paired rows. Delta-tier slots participate
  // like main-tier ones (their mask bits are written at insert time);
  // tombstoned slots are excluded by the occupancy row. Attributes nobody
  // (live) constrains selectively are skipped outright: their rows can
  // carry stale zero-bits of dead slots, but ANDing them would only
  // re-clear already-dead candidates.
  if (acc_scratch_.size() < 2 * words_) acc_scratch_.resize(2 * words_);
  Word* acc = acc_scratch_.data();
  for (std::size_t w = 0; w < words; ++w) acc[w] = occupied_bits_[2 * w];
  for (std::size_t j = 0; j < m_; ++j) {
    if (selective_count_[j] == 0) continue;
    const Word* row = pair_row(j, bucket_of(point[j]));
    for (std::size_t w = 0; w < words; ++w) acc[w] &= row[2 * w];
  }

  // Exact verification of the surviving bucket-granularity superset.
  for (std::size_t w = 0; w < words; ++w) {
    Word bits = acc[w];
    while (bits != 0) {
      const std::uint32_t slot = static_cast<std::uint32_t>(
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      ++cost;
      if (verify_stab(slot, point)) out.push_back(ids_[slot]);
    }
  }
  last_query_cost_ = cost;
}

std::vector<SubscriptionId> IntervalIndex::stab(
    std::span<const Value> point) const {
  std::vector<SubscriptionId> out;
  stab(point, out);
  return out;
}

void IntervalIndex::box_intersect_simd(const Subscription& box,
                                       std::vector<SubscriptionId>& out) const {
  const std::size_t wp = sweep_words();
  const std::size_t paired = 2 * wp;
  if (acc_scratch_.size() < 2 * words_) acc_scratch_.resize(2 * words_);
  if (or_possible_scratch_.size() < words_) {
    or_possible_scratch_.resize(words_);
    or_certain_scratch_.resize(words_);
  }
  Word* acc = acc_scratch_.data();
  std::copy_n(occupied_bits_.begin(), paired, acc);
  Word* or_possible = or_possible_scratch_.data();
  Word* or_certain = or_certain_scratch_.data();

  // Per attribute: OR the possible lane over the query's bucket span. A
  // slot overlapping any INTERIOR bucket of the span certainly intersects
  // on this attribute (the span's endpoint buckets only prove bucket-
  // granularity overlap), so the interior OR doubles as the certainty
  // contribution. Bucket-outer/word-inner order keeps each row streaming.
  bool zero_certain = false;
  for (std::size_t j = 0; j < m_; ++j) {
    const Interval& q = box.range(j);
    if (selective_count_[j] == 0) {
      // Every live slot is wide on j (covers the whole domain), which
      // certainly overlaps the query iff the query reaches strictly
      // inside the domain from both sides.
      if (!(bucket_of(q.hi) >= 1 &&
            bucket_of(q.lo) + 2 <= config_.bucket_count)) {
        zero_certain = true;
      }
      continue;
    }
    const std::size_t first = bucket_of(q.lo);
    const std::size_t last = bucket_of(q.hi);
    std::fill_n(or_certain, wp, Word{0});
    for (std::size_t b = first + 1; b + 1 <= last; ++b) {
      const Word* row = pair_row(j, b);
      for (std::size_t w = 0; w < wp; ++w) or_certain[w] |= row[2 * w];
    }
    std::copy_n(or_certain, wp, or_possible);
    {
      const Word* row = pair_row(j, first);
      for (std::size_t w = 0; w < wp; ++w) or_possible[w] |= row[2 * w];
    }
    if (last != first) {
      const Word* row = pair_row(j, last);
      for (std::size_t w = 0; w < wp; ++w) or_possible[w] |= row[2 * w];
    }
    Word any = 0;
    for (std::size_t w = 0; w < wp; ++w) {
      const Word possible = acc[2 * w] & or_possible[w];
      acc[2 * w] = possible;
      acc[2 * w + 1] &= or_certain[w];
      any |= possible;
    }
    if (any == 0) {
      last_query_cost_ = 0;
      return;
    }
  }
  if (zero_certain) simd::zero_odd_words(acc, paired);

  const std::size_t lanes = verify_groups_ * kVerifyGroup;
  double* qlo = query_pad_.data();
  double* qhi = query_pad_.data() + lanes;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    qlo[lane] = lane < m_ ? box.range(lane).lo : -kInf;
    qhi[lane] = lane < m_ ? box.range(lane).hi : kInf;
  }
  const double* blob = verify_blob_.data();
  const std::size_t row_doubles = verify_groups_ * 2 * kVerifyGroup;
  last_query_cost_ = emit_candidates(out, [&](std::uint32_t slot) {
    const double* rec = blob + slot * row_doubles;
    for (std::size_t g = 0; g < verify_groups_; ++g) {
      if (!simd::intersects4(qlo + g * kVerifyGroup, qhi + g * kVerifyGroup,
                             rec + g * 2 * kVerifyGroup)) {
        return false;
      }
    }
    return true;
  });
}

void IntervalIndex::box_intersect(const Subscription& box,
                                  std::vector<SubscriptionId>& out) const {
  if (box.attribute_count() != m_) {
    throw std::invalid_argument("IntervalIndex::box_intersect: schema mismatch");
  }
  if (size_ == 0) {
    last_query_cost_ = 0;
    return;
  }
  if (config_.use_simd && simd::vectorized()) {
    bool has_nan = false;
    for (std::size_t j = 0; j < m_; ++j) {
      if (std::isnan(box.range(j).lo) || std::isnan(box.range(j).hi)) {
        has_nan = true;
        break;
      }
    }
    if (!has_nan) {
      box_intersect_simd(box, out);
      return;
    }
  }
  const std::uint64_t epoch = ++epoch_;
  std::uint64_t cost = 0;
  auto touch = [&](std::uint32_t slot) {
    if (epochs_[slot] != epoch) {
      epochs_[slot] = epoch;
      counts_[slot] = 0;
    }
  };

  // Two-phase counting over the sorted endpoints; see the header. Phase 1
  // rules out slots whose interval lies entirely below the probe; all
  // decrements precede every increment, so phase 2's running count is
  // monotone and crossing required_[slot] certifies that every selective
  // attribute intersects. Wide attributes are re-checked on emission.
  // Tombstoned slots may still be counted through their stale endpoints;
  // the liveness test at emission drops them.
  for (std::size_t j = 0; j < m_; ++j) {
    const Value qlo = box.range(j).lo;
    for (const Endpoint& e : highs_[j]) {
      if (!(e.value < qlo)) break;
      touch(e.slot);
      --counts_[e.slot];
    }
  }
  for (std::size_t j = 0; j < m_; ++j) {
    const Value qhi = box.range(j).hi;
    for (const Endpoint& e : lows_[j]) {
      if (e.value > qhi) break;
      touch(e.slot);
      if (static_cast<std::uint32_t>(++counts_[e.slot]) == required_[e.slot] &&
          ids_[e.slot] != core::kInvalidSubscriptionId) {
        ++cost;
        if (verify_box(e.slot, box, wide_attrs_[e.slot])) {
          out.push_back(ids_[e.slot]);
        }
      }
    }
  }

  // Delta tier: endpoints not merged yet, so these slots are checked
  // exactly, against every semantically constrained attribute (the
  // counting pass certified nothing for them).
  for (const std::uint32_t slot : delta_slots_) {
    ++cost;
    if (verify_box(slot, box, semantic_attrs_[slot])) {
      out.push_back(ids_[slot]);
    }
  }

  for (const std::uint32_t slot : unselective_slots_) {
    ++cost;
    if (verify_box(slot, box, wide_attrs_[slot])) out.push_back(ids_[slot]);
  }
  last_query_cost_ = cost;
}

std::vector<SubscriptionId> IntervalIndex::box_intersect(
    const Subscription& box) const {
  std::vector<SubscriptionId> out;
  box_intersect(box, out);
  return out;
}

}  // namespace psc::index
