#include "index/interval_index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace psc::index {

using core::Interval;
using core::Subscription;
using core::SubscriptionId;
using core::Value;

namespace {

struct EndpointLess {
  template <typename Endpoint>
  bool operator()(const Endpoint& a, const Endpoint& b) const {
    return a.value < b.value;
  }
};

}  // namespace

IntervalIndex::IntervalIndex(std::size_t attribute_count, IndexConfig config)
    : m_(attribute_count), config_(config), lows_(attribute_count),
      highs_(attribute_count), selective_count_(attribute_count, 0) {
  if (!(config_.domain_lo < config_.domain_hi)) {
    throw std::invalid_argument("IndexConfig: domain_lo must be < domain_hi");
  }
  if (config_.bucket_count == 0) {
    throw std::invalid_argument("IndexConfig: bucket_count must be > 0");
  }
  if (config_.compaction_slack < 0.0) {
    throw std::invalid_argument("IndexConfig: compaction_slack must be >= 0");
  }
}

bool IntervalIndex::is_wide(const Interval& iv) const noexcept {
  return iv.lo <= config_.domain_lo && iv.hi >= config_.domain_hi;
}

std::size_t IntervalIndex::bucket_of(Value v) const noexcept {
  // Clamp out-of-domain (and infinite) values to the edge buckets; the
  // exact verification pass absorbs the lost selectivity.
  if (!(v > config_.domain_lo)) return 0;
  if (!(v < config_.domain_hi)) return config_.bucket_count - 1;
  const double fraction =
      (v - config_.domain_lo) / (config_.domain_hi - config_.domain_lo);
  std::size_t bucket =
      static_cast<std::size_t>(fraction * static_cast<double>(config_.bucket_count));
  if (bucket >= config_.bucket_count) bucket = config_.bucket_count - 1;
  return bucket;
}

std::size_t IntervalIndex::compaction_threshold() const noexcept {
  const auto slack = static_cast<std::size_t>(
      config_.compaction_slack * static_cast<double>(size_));
  return std::max<std::size_t>(std::max(config_.compaction_min, slack), 1);
}

void IntervalIndex::grow_bitmaps() {
  const std::size_t new_words = words_ == 0 ? 4 : words_ * 2;
  // Mask rows default to all-ones (free and wide slots must not block the
  // sweep); the occupancy row defaults to zero.
  std::vector<Word> mask_bits(m_ * config_.bucket_count * new_words, ~Word{0});
  std::vector<Word> occupied_bits(new_words, 0);
  for (std::size_t row = 0; row < m_ * config_.bucket_count; ++row) {
    std::copy_n(mask_bits_.begin() + static_cast<std::ptrdiff_t>(row * words_),
                words_,
                mask_bits.begin() + static_cast<std::ptrdiff_t>(row * new_words));
  }
  std::copy_n(occupied_bits_.begin(), words_, occupied_bits.begin());
  mask_bits_ = std::move(mask_bits);
  occupied_bits_ = std::move(occupied_bits);
  words_ = new_words;
  slot_capacity_ = words_ * kWordBits;
}

void IntervalIndex::write_mask_bits(std::size_t attribute, std::uint32_t slot,
                                    const Interval& iv, bool erase_restore) {
  const std::size_t word = slot / kWordBits;
  const Word mask = Word{1} << (slot % kWordBits);
  const std::size_t first = erase_restore ? 0 : bucket_of(iv.lo);
  const std::size_t last =
      erase_restore ? config_.bucket_count - 1 : bucket_of(iv.hi);
  for (std::size_t bucket = 0; bucket < config_.bucket_count; ++bucket) {
    Word* row = mask_row(attribute, bucket);
    if (bucket >= first && bucket <= last) {
      row[word] |= mask;
    } else {
      row[word] &= ~mask;
    }
  }
}

void IntervalIndex::restore_mask_bits(std::uint32_t slot) {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  for (std::size_t j = 0; j < m_; ++j) {
    if (is_wide(slot_ranges[j])) continue;  // never written: still all-ones
    write_mask_bits(j, slot, slot_ranges[j], /*erase_restore=*/true);
  }
}

void IntervalIndex::release_slot(std::uint32_t slot) {
  ids_[slot] = core::kInvalidSubscriptionId;
  required_[slot] = 0;
  semantic_attrs_[slot] = 0;
  wide_attrs_[slot] = 0;
  delta_pos_[slot] = kNoPos;
  unselective_pos_[slot] = kNoPos;
  free_slots_.push_back(slot);
}

void IntervalIndex::insert(const Subscription& sub) {
  if (sub.attribute_count() != m_) {
    throw std::invalid_argument("IntervalIndex::insert: schema mismatch");
  }
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("IntervalIndex::insert: id must be non-zero");
  }
  if (slot_of_.contains(sub.id())) {
    throw std::invalid_argument("IntervalIndex::insert: duplicate id " +
                                std::to_string(sub.id()));
  }

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(core::kInvalidSubscriptionId);
    required_.push_back(0);
    ranges_.resize(ranges_.size() + m_, Interval::everything());
    semantic_attrs_.push_back(0);
    wide_attrs_.push_back(0);
    delta_pos_.push_back(kNoPos);
    unselective_pos_.push_back(kNoPos);
    counts_.push_back(0);
    epochs_.push_back(0);
    if (slot >= slot_capacity_) grow_bitmaps();
  }

  ids_[slot] = sub.id();
  (void)slot_of_.try_emplace(sub.id(), slot);

  std::uint32_t required = 0;
  std::uint64_t semantic_mask = 0;
  std::uint64_t wide_mask = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    const Interval& iv = sub.range(j);
    ranges_[slot * m_ + j] = iv;
    const std::uint64_t bit = j < 64 ? std::uint64_t{1} << j : 0;
    if (iv != Interval::everything()) semantic_mask |= bit;
    if (is_wide(iv)) {
      if (iv != Interval::everything()) wide_mask |= bit;
      continue;
    }
    ++required;
    ++selective_count_[j];
    if (!config_.amortize_mutations) {
      // Eager (pre-tier) path: O(k) sorted insert per selective attribute.
      auto& lows = lows_[j];
      lows.insert(std::upper_bound(lows.begin(), lows.end(),
                                   Endpoint{iv.lo, slot}, EndpointLess{}),
                  Endpoint{iv.lo, slot});
      auto& highs = highs_[j];
      highs.insert(std::upper_bound(highs.begin(), highs.end(),
                                    Endpoint{iv.hi, slot}, EndpointLess{}),
                   Endpoint{iv.hi, slot});
    }
    write_mask_bits(j, slot, iv, /*erase_restore=*/false);
  }
  required_[slot] = required;
  semantic_attrs_[slot] = semantic_mask;
  wide_attrs_[slot] = wide_mask;
  if (required == 0) {
    unselective_pos_[slot] =
        static_cast<std::uint32_t>(unselective_slots_.size());
    unselective_slots_.push_back(slot);
  } else if (config_.amortize_mutations) {
    // Delta tier: masks are live (stab prunes normally); endpoints wait
    // for the next compaction.
    delta_pos_[slot] = static_cast<std::uint32_t>(delta_slots_.size());
    delta_slots_.push_back(slot);
  }
  occupied_bits_[slot / kWordBits] |= Word{1} << (slot % kWordBits);
  ++size_;
  maybe_compact();
}

void IntervalIndex::remove_endpoint(std::vector<Endpoint>& endpoints,
                                    Value value, std::uint32_t slot) {
  const auto [first, last] = std::equal_range(
      endpoints.begin(), endpoints.end(), Endpoint{value, slot}, EndpointLess{});
  for (auto it = first; it != last; ++it) {
    if (it->slot == slot) {
      endpoints.erase(it);
      return;
    }
  }
  throw std::logic_error("IntervalIndex: endpoint missing on erase");
}

bool IntervalIndex::erase(SubscriptionId id) {
  const std::uint32_t* found = slot_of_.find(id);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  slot_of_.erase(id);

  occupied_bits_[slot / kWordBits] &= ~(Word{1} << (slot % kWordBits));
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  for (std::size_t j = 0; j < m_; ++j) {
    if (!is_wide(slot_ranges[j])) --selective_count_[j];
  }

  if (required_[slot] == 0) {
    // Unselective slots have no endpoints and untouched (all-ones) masks:
    // release immediately in O(1) via the position index.
    const std::uint32_t pos = unselective_pos_[slot];
    const std::uint32_t moved = unselective_slots_.back();
    unselective_slots_[pos] = moved;
    unselective_pos_[moved] = pos;
    unselective_slots_.pop_back();
    unselective_pos_[slot] = kNoPos;
    release_slot(slot);
  } else if (delta_pos_[slot] != kNoPos) {
    // Delta-tier slot: no endpoints exist yet; restore its mask rows and
    // release outright.
    const std::uint32_t pos = delta_pos_[slot];
    const std::uint32_t moved = delta_slots_.back();
    delta_slots_[pos] = moved;
    delta_pos_[moved] = pos;
    delta_slots_.pop_back();
    delta_pos_[slot] = kNoPos;
    restore_mask_bits(slot);
    release_slot(slot);
  } else if (config_.amortize_mutations) {
    // Tombstoned lazy erase: the occupancy bit already hides the slot from
    // stab; its stale endpoints are skipped at emission (ids_ == kInvalid)
    // and reclaimed by the next compaction. ranges_/required_ survive
    // until then (compaction needs them to restore the mask rows).
    ids_[slot] = core::kInvalidSubscriptionId;
    dead_slots_.push_back(slot);
  } else {
    // Eager path: O(k) endpoint removal per selective attribute.
    for (std::size_t j = 0; j < m_; ++j) {
      const Interval& iv = slot_ranges[j];
      if (is_wide(iv)) continue;
      remove_endpoint(lows_[j], iv.lo, slot);
      remove_endpoint(highs_[j], iv.hi, slot);
      write_mask_bits(j, slot, iv, /*erase_restore=*/true);
    }
    release_slot(slot);
  }
  --size_;
  maybe_compact();
  return true;
}

void IntervalIndex::maybe_compact() {
  if (!config_.amortize_mutations) return;
  if (pending_mutations() >= compaction_threshold()) compact();
}

void IntervalIndex::compact() {
  if (pending_mutations() == 0) return;
  ++compactions_;

  // Per attribute: drop endpoints of tombstoned slots in place (they are
  // exactly the entries whose slot id is kInvalid — dead slots are not
  // released, so no freed-and-reused slot can alias one), then fold the
  // delta tier's endpoints in with one sort + merge instead of per-element
  // memmoves.
  const auto is_dead = [this](const Endpoint& e) {
    return ids_[e.slot] == core::kInvalidSubscriptionId;
  };
  for (std::size_t j = 0; j < m_; ++j) {
    auto merge_in = [&](std::vector<Endpoint>& endpoints, bool low_side) {
      if (!dead_slots_.empty()) {
        endpoints.erase(
            std::remove_if(endpoints.begin(), endpoints.end(), is_dead),
            endpoints.end());
      }
      const auto mid = static_cast<std::ptrdiff_t>(endpoints.size());
      for (const std::uint32_t slot : delta_slots_) {
        const Interval& iv = ranges_[slot * m_ + j];
        if (is_wide(iv)) continue;
        endpoints.push_back(Endpoint{low_side ? iv.lo : iv.hi, slot});
      }
      std::sort(endpoints.begin() + mid, endpoints.end(), EndpointLess{});
      std::inplace_merge(endpoints.begin(), endpoints.begin() + mid,
                         endpoints.end(), EndpointLess{});
    };
    merge_in(lows_[j], /*low_side=*/true);
    merge_in(highs_[j], /*low_side=*/false);
  }

  for (const std::uint32_t slot : dead_slots_) {
    restore_mask_bits(slot);
    release_slot(slot);
  }
  dead_slots_.clear();
  for (const std::uint32_t slot : delta_slots_) delta_pos_[slot] = kNoPos;
  delta_slots_.clear();
}

void IntervalIndex::clear() {
  for (std::size_t j = 0; j < m_; ++j) {
    lows_[j].clear();
    highs_[j].clear();
    selective_count_[j] = 0;
  }
  ids_.clear();
  required_.clear();
  ranges_.clear();
  semantic_attrs_.clear();
  wide_attrs_.clear();
  free_slots_.clear();
  slot_of_.clear();
  unselective_slots_.clear();
  unselective_pos_.clear();
  delta_slots_.clear();
  delta_pos_.clear();
  dead_slots_.clear();
  counts_.clear();
  epochs_.clear();
  mask_bits_.clear();
  occupied_bits_.clear();
  words_ = 0;
  slot_capacity_ = 0;
  size_ = 0;
}

bool IntervalIndex::verify_stab(std::uint32_t slot,
                                std::span<const Value> point) const {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  if (m_ <= 64) {
    std::uint64_t attrs = semantic_attrs_[slot];
    while (attrs != 0) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(attrs));
      attrs &= attrs - 1;
      if (!slot_ranges[j].contains(point[j])) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < m_; ++j) {
    if (!slot_ranges[j].contains(point[j])) return false;
  }
  return true;
}

bool IntervalIndex::verify_box(std::uint32_t slot, const Subscription& box,
                               std::uint64_t attrs) const {
  const Interval* slot_ranges = ranges_.data() + slot * m_;
  if (m_ <= 64) {
    while (attrs != 0) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(attrs));
      attrs &= attrs - 1;
      if (!slot_ranges[j].intersects(box.range(j))) return false;
    }
    return true;
  }
  for (std::size_t j = 0; j < m_; ++j) {
    if (!slot_ranges[j].intersects(box.range(j))) return false;
  }
  return true;
}

void IntervalIndex::stab(std::span<const Value> point,
                         std::vector<SubscriptionId>& out) const {
  if (point.size() != m_) {
    throw std::invalid_argument("IntervalIndex::stab: schema mismatch");
  }
  if (size_ == 0) {
    last_query_cost_ = 0;
    return;
  }
  std::uint64_t cost = 0;
  const std::size_t words = words_in_use();

  // Fused word-parallel sweep: start from the live slots and AND in each
  // attribute's candidate-mask row for the probe's bucket. Delta-tier
  // slots participate like main-tier ones (their mask bits are written at
  // insert time); tombstoned slots are excluded by the occupancy row.
  // Attributes nobody (live) constrains selectively are skipped outright:
  // their rows can carry stale zero-bits of dead slots, but ANDing them
  // would only re-clear already-dead candidates.
  acc_scratch_.assign(occupied_bits_.begin(),
                      occupied_bits_.begin() + static_cast<std::ptrdiff_t>(words));
  Word* acc = acc_scratch_.data();
  for (std::size_t j = 0; j < m_; ++j) {
    if (selective_count_[j] == 0) continue;
    const Word* row = mask_row(j, bucket_of(point[j]));
    for (std::size_t w = 0; w < words; ++w) acc[w] &= row[w];
    cost += words;
  }

  // Exact verification of the surviving bucket-granularity superset.
  for (std::size_t w = 0; w < words; ++w) {
    Word bits = acc[w];
    while (bits != 0) {
      const std::uint32_t slot = static_cast<std::uint32_t>(
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      ++cost;
      if (verify_stab(slot, point)) out.push_back(ids_[slot]);
    }
  }
  last_query_cost_ = cost;
}

std::vector<SubscriptionId> IntervalIndex::stab(
    std::span<const Value> point) const {
  std::vector<SubscriptionId> out;
  stab(point, out);
  return out;
}

void IntervalIndex::box_intersect(const Subscription& box,
                                  std::vector<SubscriptionId>& out) const {
  if (box.attribute_count() != m_) {
    throw std::invalid_argument("IntervalIndex::box_intersect: schema mismatch");
  }
  const std::uint64_t epoch = ++epoch_;
  std::uint64_t cost = 0;
  auto touch = [&](std::uint32_t slot) {
    if (epochs_[slot] != epoch) {
      epochs_[slot] = epoch;
      counts_[slot] = 0;
    }
  };

  // Two-phase counting over the sorted endpoints; see the header. Phase 1
  // rules out slots whose interval lies entirely below the probe; all
  // decrements precede every increment, so phase 2's running count is
  // monotone and crossing required_[slot] certifies that every selective
  // attribute intersects. Wide attributes are re-checked on emission.
  // Tombstoned slots may still be counted through their stale endpoints;
  // the liveness test at emission drops them.
  for (std::size_t j = 0; j < m_; ++j) {
    const Value qlo = box.range(j).lo;
    for (const Endpoint& e : highs_[j]) {
      if (!(e.value < qlo)) break;
      touch(e.slot);
      --counts_[e.slot];
      ++cost;
    }
  }
  for (std::size_t j = 0; j < m_; ++j) {
    const Value qhi = box.range(j).hi;
    for (const Endpoint& e : lows_[j]) {
      if (e.value > qhi) break;
      touch(e.slot);
      if (static_cast<std::uint32_t>(++counts_[e.slot]) == required_[e.slot] &&
          ids_[e.slot] != core::kInvalidSubscriptionId) {
        ++cost;
        if (verify_box(e.slot, box, wide_attrs_[e.slot])) {
          out.push_back(ids_[e.slot]);
        }
      }
      ++cost;
    }
  }

  // Delta tier: endpoints not merged yet, so these slots are checked
  // exactly, against every semantically constrained attribute (the
  // counting pass certified nothing for them).
  for (const std::uint32_t slot : delta_slots_) {
    ++cost;
    if (verify_box(slot, box, semantic_attrs_[slot])) {
      out.push_back(ids_[slot]);
    }
  }

  for (const std::uint32_t slot : unselective_slots_) {
    ++cost;
    if (verify_box(slot, box, wide_attrs_[slot])) out.push_back(ids_[slot]);
  }
  last_query_cost_ = cost;
}

std::vector<SubscriptionId> IntervalIndex::box_intersect(
    const Subscription& box) const {
  std::vector<SubscriptionId> out;
  box_intersect(box, out);
  return out;
}

}  // namespace psc::index
