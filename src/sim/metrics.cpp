#include "sim/metrics.hpp"

namespace psc::sim {

double Metrics::delivery_ratio() const noexcept {
  const std::uint64_t expected = notifications_delivered + notifications_lost;
  if (expected == 0) return 1.0;
  return static_cast<double>(notifications_delivered) /
         static_cast<double>(expected);
}

Metrics operator+(const Metrics& a, const Metrics& b) noexcept {
  Metrics sum = a;
  sum.subscription_messages += b.subscription_messages;
  sum.unsubscription_messages += b.unsubscription_messages;
  sum.publication_messages += b.publication_messages;
  sum.notifications_delivered += b.notifications_delivered;
  sum.notifications_lost += b.notifications_lost;
  sum.notifications_duplicated += b.notifications_duplicated;
  sum.subscriptions_suppressed += b.subscriptions_suppressed;
  sum.membership_events += b.membership_events;
  sum.reannounced_subscriptions += b.reannounced_subscriptions;
  sum.frames_dropped += b.frames_dropped;
  sum.frames_duplicated += b.frames_duplicated;
  sum.retransmits += b.retransmits;
  sum.dups_suppressed += b.dups_suppressed;
  sum.reorders_healed += b.reorders_healed;
  sum.acks_sent += b.acks_sent;
  sum.backpressure_stalls += b.backpressure_stalls;
  sum.link_escalations += b.link_escalations;
  return sum;
}

Metrics operator-(const Metrics& a, const Metrics& b) noexcept {
  Metrics diff = a;
  diff.subscription_messages -= b.subscription_messages;
  diff.unsubscription_messages -= b.unsubscription_messages;
  diff.publication_messages -= b.publication_messages;
  diff.notifications_delivered -= b.notifications_delivered;
  diff.notifications_lost -= b.notifications_lost;
  diff.notifications_duplicated -= b.notifications_duplicated;
  diff.subscriptions_suppressed -= b.subscriptions_suppressed;
  diff.membership_events -= b.membership_events;
  diff.reannounced_subscriptions -= b.reannounced_subscriptions;
  diff.frames_dropped -= b.frames_dropped;
  diff.frames_duplicated -= b.frames_duplicated;
  diff.retransmits -= b.retransmits;
  diff.dups_suppressed -= b.dups_suppressed;
  diff.reorders_healed -= b.reorders_healed;
  diff.acks_sent -= b.acks_sent;
  diff.backpressure_stalls -= b.backpressure_stalls;
  diff.link_escalations -= b.link_escalations;
  return diff;
}

std::ostream& operator<<(std::ostream& out, const Metrics& m) {
  return out << "sub_msgs=" << m.subscription_messages
             << " unsub_msgs=" << m.unsubscription_messages
             << " pub_msgs=" << m.publication_messages
             << " delivered=" << m.notifications_delivered
             << " lost=" << m.notifications_lost
             << " duplicated=" << m.notifications_duplicated
             << " suppressed=" << m.subscriptions_suppressed
             << " membership=" << m.membership_events
             << " reannounced=" << m.reannounced_subscriptions
             << " frames_dropped=" << m.frames_dropped
             << " frames_duplicated=" << m.frames_duplicated
             << " retransmits=" << m.retransmits
             << " dups_suppressed=" << m.dups_suppressed
             << " reorders_healed=" << m.reorders_healed
             << " acks_sent=" << m.acks_sent
             << " backpressure_stalls=" << m.backpressure_stalls
             << " link_escalations=" << m.link_escalations;
}

}  // namespace psc::sim
