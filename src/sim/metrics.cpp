#include "sim/metrics.hpp"

namespace psc::sim {

double Metrics::delivery_ratio() const noexcept {
  const std::uint64_t expected = notifications_delivered + notifications_lost;
  if (expected == 0) return 1.0;
  return static_cast<double>(notifications_delivered) /
         static_cast<double>(expected);
}

Metrics operator+(const Metrics& a, const Metrics& b) noexcept {
  Metrics sum = a;
  sum.subscription_messages += b.subscription_messages;
  sum.unsubscription_messages += b.unsubscription_messages;
  sum.publication_messages += b.publication_messages;
  sum.notifications_delivered += b.notifications_delivered;
  sum.notifications_lost += b.notifications_lost;
  sum.subscriptions_suppressed += b.subscriptions_suppressed;
  return sum;
}

Metrics operator-(const Metrics& a, const Metrics& b) noexcept {
  Metrics diff = a;
  diff.subscription_messages -= b.subscription_messages;
  diff.unsubscription_messages -= b.unsubscription_messages;
  diff.publication_messages -= b.publication_messages;
  diff.notifications_delivered -= b.notifications_delivered;
  diff.notifications_lost -= b.notifications_lost;
  diff.subscriptions_suppressed -= b.subscriptions_suppressed;
  return diff;
}

std::ostream& operator<<(std::ostream& out, const Metrics& m) {
  return out << "sub_msgs=" << m.subscription_messages
             << " unsub_msgs=" << m.unsubscription_messages
             << " pub_msgs=" << m.publication_messages
             << " delivered=" << m.notifications_delivered
             << " lost=" << m.notifications_lost
             << " suppressed=" << m.subscriptions_suppressed;
}

}  // namespace psc::sim
