#include "sim/churn_driver.hpp"

#include <algorithm>
#include <stdexcept>

namespace psc::sim {

using routing::BrokerNetwork;
using routing::FlatOracle;
using workload::ChurnOp;
using workload::ChurnOpKind;
using workload::ChurnTrace;

namespace {

/// End-of-epoch state sweep over every broker and link store.
void snapshot_state(const BrokerNetwork& net, ChurnEpoch& epoch) {
  epoch.live_subscriptions = net.local_subscription_count();
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    const auto& broker = net.broker(static_cast<routing::BrokerId>(b));
    epoch.routing_entries += broker.routing_table_size();
    for (const routing::BrokerId neighbor : broker.neighbors()) {
      const auto* store = broker.forwarded_store(neighbor);
      if (store == nullptr) continue;
      epoch.forwarded_entries += store->total_count();
      epoch.forwarded_active += store->active_count();
    }
  }
}

/// Applies one trace op to `net` alone — the WAL replay path after a
/// restore (the oracle already consumed the op in its first life).
/// Returns the delivered set for publishes (empty otherwise).
std::vector<core::SubscriptionId> replay_op(BrokerNetwork& net,
                                            const ChurnOp& op) {
  net.advance_time(op.time);
  switch (op.kind) {
    case ChurnOpKind::kSubscribe:
      net.subscribe(op.broker, op.sub);
      break;
    case ChurnOpKind::kSubscribeTtl:
      net.subscribe_with_ttl(op.broker, op.sub, op.ttl);
      break;
    case ChurnOpKind::kUnsubscribe:
      net.unsubscribe(op.broker, op.id);
      break;
    case ChurnOpKind::kPublish:
      return net.publish(op.broker, op.pub);
    case ChurnOpKind::kAdvance:
      break;
  }
  return {};
}

}  // namespace

ChurnReport ChurnDriver::run(BrokerNetwork& net, const ChurnTrace& trace,
                             Options options) {
  if (net.broker_count() != trace.broker_count) {
    throw std::invalid_argument(
        "ChurnDriver::run: network broker count does not match the trace");
  }
  // generate_churn_trace validates this, but hand-built traces reach here
  // too, and a non-positive epoch length would loop close_epoch forever.
  if (!(trace.config.epoch_length > 0)) {
    throw std::invalid_argument("ChurnDriver::run: epoch_length must be > 0");
  }
  const FailureInjection& failure = options.failure;
  double snapshot_every = failure.snapshot_every;
  if (failure.enabled) {
    if (snapshot_every == 0.0) snapshot_every = trace.config.epoch_length;
    if (!(snapshot_every > 0)) {
      throw std::invalid_argument(
          "ChurnDriver::run: snapshot_every must be >= 0");
    }
    if (!(failure.kill_time > 0)) {
      throw std::invalid_argument(
          "ChurnDriver::run: failure kill_time must be > 0");
    }
  }
  net.reset_metrics();

  ChurnReport report;
  FlatOracle oracle;
  std::vector<core::SubscriptionId> oracle_delivered;  // reused per publish

  const double epoch_length = trace.config.epoch_length;
  Metrics at_epoch_start;  // metrics totals when the current epoch began
  // Crash splice state: epoch/run deltas accumulated in incarnations that
  // died mid-interval (Metrics restart at zero after restore_all).
  Metrics epoch_accum;
  Metrics run_accum;
  Metrics run_base;
  ChurnEpoch epoch;
  double epoch_end = epoch_length;

  const auto close_epoch = [&]() {
    // Settle both replicas exactly at the boundary, then snapshot.
    net.advance_time(epoch_end);
    if (options.differential) oracle.advance_time(epoch_end);
    epoch.end_time = epoch_end;
    const Metrics delta = epoch_accum + (net.metrics() - at_epoch_start);
    epoch.delivered = delta.notifications_delivered;
    epoch.lost = delta.notifications_lost;
    epoch.subscription_messages = delta.subscription_messages;
    epoch.unsubscription_messages = delta.unsubscription_messages;
    epoch.publication_messages = delta.publication_messages;
    epoch.suppressed = delta.subscriptions_suppressed;
    snapshot_state(net, epoch);
    report.peak_routing_entries =
        std::max(report.peak_routing_entries, epoch.routing_entries);
    report.mismatched_publishes += epoch.mismatched_publishes;
    report.epochs.push_back(epoch);
    at_epoch_start = net.metrics();
    epoch_accum = Metrics{};
    epoch = ChurnEpoch{};
    epoch_end += epoch_length;
  };

  // Failure-injection state: newest snapshot + the WAL since it.
  std::vector<std::uint8_t> snapshot_bytes;
  double snapshot_time = 0.0;
  double next_snapshot = snapshot_every;
  std::vector<std::size_t> gap_ops;  // indices into trace.ops
  std::vector<std::vector<core::SubscriptionId>> gap_oracle_sets;
  bool crashed = false;

  const auto take_snapshot = [&](double at) {
    net.advance_time(at);
    if (options.differential) oracle.advance_time(at);
    snapshot_bytes = net.snapshot_all();
    snapshot_time = at;
    gap_ops.clear();
    gap_oracle_sets.clear();
    ++report.recovery.snapshots;
    report.recovery.snapshot_bytes = snapshot_bytes.size();
  };

  if (failure.enabled) take_snapshot(0.0);  // boot image: a kill before the
                                            // first cadence point recovers too

  for (std::size_t op_index = 0; op_index < trace.ops.size(); ++op_index) {
    const ChurnOp& op = trace.ops[op_index];
    // Interleave epoch closes and snapshot points in time order before
    // processing the op. Epoch boundaries are slot multiples, so neither
    // collides with mid-slot expiry instants.
    while (true) {
      const bool epoch_due = op.time > epoch_end;
      const bool snap_due = failure.enabled && next_snapshot <= op.time;
      if (epoch_due && (!snap_due || epoch_end <= next_snapshot)) {
        close_epoch();
      } else if (snap_due) {
        take_snapshot(next_snapshot);
        next_snapshot += snapshot_every;
      } else {
        break;
      }
    }

    // Crash point: wipe the live network, restore the newest snapshot,
    // replay the WAL gap, then fall through to normal processing of this
    // op against the recovered state.
    if (failure.enabled && !crashed && op.time >= failure.kill_time) {
      crashed = true;
      ++report.recovery.crashes;
      report.recovery.recovery_sim_gap = op.time - snapshot_time;
      const Metrics pre = net.metrics();
      epoch_accum = epoch_accum + (pre - at_epoch_start);
      run_accum = run_accum + (pre - run_base);
      net.restore_all(snapshot_bytes);
      std::size_t publish_cursor = 0;
      for (const std::size_t gap_index : gap_ops) {
        const ChurnOp& gap_op = trace.ops[gap_index];
        const auto delivered = replay_op(net, gap_op);
        ++report.recovery.gap_ops_replayed;
        if (gap_op.kind == ChurnOpKind::kPublish) {
          ++report.recovery.gap_publishes_replayed;
          if (options.differential) {
            if (delivered != gap_oracle_sets.at(publish_cursor)) {
              ++report.recovery.replay_mismatches;
            }
            ++publish_cursor;
          }
        }
      }
      // Replay traffic re-derives state; exclude it from epochs/totals.
      at_epoch_start = net.metrics();
      run_base = net.metrics();
    }

    net.advance_time(op.time);
    if (options.differential) oracle.advance_time(op.time);
    ++epoch.ops;
    ++report.ops;
    if (failure.enabled) gap_ops.push_back(op_index);
    switch (op.kind) {
      case ChurnOpKind::kSubscribe:
        net.subscribe(op.broker, op.sub);
        if (options.differential) oracle.subscribe(op.broker, op.sub);
        break;
      case ChurnOpKind::kSubscribeTtl:
        net.subscribe_with_ttl(op.broker, op.sub, op.ttl);
        if (options.differential) {
          oracle.subscribe_with_ttl(op.broker, op.sub, op.ttl);
        }
        break;
      case ChurnOpKind::kUnsubscribe:
        net.unsubscribe(op.broker, op.id);
        if (options.differential) oracle.unsubscribe(op.broker, op.id);
        break;
      case ChurnOpKind::kPublish: {
        ++epoch.publishes;
        ++report.publishes;
        const auto delivered = net.publish(op.broker, op.pub);
        if (options.differential) {
          oracle.publish(op.pub, oracle_delivered);
          if (delivered != oracle_delivered) ++epoch.mismatched_publishes;
          if (failure.enabled) gap_oracle_sets.push_back(oracle_delivered);
        }
        break;
      }
      case ChurnOpKind::kAdvance:
        break;  // the advance above already moved both clocks
    }
  }
  // Close the trailing (possibly partial) epoch at its natural boundary.
  close_epoch();

  report.totals = run_accum + (net.metrics() - run_base);
  report.final_live_subscriptions = net.local_subscription_count();
  return report;
}

}  // namespace psc::sim
