#include "sim/churn_driver.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace psc::sim {

using routing::BrokerId;
using routing::BrokerNetwork;
using routing::FlatOracle;
using routing::MembershipOpKind;
using workload::ChurnOp;
using workload::ChurnOpKind;
using workload::ChurnTrace;

namespace {

/// Stale-by-design replacement images: the newest framed snapshot of each
/// broker, refreshed at epoch boundaries. A replace may therefore restore
/// from an image taken before intervening churn — the registry prune and
/// gap replay in BrokerNetwork::replace_peer make that correct, and the
/// soak exercising it is the point. Brokers crashed before ever being
/// imaged replace from an empty image (pure gap replay).
using ImageCache = std::unordered_map<BrokerId, std::vector<std::uint8_t>>;

std::span<const std::uint8_t> image_of(const ImageCache& images, BrokerId b) {
  const auto it = images.find(b);
  if (it == images.end()) return {};
  return {it->second.data(), it->second.size()};
}

/// End-of-epoch state sweep over every broker and link store.
void snapshot_state(const BrokerNetwork& net, ChurnEpoch& epoch) {
  epoch.live_subscriptions = net.local_subscription_count();
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    const auto& broker = net.broker(static_cast<routing::BrokerId>(b));
    epoch.routing_entries += broker.routing_table_size();
    for (const routing::BrokerId neighbor : broker.neighbors()) {
      const auto* store = broker.forwarded_store(neighbor);
      if (store == nullptr) continue;
      epoch.forwarded_entries += store->total_count();
      epoch.forwarded_active += store->active_count();
    }
  }
}

/// True when a planned kHealLink is feasible against the network's actual
/// link state — the same predicate the workload generator applied to its
/// own model when it emitted the op. Retry-cap escalations mutate reality
/// behind the generator's back (most visibly through graceful-leave
/// repair, which stars the leaver's LIVE neighbours — a set an escalation
/// may have shrunk), so the model can plan heals of links reality never
/// created or has already reconnected around. Both replicas see the same
/// escalations, so skipping on reality's state keeps them in lockstep.
bool link_healable(const BrokerNetwork& net, BrokerId a, BrokerId b) {
  const auto& state = net.link_state();
  return state.is_alive(a) && state.is_alive(b) &&
         state.has_failed_link(a, b) && !state.same_component(a, b);
}

/// Applies one trace op to `net` alone — the WAL replay path after a
/// restore (the oracle already consumed the op in its first life).
/// Returns the delivered set for publishes (empty otherwise). Membership
/// replays work because restore_all revives the link-state (snapshot v2):
/// the replayed sequence drives it through the same transitions as the
/// first life. Replacement images may differ from the first life's, which
/// is fine — post-cascade routing state is image-independent.
std::vector<core::SubscriptionId> replay_op(BrokerNetwork& net,
                                            const ChurnOp& op,
                                            const ImageCache& images) {
  net.advance_time(op.time);
  std::vector<core::SubscriptionId> delivered;
  switch (op.kind) {
    case ChurnOpKind::kSubscribe:
      net.subscribe(op.broker, op.sub);
      break;
    case ChurnOpKind::kSubscribeTtl:
      net.subscribe_with_ttl(op.broker, op.sub, op.ttl);
      break;
    case ChurnOpKind::kUnsubscribe:
      net.unsubscribe(op.broker, op.id);
      break;
    case ChurnOpKind::kPublish:
      delivered = std::move(
          net.publish(routing::PublishRequest::single(op.broker, op.pub))
              .front());
      break;
    case ChurnOpKind::kAdvance:
      break;
    case ChurnOpKind::kMembership:
      switch (static_cast<MembershipOpKind>(op.member)) {
        case MembershipOpKind::kJoin:
          if (net.add_peer(op.broker) != op.peer) {
            throw std::logic_error("ChurnDriver: join id drift on replay");
          }
          break;
        case MembershipOpKind::kLeave:
          net.remove_peer(op.broker);
          break;
        case MembershipOpKind::kCrash:
          net.crash_peer(op.broker);
          break;
        case MembershipOpKind::kReplace:
          (void)net.replace_peer(op.broker, image_of(images, op.broker));
          break;
        case MembershipOpKind::kFailLink:
          // Mirror the first life's skip: a retry-cap escalation may have
          // failed this link already (bursts are absolute-time, so the
          // escalation recurs on replay before this op does).
          if (!net.membership_active() ||
              net.link_state().has_link(op.broker, op.peer)) {
            net.fail_link(op.broker, op.peer);
          }
          break;
        case MembershipOpKind::kHealLink:
          if (!net.membership_active() ||
              link_healable(net, op.broker, op.peer)) {
            net.heal_link(op.broker, op.peer);
          }
          break;
      }
      break;
  }
  // Escalations recurring during replay were already mirrored into the
  // oracle in the op's first life; drop the duplicate records.
  (void)net.take_escalated_links();
  return delivered;
}

}  // namespace

ChurnReport ChurnDriver::run(BrokerNetwork& net, const ChurnTrace& trace,
                             Options options) {
  if (net.broker_count() != trace.broker_count) {
    throw std::invalid_argument(
        "ChurnDriver::run: network broker count does not match the trace");
  }
  // generate_churn_trace validates this, but hand-built traces reach here
  // too, and a non-positive epoch length would loop close_epoch forever.
  if (!(trace.config.epoch_length > 0)) {
    throw std::invalid_argument("ChurnDriver::run: epoch_length must be > 0");
  }
  const FailureInjection& failure = options.failure;
  double snapshot_every = failure.snapshot_every;
  if (failure.enabled) {
    if (snapshot_every == 0.0) snapshot_every = trace.config.epoch_length;
    if (!(snapshot_every > 0)) {
      throw std::invalid_argument(
          "ChurnDriver::run: snapshot_every must be >= 0");
    }
    if (!(failure.kill_time > 0)) {
      throw std::invalid_argument(
          "ChurnDriver::run: failure kill_time must be > 0");
    }
  }
  net.reset_metrics();

  ChurnReport report;
  FlatOracle oracle;
  std::vector<core::SubscriptionId> oracle_delivered;  // reused per publish
  std::vector<std::pair<BrokerId, core::Publication>> publish_pairs;

  // Membership setup: the network must start on the trace's universe (the
  // same live forest the generator planned against), its standby bridges
  // must be registered so heals can find them, and the oracle gets its own
  // link-state replica of the same universe.
  ImageCache images;
  if (trace.has_membership) {
    if (net.universe().links != trace.universe.links) {
      throw std::invalid_argument(
          "ChurnDriver::run: network links do not match the trace universe");
    }
    for (const auto& [a, b] : trace.universe.standby) {
      net.add_standby_link(a, b);
    }
    if (options.differential) oracle.enable_membership(trace.universe);
  }
  const auto refresh_images = [&]() {
    for (std::size_t b = 0; b < net.broker_count(); ++b) {
      const auto id = static_cast<BrokerId>(b);
      if (!net.is_alive(id)) continue;  // a crashed broker's state is lost
      images[id] = net.broker(id).snapshot();
    }
  };
  const auto audit_ghosts = [&]() {
    report.membership.ghost_routes =
        std::max(report.membership.ghost_routes, net.ghost_route_count());
  };
  if (trace.has_membership) refresh_images();

  // Lossy-link setup: install the trace's scripted burst windows and
  // record how publishes will actually be issued (satellite knob audit —
  // a "pipelined" soak that quietly ran per-op must be visible).
  report.publish_coalescing = !options.pipelined_publish ? "off"
                              : failure.enabled ? "disabled-failure-injection"
                              : net.lossy_links() ? "disabled-link-faults"
                                                  : "pipelined";
  if (net.lossy_links() && !trace.bursts.empty()) {
    std::vector<routing::LinkChannels::BurstWindow> bursts;
    bursts.reserve(trace.bursts.size());
    for (const workload::LinkBurst& b : trace.bursts) {
      bursts.push_back({b.a, b.b, b.start, b.end});
    }
    net.set_link_bursts(std::move(bursts));
  }
  // Retry-cap escalations surface as fail_link on the network side only;
  // the oracle must see the same topology before the next delivered-set
  // compare. Called after every net op (escalations drain at op exit).
  const auto mirror_escalations = [&]() {
    for (const auto& [a, b] : net.take_escalated_links()) {
      if (options.differential) oracle.fail_link(a, b);
      ++report.membership.link_escalations;
    }
  };

  const double epoch_length = trace.config.epoch_length;
  Metrics at_epoch_start;  // metrics totals when the current epoch began
  // Crash splice state: epoch/run deltas accumulated in incarnations that
  // died mid-interval (Metrics restart at zero after restore_all).
  Metrics epoch_accum;
  Metrics run_accum;
  Metrics run_base;
  ChurnEpoch epoch;
  double epoch_end = epoch_length;

  const auto close_epoch = [&]() {
    // Settle both replicas exactly at the boundary, then snapshot.
    net.advance_time(epoch_end);
    mirror_escalations();
    if (options.differential) oracle.advance_time(epoch_end);
    epoch.end_time = epoch_end;
    const Metrics delta = epoch_accum + (net.metrics() - at_epoch_start);
    epoch.delivered = delta.notifications_delivered;
    epoch.lost = delta.notifications_lost;
    epoch.subscription_messages = delta.subscription_messages;
    epoch.unsubscription_messages = delta.unsubscription_messages;
    epoch.publication_messages = delta.publication_messages;
    epoch.suppressed = delta.subscriptions_suppressed;
    epoch.membership_events = delta.membership_events;
    snapshot_state(net, epoch);
    if (trace.has_membership) {
      audit_ghosts();
      refresh_images();
    }
    report.peak_routing_entries =
        std::max(report.peak_routing_entries, epoch.routing_entries);
    report.mismatched_publishes += epoch.mismatched_publishes;
    report.epochs.push_back(epoch);
    at_epoch_start = net.metrics();
    epoch_accum = Metrics{};
    epoch = ChurnEpoch{};
    epoch_end += epoch_length;
  };

  // Failure-injection state: newest snapshot + the WAL since it.
  std::vector<std::uint8_t> snapshot_bytes;
  double snapshot_time = 0.0;
  double next_snapshot = snapshot_every;
  std::vector<std::size_t> gap_ops;  // indices into trace.ops
  std::vector<std::vector<core::SubscriptionId>> gap_oracle_sets;
  bool crashed = false;

  const auto take_snapshot = [&](double at) {
    net.advance_time(at);
    mirror_escalations();
    if (options.differential) oracle.advance_time(at);
    snapshot_bytes = net.snapshot_all();
    snapshot_time = at;
    gap_ops.clear();
    gap_oracle_sets.clear();
    ++report.recovery.snapshots;
    report.recovery.snapshot_bytes = snapshot_bytes.size();
  };

  if (failure.enabled) take_snapshot(0.0);  // boot image: a kill before the
                                            // first cadence point recovers too

  for (std::size_t op_index = 0; op_index < trace.ops.size(); ++op_index) {
    const ChurnOp& op = trace.ops[op_index];
    // Interleave epoch closes and snapshot points in time order before
    // processing the op. Epoch boundaries are slot multiples, so neither
    // collides with mid-slot expiry instants.
    while (true) {
      const bool epoch_due = op.time > epoch_end;
      const bool snap_due = failure.enabled && next_snapshot <= op.time;
      if (epoch_due && (!snap_due || epoch_end <= next_snapshot)) {
        close_epoch();
      } else if (snap_due) {
        take_snapshot(next_snapshot);
        next_snapshot += snapshot_every;
      } else {
        break;
      }
    }

    // Pipelined mode: a run of consecutive publish ops inside the current
    // epoch becomes one multi-source publish_batch. Per-op bookkeeping and
    // the differential check are unchanged; only the clock settles once, at
    // the batch's last instant, for both replicas.
    if (options.pipelined_publish && !failure.enabled && !net.lossy_links() &&
        op.kind == ChurnOpKind::kPublish) {
      std::size_t end = op_index;
      while (end < trace.ops.size() &&
             trace.ops[end].kind == ChurnOpKind::kPublish &&
             trace.ops[end].time <= epoch_end) {
        ++end;
      }
      const std::size_t count = end - op_index;
      publish_pairs.clear();
      for (std::size_t k = op_index; k < end; ++k) {
        publish_pairs.emplace_back(trace.ops[k].broker, trace.ops[k].pub);
      }
      const double batch_time = trace.ops[end - 1].time;
      net.advance_time(batch_time);
      if (options.differential) oracle.advance_time(batch_time);
      epoch.ops += count;
      report.ops += count;
      epoch.publishes += count;
      report.publishes += count;
      const auto delivered_sets =
          net.publish(routing::PublishRequest::view(publish_pairs));
      if (options.differential) {
        for (std::size_t k = 0; k < count; ++k) {
          oracle.publish(trace.ops[op_index + k].broker,
                         trace.ops[op_index + k].pub, oracle_delivered);
          if (delivered_sets[k] != oracle_delivered) {
            ++epoch.mismatched_publishes;
          }
        }
      }
      op_index = end - 1;  // the for-increment steps past the batch
      continue;
    }

    // Crash point: wipe the live network, restore the newest snapshot,
    // replay the WAL gap, then fall through to normal processing of this
    // op against the recovered state.
    if (failure.enabled && !crashed && op.time >= failure.kill_time) {
      crashed = true;
      ++report.recovery.crashes;
      report.recovery.recovery_sim_gap = op.time - snapshot_time;
      const Metrics pre = net.metrics();
      epoch_accum = epoch_accum + (pre - at_epoch_start);
      run_accum = run_accum + (pre - run_base);
      net.restore_all(snapshot_bytes);
      std::size_t publish_cursor = 0;
      for (const std::size_t gap_index : gap_ops) {
        const ChurnOp& gap_op = trace.ops[gap_index];
        const auto delivered = replay_op(net, gap_op, images);
        ++report.recovery.gap_ops_replayed;
        if (gap_op.kind == ChurnOpKind::kPublish) {
          ++report.recovery.gap_publishes_replayed;
          if (options.differential) {
            if (delivered != gap_oracle_sets.at(publish_cursor)) {
              ++report.recovery.replay_mismatches;
            }
            ++publish_cursor;
          }
        }
      }
      // Replay traffic re-derives state; exclude it from epochs/totals.
      at_epoch_start = net.metrics();
      run_base = net.metrics();
    }

    net.advance_time(op.time);
    mirror_escalations();  // TTL-expiry cascades can exhaust the retry cap
    if (options.differential) oracle.advance_time(op.time);
    ++epoch.ops;
    ++report.ops;
    if (failure.enabled) gap_ops.push_back(op_index);
    switch (op.kind) {
      case ChurnOpKind::kSubscribe:
        net.subscribe(op.broker, op.sub);
        if (options.differential) oracle.subscribe(op.broker, op.sub);
        break;
      case ChurnOpKind::kSubscribeTtl:
        net.subscribe_with_ttl(op.broker, op.sub, op.ttl);
        if (options.differential) {
          oracle.subscribe_with_ttl(op.broker, op.sub, op.ttl);
        }
        break;
      case ChurnOpKind::kUnsubscribe:
        net.unsubscribe(op.broker, op.id);
        if (options.differential) oracle.unsubscribe(op.broker, op.id);
        break;
      case ChurnOpKind::kPublish: {
        ++epoch.publishes;
        ++report.publishes;
        const auto delivered = std::move(
            net.publish(routing::PublishRequest::single(op.broker, op.pub))
                .front());
        // Escalations fire inside net.publish before its own delivery
        // accounting; the oracle needs the same fail_links applied before
        // its delivered set is computed.
        mirror_escalations();
        if (options.differential) {
          oracle.publish(op.broker, op.pub, oracle_delivered);
          if (delivered != oracle_delivered) ++epoch.mismatched_publishes;
          if (failure.enabled) gap_oracle_sets.push_back(oracle_delivered);
        }
        break;
      }
      case ChurnOpKind::kAdvance:
        break;  // the advance above already moved both clocks
      case ChurnOpKind::kMembership: {
        const auto member = static_cast<MembershipOpKind>(op.member);
        ++report.membership.events;
        switch (member) {
          case MembershipOpKind::kJoin:
            // The generator predicted the dense id; any drift means the
            // network and the trace disagree about membership history.
            if (net.add_peer(op.broker) != op.peer) {
              throw std::logic_error("ChurnDriver: join id drift");
            }
            if (options.differential && oracle.add_peer(op.broker) != op.peer) {
              throw std::logic_error("ChurnDriver: oracle join id drift");
            }
            ++report.membership.joins;
            break;
          case MembershipOpKind::kLeave:
            net.remove_peer(op.broker);
            if (options.differential) oracle.remove_peer(op.broker);
            ++report.membership.leaves;
            break;
          case MembershipOpKind::kCrash:
            net.crash_peer(op.broker);
            if (options.differential) oracle.crash_peer(op.broker);
            ++report.membership.crashes;
            break;
          case MembershipOpKind::kReplace: {
            const auto outcome =
                net.replace_peer(op.broker, image_of(images, op.broker));
            report.membership.replace_restored_routes += outcome.restored_routes;
            report.membership.replace_gap_subs += outcome.gap_subs_replayed;
            if (options.differential) oracle.replace_peer(op.broker);
            ++report.membership.replaces;
            break;
          }
          case MembershipOpKind::kFailLink:
            // A retry-cap escalation may have failed this link before the
            // trace's planned failure arrives; skip it on both replicas
            // (they already agree the link is down).
            if (net.membership_active() &&
                !net.link_state().has_link(op.broker, op.peer)) {
              ++report.membership.skipped_link_failures;
              break;
            }
            net.fail_link(op.broker, op.peer);
            if (options.differential) oracle.fail_link(op.broker, op.peer);
            ++report.membership.link_failures;
            break;
          case MembershipOpKind::kHealLink:
            // Escalations diverge reality from the generator's model; a
            // planned heal may no longer be feasible. Skip it on both
            // replicas — they share reality's link state.
            if (net.membership_active() &&
                !link_healable(net, op.broker, op.peer)) {
              ++report.membership.skipped_link_heals;
              break;
            }
            net.heal_link(op.broker, op.peer);
            if (options.differential) oracle.heal_link(op.broker, op.peer);
            ++report.membership.link_heals;
            break;
        }
        audit_ghosts();  // every mutation must leave zero stale routes
        break;
      }
    }
    mirror_escalations();  // any op's cascade can exhaust the retry cap
  }
  // Close the trailing (possibly partial) epoch at its natural boundary.
  close_epoch();

  report.totals = run_accum + (net.metrics() - run_base);
  report.final_live_subscriptions = net.local_subscription_count();
  report.membership.final_alive_brokers =
      net.membership_active() ? net.link_state().alive_count()
                              : net.broker_count();
  return report;
}

}  // namespace psc::sim
