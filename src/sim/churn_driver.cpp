#include "sim/churn_driver.hpp"

#include <algorithm>
#include <stdexcept>

namespace psc::sim {

using routing::BrokerNetwork;
using routing::FlatOracle;
using workload::ChurnOp;
using workload::ChurnOpKind;
using workload::ChurnTrace;

namespace {

/// End-of-epoch state sweep over every broker and link store.
void snapshot_state(const BrokerNetwork& net, ChurnEpoch& epoch) {
  epoch.live_subscriptions = net.local_subscription_count();
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    const auto& broker = net.broker(static_cast<routing::BrokerId>(b));
    epoch.routing_entries += broker.routing_table_size();
    for (const routing::BrokerId neighbor : broker.neighbors()) {
      const auto* store = broker.forwarded_store(neighbor);
      if (store == nullptr) continue;
      epoch.forwarded_entries += store->total_count();
      epoch.forwarded_active += store->active_count();
    }
  }
}

}  // namespace

ChurnReport ChurnDriver::run(BrokerNetwork& net, const ChurnTrace& trace,
                             Options options) {
  if (net.broker_count() != trace.broker_count) {
    throw std::invalid_argument(
        "ChurnDriver::run: network broker count does not match the trace");
  }
  // generate_churn_trace validates this, but hand-built traces reach here
  // too, and a non-positive epoch length would loop close_epoch forever.
  if (!(trace.config.epoch_length > 0)) {
    throw std::invalid_argument("ChurnDriver::run: epoch_length must be > 0");
  }
  net.reset_metrics();

  ChurnReport report;
  FlatOracle oracle;
  std::vector<core::SubscriptionId> oracle_delivered;  // reused per publish

  const double epoch_length = trace.config.epoch_length;
  Metrics at_epoch_start;  // metrics totals when the current epoch began
  ChurnEpoch epoch;
  double epoch_end = epoch_length;

  const auto close_epoch = [&]() {
    // Settle both replicas exactly at the boundary, then snapshot.
    net.advance_time(epoch_end);
    if (options.differential) oracle.advance_time(epoch_end);
    epoch.end_time = epoch_end;
    const Metrics& m = net.metrics();
    epoch.delivered = m.notifications_delivered - at_epoch_start.notifications_delivered;
    epoch.lost = m.notifications_lost - at_epoch_start.notifications_lost;
    epoch.subscription_messages =
        m.subscription_messages - at_epoch_start.subscription_messages;
    epoch.unsubscription_messages =
        m.unsubscription_messages - at_epoch_start.unsubscription_messages;
    epoch.publication_messages =
        m.publication_messages - at_epoch_start.publication_messages;
    epoch.suppressed =
        m.subscriptions_suppressed - at_epoch_start.subscriptions_suppressed;
    snapshot_state(net, epoch);
    report.peak_routing_entries =
        std::max(report.peak_routing_entries, epoch.routing_entries);
    report.mismatched_publishes += epoch.mismatched_publishes;
    report.epochs.push_back(epoch);
    at_epoch_start = m;
    epoch = ChurnEpoch{};
    epoch_end += epoch_length;
  };

  for (const ChurnOp& op : trace.ops) {
    // Close every epoch the trace has moved past. Boundaries are slot
    // multiples, so they never collide with mid-slot expiry instants.
    while (op.time > epoch_end) close_epoch();

    net.advance_time(op.time);
    if (options.differential) oracle.advance_time(op.time);
    ++epoch.ops;
    ++report.ops;
    switch (op.kind) {
      case ChurnOpKind::kSubscribe:
        net.subscribe(op.broker, op.sub);
        if (options.differential) oracle.subscribe(op.broker, op.sub);
        break;
      case ChurnOpKind::kSubscribeTtl:
        net.subscribe_with_ttl(op.broker, op.sub, op.ttl);
        if (options.differential) {
          oracle.subscribe_with_ttl(op.broker, op.sub, op.ttl);
        }
        break;
      case ChurnOpKind::kUnsubscribe:
        net.unsubscribe(op.broker, op.id);
        if (options.differential) oracle.unsubscribe(op.broker, op.id);
        break;
      case ChurnOpKind::kPublish: {
        ++epoch.publishes;
        ++report.publishes;
        const auto delivered = net.publish(op.broker, op.pub);
        if (options.differential) {
          oracle.publish(op.pub, oracle_delivered);
          if (delivered != oracle_delivered) ++epoch.mismatched_publishes;
        }
        break;
      }
      case ChurnOpKind::kAdvance:
        break;  // the advance above already moved both clocks
    }
  }
  // Close the trailing (possibly partial) epoch at its natural boundary.
  close_epoch();

  report.totals = net.metrics();
  report.final_live_subscriptions = net.local_subscription_count();
  return report;
}

}  // namespace psc::sim
