// LinkFaultModel — deterministic, seeded fault injection for one DIRECTED
// link of the broker overlay.
//
// The model answers one question per transmission attempt: what happens to
// this frame on the wire? It can be dropped (loss probability, or a
// scripted burst-loss window), duplicated (a second copy arrives later),
// delayed (uniform jitter on top of the base latency), or pushed behind
// its successors (a reorder draw adds more than one full latency of extra
// delay, so a later frame overtakes it and the receiver's reorder window
// has to heal the inversion). Every draw comes from a per-directed-link
// xoshiro substream derived from (seed, from, to), so two runs with the
// same seed see byte-identical fault schedules regardless of what any
// other link does — the property the differential soaks rely on.
//
// Scripted bursts are absolute sim-time windows during which EVERY
// transmission attempt on the link is lost (100% loss). They model the
// workload trace's fault-schedule records: a burst longer than the full
// retransmit-backoff chain forces a retry-cap escalation determinist-
// ically, which is how the soaks exercise the fail_link degradation path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace psc::sim {

/// Probabilistic fault rates of one link direction (scripted bursts ride
/// separately, as absolute time windows). All-zero = perfect wire.
struct LinkFaultConfig {
  double drop_probability = 0.0;     ///< iid loss per transmission attempt
  double dup_probability = 0.0;      ///< iid duplication per attempt
  double reorder_probability = 0.0;  ///< iid "push behind successors" draw
  double delay_jitter = 0.0;         ///< extra delay, uniform [0, jitter] x latency

  [[nodiscard]] bool any() const noexcept {
    return drop_probability > 0 || dup_probability > 0 ||
           reorder_probability > 0 || delay_jitter > 0;
  }
};

/// One scripted 100%-loss window on a directed link.
struct BurstWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;  ///< exclusive; frames sent in [start, end) are lost
};

class LinkFaultModel {
 public:
  /// Derives the per-directed-link substream from the network seed and the
  /// (from, to) endpoints; two directions of one link draw independently.
  LinkFaultModel(const LinkFaultConfig& config, std::uint64_t seed,
                 std::uint32_t from, std::uint32_t to);

  /// The wire's verdict for one transmission attempt at sim-time `now`.
  /// `extra_delay` / `dup_extra_delay` are additive on top of the base
  /// link latency; both are bounded by worst_extra_delay(latency).
  struct Outcome {
    bool dropped = false;
    bool duplicated = false;       ///< never set when dropped
    SimTime extra_delay = 0.0;
    SimTime dup_extra_delay = 0.0; ///< delay of the duplicate copy
  };
  [[nodiscard]] Outcome next(SimTime now, SimTime latency);

  /// True while `now` falls inside a scripted burst window.
  [[nodiscard]] bool in_burst(SimTime now) const noexcept;

  void set_bursts(std::vector<BurstWindow> bursts) {
    bursts_ = std::move(bursts);
  }

  /// Upper bound of any extra delay next() can hand out: jitter plus the
  /// reorder push (at most two extra latencies). The cascade-quiescence
  /// horizon is derived from this.
  [[nodiscard]] static SimTime worst_extra_delay(
      const LinkFaultConfig& config, SimTime latency) noexcept {
    const SimTime jitter = latency * config.delay_jitter;
    const SimTime reorder = config.reorder_probability > 0 ? 2 * latency : 0.0;
    return jitter + reorder;
  }

 private:
  LinkFaultConfig config_;
  util::Rng rng_;
  std::vector<BurstWindow> bursts_;
};

}  // namespace psc::sim
