// Deterministic discrete-event simulator core.
//
// The paper's distributed analysis (Section 5) reasons about brokers
// exchanging subscription/publication messages over logical links; we
// reproduce it with an in-process event loop instead of sockets. Events are
// (time, sequence, handler) triples; the sequence number breaks timestamp
// ties FIFO, so runs are bit-for-bit reproducible from the workload seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace psc::sim {

using SimTime = double;  ///< simulated seconds

class EventQueue {
 public:
  using Handler = std::function<void()>;
  /// Handle for a cancelable timer; 0 is never issued (invalid/none).
  using TimerId = std::uint64_t;
  static constexpr TimerId kNoTimer = 0;

  /// Schedules `handler` at absolute time `at` (>= now; earlier times are
  /// clamped to now, which keeps accidental negative latencies causal).
  void schedule_at(SimTime at, Handler handler);

  /// Schedules after a relative delay (>= 0).
  void schedule_in(SimTime delay, Handler handler) {
    schedule_at(now_ + (delay > 0 ? delay : 0), std::move(handler));
  }

  /// Batch dispatch: schedules all handlers at the same absolute time with
  /// consecutive sequence numbers, so they fire back-to-back in vector
  /// order with no unrelated event interleaved between two batch members
  /// scheduled at an equal timestamp. This is the injection point for the
  /// broker batch APIs: one batch = one timestamp = one cascade front.
  void schedule_batch_at(SimTime at, std::vector<Handler> handlers);

  /// Batch form of schedule_in (delay >= 0, clamped like schedule_at).
  void schedule_batch_in(SimTime delay, std::vector<Handler> handlers) {
    schedule_batch_at(now_ + (delay > 0 ? delay : 0), std::move(handlers));
  }

  /// Schedules a CANCELABLE timer at absolute time `at`. The handler is
  /// owned by a side table, not the heap entry; cancel() destroys it
  /// immediately (releasing everything it captured) while the heap entry
  /// stays behind and fires as a no-op at its original instant. That keeps
  /// the event timeline — clock advance, fired counts, tie-break sequence
  /// numbers — bit-for-bit identical whether or not a timer was cancelled,
  /// which is what lets LinkChannels disarm timers without perturbing the
  /// deterministic replay contract.
  TimerId schedule_cancelable_at(SimTime at, Handler handler);

  /// Relative-delay form (delay >= 0, clamped like schedule_in).
  TimerId schedule_cancelable_in(SimTime delay, Handler handler) {
    return schedule_cancelable_at(now_ + (delay > 0 ? delay : 0),
                                  std::move(handler));
  }

  /// Cancels a pending cancelable timer: the handler is destroyed NOW (not
  /// at its deadline), so captured state is released promptly. Returns
  /// false when the id is unknown — already fired, already cancelled, or
  /// kNoTimer — which callers treat as an idempotent no-op.
  bool cancel(TimerId id);

  /// Cancelable timers whose handlers are still armed (scheduled and
  /// neither fired nor cancelled). Test/diagnostic surface for the timer
  /// ownership contract.
  [[nodiscard]] std::size_t armed_timer_count() const noexcept {
    return cancelable_.size();
  }

  /// Runs every event due at the earliest pending timestamp — one batch
  /// step — including events a handler schedules AT that same timestamp
  /// (schedule_at clamps past times to now, so nothing can sneak in
  /// earlier). Returns events fired; 0 when the queue is empty. Callers
  /// that fan a step's events out to a batch API use this as the step
  /// boundary.
  std::size_t run_step();

  /// Runs until the queue drains or `max_events` fire. Returns events fired.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time <= horizon. Returns events fired.
  std::size_t run_until(SimTime horizon);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event, or now() when the queue is
  /// empty. Lets a caller drain up to a deadline without fast-forwarding
  /// the clock past the last real event (run_until always sets now to its
  /// horizon; the lossy-link cascade loop needs the gentler form).
  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? now_ : heap_.top().time;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler handler;           ///< empty for cancelable timers
    TimerId timer_id = kNoTimer;  ///< nonzero: look the handler up on fire
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Runs one popped event: plain events invoke their handler; cancelable
  /// timers extract theirs from the side table (no-op when cancelled).
  void fire(Event& event);

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<TimerId, Handler> cancelable_;
  TimerId next_timer_id_ = 1;
};

}  // namespace psc::sim
