// ChurnDriver — replays a workload::ChurnTrace against a BrokerNetwork and
// reports a per-epoch metrics time series; optionally replays the same
// trace against routing::FlatOracle in lockstep and differentially checks
// every publication's delivered set.
//
// Layering note: unlike the event-queue core (which sits at the bottom of
// the stack), the driver is a harness — it sits ABOVE routing/ and
// workload/ and owns no state of its own. It lives in sim/ because it is
// the simulator's steering wheel, not because the routing layer depends
// on it (it doesn't).
//
// Determinism: a replay is a pure function of (trace, NetworkConfig). Two
// replays of one trace against identically-configured networks produce
// identical metrics, epoch series, and delivered sets — this is what the
// churn regression tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/broker_network.hpp"
#include "routing/flat_oracle.hpp"
#include "sim/metrics.hpp"
#include "workload/churn_workload.hpp"

namespace psc::sim {

/// One epoch of the soak: deltas over (epoch_start, epoch_end] plus
/// end-of-epoch state snapshots.
struct ChurnEpoch {
  SimTime end_time = 0.0;

  // --- deltas within the epoch ---------------------------------------
  std::size_t ops = 0;             ///< client ops issued
  std::size_t publishes = 0;
  std::uint64_t delivered = 0;     ///< notifications delivered
  std::uint64_t lost = 0;          ///< notifications lost
  std::uint64_t subscription_messages = 0;
  std::uint64_t unsubscription_messages = 0;
  std::uint64_t publication_messages = 0;
  std::uint64_t suppressed = 0;    ///< link-forwards withheld by coverage
  std::uint64_t membership_events = 0;     ///< overlay mutations this epoch
  std::uint64_t mismatched_publishes = 0;  ///< differential failures

  // --- end-of-epoch state ---------------------------------------------
  std::size_t live_subscriptions = 0;   ///< client subs alive network-wide
  std::size_t routing_entries = 0;      ///< sum of broker routing tables
  std::size_t forwarded_entries = 0;    ///< sum of per-link store sizes
  std::size_t forwarded_active = 0;     ///< uncovered (announced) share

  /// Publication hops per publication this epoch; 0 when no publishes.
  [[nodiscard]] double hops_per_publication() const noexcept {
    return publishes == 0 ? 0.0
                          : static_cast<double>(publication_messages) /
                                static_cast<double>(publishes);
  }
};

/// Crash/recovery bookkeeping of a failure-injection run (all zero when
/// failure injection is off).
struct RecoveryStats {
  std::size_t snapshots = 0;        ///< snapshots taken (incl. the boot image)
  std::size_t snapshot_bytes = 0;   ///< size of the most recent snapshot
  std::size_t crashes = 0;          ///< kill+restore cycles executed (0 or 1)
  std::size_t gap_ops_replayed = 0; ///< WAL ops replayed after restore
  std::size_t gap_publishes_replayed = 0;
  /// Replayed publications whose delivered set differed from the oracle
  /// set recorded when the op first ran — any nonzero value means restore
  /// was not decision-identical (counted only with differential on).
  std::uint64_t replay_mismatches = 0;
  double recovery_sim_gap = 0.0;    ///< sim-seconds between snapshot and kill
};

/// Membership-churn bookkeeping (all zero for static-membership traces).
/// `ghost_routes` is the peak of the post-op audits: any routing entry on
/// an alive broker whose client subscription no longer exists. The soak
/// gates demand it stays 0 — a nonzero value means a purge cascade or
/// replacement left a stale route behind.
struct MembershipStats {
  std::size_t events = 0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t crashes = 0;
  std::size_t replaces = 0;
  std::size_t link_failures = 0;
  std::size_t link_heals = 0;
  std::size_t replace_restored_routes = 0;  ///< routes revived from images
  std::size_t replace_gap_subs = 0;         ///< registry-diff replays
  std::size_t ghost_routes = 0;             ///< peak audit count (gate: 0)
  std::size_t final_alive_brokers = 0;
  /// Links the reliable protocol escalated into fail_link (retry cap
  /// exhausted mid-cascade); mirrored into the oracle before the next
  /// differential compare. Zero on perfect wires and for fault schedules
  /// whose bursts stay shorter than the retransmit chain.
  std::size_t link_escalations = 0;
  /// Planned kFailLink trace ops skipped because an escalation had already
  /// failed the link (skipped symmetrically on both replicas).
  std::size_t skipped_link_failures = 0;
  /// Planned kHealLink ops skipped because the link is not healable in the
  /// replayed reality. Escalations make reality's topology diverge from
  /// the generator's model — most visibly through graceful-leave repair,
  /// which stars the leaver's LIVE neighbours, a set an escalation may
  /// have shrunk — so a planned heal can target a link reality never
  /// created, already healed differently, or whose endpoints reality
  /// already reconnected. Skipped symmetrically on both replicas.
  std::size_t skipped_link_heals = 0;
};

/// Whole-run result: the epoch series plus totals.
struct ChurnReport {
  std::vector<ChurnEpoch> epochs;
  Metrics totals;                  ///< network metrics for the whole run
  std::size_t ops = 0;
  std::size_t publishes = 0;
  std::uint64_t mismatched_publishes = 0;  ///< 0 unless differential found drift
  std::size_t peak_routing_entries = 0;
  std::size_t final_live_subscriptions = 0;
  RecoveryStats recovery;
  MembershipStats membership;
  /// How publish ops were actually issued: "pipelined" (coalesced batches
  /// through the staged pipeline), "off" (per-op, pipelining not
  /// requested), or the reason a requested pipeline was silently refused —
  /// "disabled-failure-injection" (WAL replay is per-op) or
  /// "disabled-link-faults" (per-link frame sequencing makes a coalesced
  /// batch's per-op oracle compare unsound). Soak JSON prints this so a
  /// "pipelined" soak that quietly ran per-op is visible.
  std::string publish_coalescing = "off";
};

class ChurnDriver {
 public:
  /// Failure-injection mode: the broker process is killed mid-churn and
  /// recovered from its last snapshot plus a WAL-style replay of the
  /// client ops issued since (the standard snapshot + op-log recovery
  /// discipline). Concretely the driver
  ///   1. takes a BrokerNetwork::snapshot_all boot image at t=0 and a new
  ///      snapshot every `snapshot_every` sim-seconds, remembering the
  ///      client ops (and, with differential on, the oracle delivered set
  ///      of every publish) issued since the newest snapshot;
  ///   2. at the first op at or after `kill_time`, discards the entire
  ///      live network state ("crash"), rebuilds it in place from the
  ///      newest snapshot, and replays the remembered gap ops — checking
  ///      each replayed publish against its recorded oracle set;
  ///   3. resumes the trace. Post-recovery publishes keep being checked
  ///      against the live oracle, so zero loss / zero ghost routes after
  ///      recovery is exactly `mismatched_publishes == 0 &&
  ///      recovery.replay_mismatches == 0 && totals.notifications_lost == 0`.
  /// Replayed traffic is excluded from epochs and totals (it re-derives
  /// state, it is not client-visible delivery); RecoveryStats counts it.
  struct FailureInjection {
    bool enabled = false;
    /// Snapshot cadence in sim-seconds; 0 uses the trace's epoch_length.
    /// See docs/TUNING.md for the cadence / replay-cost trade-off.
    double snapshot_every = 0.0;
    /// Sim time of the crash; must be > 0 and < the trace duration to
    /// actually fire (the first op at or after it triggers the kill).
    double kill_time = 0.0;
  };

  struct Options {
    /// Replay the trace against a FlatOracle in lockstep and count
    /// publications whose delivered set diverges from the network's.
    bool differential = false;
    /// Coalesce runs of consecutive publish ops into one multi-source
    /// BrokerNetwork::publish_batch call — the staged-pipeline entry point
    /// when the network is configured with NetworkConfig::pipelined_publish.
    /// Both replicas settle at the batch's last op time before the batch
    /// fires (so TTL expiries stay in lockstep), and the differential check
    /// still runs op for op against the oracle. Batches never span an epoch
    /// boundary. Ignored when failure injection is enabled (the WAL replay
    /// discipline is per-op) and when the network runs lossy links (frames
    /// of a coalesced batch share per-link sequence numbers, so a retry-cap
    /// escalation mid-batch would shift which ops the oracle mirrors it
    /// for); ChurnReport::publish_coalescing records what actually ran.
    bool pipelined_publish = false;
    FailureInjection failure;
  };

  /// Replays `trace` against `net`. The network must have
  /// trace.broker_count brokers (throws std::invalid_argument otherwise)
  /// and should be configured with the link latency the trace was
  /// generated for — the trace's slot quantization assumes it. Epoch
  /// boundaries come from trace.config.epoch_length. Resets the network's
  /// metrics first so the report's deltas are self-contained.
  [[nodiscard]] static ChurnReport run(routing::BrokerNetwork& net,
                                       const workload::ChurnTrace& trace,
                                       Options options);
  [[nodiscard]] static ChurnReport run(routing::BrokerNetwork& net,
                                       const workload::ChurnTrace& trace) {
    return run(net, trace, Options{});
  }
};

}  // namespace psc::sim
