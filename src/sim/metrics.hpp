// Network-wide traffic and delivery accounting for the broker simulator.
#pragma once

#include <cstdint>
#include <ostream>

namespace psc::sim {

/// Counters accumulated across all brokers/links of one simulation run.
struct Metrics {
  std::uint64_t subscription_messages = 0;   ///< per-hop subscription sends
  std::uint64_t unsubscription_messages = 0;
  std::uint64_t publication_messages = 0;    ///< per-hop publication sends
  std::uint64_t notifications_delivered = 0; ///< matched at the subscriber
  std::uint64_t notifications_lost = 0;      ///< should have matched, didn't
  std::uint64_t notifications_duplicated = 0;///< same sub notified twice
  std::uint64_t subscriptions_suppressed = 0;///< withheld by coverage
  std::uint64_t membership_events = 0;       ///< join/leave/crash/fail/heal
  std::uint64_t reannounced_subscriptions = 0;///< re-floods on link attach

  // --- link-channel counters (all zero on perfect links) ----------------
  std::uint64_t frames_dropped = 0;     ///< transmissions lost on the wire
  std::uint64_t frames_duplicated = 0;  ///< extra copies injected by faults
  std::uint64_t retransmits = 0;        ///< sender RTO-driven resends
  std::uint64_t dups_suppressed = 0;    ///< receiver-side duplicate discards
  std::uint64_t reorders_healed = 0;    ///< frames released from the reorder
                                        ///< buffer once the gap was filled
  std::uint64_t acks_sent = 0;          ///< pure (non-piggybacked) ack frames
  std::uint64_t backpressure_stalls = 0;///< sends parked in the backlog while
                                        ///< the unacked window was full
  std::uint64_t link_escalations = 0;   ///< retry-cap -> fail_link escalations

  void reset() noexcept { *this = Metrics{}; }

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return subscription_messages + unsubscription_messages + publication_messages;
  }

  /// Delivered / (delivered + lost); 1.0 when nothing was expected.
  [[nodiscard]] double delivery_ratio() const noexcept;
};

Metrics operator+(const Metrics& a, const Metrics& b) noexcept;

/// Componentwise difference. Caller guarantees a >= b componentwise (the
/// counters are monotone within one network incarnation, so "later minus
/// earlier" always qualifies); used by the churn driver to splice epoch
/// deltas across a crash/restore boundary.
Metrics operator-(const Metrics& a, const Metrics& b) noexcept;

std::ostream& operator<<(std::ostream& out, const Metrics& m);

}  // namespace psc::sim
