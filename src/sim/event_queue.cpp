#include "sim/event_queue.hpp"

#include <utility>

namespace psc::sim {

void EventQueue::schedule_at(SimTime at, Handler handler) {
  heap_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_batch_at(SimTime at, std::vector<Handler> handlers) {
  const SimTime time = at < now_ ? now_ : at;
  for (Handler& handler : handlers) {
    heap_.push(Event{time, next_seq_++, std::move(handler)});
  }
}

EventQueue::TimerId EventQueue::schedule_cancelable_at(SimTime at,
                                                       Handler handler) {
  const TimerId id = next_timer_id_++;
  cancelable_.emplace(id, std::move(handler));
  Event event;
  event.time = at < now_ ? now_ : at;
  event.seq = next_seq_++;
  event.timer_id = id;
  heap_.push(std::move(event));
  return id;
}

bool EventQueue::cancel(TimerId id) {
  if (id == kNoTimer) return false;
  return cancelable_.erase(id) > 0;
}

void EventQueue::fire(Event& event) {
  if (event.timer_id == kNoTimer) {
    event.handler();
    return;
  }
  const auto it = cancelable_.find(event.timer_id);
  if (it == cancelable_.end()) return;  // cancelled: heap entry is a no-op
  // Extract before running: the handler may reschedule (new id) or even
  // cancel other timers, so the table must not hold a live reference.
  Handler handler = std::move(it->second);
  cancelable_.erase(it);
  handler();
}

std::size_t EventQueue::run_step() {
  if (heap_.empty()) return 0;
  const SimTime step_time = heap_.top().time;
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().time == step_time) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    ++fired;
    fire(event);
  }
  return fired;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!heap_.empty() && fired < max_events) {
    // Copy out before pop: the handler may schedule new events.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    ++fired;
    fire(event);
  }
  return fired;
}

std::size_t EventQueue::run_until(SimTime horizon) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    ++fired;
    fire(event);
  }
  if (now_ < horizon) now_ = horizon;
  return fired;
}

}  // namespace psc::sim
