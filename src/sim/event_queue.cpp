#include "sim/event_queue.hpp"

#include <utility>

namespace psc::sim {

void EventQueue::schedule_at(SimTime at, Handler handler) {
  heap_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_batch_at(SimTime at, std::vector<Handler> handlers) {
  const SimTime time = at < now_ ? now_ : at;
  for (Handler& handler : handlers) {
    heap_.push(Event{time, next_seq_++, std::move(handler)});
  }
}

std::size_t EventQueue::run_step() {
  if (heap_.empty()) return 0;
  const SimTime step_time = heap_.top().time;
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().time == step_time) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    ++fired;
    event.handler();
  }
  return fired;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!heap_.empty() && fired < max_events) {
    // Copy out before pop: the handler may schedule new events.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    ++fired;
    event.handler();
  }
  return fired;
}

std::size_t EventQueue::run_until(SimTime horizon) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    ++fired;
    event.handler();
  }
  if (now_ < horizon) now_ = horizon;
  return fired;
}

}  // namespace psc::sim
