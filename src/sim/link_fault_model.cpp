#include "sim/link_fault_model.hpp"

namespace psc::sim {

namespace {

std::uint64_t link_stream_seed(std::uint64_t seed, std::uint32_t from,
                               std::uint32_t to) {
  // Directed-pair mix: (from, to) and (to, from) land on distinct streams,
  // and every pair is decorrelated from the network seed via splitmix64.
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL *
                                ((static_cast<std::uint64_t>(from) << 32) |
                                 (static_cast<std::uint64_t>(to) + 1)));
  return util::splitmix64(state);
}

}  // namespace

LinkFaultModel::LinkFaultModel(const LinkFaultConfig& config,
                               std::uint64_t seed, std::uint32_t from,
                               std::uint32_t to)
    : config_(config), rng_(link_stream_seed(seed, from, to)) {}

bool LinkFaultModel::in_burst(SimTime now) const noexcept {
  for (const BurstWindow& burst : bursts_) {
    if (now >= burst.start && now < burst.end) return true;
  }
  return false;
}

LinkFaultModel::Outcome LinkFaultModel::next(SimTime now, SimTime latency) {
  Outcome outcome;
  // Draw order is fixed (drop, dup, reorder, jitter) and every draw happens
  // on every attempt, burst or not — the stream position depends only on
  // the attempt count, never on the verdicts, so adding a burst window to a
  // run does not shift any later probabilistic draw.
  const bool drop = rng_.bernoulli(config_.drop_probability);
  const bool dup = rng_.bernoulli(config_.dup_probability);
  const bool reorder = rng_.bernoulli(config_.reorder_probability);
  const double jitter_draw = rng_.next_double();
  const double dup_jitter_draw = rng_.next_double();

  if (drop || in_burst(now)) {
    outcome.dropped = true;
    return outcome;
  }
  outcome.extra_delay = latency * config_.delay_jitter * jitter_draw;
  if (reorder) {
    // Push the frame at least one full latency behind its successors: a
    // frame sent next overtakes this one, which the receiver's reorder
    // buffer must heal. Bounded by worst_extra_delay's two latencies.
    outcome.extra_delay += latency * (1.0 + dup_jitter_draw);
  }
  if (dup) {
    outcome.duplicated = true;
    outcome.dup_extra_delay =
        latency * (config_.delay_jitter * dup_jitter_draw);
  }
  return outcome;
}

}  // namespace psc::sim
