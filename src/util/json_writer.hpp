// Minimal streaming JSON emitter for machine-readable bench output.
//
// TableWriter covers flat CSV series; the churn-soak bench emits nested
// per-topology/per-epoch records, which CSV cannot express without
// denormalizing. This writer produces standard JSON with no dependencies:
// a begin/end nesting API with automatic comma placement and string
// escaping. It does NOT validate that keys appear only inside objects —
// callers pair begin/end correctly (debug-checked via the nesting depth).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <type_traits>
#include <vector>

namespace psc::util {

/// Streaming JSON writer with 2-space indentation.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  /// Containers. The keyed forms are for members of an object.
  void begin_object();
  void begin_object(std::string_view key);
  void end_object();
  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  /// Object members.
  void member(std::string_view key, std::string_view value);
  void member(std::string_view key, const char* value) {
    member(key, std::string_view(value));
  }
  void member(std::string_view key, double value);
  void member(std::string_view key, std::int64_t value);
  void member(std::string_view key, std::uint64_t value);
  void member(std::string_view key, bool value);
  /// Disambiguates the integer overloads for any integral argument.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  void member(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      member(key, static_cast<std::int64_t>(value));
    } else {
      member(key, static_cast<std::uint64_t>(value));
    }
  }

  /// Bare array elements.
  void value(std::string_view element);
  void value(double element);
  void value(std::uint64_t element);

  /// Depth 0 means every container was closed (sanity check for callers).
  [[nodiscard]] std::size_t depth() const noexcept { return stack_.size(); }

 private:
  std::ostream& out_;
  /// One flag per open container: whether it already has an element.
  std::vector<bool> stack_;

  void comma_and_indent();
  void key_prefix(std::string_view key);
  void write_escaped(std::string_view text);
  void write_double(double number);
};

}  // namespace psc::util
