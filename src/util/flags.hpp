// Minimal command-line flag parsing for bench/example binaries.
// Supports --name=value and --name value forms plus boolean switches.
// Deliberately tiny: the harnesses only need seeds, sweep bounds and
// run-count overrides so figure benches can be scaled up to paper-exact
// sample counts or down for CI smoke runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psc::util {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (non-flag positional arguments are collected, not rejected).
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace psc::util
