// Samplers for the popularity-based workload model of the paper's
// comparison scenario (Section 6.4): Zipf-distributed attribute popularity,
// Pareto-distributed range centers ("similar interests"), and
// normally-distributed range widths.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace psc::util {

/// Zipf distribution over ranks {0, 1, ..., n-1} with exponent `skew`.
/// Rank 0 is the most popular. Sampling is O(log n) via binary search on a
/// precomputed CDF; construction is O(n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double skew() const noexcept { return skew_; }

  /// Probability mass of a given rank (for tests / analytics).
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double skew_ = 0.0;
};

/// Pareto (type I) sampler with scale x_m > 0 and shape alpha > 0.
/// Values are >= x_m with P(X > x) = (x_m / x)^alpha.
class ParetoSampler {
 public:
  ParetoSampler(double scale, double shape);

  [[nodiscard]] double sample(Rng& rng) const;

  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double shape() const noexcept { return shape_; }

 private:
  double scale_;
  double shape_;
};

/// Normal sampler (Box–Muller, deterministic given the Rng stream) with an
/// optional truncation to [lo, hi] by clamping — the workload model needs
/// strictly positive range widths.
class NormalSampler {
 public:
  NormalSampler(double mean, double stddev);

  [[nodiscard]] double sample(Rng& rng) const;
  [[nodiscard]] double sample_clamped(Rng& rng, double lo, double hi) const;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

 private:
  double mean_;
  double stddev_;
};

}  // namespace psc::util
