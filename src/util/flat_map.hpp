// FlatMap — a reserve-aware open-addressing hash map for the hot lookup
// paths (IntervalIndex::slot_of_, Broker::routing_table_), replacing
// std::unordered_map where node allocation and pointer-chasing dominate:
// every probe is a linear walk over one contiguous bucket array, a lookup
// performs zero allocations, and reserve() pre-sizes the table so a batch
// of insertions triggers no rehash (Broker::insert_batch relies on this to
// keep value pointers stable for the duration of a batch).
//
// Design:
//   * keys are unsigned integers; key 0 is RESERVED as the empty-bucket
//     sentinel (both users' id spaces reserve 0 as invalid already) —
//     inserting it throws std::invalid_argument;
//   * linear probing over a power-of-two table, splitmix64-mixed hash, max
//     load factor 7/8 before doubling;
//   * erasure uses backward-shift deletion (no tombstones), so probe
//     sequences never degrade under sustained churn;
//   * values live in-place in the bucket array with manual lifetime
//     management, so V need not be default-constructible and empty buckets
//     cost sizeof(V) storage but no constructed object.
//
// Pointer/iterator stability: pointers returned by find()/try_emplace()
// stay valid until the next rehash (growth past capacity()) or erase().
// After reserve(n), inserting up to n total elements performs no rehash.
//
// Thread-safety: none (externally synchronized, like every container in
// this codebase's single-writer model).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace psc::util {

template <typename Key, typename V>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>, "FlatMap keys must be unsigned");

 public:
  static constexpr Key kEmptyKey = 0;

  FlatMap() = default;

  FlatMap(FlatMap&& other) noexcept
      : buckets_(std::move(other.buckets_)),
        mask_(other.mask_),
        size_(other.size_) {
    other.mask_ = 0;
    other.size_ = 0;
  }

  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      destroy_all();
      buckets_ = std::move(other.buckets_);
      mask_ = other.mask_;
      size_ = other.size_;
      other.mask_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  ~FlatMap() { destroy_all(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Elements storable before the next growth rehash.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return buckets_.empty() ? 0 : bucket_count() - bucket_count() / 8;
  }

  /// Destroys every element; keeps the bucket storage for reuse.
  void clear() noexcept {
    destroy_all();
    size_ = 0;
    for (auto& bucket : buckets_) bucket.key = kEmptyKey;
  }

  /// Ensures `n` total elements fit without rehashing (and therefore
  /// without invalidating value pointers).
  void reserve(std::size_t n) {
    if (n > capacity()) rehash(buckets_for(n));
  }

  [[nodiscard]] V* find(Key key) noexcept {
    const std::size_t i = locate(key);
    return i == npos ? nullptr : buckets_[i].value_ptr();
  }
  [[nodiscard]] const V* find(Key key) const noexcept {
    const std::size_t i = locate(key);
    return i == npos ? nullptr : buckets_[i].value_ptr();
  }
  [[nodiscard]] bool contains(Key key) const noexcept {
    return locate(key) != npos;
  }

  /// Inserts value_args-constructed V under `key` if absent. Returns the
  /// value pointer and whether an insertion happened (existing value is
  /// left untouched otherwise). Throws std::invalid_argument on key 0.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(Key key, Args&&... args) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("FlatMap: key 0 is reserved");
    }
    // Probe for the key BEFORE considering growth: a duplicate insert is a
    // no-op and must not rehash (it would invalidate every outstanding
    // value pointer without inserting anything).
    if (const std::size_t existing = locate(key); existing != npos) {
      return {buckets_[existing].value_ptr(), false};
    }
    if (size_ + 1 > capacity()) rehash(buckets_for(size_ + 1));
    std::size_t i = home(key);
    while (buckets_[i].key != kEmptyKey) i = (i + 1) & mask_;
    buckets_[i].key = key;
    ::new (static_cast<void*>(buckets_[i].value_ptr()))
        V(std::forward<Args>(args)...);
    ++size_;
    return {buckets_[i].value_ptr(), true};
  }

  /// Removes `key`; false if absent. Backward-shift deletion keeps probe
  /// chains dense (no tombstones to skip on later lookups).
  bool erase(Key key) noexcept {
    std::size_t hole = locate(key);
    if (hole == npos) return false;
    buckets_[hole].value_ptr()->~V();
    std::size_t i = hole;
    while (true) {
      i = (i + 1) & mask_;
      const Key moving = buckets_[i].key;
      if (moving == kEmptyKey) break;
      // The element at i can fill the hole iff its home bucket does not
      // lie strictly between the hole and i (cyclically) — otherwise the
      // move would break its own probe chain.
      const std::size_t distance_from_home = (i - home(moving)) & mask_;
      const std::size_t distance_from_hole = (i - hole) & mask_;
      if (distance_from_home >= distance_from_hole) {
        buckets_[hole].key = moving;
        ::new (static_cast<void*>(buckets_[hole].value_ptr()))
            V(std::move(*buckets_[i].value_ptr()));
        buckets_[i].value_ptr()->~V();
        hole = i;
      }
    }
    buckets_[hole].key = kEmptyKey;
    --size_;
    return true;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& bucket : buckets_) {
      if (bucket.key != kEmptyKey) f(bucket.key, *bucket.value_ptr());
    }
  }
  template <typename F>
  void for_each(F&& f) {
    for (auto& bucket : buckets_) {
      if (bucket.key != kEmptyKey) f(bucket.key, *bucket.value_ptr());
    }
  }

 private:
  struct Bucket {
    Key key = kEmptyKey;
    alignas(V) std::byte storage[sizeof(V)];

    [[nodiscard]] V* value_ptr() noexcept {
      return std::launder(reinterpret_cast<V*>(storage));
    }
    [[nodiscard]] const V* value_ptr() const noexcept {
      return std::launder(reinterpret_cast<const V*>(storage));
    }
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinBuckets = 16;

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;  ///< bucket_count - 1 (power of two)
  std::size_t size_ = 0;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

  [[nodiscard]] static std::size_t mix(Key key) noexcept {
    std::uint64_t z = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  [[nodiscard]] std::size_t home(Key key) const noexcept {
    return mix(key) & mask_;
  }

  /// Bucket index of `key`, or npos. Safe on an empty table.
  [[nodiscard]] std::size_t locate(Key key) const noexcept {
    if (buckets_.empty() || key == kEmptyKey) return npos;
    std::size_t i = home(key);
    while (true) {
      if (buckets_[i].key == key) return i;
      if (buckets_[i].key == kEmptyKey) return npos;
      i = (i + 1) & mask_;
    }
  }

  /// Smallest power-of-two table keeping `n` elements under max load.
  [[nodiscard]] static std::size_t buckets_for(std::size_t n) {
    std::size_t buckets = kMinBuckets;
    while (buckets - buckets / 8 < n) buckets *= 2;
    return buckets;
  }

  void rehash(std::size_t new_bucket_count) {
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_bucket_count, Bucket{});
    mask_ = new_bucket_count - 1;
    for (auto& bucket : old) {
      if (bucket.key == kEmptyKey) continue;
      std::size_t i = home(bucket.key);
      while (buckets_[i].key != kEmptyKey) i = (i + 1) & mask_;
      buckets_[i].key = bucket.key;
      ::new (static_cast<void*>(buckets_[i].value_ptr()))
          V(std::move(*bucket.value_ptr()));
      bucket.value_ptr()->~V();
    }
  }

  void destroy_all() noexcept {
    if constexpr (!std::is_trivially_destructible_v<V>) {
      for (auto& bucket : buckets_) {
        if (bucket.key != kEmptyKey) bucket.value_ptr()->~V();
      }
    }
  }
};

}  // namespace psc::util
