// Portable SIMD kernels for the hot matching loops (util layer, no
// dependencies above it).
//
// Backend selection is COMPILE-TIME: AVX2 when the translation unit is
// built with -mavx2 (CMake adds it on x86-64 unless -DPSC_NO_SIMD=ON),
// NEON on AArch64, scalar otherwise. `kBackend` / `backend_name()` expose
// the choice at runtime so benches can record which kernel produced a
// number, and the scalar implementations are ALWAYS compiled (they are the
// `kScalar` bodies) so a SIMD build can still run the ablation path via
// IndexConfig::use_simd = false. Decision-for-decision identity between
// backends is a hard contract, property-tested by tests/simd_kernel_test:
//
//   * the bitset kernels are pure word arithmetic — identical on every
//     backend by construction;
//   * the double-compare kernels use ORDERED-QUIET predicates
//     (_CMP_GE_OQ / _CMP_LE_OQ), which match the scalar `>=` / `<=`
//     semantics bit-for-bit, including every NaN case (NaN compares
//     false).
//
// All word-array kernels require 32-byte-aligned pointers and a word count
// that is a multiple of kBlockWords; AlignedVector + padded_words()
// provide both. The double kernels require 32-byte-aligned records.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if !defined(PSC_NO_SIMD) && defined(__AVX2__)
#define PSC_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(PSC_NO_SIMD) && defined(__ARM_NEON)
#define PSC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace psc::simd {

enum class Backend { kScalar, kNEON, kAVX2 };

#if defined(PSC_SIMD_AVX2)
inline constexpr Backend kBackend = Backend::kAVX2;
#elif defined(PSC_SIMD_NEON)
inline constexpr Backend kBackend = Backend::kNEON;
#else
inline constexpr Backend kBackend = Backend::kScalar;
#endif

[[nodiscard]] constexpr const char* backend_name() noexcept {
  switch (kBackend) {
    case Backend::kAVX2: return "avx2";
    case Backend::kNEON: return "neon";
    case Backend::kScalar: return "scalar";
  }
  return "scalar";
}

/// True when a vector backend was compiled in (the runtime-dispatch query:
/// callers pair it with their own use_simd knob to pick a path).
[[nodiscard]] constexpr bool vectorized() noexcept {
  return kBackend != Backend::kScalar;
}

using Word = std::uint64_t;
inline constexpr std::size_t kBlockWords = 4;   ///< 256-bit block
inline constexpr std::size_t kAlignment = 32;

/// Rounds a word count up to a whole number of blocks.
[[nodiscard]] constexpr std::size_t padded_words(std::size_t words) noexcept {
  return (words + kBlockWords - 1) & ~(kBlockWords - 1);
}

/// Minimal 32-byte-aligned allocator so std::vector storage can feed the
/// aligned-load kernels directly.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}
  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

inline void prefetch(const void* p) noexcept {
#if defined(PSC_SIMD_AVX2)
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
#else
  __builtin_prefetch(p);
#endif
}

/// acc[w] &= row[w] over `words` (block multiple); returns true iff any bit
/// survives — the fused sweep + early-exit test of IntervalIndex::stab.
[[nodiscard]] inline bool and_into(Word* acc, const Word* row,
                                   std::size_t words) noexcept {
#if defined(PSC_SIMD_AVX2)
  __m256i any = _mm256_setzero_si256();
  for (std::size_t w = 0; w < words; w += kBlockWords) {
    const __m256i a =
        _mm256_and_si256(_mm256_load_si256(reinterpret_cast<const __m256i*>(acc + w)),
                         _mm256_load_si256(reinterpret_cast<const __m256i*>(row + w)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + w), a);
    any = _mm256_or_si256(any, a);
  }
  return _mm256_testz_si256(any, any) == 0;
#elif defined(PSC_SIMD_NEON)
  uint64x2_t any = vdupq_n_u64(0);
  for (std::size_t w = 0; w < words; w += 2) {
    const uint64x2_t a = vandq_u64(vld1q_u64(acc + w), vld1q_u64(row + w));
    vst1q_u64(acc + w, a);
    any = vorrq_u64(any, a);
  }
  return (vgetq_lane_u64(any, 0) | vgetq_lane_u64(any, 1)) != 0;
#else
  Word any = 0;
  for (std::size_t w = 0; w < words; ++w) {
    acc[w] &= row[w];
    any |= acc[w];
  }
  return any != 0;
#endif
}

/// Paired-lane variant for an UNTRUSTED attribute (see the IntervalIndex
/// certainty-lane contract): even (possible) words AND normally, odd
/// (certain) words are forced to zero. Returns true iff any possible bit
/// survives.
[[nodiscard]] inline bool and_into_even(Word* acc, const Word* row,
                                        std::size_t words) noexcept {
  Word any = 0;
  for (std::size_t w = 0; w < words; w += 2) {
    acc[w] &= row[w];
    acc[w + 1] = 0;
    any |= acc[w];
  }
  return any != 0;
}

/// Zeroes the odd (certainty) words of a paired accumulator.
inline void zero_odd_words(Word* acc, std::size_t words) noexcept {
  for (std::size_t w = 1; w < words; w += 2) acc[w] = 0;
}

/// acc[w] |= row[w] over `words` (block multiple).
inline void or_into(Word* acc, const Word* row, std::size_t words) noexcept {
#if defined(PSC_SIMD_AVX2)
  for (std::size_t w = 0; w < words; w += kBlockWords) {
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(acc + w),
        _mm256_or_si256(_mm256_load_si256(reinterpret_cast<const __m256i*>(acc + w)),
                        _mm256_load_si256(reinterpret_cast<const __m256i*>(row + w))));
  }
#elif defined(PSC_SIMD_NEON)
  for (std::size_t w = 0; w < words; w += 2) {
    vst1q_u64(acc + w, vorrq_u64(vld1q_u64(acc + w), vld1q_u64(row + w)));
  }
#else
  for (std::size_t w = 0; w < words; ++w) acc[w] |= row[w];
#endif
}

/// acc[w] &= ~row[w] over `words` (block multiple).
inline void andnot_into(Word* acc, const Word* row, std::size_t words) noexcept {
#if defined(PSC_SIMD_AVX2)
  for (std::size_t w = 0; w < words; w += kBlockWords) {
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(acc + w),
        _mm256_andnot_si256(
            _mm256_load_si256(reinterpret_cast<const __m256i*>(row + w)),
            _mm256_load_si256(reinterpret_cast<const __m256i*>(acc + w))));
  }
#elif defined(PSC_SIMD_NEON)
  for (std::size_t w = 0; w < words; w += 2) {
    vst1q_u64(acc + w, vbicq_u64(vld1q_u64(acc + w), vld1q_u64(row + w)));
  }
#else
  for (std::size_t w = 0; w < words; ++w) acc[w] &= ~row[w];
#endif
}

/// True iff every word is zero (block multiple).
[[nodiscard]] inline bool testz(const Word* p, std::size_t words) noexcept {
#if defined(PSC_SIMD_AVX2)
  __m256i any = _mm256_setzero_si256();
  for (std::size_t w = 0; w < words; w += kBlockWords) {
    any = _mm256_or_si256(
        any, _mm256_load_si256(reinterpret_cast<const __m256i*>(p + w)));
  }
  return _mm256_testz_si256(any, any) != 0;
#else
  Word any = 0;
  for (std::size_t w = 0; w < words; ++w) any |= p[w];
  return any == 0;
#endif
}

/// Set-bit count over `words`.
[[nodiscard]] inline std::uint64_t popcount(const Word* p,
                                            std::size_t words) noexcept {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(p[w]));
  }
  return total;
}

/// One 64-byte verify record: four interval lows then four highs. Padding
/// lanes carry lo = -inf / hi = +inf so they pass every real value.
/// contains4: point[i] in [rec[i], rec[i+4]] for all four lanes.
/// Ordered-quiet compares — any NaN operand fails the lane, exactly like
/// the scalar `>=` / `<=` the ablation path uses.
[[nodiscard]] inline bool contains4(const double* point4,
                                    const double* rec8) noexcept {
#if defined(PSC_SIMD_AVX2)
  const __m256d p = _mm256_load_pd(point4);
  const __m256d ge = _mm256_cmp_pd(p, _mm256_load_pd(rec8), _CMP_GE_OQ);
  const __m256d le = _mm256_cmp_pd(p, _mm256_load_pd(rec8 + 4), _CMP_LE_OQ);
  return _mm256_movemask_pd(_mm256_and_pd(ge, le)) == 0xf;
#elif defined(PSC_SIMD_NEON)
  const float64x2_t p0 = vld1q_f64(point4), p1 = vld1q_f64(point4 + 2);
  const uint64x2_t ok0 = vandq_u64(vcgeq_f64(p0, vld1q_f64(rec8)),
                                   vcleq_f64(p0, vld1q_f64(rec8 + 4)));
  const uint64x2_t ok1 = vandq_u64(vcgeq_f64(p1, vld1q_f64(rec8 + 2)),
                                   vcleq_f64(p1, vld1q_f64(rec8 + 6)));
  const uint64x2_t ok = vandq_u64(ok0, ok1);
  return (vgetq_lane_u64(ok, 0) & vgetq_lane_u64(ok, 1)) != 0;
#else
  for (int i = 0; i < 4; ++i) {
    if (!(point4[i] >= rec8[i] && point4[i] <= rec8[i + 4])) return false;
  }
  return true;
#endif
}

/// intersects4: [qlo[i], qhi[i]] overlaps [rec[i], rec[i+4]] for all four
/// lanes (closed intervals: qhi >= lo AND qlo <= hi).
[[nodiscard]] inline bool intersects4(const double* qlo4, const double* qhi4,
                                      const double* rec8) noexcept {
#if defined(PSC_SIMD_AVX2)
  const __m256d ge = _mm256_cmp_pd(_mm256_load_pd(qhi4),
                                   _mm256_load_pd(rec8), _CMP_GE_OQ);
  const __m256d le = _mm256_cmp_pd(_mm256_load_pd(qlo4),
                                   _mm256_load_pd(rec8 + 4), _CMP_LE_OQ);
  return _mm256_movemask_pd(_mm256_and_pd(ge, le)) == 0xf;
#elif defined(PSC_SIMD_NEON)
  const uint64x2_t ok0 =
      vandq_u64(vcgeq_f64(vld1q_f64(qhi4), vld1q_f64(rec8)),
                vcleq_f64(vld1q_f64(qlo4), vld1q_f64(rec8 + 4)));
  const uint64x2_t ok1 =
      vandq_u64(vcgeq_f64(vld1q_f64(qhi4 + 2), vld1q_f64(rec8 + 2)),
                vcleq_f64(vld1q_f64(qlo4 + 2), vld1q_f64(rec8 + 6)));
  const uint64x2_t ok = vandq_u64(ok0, ok1);
  return (vgetq_lane_u64(ok, 0) & vgetq_lane_u64(ok, 1)) != 0;
#else
  for (int i = 0; i < 4; ++i) {
    if (!(qhi4[i] >= rec8[i] && qlo4[i] <= rec8[i + 4])) return false;
  }
  return true;
#endif
}

}  // namespace psc::simd
