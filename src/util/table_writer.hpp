// Aligned-console and CSV table output for the benchmark harnesses.
// Each figure bench prints the same series the paper plots, as a
// human-readable aligned table plus an optional machine-readable CSV file.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace psc::util {

/// One table cell: string, integer, or double (formatted with precision).
using Cell = std::variant<std::string, long long, double>;

/// Collects rows and renders them column-aligned to a stream and/or as CSV.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers, int precision = 6);

  TableWriter& add_row(std::vector<Cell> cells);

  /// Renders an aligned table (with a header rule) to `out`.
  void print(std::ostream& out) const;

  /// Writes RFC-4180-ish CSV (values with commas/quotes are quoted).
  void write_csv(const std::string& path) const;
  void write_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_;

  [[nodiscard]] std::string format(const Cell& cell) const;
};

/// Prints a section banner (figure id + description) used by every bench.
void print_banner(std::ostream& out, std::string_view title,
                  std::string_view subtitle = {});

}  // namespace psc::util
