// Timer is header-only; this translation unit exists so the target has a
// stable archive even if all other sources become header-only later.
#include "util/timer.hpp"
