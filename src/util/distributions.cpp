#include "util/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace psc::util {

ZipfSampler::ZipfSampler(std::size_t n, double skew) : skew_(skew) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (skew < 0.0) throw std::invalid_argument("ZipfSampler: skew must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    acc += 1.0 / std::pow(static_cast<double>(rank + 1), skew);
    cdf_[rank] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double hi = cdf_[rank];
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return hi - lo;
}

ParetoSampler::ParetoSampler(double scale, double shape)
    : scale_(scale), shape_(shape) {
  if (scale <= 0.0) throw std::invalid_argument("ParetoSampler: scale must be > 0");
  if (shape <= 0.0) throw std::invalid_argument("ParetoSampler: shape must be > 0");
}

double ParetoSampler::sample(Rng& rng) const {
  // Inverse-CDF: X = x_m / U^(1/alpha), U ~ Uniform(0,1]. Guard U == 0.
  double u = 1.0 - rng.next_double();  // in (0, 1]
  return scale_ / std::pow(u, 1.0 / shape_);
}

NormalSampler::NormalSampler(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  if (stddev < 0.0) throw std::invalid_argument("NormalSampler: stddev must be >= 0");
}

double NormalSampler::sample(Rng& rng) const {
  // Box–Muller; one variate per call keeps the stream position deterministic
  // regardless of caller interleaving.
  const double u1 = 1.0 - rng.next_double();  // (0, 1], avoids log(0)
  const double u2 = rng.next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean_ + stddev_ * radius * std::cos(2.0 * std::numbers::pi * u2);
}

double NormalSampler::sample_clamped(Rng& rng, double lo, double hi) const {
  assert(lo <= hi);
  return std::clamp(sample(rng), lo, hi);
}

}  // namespace psc::util
