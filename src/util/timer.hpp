// Wall-clock timing helper for harness progress reporting.
#pragma once

#include <chrono>

namespace psc::util {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace psc::util
