// Byte-wise LSD radix sort for subscription-id buffers.
//
// The publish hot path sorts ~10k matched ids per publication; a
// comparison sort there is the single biggest line item (measured ~40% of
// the whole publish in bench/perf_gate's broker fixture). Ids are dense
// small integers, so an LSD counting sort over only the bytes that are
// actually populated beats std::sort by roughly an order of magnitude at
// those sizes while producing the exact same ascending order.
//
// Deterministic: output depends only on the multiset of keys. The caller
// provides the ping-pong scratch buffer so steady-state sorting allocates
// nothing once warm.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace psc::util {

/// Sorts `keys` ascending in place, using `scratch` as the ping-pong
/// buffer (resized as needed; contents clobbered). Small buffers fall
/// back to std::sort — below ~64 elements the counting passes cost more
/// than they save.
inline void radix_sort_u64(std::vector<std::uint64_t>& keys,
                           std::vector<std::uint64_t>& scratch) {
  const std::size_t n = keys.size();
  if (n < 64) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  std::uint64_t max_key = 0;
  for (const std::uint64_t key : keys) max_key = std::max(max_key, key);

  scratch.resize(n);
  std::uint64_t* src = keys.data();
  std::uint64_t* dst = scratch.data();
  std::size_t counts[256];
  for (std::uint32_t shift = 0; shift < 64; shift += 8) {
    if ((max_key >> shift) == 0) break;  // higher bytes are all zero
    std::fill(std::begin(counts), std::end(counts), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[(src[i] >> shift) & 0xff];
    }
    if (counts[(src[0] >> shift) & 0xff] == n) {
      continue;  // every key shares this byte: the pass is a no-op
    }
    std::size_t offset = 0;
    for (std::size_t bucket = 0; bucket < 256; ++bucket) {
      const std::size_t count = counts[bucket];
      counts[bucket] = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[counts[(src[i] >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != keys.data()) {
    std::copy(src, src + n, keys.data());
  }
}

}  // namespace psc::util
