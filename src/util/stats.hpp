// Running statistics and percentile summaries used by the benchmark
// harnesses to aggregate per-run measurements (iteration counts, set sizes,
// reduction ratios) into the series the paper plots.
#pragma once

#include <cstddef>
#include <vector>

namespace psc::util {

/// Welford-style online accumulator: numerically stable mean/variance with
/// O(1) memory. Suitable for millions of observations.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double stderr_mean() const noexcept;  ///< stddev / sqrt(n)
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples for exact percentiles. Use when n is modest
/// (the bench harnesses collect at most a few thousand samples per cell).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    // A percentile query sorts the sample buffer in place; a later add
    // breaks that order, so the next query must re-sort. Without this
    // reset an add-after-percentile sequence reads percentiles of a
    // partially sorted vector (regression: tests/util_test.cpp).
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Percentile in [0, 100] by linear interpolation; requires count() > 0.
  [[nodiscard]] double percentile(double pct) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void ensure_sorted() const;
};

}  // namespace psc::util
