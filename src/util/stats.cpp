#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psc::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::percentile(double pct) const {
  if (samples_.empty()) throw std::logic_error("SampleSet::percentile on empty set");
  ensure_sorted();
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace psc::util
