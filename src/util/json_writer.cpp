#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace psc::util {

void JsonWriter::comma_and_indent() {
  if (!stack_.empty()) {
    if (stack_.back()) out_ << ',';
    stack_.back() = true;
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  comma_and_indent();
  write_escaped(key);
  out_ << ": ";
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\t': out_ << "\\t"; break;
      case '\r': out_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

void JsonWriter::write_double(double number) {
  if (!std::isfinite(number)) {
    out_ << "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", number);
  out_ << buf;
}

void JsonWriter::begin_object() {
  comma_and_indent();
  out_ << '{';
  stack_.push_back(false);
}

void JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ << '{';
  stack_.push_back(false);
}

void JsonWriter::end_object() {
  const bool had_members = !stack_.empty() && stack_.back();
  if (!stack_.empty()) stack_.pop_back();
  if (had_members) {
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
  }
  out_ << '}';
}

void JsonWriter::begin_array() {
  comma_and_indent();
  out_ << '[';
  stack_.push_back(false);
}

void JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ << '[';
  stack_.push_back(false);
}

void JsonWriter::end_array() {
  const bool had_members = !stack_.empty() && stack_.back();
  if (!stack_.empty()) stack_.pop_back();
  if (had_members) {
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
  }
  out_ << ']';
}

void JsonWriter::member(std::string_view key, std::string_view value) {
  key_prefix(key);
  write_escaped(value);
}

void JsonWriter::member(std::string_view key, double value) {
  key_prefix(key);
  write_double(value);
}

void JsonWriter::member(std::string_view key, std::int64_t value) {
  key_prefix(key);
  out_ << value;
}

void JsonWriter::member(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  out_ << value;
}

void JsonWriter::member(std::string_view key, bool value) {
  key_prefix(key);
  out_ << (value ? "true" : "false");
}

void JsonWriter::value(std::string_view element) {
  comma_and_indent();
  write_escaped(element);
}

void JsonWriter::value(double element) {
  comma_and_indent();
  write_double(element);
}

void JsonWriter::value(std::uint64_t element) {
  comma_and_indent();
  out_ << element;
}

}  // namespace psc::util
