#include "util/table_writer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace psc::util {

TableWriter::TableWriter(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  if (headers_.empty()) throw std::invalid_argument("TableWriter: no headers");
}

std::string TableWriter::format(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

TableWriter& TableWriter::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TableWriter: row width mismatch");
  }
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const auto& cell : cells) row.push_back(format(cell));
  rows_.push_back(std::move(row));
  return *this;
}

void TableWriter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c])) << row[c]
          << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string escaped = "\"";
  for (char ch : value) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

void TableWriter::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void TableWriter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TableWriter: cannot open " + path);
  write_csv(out);
}

void print_banner(std::ostream& out, std::string_view title,
                  std::string_view subtitle) {
  out << "\n== " << title << " ==\n";
  if (!subtitle.empty()) out << subtitle << "\n";
  out << "\n";
}

}  // namespace psc::util
