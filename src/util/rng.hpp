// Deterministic, fast pseudo-random number generation for simulations.
//
// All experiments in this repository must be reproducible from a single
// 64-bit seed, so we avoid std::random_device and implementation-defined
// std::default_random_engine. Rng wraps xoshiro256++ seeded via splitmix64,
// the de-facto standard combination for statistically solid, non-crypto
// simulation randomness.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace psc::util {

/// splitmix64 step; used to expand a 64-bit seed into xoshiro state and as a
/// standalone hash/mixer for deriving independent stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator so it
/// can also drive <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when equal.
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Derives a new generator with an independent stream, deterministically.
  [[nodiscard]] Rng split() noexcept {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

  /// Full 256-bit generator state, for checkpoint/restore: a generator
  /// restored via set_state continues the exact output stream of the one
  /// captured via state() (the broker snapshot format relies on this to
  /// keep probabilistic coverage decisions replay-identical).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace psc::util
