#include "util/rng.hpp"

#ifdef __SIZEOF_INT128__
using uint128_t = unsigned __int128;
#endif

namespace psc::util {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
#ifdef __SIZEOF_INT128__
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  uint128_t m = static_cast<uint128_t>(x) * static_cast<uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<uint128_t>(x) * static_cast<uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
#else
  // Portable fallback: rejection sampling over the largest multiple of bound.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return x % bound;
#endif
}

}  // namespace psc::util
