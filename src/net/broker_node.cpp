#include "net/broker_node.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/rng.hpp"

namespace psc::net {

namespace {

std::uint64_t derive_broker_seed(std::uint64_t network_seed,
                                 routing::BrokerId id) {
  // Must match BrokerNetwork::make_broker, or TCP brokers would make
  // different (kGroup-policy) coverage decisions than their sim twins.
  std::uint64_t seed = network_seed ^ (0x9e3779b97f4a7c15ULL * (id + 1));
  return util::splitmix64(seed);
}

}  // namespace

BrokerNode::BrokerNode(BrokerNodeOptions options)
    : broker_(options.id, options.store,
              derive_broker_seed(options.network_seed, options.id),
              options.match_shards),
      transport_(options.transport) {
  for (const routing::BrokerId neighbor : options.transport.neighbors) {
    broker_.add_neighbor(neighbor);
  }
  transport_.set_frame_handler(
      [this](routing::BrokerId from, routing::BrokerId,
             const wire::Announcement& msg) { dispatch_frame(from, msg); });
  transport_.set_client_handler(
      [this](const NetMessage& msg) { handle_client_op(msg); });
  transport_.set_peer_death_handler(
      [this](routing::BrokerId peer) { handle_peer_death(peer); });
  transport_.set_ready_handler([this]() {
    transport_.send_to_client(
        make_event(EventKind::kReady, transport_.self(), 0));
  });
}

void BrokerNode::run() {
  transport_.connect_peers();
  transport_.run();
}

void BrokerNode::dispatch_frame(routing::BrokerId from,
                                const wire::Announcement& msg) {
  // Mirror of BrokerNetwork::dispatch_frame.
  const routing::Origin origin{false, from};
  switch (msg.kind) {
    case wire::Announcement::Kind::kSubscribe:
      deliver_subscription(msg.sub, origin, msg.expiry);
      break;
    case wire::Announcement::Kind::kUnsubscribe:
      deliver_unsubscription(msg.id, origin);
      break;
    case wire::Announcement::Kind::kPublication:
      deliver_publication(msg.pub, origin, msg.token);
      break;
    case wire::Announcement::Kind::kMembership:
      break;  // membership ops are driver-issued, never link traffic
  }
}

void BrokerNode::deliver_subscription(const core::Subscription& sub,
                                      const routing::Origin& origin,
                                      std::optional<double> expiry) {
  const std::vector<routing::BrokerId> forward_to =
      broker_.handle_subscription(sub, origin);
  if (expiry) {
    // Accepted for wire parity; cluster traces keep TTLs off (sim time and
    // wall time are not comparable), so this timer is never armed there.
    const auto id = sub.id();
    (void)transport_.schedule_timer_at(*expiry, [this, id]() {
      const auto reannounce = broker_.handle_expiry(id);
      for (const auto& [next, promoted] : reannounce) {
        wire::Announcement msg;
        msg.kind = wire::Announcement::Kind::kSubscribe;
        msg.from = transport_.self();
        msg.sub = promoted;
        transport_.send_frame(transport_.self(), next, msg);
      }
    });
  }
  for (const routing::BrokerId next : forward_to) {
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kSubscribe;
    msg.from = transport_.self();
    msg.sub = sub;
    msg.expiry = expiry;
    transport_.send_frame(transport_.self(), next, msg);
  }
}

void BrokerNode::deliver_unsubscription(core::SubscriptionId id,
                                        const routing::Origin& origin) {
  const routing::Broker::UnsubscriptionOutcome outcome =
      broker_.handle_unsubscription(id, origin);
  for (const routing::BrokerId next : outcome.forward_to) {
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kUnsubscribe;
    msg.from = transport_.self();
    msg.id = id;
    transport_.send_frame(transport_.self(), next, msg);
  }
  // Promotions travel as fresh subscription announcements, like the sim's
  // schedule_reannounce. No registry TTL lookup here: the TCP vocabulary
  // is TTL-free, so every promoted subscription is live with no expiry.
  for (const auto& [next, sub] : outcome.reannounce) {
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kSubscribe;
    msg.from = transport_.self();
    msg.sub = sub;
    transport_.send_frame(transport_.self(), next, msg);
  }
}

void BrokerNode::deliver_publication(const core::Publication& pub,
                                     const routing::Origin& origin,
                                     std::uint64_t token) {
  if (!broker_.mark_publication_seen(token)) return;
  const routing::Broker::PublicationRoute& route =
      broker_.handle_publication(pub, origin, publish_scratch_);
  transport_.add_delivered(route.local_matches);
  for (const routing::BrokerId next : route.destinations) {
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kPublication;
    msg.from = transport_.self();
    msg.pub = pub;
    msg.token = token;
    transport_.send_frame(transport_.self(), next, msg);
  }
}

void BrokerNode::handle_client_op(const NetMessage& msg) {
  const routing::Origin local{true, routing::kInvalidBroker};
  if (msg.op == ClientOpKind::kShutdown) {
    transport_.stop();
    return;
  }
  const std::uint64_t op_id = msg.op_id;
  transport_.begin_root();
  switch (msg.op) {
    case ClientOpKind::kSubscribe:
      deliver_subscription(msg.sub, local, std::nullopt);
      break;
    case ClientOpKind::kUnsubscribe:
      deliver_unsubscription(msg.id, local);
      break;
    case ClientOpKind::kPublish:
      // The token is driver-assigned (globally unique without broker
      // coordination); marking it seen at the source mirrors publish_one.
      deliver_publication(msg.pub, local, msg.token);
      break;
    case ClientOpKind::kShutdown:
      break;  // handled above
  }
  transport_.end_root([this, op_id](std::vector<core::SubscriptionId> ids) {
    // The root's merged ids arrive in cascade-completion order; the
    // supervisor compares sets, so sort/dedup here once.
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    NetMessage result;
    result.kind = NetMessage::Kind::kOpResult;
    result.op_id = op_id;
    result.ids = std::move(ids);
    transport_.send_to_client(result);
  });
}

void BrokerNode::handle_peer_death(routing::BrokerId peer) {
  // Mirror of BrokerNetwork::detach_and_purge: drop the link, then purge
  // every route learned over it with the normal unsubscription cascade in
  // ascending id order. The kPeerDown event fires only when the purge's
  // cascade tree has quiesced, so the supervisor can serialize repair
  // against in-flight traffic.
  broker_.remove_neighbor(peer);
  std::vector<core::SubscriptionId> ids =
      broker_.subscriptions_from(routing::Origin{false, peer});
  std::sort(ids.begin(), ids.end());
  transport_.begin_root();
  for (const core::SubscriptionId sid : ids) {
    deliver_unsubscription(sid, routing::Origin{false, peer});
  }
  const routing::BrokerId self = transport_.self();
  transport_.end_root([this, self, peer](std::vector<core::SubscriptionId>) {
    transport_.send_to_client(make_event(EventKind::kPeerDown, self, peer));
  });
}

int run_brokerd(int argc, const char* const* argv) {
  // A peer SIGKILLed mid-write must surface as EPIPE (handled by the
  // failed-connection sweep), not kill this process too.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    const util::Flags flags(argc, argv);
    BrokerNodeOptions options;
    options.id = static_cast<routing::BrokerId>(flags.get_int("id", 0));
    options.network_seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 0xfeedbeefLL));
    options.match_shards =
        static_cast<std::size_t>(flags.get_int("match-shards", 1));
    const std::string policy = flags.get_string("policy", "exact");
    if (policy == "exact") {
      options.store.policy = store::CoveragePolicy::kExact;
    } else if (policy == "none") {
      options.store.policy = store::CoveragePolicy::kNone;
    } else if (policy == "pairwise") {
      options.store.policy = store::CoveragePolicy::kPairwise;
    } else if (policy == "group") {
      options.store.policy = store::CoveragePolicy::kGroup;
    } else {
      std::fprintf(stderr, "psc_brokerd: unknown --policy '%s'\n",
                   policy.c_str());
      return 2;
    }
    options.transport.self = options.id;
    options.transport.listen_fd =
        static_cast<int>(flags.get_int("listen-fd", -1));
    for (std::stringstream in(flags.get_string("neighbors", ""));
         in.good() && in.peek() != std::stringstream::traits_type::eof();) {
      std::string item;
      std::getline(in, item, ',');
      if (!item.empty()) {
        options.transport.neighbors.push_back(
            static_cast<routing::BrokerId>(std::stoul(item)));
      }
    }
    for (std::stringstream in(flags.get_string("ports", ""));
         in.good() && in.peek() != std::stringstream::traits_type::eof();) {
      std::string item;
      std::getline(in, item, ',');
      if (!item.empty()) {
        options.transport.ports.push_back(
            static_cast<std::uint16_t>(std::stoul(item)));
      }
    }
    BrokerNode node(std::move(options));
    node.run();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "psc_brokerd: fatal: %s\n", error.what());
    return 1;
  }
}

}  // namespace psc::net
