#include "net/cluster.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

namespace psc::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("net::Cluster: " + what);
}

std::string join_csv(const std::vector<std::uint32_t>& values) {
  std::string out;
  for (const std::uint32_t v : values) {
    if (!out.empty()) out.push_back(',');
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  if (options_.brokers == 0) fail("brokers must be > 0");
  // A dead broker's socket raises EPIPE/ECONNRESET on the survivors, never
  // a process-killing signal.
  ::signal(SIGPIPE, SIG_IGN);
  members_.resize(options_.brokers);
  for (const auto& [a, b] : options_.links) {
    if (a >= options_.brokers || b >= options_.brokers || a == b) {
      fail("link endpoint out of range");
    }
    members_[a].neighbors.push_back(b);
    members_[b].neighbors.push_back(a);
  }
}

Cluster::~Cluster() {
  for (Member& member : members_) reap(member);
}

void Cluster::reap(Member& member) noexcept {
  if (member.pid > 0) {
    ::kill(member.pid, SIGKILL);
    int status = 0;
    (void)::waitpid(member.pid, &status, 0);
    member.pid = -1;
  }
  member.conn.reset();
  member.alive = false;
}

void Cluster::spawn(routing::BrokerId id) {
  Member& member = members_[id];
  std::vector<std::uint32_t> ports;
  ports.reserve(members_.size());
  for (const Member& m : members_) ports.push_back(m.port);

  std::vector<std::string> args;
  args.push_back(options_.brokerd_path);
  args.push_back("--id=" + std::to_string(id));
  args.push_back("--listen-fd=" + std::to_string(member.listener.get()));
  args.push_back("--seed=" + std::to_string(options_.seed));
  args.push_back("--match-shards=" + std::to_string(options_.match_shards));
  args.push_back("--policy=" + options_.policy);
  args.push_back("--neighbors=" + join_csv(member.neighbors));
  args.push_back("--ports=" + join_csv(ports));

  const int pid = ::fork();
  if (pid < 0) fail("fork failed");
  if (pid == 0) {
    // Child: keep only OUR listener; every other inherited listener would
    // hold dead brokers' accept queues open forever.
    for (std::size_t other = 0; other < members_.size(); ++other) {
      if (other != id) {
        const int fd = members_[other].listener.get();
        if (fd >= 0) ::close(fd);
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(options_.brokerd_path.c_str(), argv.data());
    // Exec failed: exit hard; the supervisor times out waiting for ready.
    ::_exit(127);
  }
  member.pid = pid;
}

void Cluster::start() {
  if (started_) fail("start called twice");
  started_ = true;
  // Bind every listener before any fork: the accept queues exist before
  // any broker (or the supervisor) dials anything.
  for (Member& member : members_) {
    auto [fd, port] = listen_loopback();
    member.listener = std::move(fd);
    member.port = port;
  }
  for (routing::BrokerId id = 0; id < members_.size(); ++id) spawn(id);
  // The children own the listeners now.
  for (Member& member : members_) member.listener.reset();

  for (Member& member : members_) {
    member.conn = connect_loopback(member.port);
    send_message(member, make_hello(kClientSender));
  }
  // A broker reports ready only when all its peer links are handshaken, so
  // N readies == the whole mesh is up.
  for (Member& member : members_) {
    while (!member.ready) {
      const NetMessage msg = read_message(member);
      if (msg.kind == NetMessage::Kind::kEvent &&
          msg.event == EventKind::kReady) {
        member.ready = true;
      } else if (msg.kind == NetMessage::Kind::kHello) {
        // The broker's own hello on the client connection; version-check.
        if (!handshake_version_ok(msg.version)) {
          fail("broker announced unsupported codec version");
        }
      } else {
        fail("unexpected message while waiting for ready");
      }
    }
  }
}

void Cluster::send_message(Member& member, const NetMessage& msg) {
  if (!member.conn.valid()) fail("send to a dead broker");
  const std::vector<std::uint8_t> framed = encode_frame(msg);
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::write(member.conn.get(), framed.data() + off, framed.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail(std::string("write failed: ") + std::strerror(errno));
  }
}

NetMessage Cluster::read_message(Member& member) {
  std::vector<std::uint8_t> payload;
  if (member.reader.next(payload)) return decode_frame(payload);
  if (!member.conn.valid()) fail("read from a dead broker");
  const int budget_ms = static_cast<int>(options_.timeout_s * 1000.0);
  int waited_ms = 0;
  std::uint8_t chunk[64 * 1024];
  while (true) {
    pollfd pfd{member.conn.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("poll failed");
    }
    if (ready == 0) {
      waited_ms += 100;
      if (waited_ms >= budget_ms) fail("timed out waiting for a broker");
      continue;
    }
    const ssize_t n = ::read(member.conn.get(), chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(std::string("read failed: ") + std::strerror(errno));
    }
    if (n == 0) fail("broker closed its client connection mid-wait");
    member.reader.feed(std::span(chunk, static_cast<std::size_t>(n)));
    if (member.reader.next(payload)) return decode_frame(payload);
  }
}

std::vector<core::SubscriptionId> Cluster::run_op(routing::BrokerId broker,
                                                  NetMessage op) {
  if (broker >= members_.size() || !members_[broker].alive) {
    fail("op routed to a dead broker");
  }
  Member& member = members_[broker];
  op.kind = NetMessage::Kind::kClientOp;
  op.op_id = next_op_id_++;
  send_message(member, op);
  while (true) {
    const NetMessage msg = read_message(member);
    if (msg.kind == NetMessage::Kind::kOpResult && msg.op_id == op.op_id) {
      return msg.ids;
    }
    // Late purge events from a prior kill would have been drained there;
    // anything else here is a protocol error.
    fail("unexpected message while waiting for an op result");
  }
}

void Cluster::subscribe(routing::BrokerId broker,
                        const core::Subscription& sub) {
  NetMessage op;
  op.op = ClientOpKind::kSubscribe;
  op.sub = sub;
  (void)run_op(broker, std::move(op));
}

void Cluster::unsubscribe(routing::BrokerId broker, core::SubscriptionId id) {
  NetMessage op;
  op.op = ClientOpKind::kUnsubscribe;
  op.id = id;
  (void)run_op(broker, std::move(op));
}

std::vector<core::SubscriptionId> Cluster::publish(routing::BrokerId broker,
                                                   const core::Publication& pub) {
  NetMessage op;
  op.op = ClientOpKind::kPublish;
  op.pub = pub;
  op.token = next_token_++;
  return run_op(broker, std::move(op));
}

void Cluster::kill_broker(routing::BrokerId broker) {
  if (broker >= members_.size() || !members_[broker].alive) {
    fail("kill of a dead broker");
  }
  Member& victim = members_[broker];
  ::kill(victim.pid, SIGKILL);
  int status = 0;
  (void)::waitpid(victim.pid, &status, 0);
  victim.pid = -1;
  victim.conn.reset();
  victim.alive = false;

  // Every surviving neighbour sees EOF, purges the routes it learned over
  // the dead link, and reports kPeerDown when its purge cascade quiesced.
  for (const routing::BrokerId neighbor : victim.neighbors) {
    if (!members_[neighbor].alive) continue;
    Member& member = members_[neighbor];
    bool purged = false;
    while (!purged) {
      const NetMessage msg = read_message(member);
      if (msg.kind == NetMessage::Kind::kEvent &&
          msg.event == EventKind::kPeerDown && msg.b == broker) {
        purged = true;
      } else {
        fail("unexpected message while waiting for a purge event");
      }
    }
    // The link died with the broker; forget it on both sides.
    auto& back = members_[neighbor].neighbors;
    back.erase(std::remove(back.begin(), back.end(), broker), back.end());
  }
  victim.neighbors.clear();
}

void Cluster::shutdown() {
  for (Member& member : members_) {
    if (!member.alive || member.pid <= 0) continue;
    NetMessage op;
    op.kind = NetMessage::Kind::kClientOp;
    op.op_id = next_op_id_++;
    op.op = ClientOpKind::kShutdown;
    send_message(member, op);
  }
  for (Member& member : members_) {
    if (member.pid > 0) {
      int status = 0;
      (void)::waitpid(member.pid, &status, 0);
      member.pid = -1;
    }
    member.conn.reset();
    member.alive = false;
  }
}

bool Cluster::is_alive(routing::BrokerId broker) const {
  return broker < members_.size() && members_[broker].alive;
}

routing::MembershipUniverse Cluster::universe() const {
  routing::MembershipUniverse universe;
  universe.brokers = members_.size();
  for (auto [a, b] : options_.links) {
    if (a > b) std::swap(a, b);
    universe.links.emplace_back(a, b);
  }
  return universe;
}

}  // namespace psc::net
