// BrokerNode — one broker as a real process: the routing::Broker policy
// core wired to a TcpTransport instead of the BrokerNetwork/EventQueue
// harness. Its dispatch and deliver_* bodies mirror BrokerNetwork's
// (routing/broker_network.cpp) hop for hop — same handle_* calls, same
// forwarding loops, same Announcement fields — so the delivered sets a TCP
// cluster produces are gated against the same FlatOracle ground truth the
// sim's differential suites use.
//
// Scope (what the TCP op vocabulary covers): subscribe / unsubscribe /
// publish client ops and EOF-triggered peer-death purges. TTL expiries are
// accepted on the wire (the announcement codec carries them) and armed on
// the transport's wall clock, but cluster traces run with TTLs disabled —
// wall-clock time is not the sim clock, so expiry instants would not be
// comparable. Membership repair beyond crash-purge (heal, replace) stays a
// sim-side concern.
//
// Delivered-set plumbing: the sim collects per-publication matches through
// pub_sinks_ pointers; a process cannot. Instead every local match is
// added to the transport's active cascade record, and the record tree's
// kDone aggregation returns the full delivered set to the op's root — the
// supervisor gets it in the kOpResult, byte-comparable to the oracle.
#pragma once

#include <cstdint>
#include <optional>

#include "net/message.hpp"
#include "net/tcp_transport.hpp"
#include "routing/broker.hpp"
#include "store/subscription_store.hpp"

namespace psc::net {

struct BrokerNodeOptions {
  routing::BrokerId id = 0;
  /// The cluster-wide seed (NetworkConfig::seed). The per-broker store
  /// seed derives from it exactly like BrokerNetwork::make_broker, so a
  /// TCP broker's coverage decisions match its sim twin's.
  std::uint64_t network_seed = 0xfeedbeefULL;
  std::size_t match_shards = 1;
  store::StoreConfig store;
  TcpTransportConfig transport;
};

class BrokerNode {
 public:
  explicit BrokerNode(BrokerNodeOptions options);

  /// Dials peers and serves the epoll loop until the supervisor
  /// disconnects or sends kShutdown.
  void run();

  [[nodiscard]] const routing::Broker& broker() const noexcept { return broker_; }

 private:
  void dispatch_frame(routing::BrokerId from, const wire::Announcement& msg);
  void deliver_subscription(const core::Subscription& sub,
                            const routing::Origin& origin,
                            std::optional<double> expiry);
  void deliver_unsubscription(core::SubscriptionId id,
                              const routing::Origin& origin);
  void deliver_publication(const core::Publication& pub,
                           const routing::Origin& origin, std::uint64_t token);
  void handle_client_op(const NetMessage& msg);
  void handle_peer_death(routing::BrokerId peer);

  routing::Broker broker_;
  TcpTransport transport_;
  routing::Broker::PublishScratch publish_scratch_;
};

/// Entry point for the psc_brokerd executable (tools/brokerd_main.cpp):
/// parses --id / --listen-fd / --seed / --match-shards / --policy /
/// --neighbors / --ports, builds a BrokerNode, and serves. Returns the
/// process exit code.
int run_brokerd(int argc, const char* const* argv);

}  // namespace psc::net
