#include "net/message.hpp"

#include <utility>

#include "net/frame.hpp"

namespace psc::net {

namespace {

ClientOpKind read_client_op_kind(wire::ByteReader& in) {
  const std::uint64_t tag = in.varint();
  switch (tag) {
    case 1: return ClientOpKind::kSubscribe;
    case 2: return ClientOpKind::kUnsubscribe;
    case 3: return ClientOpKind::kPublish;
    case 4: return ClientOpKind::kShutdown;
    default: throw wire::DecodeError("net: unknown ClientOpKind tag");
  }
}

EventKind read_event_kind(wire::ByteReader& in) {
  const std::uint64_t tag = in.varint();
  switch (tag) {
    case 1: return EventKind::kReady;
    case 2: return EventKind::kPeerDown;
    default: throw wire::DecodeError("net: unknown EventKind tag");
  }
}

void write_ids(wire::ByteWriter& out,
               const std::vector<core::SubscriptionId>& ids) {
  out.varint(ids.size());
  for (const core::SubscriptionId id : ids) out.varint(id);
}

std::vector<core::SubscriptionId> read_ids(wire::ByteReader& in) {
  const std::uint64_t count = in.varint();
  if (count > in.remaining()) {
    // Every id costs at least one byte; a count the buffer cannot hold is
    // corruption, rejected before any allocation.
    throw wire::DecodeError("net: id count exceeds buffer");
  }
  std::vector<core::SubscriptionId> ids;
  ids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) ids.push_back(in.varint());
  return ids;
}

}  // namespace

NetMessage make_hello(std::uint32_t sender) {
  NetMessage msg;
  msg.kind = NetMessage::Kind::kHello;
  msg.version = wire::kCodecVersion;
  msg.sender = sender;
  return msg;
}

NetMessage make_data(std::uint64_t nonce, wire::LinkFrame frame) {
  NetMessage msg;
  msg.kind = NetMessage::Kind::kData;
  msg.nonce = nonce;
  msg.frame = std::move(frame);
  return msg;
}

NetMessage make_done(std::uint64_t nonce,
                     std::vector<core::SubscriptionId> ids) {
  NetMessage msg;
  msg.kind = NetMessage::Kind::kDone;
  msg.nonce = nonce;
  msg.ids = std::move(ids);
  return msg;
}

NetMessage make_event(EventKind event, std::uint32_t a, std::uint32_t b) {
  NetMessage msg;
  msg.kind = NetMessage::Kind::kEvent;
  msg.event = event;
  msg.a = a;
  msg.b = b;
  return msg;
}

void write_net_message(wire::ByteWriter& out, const NetMessage& msg) {
  out.u8(static_cast<std::uint8_t>(msg.kind));
  switch (msg.kind) {
    case NetMessage::Kind::kHello:
      out.u32(msg.version);
      out.u32(msg.sender);
      break;
    case NetMessage::Kind::kData:
      out.u64(msg.nonce);
      wire::write_link_frame(out, msg.frame);
      break;
    case NetMessage::Kind::kDone:
      out.u64(msg.nonce);
      write_ids(out, msg.ids);
      break;
    case NetMessage::Kind::kClientOp:
      out.u64(msg.op_id);
      out.varint(static_cast<std::uint64_t>(msg.op));
      switch (msg.op) {
        case ClientOpKind::kSubscribe:
          wire::write_subscription(out, msg.sub);
          break;
        case ClientOpKind::kUnsubscribe:
          out.varint(msg.id);
          break;
        case ClientOpKind::kPublish:
          wire::write_publication(out, msg.pub);
          out.u64(msg.token);
          break;
        case ClientOpKind::kShutdown:
          break;
      }
      break;
    case NetMessage::Kind::kOpResult:
      out.u64(msg.op_id);
      write_ids(out, msg.ids);
      break;
    case NetMessage::Kind::kEvent:
      out.varint(static_cast<std::uint64_t>(msg.event));
      out.u32(msg.a);
      out.u32(msg.b);
      break;
  }
}

NetMessage read_net_message(wire::ByteReader& in) {
  NetMessage msg;
  const std::uint8_t kind = in.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(NetMessage::Kind::kHello):
      msg.kind = NetMessage::Kind::kHello;
      msg.version = in.u32();
      msg.sender = in.u32();
      break;
    case static_cast<std::uint8_t>(NetMessage::Kind::kData):
      msg.kind = NetMessage::Kind::kData;
      msg.nonce = in.u64();
      msg.frame = wire::read_link_frame(in);
      break;
    case static_cast<std::uint8_t>(NetMessage::Kind::kDone):
      msg.kind = NetMessage::Kind::kDone;
      msg.nonce = in.u64();
      msg.ids = read_ids(in);
      break;
    case static_cast<std::uint8_t>(NetMessage::Kind::kClientOp):
      msg.kind = NetMessage::Kind::kClientOp;
      msg.op_id = in.u64();
      msg.op = read_client_op_kind(in);
      switch (msg.op) {
        case ClientOpKind::kSubscribe:
          msg.sub = wire::read_subscription(in);
          break;
        case ClientOpKind::kUnsubscribe:
          msg.id = in.varint();
          break;
        case ClientOpKind::kPublish:
          msg.pub = wire::read_publication(in);
          msg.token = in.u64();
          break;
        case ClientOpKind::kShutdown:
          break;
      }
      break;
    case static_cast<std::uint8_t>(NetMessage::Kind::kOpResult):
      msg.kind = NetMessage::Kind::kOpResult;
      msg.op_id = in.u64();
      msg.ids = read_ids(in);
      break;
    case static_cast<std::uint8_t>(NetMessage::Kind::kEvent):
      msg.kind = NetMessage::Kind::kEvent;
      msg.event = read_event_kind(in);
      msg.a = in.u32();
      msg.b = in.u32();
      break;
    default:
      throw wire::DecodeError("net: unknown NetMessage kind");
  }
  return msg;
}

std::vector<std::uint8_t> encode_frame(const NetMessage& msg) {
  wire::ByteWriter payload;
  write_net_message(payload, msg);
  std::vector<std::uint8_t> framed;
  append_frame(framed, payload.buffer());
  return framed;
}

NetMessage decode_frame(std::span<const std::uint8_t> payload) {
  wire::ByteReader in(payload);
  NetMessage msg = read_net_message(in);
  if (!in.at_end()) {
    throw wire::DecodeError("net: trailing bytes after NetMessage");
  }
  return msg;
}

}  // namespace psc::net
