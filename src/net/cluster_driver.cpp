#include "net/cluster_driver.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "routing/flat_oracle.hpp"

namespace psc::net {

ReplayReport replay_trace_vs_oracle(Cluster& cluster,
                                    const workload::ChurnTrace& trace,
                                    const ReplayOptions& options) {
  routing::FlatOracle oracle;
  const bool kill_planned =
      options.kill_at_op != static_cast<std::size_t>(-1) &&
      options.victim != routing::kInvalidBroker;
  if (kill_planned) {
    // Reachability filtering needs the overlay shape; without a kill the
    // oracle stays flat (one component, everyone alive — identical sets).
    oracle.enable_membership(cluster.universe());
  }

  ReplayReport report;
  // Home broker of every live subscription, to skip ops stranded by the
  // kill on both sides symmetrically.
  std::unordered_map<core::SubscriptionId, routing::BrokerId> homes;
  std::vector<core::SubscriptionId> expected;

  for (std::size_t index = 0; index < trace.ops.size(); ++index) {
    if (kill_planned && !report.killed && index == options.kill_at_op) {
      cluster.kill_broker(options.victim);
      oracle.crash_peer(options.victim);
      report.killed = true;
    }
    const workload::ChurnOp& op = trace.ops[index];
    ++report.ops;
    switch (op.kind) {
      case workload::ChurnOpKind::kAdvance:
        break;  // wall clock is not sim time; TCP traces are TTL-free
      case workload::ChurnOpKind::kSubscribe: {
        if (!cluster.is_alive(op.broker)) {
          ++report.skipped;
          break;
        }
        cluster.subscribe(op.broker, op.sub);
        oracle.subscribe(op.broker, op.sub);
        homes.emplace(op.sub.id(), op.broker);
        ++report.subscribes;
        break;
      }
      case workload::ChurnOpKind::kUnsubscribe: {
        const auto home = homes.find(op.id);
        if (home == homes.end() || !cluster.is_alive(home->second)) {
          ++report.skipped;
          break;
        }
        cluster.unsubscribe(home->second, op.id);
        oracle.unsubscribe(home->second, op.id);
        homes.erase(home);
        ++report.unsubscribes;
        break;
      }
      case workload::ChurnOpKind::kPublish: {
        if (!cluster.is_alive(op.broker)) {
          ++report.skipped;
          break;
        }
        const std::vector<core::SubscriptionId> got =
            cluster.publish(op.broker, op.pub);
        oracle.publish(op.broker, op.pub, expected);
        if (got != expected) ++report.divergences;
        ++report.publishes;
        break;
      }
      default:
        throw std::invalid_argument(
            "net::replay_trace_vs_oracle: trace contains TTL or membership "
            "ops — generate it with ttl_fraction = 0 and membership off");
    }
  }
  return report;
}

}  // namespace psc::net
