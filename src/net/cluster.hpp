// net::Cluster — the supervisor side of the TCP transport: spawns one
// psc_brokerd process per broker and drives the whole overlay as a client.
//
// Startup choreography (race-free by construction):
//   1. bind + listen one 127.0.0.1:0 socket per broker (kernel-assigned
//      ports; parallel test runs never collide);
//   2. fork+exec every brokerd with its OWN listener inherited by fd (the
//      accept queue exists before any process runs, so a fast broker
//      dialing a slow one just lands in the backlog);
//   3. each broker dials its lower-id neighbours; the supervisor dials
//      every broker as a client (kClientSender hello);
//   4. wait for kReady from every broker (sent once all its links are
//      handshaken) — then the mesh is up and ops can flow.
//
// Ops are serialized: one kClientOp at a time, blocking until the home
// broker's kOpResult arrives. The result's ids are the cascade-complete
// delivered set (see tcp_transport.hpp's termination records), so each op
// is a quiescence barrier exactly like the sim's run_cascade — which is
// what makes delivered sets comparable against FlatOracle despite
// wall-clock interleaving inside the cascade.
//
// kill_broker is the fault leg: SIGKILL mid-trace, then wait for every
// surviving neighbour's kPeerDown (its EOF-triggered purge finished — the
// same detach_and_purge semantics the sim's fail_link repair path runs).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "net/frame.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "routing/broker.hpp"
#include "routing/membership.hpp"

namespace psc::net {

struct ClusterOptions {
  /// Path to the psc_brokerd executable (tests compile it in via the
  /// PSC_BROKERD_BIN definition).
  std::string brokerd_path;
  std::size_t brokers = 0;
  /// Undirected overlay links; must form a tree over [0, brokers).
  std::vector<std::pair<routing::BrokerId, routing::BrokerId>> links;
  std::uint64_t seed = 0xfeedbeefULL;
  std::size_t match_shards = 1;
  /// Coverage policy name passed through to brokerd (--policy). The
  /// differential default is "exact": every suppression is definite, so
  /// delivered sets must equal the oracle's bit for bit.
  std::string policy = "exact";
  /// Per-wait timeout for op results / readiness / purge events.
  double timeout_s = 30.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  /// Destructor force-kills and reaps any broker still running.
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Spawns the processes and blocks until every broker reported ready.
  void start();

  /// Client ops (serialized, each a quiescence barrier). Publish returns
  /// the cascade-complete delivered ids, sorted ascending, deduplicated.
  void subscribe(routing::BrokerId broker, const core::Subscription& sub);
  void unsubscribe(routing::BrokerId broker, core::SubscriptionId id);
  [[nodiscard]] std::vector<core::SubscriptionId> publish(
      routing::BrokerId broker, const core::Publication& pub);

  /// SIGKILLs `broker` and blocks until every surviving neighbour finished
  /// its EOF-triggered purge (kPeerDown received from each).
  void kill_broker(routing::BrokerId broker);

  /// Graceful teardown: kShutdown to every live broker, then reap.
  void shutdown();

  [[nodiscard]] bool is_alive(routing::BrokerId broker) const;
  [[nodiscard]] std::size_t broker_count() const noexcept { return members_.size(); }
  /// The overlay's static shape, for FlatOracle::enable_membership.
  [[nodiscard]] routing::MembershipUniverse universe() const;

 private:
  struct Member {
    int pid = -1;
    Fd listener;
    std::uint16_t port = 0;
    Fd conn;            ///< supervisor's client connection
    FrameReader reader;
    bool ready = false;
    bool alive = true;
    std::vector<routing::BrokerId> neighbors;
  };

  void spawn(routing::BrokerId id);
  void send_message(Member& member, const NetMessage& msg);
  /// Blocks until one complete NetMessage from `member` (poll + timeout).
  [[nodiscard]] NetMessage read_message(Member& member);
  /// Runs one op against `broker` and returns the kOpResult ids.
  std::vector<core::SubscriptionId> run_op(routing::BrokerId broker,
                                           NetMessage op);
  void reap(Member& member) noexcept;

  ClusterOptions options_;
  std::vector<Member> members_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t next_token_ = 1;  ///< driver-assigned publication tokens
  bool started_ = false;
};

}  // namespace psc::net
