// TcpTransport — the second implementation of the routing::Transport seam:
// real sockets instead of the discrete-event queue. One instance lives in
// each broker process (see net/broker_node.hpp) and owns:
//
//   * the epoll event loop: the inherited listening socket, one nonblocking
//     connection per overlay neighbour (higher id dials lower id, so each
//     link is established exactly once), and the supervisor's client
//     connection. All fds are level-triggered; partial reads accumulate in
//     a per-connection FrameReader and partial writes drain from a
//     per-connection outbound buffer gated on EPOLLOUT.
//   * the versioned handshake: every connection opens with
//     kHello{wire::kCodecVersion, self}; a hello outside
//     [kMinPeerVersion, kCodecVersion] — or any other first message — is
//     fatal (the process exits; the supervisor sees EOF).
//   * frame integrity: every Announcement rides a v3 wire::LinkFrame with a
//     per-directed-connection sequence number checked against the
//     receiver's cumulative count — TCP already guarantees ordered
//     delivery, so a gap can only mean a framing bug, and it trips
//     immediately instead of corrupting routing state.
//   * cascade termination (the TCP replacement for the sim's run_cascade):
//     every inbound kData opens a record; frames the handler sends while it
//     runs become the record's children (fresh nonces); the record's kDone
//     — carrying the delivered ids collected beneath it — flows back once
//     all children have replied. Roots (client ops, peer-death purges) use
//     begin_root/end_root and get their completion via callback. This is
//     Dijkstra-Scholten termination detection specialized to the acyclic
//     overlay: quiescence is detected exactly, with zero timeouts.
//   * teardown escalation: EOF or a write error on a peer connection
//     resolves that peer's outstanding child nonces (empty Dones — the
//     branch died with it) and hands the peer id to the death handler,
//     which runs the same purge path a sim fail_link does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "routing/transport.hpp"

namespace psc::net {

struct TcpTransportConfig {
  routing::BrokerId self = 0;
  int listen_fd = -1;  ///< inherited from the supervisor, already listening
  /// Overlay neighbours; this process dials those with id < self and
  /// accepts those with id > self.
  std::vector<routing::BrokerId> neighbors;
  /// ports[id] = loopback port of broker `id`'s listener (dial targets).
  std::vector<std::uint16_t> ports;
};

class TcpTransport final : public routing::Transport {
 public:
  /// Supervisor traffic (kClientOp) arriving on the client connection.
  using ClientHandler = std::function<void(const NetMessage& msg)>;
  /// A peer connection died (EOF / write error). Runs after the peer's
  /// outstanding cascade branches were resolved; typically purges routes.
  using PeerDeathHandler = std::function<void(routing::BrokerId peer)>;
  /// Root-cascade completion: the sorted-merged delivered ids beneath it.
  using CompleteFn = std::function<void(std::vector<core::SubscriptionId> ids)>;

  explicit TcpTransport(TcpTransportConfig config);
  ~TcpTransport() override;

  // --- routing::Transport -----------------------------------------------

  void set_frame_handler(FrameHandler handler) override;
  /// `from` must be this process's broker id. Frames to a dead/unknown
  /// peer are dropped (the link is gone; the purge path owns cleanup).
  void send_frame(routing::BrokerId from, routing::BrokerId to,
                  const wire::Announcement& msg) override;
  /// Wall seconds (CLOCK_MONOTONIC) since transport construction.
  [[nodiscard]] sim::SimTime now() const override;
  TimerId schedule_timer_at(sim::SimTime at, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;

  // --- lifecycle ----------------------------------------------------------

  void set_client_handler(ClientHandler handler);
  void set_peer_death_handler(PeerDeathHandler handler);
  /// Invoked once, when every neighbour link is handshaken AND the
  /// supervisor connection is handshaken (the broker-ready condition).
  void set_ready_handler(std::function<void()> handler);

  /// Dials every lower-id neighbour and queues hellos. The listeners were
  /// bound by the supervisor before any fork, so connects cannot race.
  void connect_peers();

  /// Runs the epoll loop until stop() or the supervisor connection closes.
  void run();
  void stop() noexcept { running_ = false; }

  // --- cascade records ----------------------------------------------------

  /// Opens a root record: frames sent until the matching end_root() are
  /// its children. Must not nest inside another active record.
  void begin_root();
  /// Closes the root. `on_complete` fires with the merged delivered ids
  /// once every child has replied — synchronously, inside this call, when
  /// the root spawned no children.
  void end_root(CompleteFn on_complete);
  /// Adds locally-delivered ids to the active record (publication matches
  /// at this broker). No-op with no record active (e.g. a subscribe op's
  /// flood — nothing is delivered).
  void add_delivered(std::span<const core::SubscriptionId> ids);

  /// Queues `msg` on the supervisor connection (OpResult, Event). Dropped
  /// if the supervisor is gone (the process is about to exit anyway).
  void send_to_client(const NetMessage& msg);

  [[nodiscard]] routing::BrokerId self() const noexcept { return config_.self; }

 private:
  struct Connection {
    Fd fd;
    routing::BrokerId peer = routing::kInvalidBroker;  ///< set by hello
    bool is_client = false;
    bool hello_received = false;
    FrameReader reader;
    std::vector<std::uint8_t> out;  ///< unsent bytes (drained from front)
    std::size_t out_off = 0;
    bool want_write = false;        ///< EPOLLOUT currently registered
    /// EOF or hard I/O error seen; the event loop's death sweep runs
    /// connection_lost outside any half-updated cascade record.
    bool failed = false;
    std::uint64_t send_seq = 0;     ///< next kData LinkFrame seq to send
    std::uint64_t recv_seq = 0;     ///< next kData LinkFrame seq expected
  };

  struct CascadeRecord {
    std::uint64_t key = 0;      ///< index in records_
    std::uint64_t nonce = 0;    ///< inbound nonce to kDone (non-root)
    routing::BrokerId reply_peer = routing::kInvalidBroker;  ///< root: invalid
    CompleteFn on_complete;     ///< root only
    std::size_t pending = 0;    ///< children awaiting kDone
    bool closed = false;        ///< handler returned / end_root called
    std::vector<core::SubscriptionId> ids;
  };

  struct PendingChild {
    std::uint64_t record_key = 0;
    routing::BrokerId target = routing::kInvalidBroker;
  };

  struct PendingTimer {
    sim::SimTime deadline = 0;
    std::function<void()> fn;
  };

  Connection& register_connection(Fd fd, routing::BrokerId peer,
                                  bool dialed_out);
  void queue_message(Connection& conn, const NetMessage& msg);
  void flush_out(Connection& conn);
  void update_write_interest(Connection& conn);
  void handle_readable(int fd);
  void handle_message(Connection& conn, const NetMessage& msg);
  void handle_data(Connection& conn, const NetMessage& msg);
  void handle_done(std::uint64_t child_nonce,
                   std::span<const core::SubscriptionId> ids);
  void connection_lost(int fd);
  void maybe_complete(CascadeRecord& record);
  void check_ready();
  void fire_due_timers();
  [[nodiscard]] int epoll_timeout_ms() const;

  TcpTransportConfig config_;
  Fd epoll_;
  FrameHandler handler_;
  ClientHandler client_handler_;
  PeerDeathHandler peer_death_handler_;
  std::function<void()> ready_handler_;
  bool ready_fired_ = false;
  bool running_ = false;
  bool client_seen_ = false;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;  ///< by fd
  std::unordered_map<routing::BrokerId, int> peer_fds_;
  int client_fd_ = -1;

  std::unordered_map<std::uint64_t, std::unique_ptr<CascadeRecord>> records_;
  std::unordered_map<std::uint64_t, PendingChild> children_;  ///< by child nonce
  CascadeRecord* active_ = nullptr;
  std::uint64_t next_nonce_ = 1;
  std::uint64_t next_record_key_ = 1;

  std::map<TimerId, PendingTimer> timers_;  ///< ordered: scan for due/next
  TimerId next_timer_id_ = 1;
  double epoch_ = 0;  ///< CLOCK_MONOTONIC at construction; now() subtracts

  std::vector<std::uint8_t> read_chunk_;   ///< reused recv buffer
  std::vector<std::uint8_t> frame_scratch_;  ///< reused frame payload
};

}  // namespace psc::net
