// Length-prefixed framing for the TCP transport — the byte-stream half of
// the net layer, deliberately socket-agnostic so the frame-boundary
// torture tests (tests/frame_torture_test.cpp) can drive it with arbitrary
// chunkings: 1-byte feeds, many frames coalesced into one read, a frame
// truncated mid-payload by a disconnect.
//
// Wire layout per frame: u32 little-endian payload length, then exactly
// that many payload bytes (an encoded net::NetMessage). A length of zero
// is invalid (every NetMessage is at least one kind byte), and lengths
// above kMaxFrameBytes are rejected before any allocation — a malformed or
// hostile peer cannot make the reader reserve gigabytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace psc::net {

/// Upper bound on one frame's payload. Generous against real traffic (an
/// Announcement is tens-to-hundreds of bytes) while keeping the
/// worst-case buffering per connection small.
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

/// Appends one length-prefixed frame carrying `payload` to `out`.
/// Throws std::length_error if the payload exceeds kMaxFrameBytes.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

/// Incremental frame decoder: feed() arbitrary byte chunks as they arrive
/// off a socket, then drain complete frames with next(). Bytes split
/// across feeds — including a length prefix split across reads — carry
/// over; a stream that stops mid-frame simply never yields that frame
/// (the caller decides whether EOF mid-frame is an error).
class FrameReader {
 public:
  /// Appends raw stream bytes to the internal buffer.
  /// Throws wire::DecodeError as soon as a frame header announces a
  /// zero-length or oversized frame — before waiting for its payload.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete frame's payload, or false if the buffered
  /// bytes do not yet hold one. The payload is moved into `payload`
  /// (overwriting its contents).
  [[nodiscard]] bool next(std::vector<std::uint8_t>& payload);

  /// True when no partial frame is pending — the clean-EOF condition.
  [[nodiscard]] bool at_boundary() const noexcept { return buffer_.empty(); }

  /// Buffered bytes not yet consumed as frames.
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  /// Validates the header at the front of `buffer_` (if present).
  void check_header() const;

  std::vector<std::uint8_t> buffer_;
};

}  // namespace psc::net
