// Thin POSIX socket layer for the TCP transport: an owning fd wrapper plus
// the handful of loopback helpers the cluster needs. Everything here is
// loopback-only by design — the supervisor binds 127.0.0.1:0 listeners
// (kernel-assigned ports, no conflicts across parallel test runs) and
// passes them to forked broker processes by fd inheritance, so no port is
// ever advertised before its accept queue exists.
#pragma once

#include <cstdint>
#include <utility>

namespace psc::net {

/// Owning file descriptor: closes on destruction, moves transfer
/// ownership, copying is disabled. -1 means empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Releases ownership without closing (fd-inheritance handoff).
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1 with a kernel-assigned port.
/// Returns (listening fd, port). Throws std::runtime_error on failure.
[[nodiscard]] std::pair<Fd, std::uint16_t> listen_loopback();

/// Blocking connect to 127.0.0.1:`port`. Throws std::runtime_error.
[[nodiscard]] Fd connect_loopback(std::uint16_t port);

/// Blocking accept (the transport accepts only when epoll reported the
/// listener readable). Returns an empty Fd on transient failure.
[[nodiscard]] Fd accept_connection(int listen_fd);

/// Switches `fd` to O_NONBLOCK. Throws std::runtime_error.
void set_nonblocking(int fd);

/// Disables Nagle (every frame is a protocol step; latency matters more
/// than segment count on loopback). Best-effort: ignores failure.
void set_nodelay(int fd) noexcept;

}  // namespace psc::net
