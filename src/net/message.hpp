// NetMessage — the codec-v4 envelope every byte on a TCP cluster socket
// travels in (one encoded NetMessage per length-prefixed frame, see
// net/frame.hpp). Two traffic classes share it:
//
//   * peer <-> peer: kHello (the versioned handshake) and kData (one
//     wire::LinkFrame carrying one Announcement, plus the cascade nonce) /
//     kDone (the nonce's completion receipt, carrying the delivered ids
//     collected beneath it). The nonce pair implements Dijkstra-Scholten
//     style termination detection over the acyclic overlay: every inbound
//     kData spawns child nonces for the frames it causes, and kDone flows
//     back up once all children completed — so the op's root learns the
//     exact instant (and the exact delivered set) its cascade quiesced,
//     without clocks or timeouts.
//   * supervisor <-> broker: kClientOp (subscribe / unsubscribe / publish /
//     shutdown, with a driver-assigned publication token so tokens are
//     globally unique without coordination) / kOpResult (delivered ids),
//     and kEvent notifications (broker ready, peer-death purge complete).
//
// Handshake: each side sends kHello{version = wire::kCodecVersion, sender}
// first; a receiver accepts versions in [wire::kMinPeerVersion,
// wire::kCodecVersion] (v3 peers speak identical element codecs) and must
// treat anything else — or any non-Hello first message — as fatal.
#pragma once

#include <cstdint>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "wire/byte_buffer.hpp"
#include "wire/codec.hpp"

namespace psc::net {

/// `sender` value announcing a supervisor/client connection rather than a
/// peer broker (same bit pattern as routing::kInvalidBroker: "no broker").
inline constexpr std::uint32_t kClientSender = 0xffffffffU;

/// Client-op verbs a supervisor can issue (NetMessage::kClientOp).
enum class ClientOpKind : std::uint8_t {
  kSubscribe = 1,    ///< sub payload
  kUnsubscribe = 2,  ///< id payload
  kPublish = 3,      ///< pub + driver-assigned token
  kShutdown = 4,     ///< graceful exit; broker replies kOpResult then exits
};

/// Broker-to-supervisor notification kinds (NetMessage::kEvent).
enum class EventKind : std::uint8_t {
  kReady = 1,     ///< all peer links connected + handshaken; a = broker id
  kPeerDown = 2,  ///< EOF-triggered purge of peer b finished at broker a
};

struct NetMessage {
  enum class Kind : std::uint8_t {
    kHello = 1,     ///< version + sender
    kData = 2,      ///< nonce + frame (LinkFrame wrapping one Announcement)
    kDone = 3,      ///< nonce + ids (delivered beneath that cascade branch)
    kClientOp = 4,  ///< op_id + op (+ sub / id / pub + token)
    kOpResult = 5,  ///< op_id + ids
    kEvent = 6,     ///< event + a + b
  };

  Kind kind = Kind::kHello;

  // kHello
  std::uint32_t version = wire::kCodecVersion;
  std::uint32_t sender = kClientSender;

  // kData / kDone
  std::uint64_t nonce = 0;
  wire::LinkFrame frame;  ///< kData: payload is one encoded Announcement

  // kDone / kOpResult
  std::vector<core::SubscriptionId> ids;  ///< ascending not required; root sorts

  // kClientOp / kOpResult
  std::uint64_t op_id = 0;
  ClientOpKind op = ClientOpKind::kSubscribe;
  core::Subscription sub;             ///< kSubscribe payload
  core::SubscriptionId id = 0;        ///< kUnsubscribe target
  core::Publication pub;              ///< kPublish payload
  std::uint64_t token = 0;            ///< kPublish: driver-assigned dedup token

  // kEvent
  EventKind event = EventKind::kReady;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Factory helpers for the common shapes (keeps call sites one-liners).
[[nodiscard]] NetMessage make_hello(std::uint32_t sender);
[[nodiscard]] NetMessage make_data(std::uint64_t nonce, wire::LinkFrame frame);
[[nodiscard]] NetMessage make_done(std::uint64_t nonce,
                                   std::vector<core::SubscriptionId> ids);
[[nodiscard]] NetMessage make_event(EventKind event, std::uint32_t a,
                                    std::uint32_t b);

void write_net_message(wire::ByteWriter& out, const NetMessage& msg);

/// Decodes one NetMessage from `in`, validating the kind tag, every enum
/// payload, and — for kData — the embedded LinkFrame's Announcement.
/// Throws wire::DecodeError on anything malformed.
[[nodiscard]] NetMessage read_net_message(wire::ByteReader& in);

/// Encodes `msg` as one length-prefixed frame ready to append to a
/// connection's outbound buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const NetMessage& msg);

/// Decodes a frame payload (from net::FrameReader) as one NetMessage,
/// rejecting trailing bytes.
[[nodiscard]] NetMessage decode_frame(std::span<const std::uint8_t> payload);

/// True iff a handshake hello announcing `version` is acceptable:
/// wire::kMinPeerVersion <= version <= wire::kCodecVersion.
[[nodiscard]] constexpr bool handshake_version_ok(std::uint32_t version) noexcept {
  return version >= wire::kMinPeerVersion && version <= wire::kCodecVersion;
}

}  // namespace psc::net
