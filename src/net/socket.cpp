#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace psc::net {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("net: ") + what + ": " +
                           std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Fd, std::uint16_t> listen_loopback() {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail("bind 127.0.0.1:0");
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail("getsockname");
  }
  return {std::move(fd), ntohs(bound.sin_port)};
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_in addr = loopback_addr(port);
  // The listener's backlog exists from before any broker was forked (the
  // supervisor binds first), so a plain blocking connect cannot race a
  // slow accept loop; retry only around signal interruption.
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    fail("connect 127.0.0.1");
  }
  set_nodelay(fd.get());
  return fd;
}

Fd accept_connection(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    return Fd();  // EAGAIN etc.: epoll will report readiness again
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl O_NONBLOCK");
  }
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace psc::net
