// Differential trace replay for the TCP cluster: the same churn-trace op
// stream the sim's ChurnDriver replays, run against a live multi-process
// Cluster and an in-process FlatOracle side by side, comparing every
// publish's delivered set for byte-identity.
//
// The acceptance gate deliberately asks only for ORACLE equality, not
// sim-decision parity: both the sim network and the TCP cluster are gated
// against the same flat ground truth (under the exact coverage policy zero
// divergence is required of both), so the two transports are transitively
// equal where it matters — delivered sets — while the TCP side is free to
// interleave frame arrivals however the kernel schedules them. Each op is
// a quiescence barrier (the cascade-termination kOpResult), which is what
// makes per-op comparison sound.
//
// Trace scope: subscribe / unsubscribe / publish ops only — generate the
// trace with TTLs off (ttl_fraction = 0) and membership/fault rates zero.
// kAdvance ops are ignored (wall clock is not sim time); any TTL or
// membership op in the trace throws. The kill leg is driver-initiated
// instead: at `kill_at_op` the victim is SIGKILLed between ops and the
// oracle mirrors it as crash_peer, after which ops homed at (or targeting
// subscriptions homed at) the dead broker are skipped on both sides.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/cluster.hpp"
#include "workload/churn_workload.hpp"

namespace psc::net {

struct ReplayOptions {
  /// Op index (into trace.ops) before which the victim broker is killed;
  /// SIZE_MAX = no kill.
  std::size_t kill_at_op = static_cast<std::size_t>(-1);
  routing::BrokerId victim = routing::kInvalidBroker;
};

struct ReplayReport {
  std::size_t ops = 0;           ///< trace ops consumed (incl. skipped)
  std::size_t subscribes = 0;
  std::size_t unsubscribes = 0;
  std::size_t publishes = 0;
  std::size_t skipped = 0;       ///< ops dropped because their broker died
  std::size_t divergences = 0;   ///< publishes whose sets differed
  bool killed = false;
};

/// Replays `trace` through `cluster` (already start()ed) and the oracle.
/// Throws std::invalid_argument on out-of-scope ops (TTL, membership).
[[nodiscard]] ReplayReport replay_trace_vs_oracle(Cluster& cluster,
                                                  const workload::ChurnTrace& trace,
                                                  const ReplayOptions& options = {});

}  // namespace psc::net
