#include "net/tcp_transport.hpp"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <stdexcept>
#include <utility>

namespace psc::net {

namespace {

double monotonic_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)), epoch_(monotonic_seconds()) {
  epoll_ = Fd(::epoll_create1(0));
  if (!epoll_.valid()) {
    throw std::runtime_error("net: epoll_create1 failed");
  }
  if (config_.listen_fd >= 0) {
    set_nonblocking(config_.listen_fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = config_.listen_fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, config_.listen_fd, &ev) != 0) {
      throw std::runtime_error("net: epoll_ctl add listener failed");
    }
  }
}

TcpTransport::~TcpTransport() = default;

void TcpTransport::set_frame_handler(FrameHandler handler) {
  handler_ = std::move(handler);
}

void TcpTransport::set_client_handler(ClientHandler handler) {
  client_handler_ = std::move(handler);
}

void TcpTransport::set_peer_death_handler(PeerDeathHandler handler) {
  peer_death_handler_ = std::move(handler);
}

void TcpTransport::set_ready_handler(std::function<void()> handler) {
  ready_handler_ = std::move(handler);
}

sim::SimTime TcpTransport::now() const {
  return monotonic_seconds() - epoch_;
}

TcpTransport::TimerId TcpTransport::schedule_timer_at(sim::SimTime at,
                                                      std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, PendingTimer{at, std::move(fn)});
  return id;
}

void TcpTransport::cancel_timer(TimerId id) { timers_.erase(id); }

TcpTransport::Connection& TcpTransport::register_connection(
    Fd fd, routing::BrokerId peer, bool dialed_out) {
  const int raw = fd.get();
  set_nonblocking(raw);
  auto conn = std::make_unique<Connection>();
  conn->fd = std::move(fd);
  conn->peer = peer;
  Connection& ref = *conn;
  connections_.emplace(raw, std::move(conn));
  if (dialed_out && peer != routing::kInvalidBroker) peer_fds_[peer] = raw;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = raw;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, raw, &ev) != 0) {
    throw std::runtime_error("net: epoll_ctl add connection failed");
  }
  // Both sides open with their hello, unconditionally: the handshake needs
  // no round trips, just one versioned announcement each way.
  queue_message(ref, make_hello(config_.self));
  return ref;
}

void TcpTransport::connect_peers() {
  for (const routing::BrokerId peer : config_.neighbors) {
    if (peer >= config_.self) continue;  // lower id listens, higher id dials
    Fd fd = connect_loopback(config_.ports.at(peer));
    (void)register_connection(std::move(fd), peer, /*dialed_out=*/true);
  }
  check_ready();
}

void TcpTransport::check_ready() {
  if (ready_fired_ || !client_seen_) return;
  for (const routing::BrokerId peer : config_.neighbors) {
    const auto it = peer_fds_.find(peer);
    if (it == peer_fds_.end()) return;
    const auto conn = connections_.find(it->second);
    if (conn == connections_.end() || !conn->second->hello_received) return;
  }
  ready_fired_ = true;
  if (ready_handler_) ready_handler_();
}

void TcpTransport::queue_message(Connection& conn, const NetMessage& msg) {
  if (conn.failed) return;
  wire::ByteWriter payload;
  write_net_message(payload, msg);
  append_frame(conn.out, payload.buffer());
  flush_out(conn);
  update_write_interest(conn);
}

void TcpTransport::flush_out(Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::write(conn.fd.get(), conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Hard write error (EPIPE after a peer kill, ECONNRESET): mark and let
    // the event loop's sweep run the death path — never mid-send, where a
    // cascade record may be half-updated.
    conn.failed = true;
    return;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > kReadChunk) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
}

void TcpTransport::update_write_interest(Connection& conn) {
  if (conn.failed) return;
  const bool want = conn.out_off < conn.out.size();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd.get();
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void TcpTransport::handle_readable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  read_chunk_.resize(kReadChunk);
  while (!conn.failed) {
    const ssize_t n = ::read(fd, read_chunk_.data(), read_chunk_.size());
    if (n > 0) {
      conn.reader.feed(
          std::span(read_chunk_.data(), static_cast<std::size_t>(n)));
      while (conn.reader.next(frame_scratch_)) {
        handle_message(conn, decode_frame(frame_scratch_));
        if (conn.failed) return;
      }
      if (static_cast<std::size_t>(n) < read_chunk_.size()) return;
      continue;
    }
    if (n == 0) {  // EOF: the peer process is gone
      conn.failed = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn.failed = true;
    return;
  }
}

void TcpTransport::handle_message(Connection& conn, const NetMessage& msg) {
  if (!conn.hello_received) {
    if (msg.kind != NetMessage::Kind::kHello) {
      throw std::runtime_error("net: first message was not a hello");
    }
    if (!handshake_version_ok(msg.version)) {
      throw std::runtime_error("net: peer announced unsupported codec version");
    }
    conn.hello_received = true;
    if (msg.sender == kClientSender) {
      conn.is_client = true;
      client_fd_ = conn.fd.get();
      client_seen_ = true;
    } else {
      if (conn.peer != routing::kInvalidBroker && conn.peer != msg.sender) {
        throw std::runtime_error("net: hello sender does not match dialed peer");
      }
      conn.peer = msg.sender;
      peer_fds_[conn.peer] = conn.fd.get();
    }
    check_ready();
    return;
  }
  switch (msg.kind) {
    case NetMessage::Kind::kData:
      handle_data(conn, msg);
      break;
    case NetMessage::Kind::kDone:
      handle_done(msg.nonce, msg.ids);
      break;
    case NetMessage::Kind::kClientOp:
      if (!conn.is_client) {
        throw std::runtime_error("net: client op on a peer connection");
      }
      if (client_handler_) client_handler_(msg);
      break;
    case NetMessage::Kind::kHello:
      throw std::runtime_error("net: duplicate hello");
    case NetMessage::Kind::kOpResult:
    case NetMessage::Kind::kEvent:
      // Broker-to-supervisor traffic only; a broker never receives these.
      throw std::runtime_error("net: unexpected supervisor-bound message");
  }
}

void TcpTransport::handle_data(Connection& conn, const NetMessage& msg) {
  if (conn.is_client) {
    throw std::runtime_error("net: data frame on the client connection");
  }
  if (msg.frame.kind != wire::LinkFrame::Kind::kData) {
    throw std::runtime_error("net: non-data link frame in kData envelope");
  }
  // TCP delivers the byte stream in order, so the per-connection sequence
  // number can only mismatch on a framing bug — fail fast.
  if (msg.frame.seq != conn.recv_seq) {
    throw std::runtime_error("net: link frame sequence gap");
  }
  ++conn.recv_seq;
  wire::ByteReader payload(msg.frame.payload);
  const wire::Announcement ann = wire::read_announcement(payload);
  if (!payload.at_end()) {
    throw wire::DecodeError("net: trailing bytes after announcement");
  }

  const std::uint64_t key = next_record_key_++;
  auto record = std::make_unique<CascadeRecord>();
  record->key = key;
  record->nonce = msg.nonce;
  record->reply_peer = conn.peer;
  CascadeRecord& ref = *record;
  records_.emplace(key, std::move(record));

  assert(active_ == nullptr && "cascade records never nest");
  active_ = &ref;
  if (handler_) handler_(conn.peer, config_.self, ann);
  active_ = nullptr;
  ref.closed = true;
  maybe_complete(ref);
}

void TcpTransport::handle_done(std::uint64_t child_nonce,
                               std::span<const core::SubscriptionId> ids) {
  const auto child = children_.find(child_nonce);
  if (child == children_.end()) return;  // branch already resolved (peer died)
  const std::uint64_t key = child->second.record_key;
  children_.erase(child);
  const auto rec = records_.find(key);
  if (rec == records_.end()) return;
  CascadeRecord& record = *rec->second;
  record.ids.insert(record.ids.end(), ids.begin(), ids.end());
  assert(record.pending > 0);
  --record.pending;
  maybe_complete(record);
}

void TcpTransport::maybe_complete(CascadeRecord& record) {
  if (!record.closed || record.pending > 0) return;
  if (record.reply_peer != routing::kInvalidBroker) {
    const auto it = peer_fds_.find(record.reply_peer);
    if (it != peer_fds_.end()) {
      const auto conn = connections_.find(it->second);
      if (conn != connections_.end()) {
        queue_message(*conn->second, make_done(record.nonce,
                                               std::move(record.ids)));
      }
    }
  } else if (record.on_complete) {
    // Root: hand the merged ids to the owner (OpResult / purge event).
    CompleteFn on_complete = std::move(record.on_complete);
    on_complete(std::move(record.ids));
  }
  records_.erase(record.key);
}

void TcpTransport::send_frame(routing::BrokerId from, routing::BrokerId to,
                              const wire::Announcement& msg) {
  assert(from == config_.self && "TcpTransport sends only from its own broker");
  (void)from;
  const auto it = peer_fds_.find(to);
  if (it == peer_fds_.end()) return;  // peer is dead; the purge path owns it
  const auto conn_it = connections_.find(it->second);
  if (conn_it == connections_.end()) return;
  Connection& conn = *conn_it->second;
  if (conn.failed) return;

  wire::ByteWriter encoded;
  wire::write_announcement(encoded, msg);
  wire::LinkFrame frame;
  frame.kind = wire::LinkFrame::Kind::kData;
  frame.seq = conn.send_seq++;
  frame.ack = conn.recv_seq;
  frame.payload = encoded.take();

  const std::uint64_t nonce = next_nonce_++;
  if (active_ != nullptr) {
    children_.emplace(nonce, PendingChild{active_->key, to});
    ++active_->pending;
  }
  queue_message(conn, make_data(nonce, std::move(frame)));
}

void TcpTransport::begin_root() {
  assert(active_ == nullptr && "root records never nest");
  const std::uint64_t key = next_record_key_++;
  auto record = std::make_unique<CascadeRecord>();
  record->key = key;
  CascadeRecord& ref = *record;
  records_.emplace(key, std::move(record));
  active_ = &ref;
}

void TcpTransport::end_root(CompleteFn on_complete) {
  assert(active_ != nullptr && active_->reply_peer == routing::kInvalidBroker);
  CascadeRecord& record = *active_;
  active_ = nullptr;
  record.on_complete = std::move(on_complete);
  record.closed = true;
  maybe_complete(record);
}

void TcpTransport::add_delivered(std::span<const core::SubscriptionId> ids) {
  if (active_ == nullptr) return;
  active_->ids.insert(active_->ids.end(), ids.begin(), ids.end());
}

void TcpTransport::send_to_client(const NetMessage& msg) {
  if (client_fd_ < 0) return;
  const auto it = connections_.find(client_fd_);
  if (it == connections_.end()) return;
  queue_message(*it->second, msg);
}

void TcpTransport::connection_lost(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  std::unique_ptr<Connection> conn = std::move(it->second);
  connections_.erase(it);
  const routing::BrokerId peer = conn->peer;
  if (conn->is_client || fd == client_fd_) {
    // Supervisor gone: nothing left to serve. Exit the loop cleanly.
    client_fd_ = -1;
    stop();
    return;
  }
  if (peer != routing::kInvalidBroker) {
    const auto pit = peer_fds_.find(peer);
    if (pit != peer_fds_.end() && pit->second == fd) peer_fds_.erase(pit);
    // Cascade branches sent into the dead peer can never reply: resolve
    // them as empty Dones so their roots still complete exactly.
    std::vector<std::uint64_t> orphaned;
    for (const auto& [nonce, child] : children_) {
      if (child.target == peer) orphaned.push_back(nonce);
    }
    for (const std::uint64_t nonce : orphaned) handle_done(nonce, {});
    if (peer_death_handler_) peer_death_handler_(peer);
  }
}

void TcpTransport::fire_due_timers() {
  while (!timers_.empty()) {
    const double current = now();
    TimerId due = kNoTimer;
    double best = 0;
    for (const auto& [id, timer] : timers_) {
      if (timer.deadline <= current && (due == kNoTimer || timer.deadline < best)) {
        due = id;
        best = timer.deadline;
      }
    }
    if (due == kNoTimer) return;
    auto it = timers_.find(due);
    std::function<void()> fn = std::move(it->second.fn);
    timers_.erase(it);
    if (fn) fn();
  }
}

int TcpTransport::epoll_timeout_ms() const {
  if (timers_.empty()) return -1;
  double next = -1;
  for (const auto& [id, timer] : timers_) {
    (void)id;
    if (next < 0 || timer.deadline < next) next = timer.deadline;
  }
  const double delta = (next - now()) * 1000.0;
  if (delta <= 0) return 0;
  return static_cast<int>(std::min(delta, 60000.0)) + 1;
}

void TcpTransport::run() {
  running_ = true;
  std::vector<epoll_event> events(64);
  while (running_) {
    fire_due_timers();
    const int n = ::epoll_wait(epoll_.get(), events.data(),
                               static_cast<int>(events.size()),
                               epoll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("net: epoll_wait failed");
    }
    for (int i = 0; i < n && running_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == config_.listen_fd) {
        while (true) {
          Fd accepted = accept_connection(config_.listen_fd);
          if (!accepted.valid()) break;
          (void)register_connection(std::move(accepted),
                                    routing::kInvalidBroker,
                                    /*dialed_out=*/false);
        }
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed by an earlier event
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        it->second->failed = true;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !it->second->failed) {
        flush_out(*it->second);
        update_write_interest(*it->second);
      }
      if ((events[i].events & EPOLLIN) != 0 && !it->second->failed) {
        handle_readable(fd);
      }
    }
    // Death sweep: handle connections that failed during this batch. A
    // purge triggered here can fail further connections (writes into other
    // dead peers), so sweep until stable.
    bool swept = true;
    while (swept && running_) {
      swept = false;
      for (const auto& [fd, conn] : connections_) {
        if (conn->failed) {
          connection_lost(fd);
          swept = true;
          break;  // map mutated; restart scan
        }
      }
    }
  }
}

}  // namespace psc::net
