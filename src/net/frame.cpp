#include "net/frame.hpp"

#include <cstring>
#include <stdexcept>

#include "wire/byte_buffer.hpp"

namespace psc::net {

namespace {

std::uint32_t read_u32_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    throw std::length_error("net::append_frame: payload size out of range");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.reserve(out.size() + 4 + payload.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xffU));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xffU));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xffU));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xffU));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameReader::check_header() const {
  if (buffer_.size() < 4) return;
  const std::uint32_t len = read_u32_le(buffer_.data());
  if (len == 0 || len > kMaxFrameBytes) {
    throw wire::DecodeError("net::FrameReader: frame length out of range");
  }
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Validate eagerly: an oversized header is a protocol violation the
  // moment it is visible, independent of whether its payload ever arrives.
  check_header();
}

bool FrameReader::next(std::vector<std::uint8_t>& payload) {
  if (buffer_.size() < 4) return false;
  const std::uint32_t len = read_u32_le(buffer_.data());
  if (len == 0 || len > kMaxFrameBytes) {
    throw wire::DecodeError("net::FrameReader: frame length out of range");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return false;
  payload.assign(buffer_.begin() + 4, buffer_.begin() + 4 + len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
  // The next frame's header (if buffered) gets the same eager validation.
  check_header();
  return true;
}

}  // namespace psc::net
