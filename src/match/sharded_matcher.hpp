// ShardedMatcher — Matcher's scaling sibling: the same notification
// semantics (Algorithm 5 matching, subscriber ownership, per-neighbour
// short-circuit) over an exec::ShardedStore instead of one
// SubscriptionStore, with batch entry points that fan out across a
// ThreadPool.
//
// Equivalence: with shard_count 1 a ShardedMatcher reproduces Matcher's
// verdicts exactly (same store decisions, same matched sets); with more
// shards the matched ID SET of a coverage-free store is unchanged and is
// returned sorted by id, so notification output is independent of the
// shard count (tests/batch_determinism_test.cpp).
//
// Thread-safety: externally single-threaded, like every matcher/store in
// this repo — one subscribe/match/match_batch call at a time. The batch
// calls own their internal parallelism (one lane per shard). The pool
// pointer passed at construction is borrowed, may be null (inline
// execution), and must outlive the matcher.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/publication.hpp"
#include "exec/sharded_store.hpp"
#include "exec/thread_pool.hpp"
#include "match/matcher.hpp"

namespace psc::match {

class ShardedMatcher {
 public:
  explicit ShardedMatcher(exec::ShardConfig config = {},
                          std::uint64_t seed = 0x9e3779b9ULL,
                          exec::ThreadPool* pool = nullptr)
      : store_(config, seed), pool_(pool) {}

  /// Registers a subscription owned by `neighbor` (or a local subscriber).
  /// Same preconditions as SubscriptionStore::insert (unique non-zero id).
  store::InsertResult subscribe(const core::Subscription& sub,
                                NeighborId neighbor);

  /// Batch subscribe: all owned by `neighbor`, processed in batch order
  /// per shard; results in input order (see ShardedStore::insert_batch).
  std::vector<store::InsertResult> subscribe_batch(
      std::span<const core::Subscription> subs, NeighborId neighbor);

  /// Unsubscribes by id; promotion semantics per SubscriptionStore.
  bool unsubscribe(core::SubscriptionId id);

  /// Algorithm 5 over all shards + neighbour short-circuit. `matched`
  /// comes back sorted by id; destinations deduplicated in first-match
  /// order. Deterministic for every shard count and pool size.
  [[nodiscard]] MatchOutcome match(const core::Publication& pub);

  /// match() for every publication, shard-parallel; results in input order
  /// and identical to sequential match() calls.
  [[nodiscard]] std::vector<MatchOutcome> match_batch(
      std::span<const core::Publication> pubs);

  [[nodiscard]] const exec::ShardedStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const MatchStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MatchStats{}; }

  [[nodiscard]] std::optional<NeighborId> neighbor_of(
      core::SubscriptionId id) const;

 private:
  exec::ShardedStore store_;
  exec::ThreadPool* pool_;
  std::unordered_map<core::SubscriptionId, NeighborId> owners_;
  MatchStats stats_;

  [[nodiscard]] MatchOutcome build_outcome(
      std::vector<core::SubscriptionId> matched);
};

}  // namespace psc::match
