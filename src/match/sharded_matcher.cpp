#include "match/sharded_matcher.hpp"

#include <algorithm>

namespace psc::match {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

store::InsertResult ShardedMatcher::subscribe(const Subscription& sub,
                                              NeighborId neighbor) {
  store::InsertResult result = store_.insert(sub);
  owners_[sub.id()] = neighbor;
  return result;
}

std::vector<store::InsertResult> ShardedMatcher::subscribe_batch(
    std::span<const Subscription> subs, NeighborId neighbor) {
  std::vector<store::InsertResult> results = store_.insert_batch(subs, pool_);
  for (const Subscription& sub : subs) owners_[sub.id()] = neighbor;
  return results;
}

bool ShardedMatcher::unsubscribe(SubscriptionId id) {
  if (!store_.erase(id)) return false;
  owners_.erase(id);
  return true;
}

std::optional<NeighborId> ShardedMatcher::neighbor_of(SubscriptionId id) const {
  const auto it = owners_.find(id);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

MatchOutcome ShardedMatcher::build_outcome(std::vector<SubscriptionId> matched) {
  ++stats_.publications;
  // Shard-major merge order -> id order, so outputs are independent of the
  // shard count.
  std::sort(matched.begin(), matched.end());

  MatchOutcome outcome;
  outcome.matched = std::move(matched);

  // Destination fan-out with per-neighbour dedup (paper, Section 4.4
  // optimization): once a neighbour is scheduled, further matches it owns
  // add no traffic.
  for (const SubscriptionId id : outcome.matched) {
    const auto owner_it = owners_.find(id);
    const NeighborId owner =
        owner_it == owners_.end() ? kLocalSubscriber : owner_it->second;
    if (owner == kLocalSubscriber) continue;
    if (std::find(outcome.destinations.begin(), outcome.destinations.end(),
                  owner) != outcome.destinations.end()) {
      ++stats_.neighbor_short_circuits;
      continue;
    }
    outcome.destinations.push_back(owner);
  }
  stats_.matches += outcome.matched.size();
  return outcome;
}

MatchOutcome ShardedMatcher::match(const Publication& pub) {
  return build_outcome(store_.match(pub));
}

std::vector<MatchOutcome> ShardedMatcher::match_batch(
    std::span<const Publication> pubs) {
  auto matched = store_.match_batch(pubs, pool_);
  std::vector<MatchOutcome> outcomes;
  outcomes.reserve(pubs.size());
  for (auto& ids : matched) outcomes.push_back(build_outcome(std::move(ids)));
  return outcomes;
}

}  // namespace psc::match
