// Matcher — Algorithm 5 with the paper's Section 4.4 optimizations, plus
// per-query cost accounting so benchmarks can compare "active-first"
// matching against flat scans and the counting-index baseline.
//
// The store already implements the active/covered split; the matcher wraps
// it with:
//   * notification fan-out (subscriber callbacks keyed by subscription id),
//   * per-neighbour destination dedup: once one of a neighbour broker's
//     subscriptions matched, further matches it owns add no traffic — the
//     publication travels there once (neighbor_short_circuits counts the
//     deduplicated hits),
//   * cost counters (subscriptions examined / matched, covered levels
//     entered) consumed by bench/micro_core and the routing layer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/publication.hpp"
#include "store/subscription_store.hpp"

namespace psc::match {

/// Opaque neighbour tag (broker link id, or local-subscriber sentinel).
using NeighborId = std::uint32_t;
inline constexpr NeighborId kLocalSubscriber = 0xffffffffU;

struct MatchStats {
  std::uint64_t publications = 0;
  std::uint64_t active_examined = 0;
  std::uint64_t covered_examined = 0;
  std::uint64_t matches = 0;
  std::uint64_t neighbor_short_circuits = 0;
};

struct MatchOutcome {
  /// Matching subscription ids (active and covered).
  std::vector<core::SubscriptionId> matched;
  /// Distinct neighbours that must receive the publication.
  std::vector<NeighborId> destinations;
};

class Matcher {
 public:
  explicit Matcher(store::StoreConfig config = {}, std::uint64_t seed = 0x9e3779b9ULL)
      : store_(config, seed) {}

  /// Registers a subscription owned by `neighbor` (or a local subscriber).
  store::InsertResult subscribe(const core::Subscription& sub, NeighborId neighbor);

  /// Unsubscribes by id; promotion semantics per SubscriptionStore.
  bool unsubscribe(core::SubscriptionId id);

  /// Algorithm 5 + neighbour short-circuit. Destinations are deduplicated.
  [[nodiscard]] MatchOutcome match(const core::Publication& pub);

  [[nodiscard]] const store::SubscriptionStore& store() const noexcept { return store_; }
  [[nodiscard]] const MatchStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MatchStats{}; }

  [[nodiscard]] std::optional<NeighborId> neighbor_of(core::SubscriptionId id) const;

 private:
  store::SubscriptionStore store_;
  std::unordered_map<core::SubscriptionId, NeighborId> owners_;
  MatchStats stats_;
};

}  // namespace psc::match
