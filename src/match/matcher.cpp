#include "match/matcher.hpp"

#include <algorithm>

namespace psc::match {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

store::InsertResult Matcher::subscribe(const Subscription& sub, NeighborId neighbor) {
  store::InsertResult result = store_.insert(sub);
  owners_[sub.id()] = neighbor;
  return result;
}

bool Matcher::unsubscribe(SubscriptionId id) {
  if (!store_.erase(id)) return false;
  owners_.erase(id);
  return true;
}

std::optional<NeighborId> Matcher::neighbor_of(SubscriptionId id) const {
  const auto it = owners_.find(id);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

MatchOutcome Matcher::match(const Publication& pub) {
  ++stats_.publications;
  MatchOutcome outcome;

  // Pass 1: actives (the uncovered set S). Track which neighbours are
  // already scheduled; subscriptions from an already-matched neighbour are
  // skipped — the publication travels to that broker regardless, and the
  // remote broker re-matches locally (paper, Section 4.4 optimization).
  std::vector<NeighborId> scheduled;
  auto neighbor_scheduled = [&](NeighborId n) {
    return std::find(scheduled.begin(), scheduled.end(), n) != scheduled.end();
  };

  const auto actives = store_.active_snapshot();
  bool any_active_match = false;
  for (const auto& sub : actives) {
    const auto owner_it = owners_.find(sub.id());
    const NeighborId owner =
        owner_it == owners_.end() ? kLocalSubscriber : owner_it->second;
    if (owner != kLocalSubscriber && neighbor_scheduled(owner)) {
      ++stats_.neighbor_short_circuits;
      continue;
    }
    ++stats_.active_examined;
    if (!pub.matches(sub)) continue;
    any_active_match = true;
    outcome.matched.push_back(sub.id());
    if (owner != kLocalSubscriber && !neighbor_scheduled(owner)) {
      scheduled.push_back(owner);
    }
  }

  // Pass 2 (Algorithm 5): covered subscriptions only when an active matched.
  if (any_active_match) {
    // Full covered scan through the store's combined matcher; subtract the
    // active ids we already recorded.
    const auto all = store_.match(pub);
    for (const SubscriptionId id : all) {
      if (std::find(outcome.matched.begin(), outcome.matched.end(), id) !=
          outcome.matched.end()) {
        continue;
      }
      ++stats_.covered_examined;
      outcome.matched.push_back(id);
      const auto owner_it = owners_.find(id);
      const NeighborId owner =
          owner_it == owners_.end() ? kLocalSubscriber : owner_it->second;
      if (owner != kLocalSubscriber && !neighbor_scheduled(owner)) {
        scheduled.push_back(owner);
      }
    }
  }

  stats_.matches += outcome.matched.size();
  outcome.destinations = std::move(scheduled);
  return outcome;
}

}  // namespace psc::match
