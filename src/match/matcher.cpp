#include "match/matcher.hpp"

#include <algorithm>

namespace psc::match {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

store::InsertResult Matcher::subscribe(const Subscription& sub, NeighborId neighbor) {
  store::InsertResult result = store_.insert(sub);
  owners_[sub.id()] = neighbor;
  return result;
}

bool Matcher::unsubscribe(SubscriptionId id) {
  if (!store_.erase(id)) return false;
  owners_.erase(id);
  return true;
}

std::optional<NeighborId> Matcher::neighbor_of(SubscriptionId id) const {
  const auto it = owners_.find(id);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

MatchOutcome Matcher::match(const Publication& pub) {
  ++stats_.publications;
  MatchOutcome outcome;

  // Algorithm 5 through the store: index-backed point-stab over the
  // actives (or the flat scan when StoreConfig::use_index is off), then
  // the Section 4.4 covered-DAG descent below matching actives. The store
  // reports the work both passes performed.
  const std::uint64_t covered_before = store_.covered_examined();
  outcome.matched = store_.match(pub);
  stats_.active_examined += store_.last_active_examined();
  stats_.covered_examined += store_.covered_examined() - covered_before;

  // Destination fan-out with per-neighbour dedup: once a neighbour is
  // scheduled, further matches it owns add no traffic — the publication
  // travels there once and the remote broker re-matches locally (paper,
  // Section 4.4 optimization).
  std::vector<NeighborId> scheduled;
  for (const SubscriptionId id : outcome.matched) {
    const auto owner_it = owners_.find(id);
    const NeighborId owner =
        owner_it == owners_.end() ? kLocalSubscriber : owner_it->second;
    if (owner == kLocalSubscriber) continue;
    if (std::find(scheduled.begin(), scheduled.end(), owner) !=
        scheduled.end()) {
      ++stats_.neighbor_short_circuits;
      continue;
    }
    scheduled.push_back(owner);
  }

  stats_.matches += outcome.matched.size();
  outcome.destinations = std::move(scheduled);
  return outcome;
}

}  // namespace psc::match
