// Persistent stage workers for the broker's publish pipeline.
//
// A StageSet owns a fixed set of named worker threads, each running a
// caller-provided loop body until the set is stopped. Unlike ThreadPool
// (transient parallel_for lanes joined by a barrier per call), StageSet
// threads are pinned for the lifetime of the pipeline: they park on their
// stage's ingress ring (exec/ring_queue.hpp) and the only cross-thread
// traffic is ring tokens — no per-batch thread churn, no barriers.
//
// Lifecycle contract:
//   * start() launches every registered stage; idempotent.
//   * The loop body receives a `const std::atomic<bool>& stop` flag and
//     must return promptly once it reads true AND its ingress ring is
//     closed/drained (the pipeline closes rings before stopping).
//   * stop_and_join() flips the flag, runs the registered shutdown hook
//     (which closes the rings, waking parked stages), and joins. Safe to
//     call repeatedly and from the destructor.
//
// A StageSet with zero registered stages is valid and free: the pipeline's
// inline mode (no workers — the configuration a one-core machine gets by
// default) registers nothing and runs every stage on the caller thread.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace psc::exec {

class StageSet {
 public:
  using StageBody = std::function<void(const std::atomic<bool>& stop)>;

  StageSet() = default;
  ~StageSet() { stop_and_join(); }

  StageSet(const StageSet&) = delete;
  StageSet& operator=(const StageSet&) = delete;

  /// Registers a stage loop. Must be called before start().
  void add_stage(std::string name, StageBody body) {
    stages_.push_back({std::move(name), std::move(body)});
  }

  /// Runs `hook` after the stop flag flips but before joining — the place
  /// to close the rings parked stages are blocked on.
  void on_stop(std::function<void()> hook) { stop_hook_ = std::move(hook); }

  [[nodiscard]] std::size_t stage_count() const noexcept {
    return stages_.size();
  }
  [[nodiscard]] bool running() const noexcept { return !threads_.empty(); }

  void start() {
    if (running() || stages_.empty()) return;
    stop_.store(false, std::memory_order_release);
    threads_.reserve(stages_.size());
    for (Stage& stage : stages_) {
      threads_.emplace_back([&stage, this] { stage.body(stop_); });
    }
  }

  void stop_and_join() {
    if (!running()) return;
    stop_.store(true, std::memory_order_release);
    if (stop_hook_) stop_hook_();
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }

 private:
  struct Stage {
    std::string name;
    StageBody body;
  };

  std::vector<Stage> stages_;
  std::vector<std::thread> threads_;
  std::function<void()> stop_hook_;
  std::atomic<bool> stop_{false};
};

}  // namespace psc::exec
