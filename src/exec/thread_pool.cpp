#include "exec/thread_pool.hpp"

#include <utility>

namespace psc::exec {

std::size_t ThreadPool::default_worker_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
}

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::record_exception(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) first_error_ = std::move(error);
}

std::size_t ThreadPool::drain(Job& job) {
  std::size_t ran = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1);
    if (i >= job.n) break;
    if (!job.aborted.load()) {
      try {
        (*job.body)(i);
      } catch (...) {
        record_exception(std::current_exception());
        job.aborted.store(true);
      }
    }
    ++ran;
    job.done.fetch_add(1);
  }
  return ran;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
      ++job->workers_inside;  // pins the Job until this worker exits it
    }
    drain(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->workers_inside;
    }
    work_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline execution: no synchronization, exceptions propagate directly
    // (indices after the throwing one do not run).
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  work_ready_.notify_all();

  drain(job);  // the calling thread is a lane too

  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] {
      return job.done.load() == job.n && job.workers_inside == 0;
    });
    job_ = nullptr;
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run(ThreadPool* pool, std::size_t n,
                     const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(n, body);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) body(i);
}

}  // namespace psc::exec
