// ThreadPool — a fixed pool of worker threads with a single blocking
// fan-out primitive, parallel_for.
//
// Design constraints, in order:
//   1. Determinism. The pool never influences RESULTS, only wall-clock
//      time: parallel_for(n, body) promises that body(0..n-1) each run
//      exactly once, with no two invocations sharing mutable state unless
//      the caller arranged it. Callers (ShardedStore, Broker) hand each
//      index a disjoint slice of state, so outputs are bitwise identical
//      whether the pool has 0, 1, or 64 workers.
//   2. No work for the idle case. A pool constructed with worker_count 0
//      (or parallel_for with n <= 1) executes inline on the caller's
//      thread — no threads are spawned, no synchronization is touched.
//      Every batch API in the repo accepts a nullable pool pointer and
//      treats nullptr exactly like an inline pool.
//   3. The caller participates. parallel_for uses the calling thread as
//      an extra worker, so a pool of W threads applies W+1 lanes and a
//      1-thread pool already halves the wall-clock of a 2-way split.
//
// Scheduling: indices are claimed from a shared atomic cursor (dynamic
// load balancing — shards with more work simply hold their lane longer).
//
// Thread-safety / error behavior: parallel_for is a barrier — it returns
// only after every body invocation finished. It is NOT reentrant: calling
// parallel_for from inside a body (nested parallelism) deadlocks and is a
// precondition violation. One ThreadPool must not run parallel_for from
// two external threads concurrently. If a body invocation throws, indices
// not yet started are skipped, the barrier still completes, and the first
// captured exception is rethrown on the caller's thread; state mutated by
// invocations that did run remains (the determinism guarantee therefore
// only covers runs in which no body throws).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psc::exec {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 = inline pool (no threads, still usable).
  explicit ThreadPool(std::size_t workers = default_worker_count());

  /// Joins all workers. Precondition: no parallel_for in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Hardware concurrency minus one (the caller's thread is a lane too);
  /// at least 0. A machine reporting 0 cores yields 0 workers.
  [[nodiscard]] static std::size_t default_worker_count() noexcept;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Number of lanes parallel_for applies: workers + the calling thread.
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs body(i) exactly once for every i in [0, n), blocking until all
  /// invocations completed. See the file comment for the full contract.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// parallel_for through a nullable pool: nullptr runs inline.
  static void run(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

 private:
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> aborted{false};
    int workers_inside = 0;  ///< guarded by mutex_; keeps Job alive
  };

  void worker_loop();
  /// Claims and runs indices of the current job until exhausted. Returns
  /// the number of invocations this thread completed.
  std::size_t drain(Job& job);
  void record_exception(std::exception_ptr error);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Job* job_ = nullptr;           ///< non-null while a batch is live
  std::uint64_t generation_ = 0; ///< bumped per batch; wakes workers
  bool stopping_ = false;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace psc::exec
