// ShardedStore — the scaling seam over SubscriptionStore: subscriptions
// are partitioned across N shards by a stable hash of their id, and each
// shard owns a full private SubscriptionStore — its own IntervalIndex,
// SubsumptionEngine, EngineWorkspace, and RNG stream. No state is shared
// between shards, so batch operations fan out across a ThreadPool with one
// lane per shard and PR 1's zero-allocation / no-locking invariants hold
// per thread by construction.
//
// Decision semantics. Coverage is evaluated WITHIN a shard: a subscription
// can only be covered by (or demote, or promote) subscriptions hashed to
// the same shard. With shard_count == 1 every decision — InsertResult,
// engine diagnostics, promotions on erase, match outputs and their order —
// is identical to a sequential SubscriptionStore constructed with
// (config.store, shard_seed(seed, 0)); tests/batch_determinism_test.cpp
// property-tests this. With shard_count > 1 the active/covered split is a
// refinement (fewer covers are found, never wrong ones), and publication
// MATCHING over a coverage-free store (CoveragePolicy::kNone) returns the
// same id set for every shard count, because matching is exact and
// partition-independent.
//
// Determinism contract (see docs/ARCHITECTURE.md for the full statement):
//   * same shard_count + seed + call sequence => bitwise-identical results
//     and identical per-shard RNG consumption, regardless of the pool's
//     worker count (including none) or OS scheduling;
//   * merged outputs are ordered by shard id, then by the shard's own
//     deterministic order (active slot order / cover-DAG descent), and
//     batch results by input sequence — never by thread completion;
//   * across DIFFERENT shard counts only set-level guarantees hold (and
//     for coverage policies other than kNone, only one-sided ones).
//
// Thread-safety: const queries mutate per-shard scratch, so one
// ShardedStore instance must not serve two concurrent calls; the batch
// entry points own their internal parallelism (one task per shard) and are
// safe with respect to themselves. Different ShardedStore instances are
// fully independent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "exec/thread_pool.hpp"
#include "store/subscription_store.hpp"

namespace psc::exec {

struct ShardConfig {
  /// Number of partitions (>= 1; 0 is coerced to 1). Throughput scales
  /// with min(shard_count, pool lanes); shard counts beyond the hardware
  /// only shrink per-shard indexes (see docs/TUNING.md).
  std::size_t shard_count = 1;
  /// Per-shard store configuration (policy, index, engine tuning).
  store::StoreConfig store;
};

/// Seed of shard `shard`'s store, derived from the instance seed. Exposed
/// so tests can build the decision-identical sequential reference:
/// SubscriptionStore(config.store, shard_seed(seed, 0)).
[[nodiscard]] std::uint64_t shard_seed(std::uint64_t base,
                                       std::size_t shard) noexcept;

class ShardedStore {
 public:
  explicit ShardedStore(ShardConfig config = {},
                        std::uint64_t seed = 0xc0ffee11ULL);

  /// Stable hash partition of an id; identical across runs and platforms.
  [[nodiscard]] std::size_t shard_of(core::SubscriptionId id) const noexcept;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const store::SubscriptionStore& shard(std::size_t i) const {
    return shards_.at(i);
  }
  [[nodiscard]] const ShardConfig& config() const noexcept { return config_; }

  // --- sequential API (decision-identical to one store at shard_count 1) --

  /// Inserts into the owning shard; see SubscriptionStore::insert.
  store::InsertResult insert(const core::Subscription& sub);

  /// Erases from the owning shard; promotions are same-shard ids.
  store::SubscriptionStore::EraseResult erase_reporting(core::SubscriptionId id);
  bool erase(core::SubscriptionId id) { return erase_reporting(id).erased; }

  [[nodiscard]] const core::Subscription* find(core::SubscriptionId id) const;
  [[nodiscard]] bool contains(core::SubscriptionId id) const;
  [[nodiscard]] bool is_active(core::SubscriptionId id) const;
  [[nodiscard]] std::vector<core::SubscriptionId> coverers_of(
      core::SubscriptionId id) const;

  /// All matching ids (active + covered), shard-id-major order.
  [[nodiscard]] std::vector<core::SubscriptionId> match(
      const core::Publication& pub) const;
  /// Matching active ids, shard-id-major order.
  [[nodiscard]] std::vector<core::SubscriptionId> match_active(
      const core::Publication& pub) const;

  /// Out-parameter forms: APPEND the same ids to `out`. With a warm
  /// caller-owned buffer a steady-state call performs zero heap
  /// allocations (the broker publish path's contract — see
  /// tests/publish_alloc_test.cpp).
  void match(const core::Publication& pub,
             std::vector<core::SubscriptionId>& out) const;
  void match_active(const core::Publication& pub,
                    std::vector<core::SubscriptionId>& out) const;

  [[nodiscard]] std::size_t active_count() const noexcept;
  [[nodiscard]] std::size_t covered_count() const noexcept;
  [[nodiscard]] std::size_t total_count() const noexcept;
  /// Engine (group) checks executed across all shards — cost metric.
  [[nodiscard]] std::uint64_t group_checks() const noexcept;

  // --- batch API (fans out across shards on `pool`; nullptr = inline) ----

  /// Inserts `subs` in batch order. Each shard processes its subset in
  /// input order, so results (returned in input order) are identical to
  /// calling insert() sequentially — the pool only changes wall-clock.
  std::vector<store::InsertResult> insert_batch(
      std::span<const core::Subscription> subs, ThreadPool* pool = nullptr);

  /// As above over a pointer set — the zero-copy entry point (the broker
  /// batches pointers into its routing table). Preconditions: no null
  /// pointers; pointees stay valid for the duration of the call.
  std::vector<store::InsertResult> insert_batch(
      std::span<const core::Subscription* const> subs,
      ThreadPool* pool = nullptr);

  /// match() for every publication; results in input order.
  [[nodiscard]] std::vector<std::vector<core::SubscriptionId>> match_batch(
      std::span<const core::Publication> pubs, ThreadPool* pool = nullptr) const;

  /// match_active() for every publication; results in input order.
  [[nodiscard]] std::vector<std::vector<core::SubscriptionId>>
  match_active_batch(std::span<const core::Publication> pubs,
                     ThreadPool* pool = nullptr) const;

  /// Out-parameter form of match_active_batch: `out` is resized to
  /// pubs.size() and out[p] is overwritten (cleared, capacity kept) with
  /// the shard-id-major match_active ids of pubs[p]. Reusing one `out`
  /// across calls keeps the steady-state batch free of per-publication
  /// vector churn; the per-shard intermediates live in instance scratch.
  void match_active_batch(std::span<const core::Publication> pubs,
                          std::vector<std::vector<core::SubscriptionId>>& out,
                          ThreadPool* pool = nullptr) const;

 private:
  ShardConfig config_;
  std::vector<store::SubscriptionStore> shards_;
  /// Per-shard, per-publication batch intermediates, reused across batch
  /// calls (batch entry points are exclusive per instance, so the mutable
  /// scratch is single-writer by contract).
  mutable std::vector<std::vector<std::vector<core::SubscriptionId>>>
      batch_scratch_;

  store::SubscriptionStore& owning_shard(core::SubscriptionId id) {
    return shards_[shard_of(id)];
  }
  [[nodiscard]] const store::SubscriptionStore* shard_holding(
      core::SubscriptionId id) const;

  void run_match_batch(std::span<const core::Publication> pubs,
                       ThreadPool* pool, bool active_only,
                       std::vector<std::vector<core::SubscriptionId>>& out) const;
};

}  // namespace psc::exec
