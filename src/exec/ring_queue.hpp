// Bounded lock-free ring queues — the stage connectors of the broker's
// publish pipeline (routing/publish_pipeline.hpp).
//
// Two flavours:
//   * SpscRingQueue — single producer, single consumer. Head and tail are
//     each written by exactly one side, so a push is one store-release and
//     a pop one load-acquire; no CAS anywhere on the fast path.
//   * MpscRingQueue — many producers, single consumer (Vyukov bounded
//     queue restricted to one consumer). Producers claim slots with a CAS
//     on the tail ticket; per-slot sequence numbers hand completed cells
//     to the consumer in ticket order.
//
// Both are bounded (capacity rounded up to a power of two): a full queue
// is backpressure, not an allocation. `try_push`/`try_pop` never block;
// the blocking forms spin briefly and then yield (exec::SpinWait), and
// return false only once the queue is closed AND drained (pop) or closed
// (push) — close() is how a pipeline shuts its stages down without a
// sentinel element.
//
// Memory ordering: a successful push happens-before the pop that returns
// the element (release store on the publishing index / sequence, acquire
// load on the consuming side), so producers can publish plain writes to
// shared slot buffers by passing the slot's index through the ring. The
// TSan suite (tests/ring_queue_test.cpp) runs exactly that pattern.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace psc::exec {

/// Spin-then-yield backoff for bounded waits between pipeline stages.
/// Busy-polls for a short burst (cheap when the other stage is about to
/// act), then degrades to yield so an idle or oversubscribed machine —
/// like a one-core box running every stage on one CPU — makes progress.
class SpinWait {
 public:
  void pause() noexcept {
    if (spins_ < kSpinLimit) {
      ++spins_;
      return;
    }
    std::this_thread::yield();
  }
  void reset() noexcept { spins_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 128;
  std::uint32_t spins_ = 0;
};

namespace detail {

inline std::size_t ring_capacity(std::size_t requested) {
  std::size_t cap = 1;
  while (cap < requested) cap <<= 1;
  return cap < 2 ? 2 : cap;
}

}  // namespace detail

/// Bounded single-producer single-consumer ring. Exactly one thread may
/// call the push side and exactly one the pop side (they may be the same
/// thread, as in the pipeline's inline mode).
template <typename T>
class SpscRingQueue {
 public:
  explicit SpscRingQueue(std::size_t capacity)
      : buffer_(detail::ring_capacity(capacity)),
        mask_(buffer_.size() - 1) {}

  SpscRingQueue(const SpscRingQueue&) = delete;
  SpscRingQueue& operator=(const SpscRingQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }

  /// Producer side. Returns false when the ring is full (or closed).
  bool try_push(T value) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buffer_.size()) {
      return false;  // full
    }
    buffer_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Blocking producer form: spins/yields while full. Returns false only
  /// if the queue is closed before the element fits.
  bool push(T value) {
    SpinWait wait;
    while (!try_push(value)) {
      if (closed_.load(std::memory_order_acquire)) return false;
      wait.pause();
    }
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Blocking consumer form: spins/yields while empty. Returns false only
  /// once the queue is closed AND fully drained.
  bool pop(T& out) {
    SpinWait wait;
    while (!try_pop(out)) {
      if (closed_.load(std::memory_order_acquire)) {
        // Late elements may still be in flight: one more check after
        // observing the close flag keeps close()+push races lossless.
        return try_pop(out);
      }
      wait.pause();
    }
    return true;
  }

  /// Wakes blocked producers and consumers; pending elements stay
  /// poppable. Idempotent.
  void close() noexcept { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  // Producer and consumer indices live on their own cache lines so the
  // two sides do not false-share.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<bool> closed_{false};
};

/// Bounded multi-producer single-consumer ring. Any number of threads may
/// push; exactly one thread pops. Elements come out in ticket (slot-claim)
/// order, and each producer's own elements stay in its push order.
template <typename T>
class MpscRingQueue {
 public:
  explicit MpscRingQueue(std::size_t capacity)
      : cells_(detail::ring_capacity(capacity)),
        mask_(cells_.size() - 1) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRingQueue(const MpscRingQueue&) = delete;
  MpscRingQueue& operator=(const MpscRingQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return cells_.size(); }

  bool try_push(T value) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(ticket);
      if (diff == 0) {
        // The cell is free for this ticket; claim it.
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // Lost the race; `ticket` was reloaded by the CAS — retry.
      } else if (diff < 0) {
        return false;  // full: the consumer has not freed this cell yet
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool push(T value) {
    SpinWait wait;
    while (!try_push(value)) {
      if (closed_.load(std::memory_order_acquire)) return false;
      wait.pause();
    }
    return true;
  }

  bool try_pop(T& out) {
    Cell& cell = cells_[head_ & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<std::ptrdiff_t>(seq) -
            static_cast<std::ptrdiff_t>(head_ + 1) != 0) {
      return false;  // next element not published yet
    }
    out = std::move(cell.value);
    cell.sequence.store(head_ + cells_.size(), std::memory_order_release);
    ++head_;
    return true;
  }

  bool pop(T& out) {
    SpinWait wait;
    while (!try_pop(out)) {
      if (closed_.load(std::memory_order_acquire)) return try_pop(out);
      wait.pause();
    }
    return true;
  }

  void close() noexcept { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> tail_{0};
  // Single consumer: head needs no atomicity, only separation from tail_.
  alignas(64) std::size_t head_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace psc::exec
