#include "exec/sharded_store.hpp"

#include "util/rng.hpp"

namespace psc::exec {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) noexcept {
  std::uint64_t state =
      base ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1));
  return util::splitmix64(state);
}

ShardedStore::ShardedStore(ShardConfig config, std::uint64_t seed)
    : config_(config) {
  if (config_.shard_count == 0) config_.shard_count = 1;
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.emplace_back(config_.store, shard_seed(seed, s));
  }
}

std::size_t ShardedStore::shard_of(SubscriptionId id) const noexcept {
  std::uint64_t state = id;
  return static_cast<std::size_t>(util::splitmix64(state) % shards_.size());
}

const store::SubscriptionStore* ShardedStore::shard_holding(
    SubscriptionId id) const {
  const store::SubscriptionStore& shard = shards_[shard_of(id)];
  return shard.contains(id) ? &shard : nullptr;
}

store::InsertResult ShardedStore::insert(const Subscription& sub) {
  return owning_shard(sub.id()).insert(sub);
}

store::SubscriptionStore::EraseResult ShardedStore::erase_reporting(
    SubscriptionId id) {
  return owning_shard(id).erase_reporting(id);
}

const Subscription* ShardedStore::find(SubscriptionId id) const {
  const auto* shard = shard_holding(id);
  return shard ? shard->find(id) : nullptr;
}

bool ShardedStore::contains(SubscriptionId id) const {
  return shard_holding(id) != nullptr;
}

bool ShardedStore::is_active(SubscriptionId id) const {
  const auto* shard = shard_holding(id);
  return shard != nullptr && shard->is_active(id);
}

std::vector<SubscriptionId> ShardedStore::coverers_of(SubscriptionId id) const {
  const auto* shard = shard_holding(id);
  return shard ? shard->coverers_of(id) : std::vector<SubscriptionId>{};
}

void ShardedStore::match(const Publication& pub,
                         std::vector<SubscriptionId>& out) const {
  // Sequential shard-id-major append: each shard's out-parameter overload
  // writes straight into the shared buffer, so the merged result needs no
  // per-shard intermediates.
  for (const auto& shard : shards_) shard.match(pub, out);
}

std::vector<SubscriptionId> ShardedStore::match(const Publication& pub) const {
  std::vector<SubscriptionId> out;
  match(pub, out);
  return out;
}

void ShardedStore::match_active(const Publication& pub,
                                std::vector<SubscriptionId>& out) const {
  for (const auto& shard : shards_) shard.match_active(pub, out);
}

std::vector<SubscriptionId> ShardedStore::match_active(
    const Publication& pub) const {
  std::vector<SubscriptionId> out;
  match_active(pub, out);
  return out;
}

std::size_t ShardedStore::active_count() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.active_count();
  return n;
}

std::size_t ShardedStore::covered_count() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.covered_count();
  return n;
}

std::size_t ShardedStore::total_count() const noexcept {
  return active_count() + covered_count();
}

std::uint64_t ShardedStore::group_checks() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard.group_checks();
  return n;
}

std::vector<store::InsertResult> ShardedStore::insert_batch(
    std::span<const Subscription* const> subs, ThreadPool* pool) {
  std::vector<store::InsertResult> results(subs.size());
  // Partition input positions by owning shard, preserving batch order, so
  // every shard replays exactly the subsequence a sequential insert() loop
  // would have handed it.
  std::vector<std::vector<std::size_t>> positions(shards_.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    positions[shard_of(subs[i]->id())].push_back(i);
  }
  ThreadPool::run(pool, shards_.size(), [&](std::size_t s) {
    for (const std::size_t i : positions[s]) {
      results[i] = shards_[s].insert(*subs[i]);
    }
  });
  return results;
}

std::vector<store::InsertResult> ShardedStore::insert_batch(
    std::span<const Subscription> subs, ThreadPool* pool) {
  std::vector<const Subscription*> pointers;
  pointers.reserve(subs.size());
  for (const Subscription& sub : subs) pointers.push_back(&sub);
  return insert_batch(std::span<const Subscription* const>(pointers), pool);
}

void ShardedStore::run_match_batch(
    std::span<const Publication> pubs, ThreadPool* pool, bool active_only,
    std::vector<std::vector<SubscriptionId>>& out) const {
  // Shard-major fan-out: one lane per shard walks the whole batch, because
  // a shard's store owns mutable query scratch and must stay single-lane.
  // Intermediates live in batch_scratch_ and are cleared (capacity kept)
  // instead of reallocated, so a steady-state batch reuses every buffer.
  batch_scratch_.resize(shards_.size());
  ThreadPool::run(pool, shards_.size(), [&](std::size_t s) {
    auto& mine = batch_scratch_[s];
    if (mine.size() < pubs.size()) mine.resize(pubs.size());
    for (std::size_t p = 0; p < pubs.size(); ++p) {
      mine[p].clear();
      if (active_only) {
        shards_[s].match_active(pubs[p], mine[p]);
      } else {
        shards_[s].match(pubs[p], mine[p]);
      }
    }
  });

  out.resize(pubs.size());
  for (std::size_t p = 0; p < pubs.size(); ++p) {
    auto& merged = out[p];
    merged.clear();
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      total += batch_scratch_[s][p].size();
    }
    merged.reserve(total);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      merged.insert(merged.end(), batch_scratch_[s][p].begin(),
                    batch_scratch_[s][p].end());
    }
  }
}

std::vector<std::vector<SubscriptionId>> ShardedStore::match_batch(
    std::span<const Publication> pubs, ThreadPool* pool) const {
  std::vector<std::vector<SubscriptionId>> out;
  run_match_batch(pubs, pool, /*active_only=*/false, out);
  return out;
}

std::vector<std::vector<SubscriptionId>> ShardedStore::match_active_batch(
    std::span<const Publication> pubs, ThreadPool* pool) const {
  std::vector<std::vector<SubscriptionId>> out;
  run_match_batch(pubs, pool, /*active_only=*/true, out);
  return out;
}

void ShardedStore::match_active_batch(
    std::span<const Publication> pubs,
    std::vector<std::vector<SubscriptionId>>& out, ThreadPool* pool) const {
  run_match_batch(pubs, pool, /*active_only=*/true, out);
}

}  // namespace psc::exec
