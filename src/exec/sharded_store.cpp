#include "exec/sharded_store.hpp"

#include "util/rng.hpp"

namespace psc::exec {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) noexcept {
  std::uint64_t state =
      base ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1));
  return util::splitmix64(state);
}

ShardedStore::ShardedStore(ShardConfig config, std::uint64_t seed)
    : config_(config) {
  if (config_.shard_count == 0) config_.shard_count = 1;
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.emplace_back(config_.store, shard_seed(seed, s));
  }
}

std::size_t ShardedStore::shard_of(SubscriptionId id) const noexcept {
  std::uint64_t state = id;
  return static_cast<std::size_t>(util::splitmix64(state) % shards_.size());
}

const store::SubscriptionStore* ShardedStore::shard_holding(
    SubscriptionId id) const {
  const store::SubscriptionStore& shard = shards_[shard_of(id)];
  return shard.contains(id) ? &shard : nullptr;
}

store::InsertResult ShardedStore::insert(const Subscription& sub) {
  return owning_shard(sub.id()).insert(sub);
}

store::SubscriptionStore::EraseResult ShardedStore::erase_reporting(
    SubscriptionId id) {
  return owning_shard(id).erase_reporting(id);
}

const Subscription* ShardedStore::find(SubscriptionId id) const {
  const auto* shard = shard_holding(id);
  return shard ? shard->find(id) : nullptr;
}

bool ShardedStore::contains(SubscriptionId id) const {
  return shard_holding(id) != nullptr;
}

bool ShardedStore::is_active(SubscriptionId id) const {
  const auto* shard = shard_holding(id);
  return shard != nullptr && shard->is_active(id);
}

std::vector<SubscriptionId> ShardedStore::coverers_of(SubscriptionId id) const {
  const auto* shard = shard_holding(id);
  return shard ? shard->coverers_of(id) : std::vector<SubscriptionId>{};
}

std::vector<SubscriptionId> ShardedStore::match(const Publication& pub) const {
  std::vector<SubscriptionId> out;
  for (const auto& shard : shards_) {
    const auto ids = shard.match(pub);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

std::vector<SubscriptionId> ShardedStore::match_active(
    const Publication& pub) const {
  std::vector<SubscriptionId> out;
  for (const auto& shard : shards_) {
    const auto ids = shard.match_active(pub);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

std::size_t ShardedStore::active_count() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.active_count();
  return n;
}

std::size_t ShardedStore::covered_count() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.covered_count();
  return n;
}

std::size_t ShardedStore::total_count() const noexcept {
  return active_count() + covered_count();
}

std::uint64_t ShardedStore::group_checks() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard.group_checks();
  return n;
}

std::vector<store::InsertResult> ShardedStore::insert_batch(
    std::span<const Subscription* const> subs, ThreadPool* pool) {
  std::vector<store::InsertResult> results(subs.size());
  // Partition input positions by owning shard, preserving batch order, so
  // every shard replays exactly the subsequence a sequential insert() loop
  // would have handed it.
  std::vector<std::vector<std::size_t>> positions(shards_.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    positions[shard_of(subs[i]->id())].push_back(i);
  }
  ThreadPool::run(pool, shards_.size(), [&](std::size_t s) {
    for (const std::size_t i : positions[s]) {
      results[i] = shards_[s].insert(*subs[i]);
    }
  });
  return results;
}

std::vector<store::InsertResult> ShardedStore::insert_batch(
    std::span<const Subscription> subs, ThreadPool* pool) {
  std::vector<const Subscription*> pointers;
  pointers.reserve(subs.size());
  for (const Subscription& sub : subs) pointers.push_back(&sub);
  return insert_batch(std::span<const Subscription* const>(pointers), pool);
}

std::vector<std::vector<SubscriptionId>> ShardedStore::run_match_batch(
    std::span<const Publication> pubs, ThreadPool* pool,
    bool active_only) const {
  // Shard-major fan-out: one lane per shard walks the whole batch, because
  // a shard's store owns mutable query scratch and must stay single-lane.
  std::vector<std::vector<std::vector<SubscriptionId>>> partial(
      shards_.size());
  ThreadPool::run(pool, shards_.size(), [&](std::size_t s) {
    auto& mine = partial[s];
    mine.resize(pubs.size());
    for (std::size_t p = 0; p < pubs.size(); ++p) {
      mine[p] = active_only ? shards_[s].match_active(pubs[p])
                            : shards_[s].match(pubs[p]);
    }
  });

  std::vector<std::vector<SubscriptionId>> results(pubs.size());
  for (std::size_t p = 0; p < pubs.size(); ++p) {
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      total += partial[s][p].size();
    }
    results[p].reserve(total);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      results[p].insert(results[p].end(), partial[s][p].begin(),
                        partial[s][p].end());
    }
  }
  return results;
}

std::vector<std::vector<SubscriptionId>> ShardedStore::match_batch(
    std::span<const Publication> pubs, ThreadPool* pool) const {
  return run_match_batch(pubs, pool, /*active_only=*/false);
}

std::vector<std::vector<SubscriptionId>> ShardedStore::match_active_batch(
    std::span<const Publication> pubs, ThreadPool* pool) const {
  return run_match_batch(pubs, pool, /*active_only=*/true);
}

}  // namespace psc::exec
