#include "store/subscription_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "baseline/exact_subsumption.hpp"
#include "baseline/pairwise_cover.hpp"

namespace psc::store {

std::string_view to_string(CoveragePolicy policy) noexcept {
  switch (policy) {
    case CoveragePolicy::kNone: return "none";
    case CoveragePolicy::kPairwise: return "pairwise";
    case CoveragePolicy::kGroup: return "group";
    case CoveragePolicy::kExact: return "exact";
  }
  return "?";
}

CoveragePolicy parse_coverage_policy(std::string_view name) {
  if (name == "none") return CoveragePolicy::kNone;
  if (name == "pairwise") return CoveragePolicy::kPairwise;
  if (name == "group") return CoveragePolicy::kGroup;
  if (name == "exact") return CoveragePolicy::kExact;
  throw std::invalid_argument("unknown coverage policy (none|pairwise|group|exact): " +
                              std::string(name));
}

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

SubscriptionStore::SubscriptionStore(StoreConfig config, std::uint64_t seed)
    : config_(config), engine_(config.engine, seed) {}

void SubscriptionStore::index_insert_active(const Subscription& sub) {
  if (!config_.use_index) return;
  if (!interval_index_) {
    interval_index_.emplace(sub.attribute_count(), config_.index);
  }
  interval_index_->insert(sub);
}

std::span<const Subscription* const> SubscriptionStore::intersecting_candidates(
    const Subscription& box) {
  // Index-pruned candidates, reordered to active-slot order: every
  // downstream consumer (pairwise first-cover, engine diagnostics, group
  // coverer lists, demotion) then sees the same sequence the flat scan
  // would produce, making the two paths decision-for-decision identical.
  id_scratch_.clear();
  interval_index_->box_intersect(box, id_scratch_);
  slot_scratch_.clear();
  for (const SubscriptionId id : id_scratch_) {
    slot_scratch_.push_back(active_index_.at(id));
  }
  std::sort(slot_scratch_.begin(), slot_scratch_.end());
  candidate_scratch_.clear();
  for (const std::size_t slot : slot_scratch_) {
    candidate_scratch_.push_back(&active_[slot]);
  }
  return candidate_scratch_;
}

std::optional<std::vector<SubscriptionId>> SubscriptionStore::check_covered(
    const Subscription& sub, std::optional<core::SubsumptionResult>* diag) {
  if (config_.policy == CoveragePolicy::kNone) return std::nullopt;

  // Candidate pruning: only actives whose box intersects sub can take part
  // in covering it (pairwise or as a group), so everything else is skipped
  // before the policies run. Gated on the engine's own prefilter knob:
  // with prefilter_intersecting=false the caller asked the engine to see
  // the unfiltered set (an ablation configuration), and pruning here would
  // silently reintroduce the filter.
  const bool pruned = index_enabled() && config_.engine.prefilter_intersecting;
  std::span<const Subscription* const> candidates;
  if (pruned) candidates = intersecting_candidates(sub);

  switch (config_.policy) {
    case CoveragePolicy::kNone:
      return std::nullopt;
    case CoveragePolicy::kPairwise: {
      if (pruned) {
        for (const Subscription* candidate : candidates) {
          if (candidate->covers(sub)) {
            return std::vector<SubscriptionId>{candidate->id()};
          }
        }
        return std::nullopt;
      }
      if (const auto slot = baseline::find_covering(sub, active_)) {
        return std::vector<SubscriptionId>{active_[*slot].id()};
      }
      return std::nullopt;
    }
    case CoveragePolicy::kGroup: {
      ++group_checks_;
      core::SubsumptionResult result;
      if (pruned) {
        if (candidates.empty() && !active_.empty()) {
          // The index proved no active intersects sub; mirror what the
          // engine's own prefilter would have reported on the full set so
          // pruning stays invisible in the diagnostics.
          result.covered = false;
          result.path = core::DecisionPath::kMcsEmpty;
        } else {
          result = engine_.check(sub, candidates);
        }
        // Diagnostics describe the caller-visible set, not the pruned one.
        result.original_set_size = active_.size();
      } else {
        result = engine_.check(sub, active_);
      }
      if (diag) *diag = result;
      if (!result.covered) return std::nullopt;
      if (result.covering_index) {
        const SubscriptionId coverer_id =
            pruned ? candidates[*result.covering_index]->id()
                   : active_[*result.covering_index].id();
        return std::vector<SubscriptionId>{coverer_id};
      }
      // Group cover: conservatively record every active that overlaps sub
      // as a coverer — any of them disappearing may expose sub again.
      std::vector<SubscriptionId> coverers;
      if (pruned) {
        coverers.reserve(candidates.size());
        for (const Subscription* candidate : candidates) {
          coverers.push_back(candidate->id());
        }
      } else {
        for (const auto& active : active_) {
          if (active.intersects(sub)) coverers.push_back(active.id());
        }
      }
      return coverers;
    }
    case CoveragePolicy::kExact: {
      // Exact group cover via recursive box subtraction. Only intersecting
      // actives can contribute to the union over sub, so the candidate set
      // is always the intersecting ones whether or not the index prunes;
      // either way it is assembled as pointers (zero subscription copies).
      std::vector<const Subscription*> group;
      std::vector<SubscriptionId> coverers;
      const auto consider = [&](const Subscription& active) {
        if (active.covers(sub)) return true;  // pairwise fast path
        group.push_back(&active);
        coverers.push_back(active.id());
        return false;
      };
      if (pruned) {
        group.reserve(candidates.size());
        for (const Subscription* candidate : candidates) {
          if (consider(*candidate)) {
            return std::vector<SubscriptionId>{candidate->id()};
          }
        }
      } else {
        for (const auto& active : active_) {
          if (!active.intersects(sub)) continue;
          if (consider(active)) {
            return std::vector<SubscriptionId>{active.id()};
          }
        }
      }
      if (group.empty()) return std::nullopt;
      bool covered = false;
      try {
        covered = baseline::exactly_covered(sub, group);
      } catch (const std::runtime_error&) {
        // Fragment-limit blowup on an adversarial set: treating the
        // subscription as uncovered is sound (it floods instead of being
        // suppressed, which can never lose a notification).
        covered = false;
      }
      if (!covered) return std::nullopt;
      return coverers;
    }
  }
  return std::nullopt;
}

void SubscriptionStore::link_coverers(
    SubscriptionId covered_id, const std::vector<SubscriptionId>& coverers) {
  for (const SubscriptionId coverer : coverers) {
    children_[coverer].push_back(covered_id);
  }
}

void SubscriptionStore::unlink_coverers(
    SubscriptionId covered_id, const std::vector<SubscriptionId>& coverers) {
  for (const SubscriptionId coverer : coverers) {
    const auto it = children_.find(coverer);
    if (it == children_.end()) continue;
    auto& kids = it->second;
    kids.erase(std::remove(kids.begin(), kids.end(), covered_id), kids.end());
    if (kids.empty()) children_.erase(it);
  }
}

std::vector<SubscriptionId> SubscriptionStore::coverers_of(
    SubscriptionId id) const {
  const auto it = covered_.find(id);
  if (it == covered_.end()) return {};
  return it->second.coverers;
}

void SubscriptionStore::demote_actives_covered_by(const Subscription& sub,
                                                  InsertResult& result) {
  // Collect first (indices shift under erase), then demote by id. An
  // active covered by sub necessarily intersects it, so the index prunes
  // the candidate sweep here too.
  std::vector<SubscriptionId> to_demote;
  if (index_enabled()) {
    for (const Subscription* candidate : intersecting_candidates(sub)) {
      if (sub.covers(*candidate)) to_demote.push_back(candidate->id());
    }
  } else {
    for (const auto& active : active_) {
      if (sub.covers(active)) to_demote.push_back(active.id());
    }
  }
  for (const SubscriptionId id : to_demote) {
    const auto it = active_index_.find(id);
    if (it == active_index_.end()) continue;
    CoveredEntry entry{active_[it->second], {sub.id()}};
    erase_active_slot(it->second);
    link_coverers(id, entry.coverers);
    covered_.emplace(id, std::move(entry));
    result.demoted.push_back(id);
  }
}

void SubscriptionStore::erase_active_slot(std::size_t slot) {
  const std::size_t last = active_.size() - 1;
  if (index_enabled()) interval_index_->erase(active_[slot].id());
  active_index_.erase(active_[slot].id());
  if (slot != last) {
    active_[slot] = std::move(active_[last]);
    active_index_[active_[slot].id()] = slot;
  }
  active_.pop_back();
}

InsertResult SubscriptionStore::insert(const Subscription& sub) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("SubscriptionStore::insert: id must be non-zero");
  }
  if (contains(sub.id())) {
    throw std::invalid_argument("SubscriptionStore::insert: duplicate id " +
                                std::to_string(sub.id()));
  }
  // Mixed-arity stream: the index requires one attribute schema, so fall
  // back to the flat scans for good (decision-for-decision identical per
  // the equivalence property tests) instead of rejecting the insert.
  if (config_.use_index && interval_index_ &&
      sub.attribute_count() != interval_index_->attribute_count()) {
    interval_index_.reset();
    config_.use_index = false;
  }
  InsertResult result;
  std::optional<core::SubsumptionResult> diag;
  if (auto coverers = check_covered(sub, &diag)) {
    result.covered = true;
    result.engine_result = std::move(diag);
    link_coverers(sub.id(), *coverers);
    covered_.emplace(sub.id(), CoveredEntry{sub, std::move(*coverers)});
    return result;
  }
  result.engine_result = std::move(diag);
  result.accepted_active = true;
  if (config_.demote_covered_actives) demote_actives_covered_by(sub, result);
  index_insert_active(sub);
  active_index_[sub.id()] = active_.size();
  active_.push_back(sub);
  return result;
}

SubscriptionStore::EraseResult SubscriptionStore::erase_reporting(
    SubscriptionId id) {
  EraseResult result;
  if (const auto covered_it = covered_.find(id); covered_it != covered_.end()) {
    unlink_coverers(id, covered_it->second.coverers);
    covered_.erase(covered_it);
    result.erased = true;
    return result;
  }
  const auto it = active_index_.find(id);
  if (it == active_index_.end()) return result;
  erase_active_slot(it->second);
  result.erased = true;

  // Promotion pass (paper, Section 5): covered subscriptions that listed
  // the vanished active among their coverers get re-evaluated. Re-running
  // the policy handles both outcomes — still covered by the remaining
  // actives (stays covered, coverers refreshed) or newly exposed
  // (promoted to active, possibly demoting others in turn).
  // The cover DAG gives the dependents directly.
  std::vector<SubscriptionId> candidates;
  if (const auto kids = children_.find(id); kids != children_.end()) {
    candidates = kids->second;
  }
  for (const SubscriptionId cid : candidates) {
    auto node = covered_.extract(cid);
    unlink_coverers(cid, node.mapped().coverers);
    Subscription sub = std::move(node.mapped().sub);
    // Re-insert through the normal path; the id is free again.
    if (insert(sub).accepted_active) result.promoted.push_back(cid);
  }
  return result;
}

const Subscription* SubscriptionStore::find(SubscriptionId id) const {
  if (const auto it = active_index_.find(id); it != active_index_.end()) {
    return &active_[it->second];
  }
  if (const auto it = covered_.find(id); it != covered_.end()) {
    return &it->second.sub;
  }
  return nullptr;
}

void SubscriptionStore::match_active(const Publication& pub,
                                     std::vector<SubscriptionId>& out) const {
  // Both paths append ids in ascending order: deterministic for callers
  // and bit-identical between the index and flat implementations (the
  // equivalence property tests rely on this).
  const auto start = static_cast<std::ptrdiff_t>(out.size());
  match_active_unsorted(pub, out);
  std::sort(out.begin() + start, out.end());
}

void SubscriptionStore::match_active_unsorted(
    const Publication& pub, std::vector<SubscriptionId>& out) const {
  if (index_enabled() &&
      pub.attribute_count() == interval_index_->attribute_count()) {
    interval_index_->stab(pub.values(), out);
    last_active_examined_ = interval_index_->last_query_cost();
  } else if (index_enabled()) {
    // Wrong-arity publication: no subscription can match it (the flat
    // scan's contains_point answers false on a size mismatch); keep that
    // behavior instead of surfacing the index's schema check.
    last_active_examined_ = 0;
  } else {
    last_active_examined_ = active_.size();
    for (const auto& sub : active_) {
      if (pub.matches(sub)) out.push_back(sub.id());
    }
  }
}

std::vector<SubscriptionId> SubscriptionStore::match_active(
    const Publication& pub) const {
  std::vector<SubscriptionId> ids;
  match_active(pub, ids);
  return ids;
}

void SubscriptionStore::match(const Publication& pub,
                              std::vector<SubscriptionId>& out) const {
  // Algorithm 5: actives first; covered subscriptions are only examined
  // when at least one active matched (no active match => no covered match
  // is possible, because every covered subscription lies inside the union
  // of actives that covered it).
  const std::size_t start = out.size();
  match_active(pub, out);
  if (out.size() == start) return;

  if (!config_.hierarchical_match) {
    for (const auto& [cid, entry] : covered_) {
      ++covered_examined_;
      if (pub.matches(entry.sub)) out.push_back(cid);
    }
    return;
  }

  // Section 4.4 multi-level descent: a covered subscription lies inside
  // the union of its coverers, so it can match only below a matching
  // parent. BFS from the matched actives through the cover DAG; children
  // of non-matching covered nodes are still explored when reached through
  // another matching parent. Visited tracking is an epoch stamp on the
  // covered entries (actives are never children), and the frontier buffer
  // is reused — no allocations or extra hashing on the hot path.
  const std::uint64_t epoch = ++match_epoch_;
  auto& frontier = frontier_scratch_;
  frontier.assign(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  while (!frontier.empty()) {
    const SubscriptionId parent = frontier.back();
    frontier.pop_back();
    const auto kids = children_.find(parent);
    if (kids == children_.end()) continue;
    for (const SubscriptionId child : kids->second) {
      const auto entry = covered_.find(child);
      if (entry == covered_.end()) continue;
      if (entry->second.seen_epoch == epoch) continue;
      entry->second.seen_epoch = epoch;
      ++covered_examined_;
      if (pub.matches(entry->second.sub)) {
        out.push_back(child);
        frontier.push_back(child);
      }
      // A non-matching child is not descended below: publications inside
      // a grandchild are inside the child's coverers' union too, and the
      // grandchild lists its own coverers, so it stays reachable through
      // whichever of them matched.
    }
  }
}

std::vector<SubscriptionId> SubscriptionStore::match(const Publication& pub) const {
  std::vector<SubscriptionId> ids;
  match(pub, ids);
  return ids;
}

std::vector<Subscription> SubscriptionStore::active_snapshot() const {
  return active_;
}

SubscriptionStore::Snapshot SubscriptionStore::export_snapshot() const {
  Snapshot snapshot;
  snapshot.actives = active_;  // slot order preserved by construction
  snapshot.covered.reserve(covered_.size());
  for (const auto& [id, entry] : covered_) {
    snapshot.covered.push_back({id, entry.sub, entry.coverers});
  }
  std::sort(snapshot.covered.begin(), snapshot.covered.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  snapshot.children.reserve(children_.size());
  for (const auto& [coverer, kids] : children_) {
    snapshot.children.push_back({coverer, kids});
  }
  std::sort(snapshot.children.begin(), snapshot.children.end(),
            [](const auto& a, const auto& b) { return a.coverer < b.coverer; });
  snapshot.group_checks = group_checks_;
  snapshot.engine_rng_state = engine_.rng().state();
  snapshot.use_index = config_.use_index;
  return snapshot;
}

void SubscriptionStore::import_snapshot(const Snapshot& snapshot) {
  if (!active_.empty() || !covered_.empty()) {
    throw std::logic_error(
        "SubscriptionStore::import_snapshot: store is not empty");
  }
  // The runtime use_index flag travels with the state: a store that
  // dropped its index on a mixed-arity stream must stay on the flat scans.
  config_.use_index = snapshot.use_index;
  interval_index_.reset();

  active_ = snapshot.actives;
  active_index_.reserve(active_.size());
  for (std::size_t slot = 0; slot < active_.size(); ++slot) {
    const SubscriptionId id = active_[slot].id();
    if (id == core::kInvalidSubscriptionId || !active_index_.emplace(id, slot).second) {
      throw std::invalid_argument(
          "SubscriptionStore::import_snapshot: invalid or duplicate active id");
    }
    // Rebuild the index in slot order; the store normalizes candidate
    // emission to slot order anyway, so the index's internal tiering state
    // never influences decisions (property-tested in tiered_index_test).
    index_insert_active(active_[slot]);
  }
  for (const Snapshot::CoveredRecord& record : snapshot.covered) {
    if (record.id == core::kInvalidSubscriptionId ||
        active_index_.count(record.id) > 0) {
      throw std::invalid_argument(
          "SubscriptionStore::import_snapshot: invalid covered id");
    }
    if (!covered_.emplace(record.id, CoveredEntry{record.sub, record.coverers})
             .second) {
      throw std::invalid_argument(
          "SubscriptionStore::import_snapshot: duplicate covered id");
    }
  }
  children_.reserve(snapshot.children.size());
  for (const Snapshot::DagRecord& record : snapshot.children) {
    if (!children_.emplace(record.coverer, record.covered_ids).second) {
      throw std::invalid_argument(
          "SubscriptionStore::import_snapshot: duplicate DAG coverer");
    }
  }
  group_checks_ = snapshot.group_checks;
  engine_.rng().set_state(snapshot.engine_rng_state);
  // Scratch/epoch state restarts from zero: covered entries were rebuilt
  // with seen_epoch = 0 and match_epoch_ is already 0 relative to them.
  match_epoch_ = 0;
  covered_examined_ = 0;
  last_active_examined_ = 0;
}

bool SubscriptionStore::contains(SubscriptionId id) const {
  return active_index_.count(id) > 0 || covered_.count(id) > 0;
}

bool SubscriptionStore::is_active(SubscriptionId id) const {
  return active_index_.count(id) > 0;
}

}  // namespace psc::store
