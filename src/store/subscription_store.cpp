#include "store/subscription_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "baseline/pairwise_cover.hpp"

namespace psc::store {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

SubscriptionStore::SubscriptionStore(StoreConfig config, std::uint64_t seed)
    : config_(config), engine_(config.engine, seed) {}

std::optional<std::vector<SubscriptionId>> SubscriptionStore::check_covered(
    const Subscription& sub, std::optional<core::SubsumptionResult>* diag) {
  switch (config_.policy) {
    case CoveragePolicy::kNone:
      return std::nullopt;
    case CoveragePolicy::kPairwise: {
      if (const auto slot = baseline::find_covering(sub, active_)) {
        return std::vector<SubscriptionId>{active_[*slot].id()};
      }
      return std::nullopt;
    }
    case CoveragePolicy::kGroup: {
      ++group_checks_;
      core::SubsumptionResult result = engine_.check(sub, active_);
      if (diag) *diag = result;
      if (!result.covered) return std::nullopt;
      if (result.covering_index) {
        return std::vector<SubscriptionId>{active_[*result.covering_index].id()};
      }
      // Group cover: conservatively record every active that overlaps sub
      // as a coverer — any of them disappearing may expose sub again.
      std::vector<SubscriptionId> coverers;
      for (const auto& active : active_) {
        if (active.intersects(sub)) coverers.push_back(active.id());
      }
      return coverers;
    }
  }
  return std::nullopt;
}

void SubscriptionStore::link_coverers(
    SubscriptionId covered_id, const std::vector<SubscriptionId>& coverers) {
  for (const SubscriptionId coverer : coverers) {
    children_[coverer].push_back(covered_id);
  }
}

void SubscriptionStore::unlink_coverers(
    SubscriptionId covered_id, const std::vector<SubscriptionId>& coverers) {
  for (const SubscriptionId coverer : coverers) {
    const auto it = children_.find(coverer);
    if (it == children_.end()) continue;
    auto& kids = it->second;
    kids.erase(std::remove(kids.begin(), kids.end(), covered_id), kids.end());
    if (kids.empty()) children_.erase(it);
  }
}

std::vector<SubscriptionId> SubscriptionStore::coverers_of(
    SubscriptionId id) const {
  const auto it = covered_.find(id);
  if (it == covered_.end()) return {};
  return it->second.coverers;
}

void SubscriptionStore::demote_actives_covered_by(const Subscription& sub,
                                                  InsertResult& result) {
  // Collect first (indices shift under erase), then demote by id.
  std::vector<SubscriptionId> to_demote;
  for (const auto& active : active_) {
    if (sub.covers(active)) to_demote.push_back(active.id());
  }
  for (const SubscriptionId id : to_demote) {
    const auto it = active_index_.find(id);
    if (it == active_index_.end()) continue;
    CoveredEntry entry{active_[it->second], {sub.id()}};
    erase_active_slot(it->second);
    link_coverers(id, entry.coverers);
    covered_.emplace(id, std::move(entry));
    result.demoted.push_back(id);
  }
}

void SubscriptionStore::erase_active_slot(std::size_t slot) {
  const std::size_t last = active_.size() - 1;
  active_index_.erase(active_[slot].id());
  if (slot != last) {
    active_[slot] = std::move(active_[last]);
    active_index_[active_[slot].id()] = slot;
  }
  active_.pop_back();
}

InsertResult SubscriptionStore::insert(const Subscription& sub) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("SubscriptionStore::insert: id must be non-zero");
  }
  if (contains(sub.id())) {
    throw std::invalid_argument("SubscriptionStore::insert: duplicate id " +
                                std::to_string(sub.id()));
  }
  InsertResult result;
  std::optional<core::SubsumptionResult> diag;
  if (auto coverers = check_covered(sub, &diag)) {
    result.covered = true;
    result.engine_result = std::move(diag);
    link_coverers(sub.id(), *coverers);
    covered_.emplace(sub.id(), CoveredEntry{sub, std::move(*coverers)});
    return result;
  }
  result.engine_result = std::move(diag);
  result.accepted_active = true;
  if (config_.demote_covered_actives) demote_actives_covered_by(sub, result);
  active_index_[sub.id()] = active_.size();
  active_.push_back(sub);
  return result;
}

SubscriptionStore::EraseResult SubscriptionStore::erase_reporting(
    SubscriptionId id) {
  EraseResult result;
  if (const auto covered_it = covered_.find(id); covered_it != covered_.end()) {
    unlink_coverers(id, covered_it->second.coverers);
    covered_.erase(covered_it);
    result.erased = true;
    return result;
  }
  const auto it = active_index_.find(id);
  if (it == active_index_.end()) return result;
  erase_active_slot(it->second);
  result.erased = true;

  // Promotion pass (paper, Section 5): covered subscriptions that listed
  // the vanished active among their coverers get re-evaluated. Re-running
  // the policy handles both outcomes — still covered by the remaining
  // actives (stays covered, coverers refreshed) or newly exposed
  // (promoted to active, possibly demoting others in turn).
  // The cover DAG gives the dependents directly.
  std::vector<SubscriptionId> candidates;
  if (const auto kids = children_.find(id); kids != children_.end()) {
    candidates = kids->second;
  }
  for (const SubscriptionId cid : candidates) {
    auto node = covered_.extract(cid);
    unlink_coverers(cid, node.mapped().coverers);
    Subscription sub = std::move(node.mapped().sub);
    // Re-insert through the normal path; the id is free again.
    if (insert(sub).accepted_active) result.promoted.push_back(cid);
  }
  return result;
}

const Subscription* SubscriptionStore::find(SubscriptionId id) const {
  if (const auto it = active_index_.find(id); it != active_index_.end()) {
    return &active_[it->second];
  }
  if (const auto it = covered_.find(id); it != covered_.end()) {
    return &it->second.sub;
  }
  return nullptr;
}

std::vector<SubscriptionId> SubscriptionStore::match_active(
    const Publication& pub) const {
  std::vector<SubscriptionId> ids;
  for (const auto& sub : active_) {
    if (pub.matches(sub)) ids.push_back(sub.id());
  }
  return ids;
}

std::vector<SubscriptionId> SubscriptionStore::match(const Publication& pub) const {
  // Algorithm 5: actives first; covered subscriptions are only examined
  // when at least one active matched (no active match => no covered match
  // is possible, because every covered subscription lies inside the union
  // of actives that covered it).
  std::vector<SubscriptionId> ids = match_active(pub);
  if (ids.empty()) return ids;

  if (!config_.hierarchical_match) {
    for (const auto& [cid, entry] : covered_) {
      ++covered_examined_;
      if (pub.matches(entry.sub)) ids.push_back(cid);
    }
    return ids;
  }

  // Section 4.4 multi-level descent: a covered subscription lies inside
  // the union of its coverers, so it can match only below a matching
  // parent. BFS from the matched actives through the cover DAG; children
  // of non-matching covered nodes are still explored when reached through
  // another matching parent. Visited tracking is an epoch stamp on the
  // covered entries (actives are never children), and the frontier buffer
  // is reused — no allocations or extra hashing on the hot path.
  const std::uint64_t epoch = ++match_epoch_;
  auto& frontier = frontier_scratch_;
  frontier.assign(ids.begin(), ids.end());
  while (!frontier.empty()) {
    const SubscriptionId parent = frontier.back();
    frontier.pop_back();
    const auto kids = children_.find(parent);
    if (kids == children_.end()) continue;
    for (const SubscriptionId child : kids->second) {
      const auto entry = covered_.find(child);
      if (entry == covered_.end()) continue;
      if (entry->second.seen_epoch == epoch) continue;
      entry->second.seen_epoch = epoch;
      ++covered_examined_;
      if (pub.matches(entry->second.sub)) {
        ids.push_back(child);
        frontier.push_back(child);
      }
      // A non-matching child is not descended below: publications inside
      // a grandchild are inside the child's coverers' union too, and the
      // grandchild lists its own coverers, so it stays reachable through
      // whichever of them matched.
    }
  }
  return ids;
}

std::vector<Subscription> SubscriptionStore::active_snapshot() const {
  return active_;
}

bool SubscriptionStore::contains(SubscriptionId id) const {
  return active_index_.count(id) > 0 || covered_.count(id) > 0;
}

bool SubscriptionStore::is_active(SubscriptionId id) const {
  return active_index_.count(id) > 0;
}

}  // namespace psc::store
