// SubscriptionStore — a broker's subscription state machine.
//
// Maintains the partition the paper works with:
//   * ACTIVE set S: uncovered subscriptions, the ones forwarded to
//     neighbours and checked first when matching publications;
//   * COVERED set SS: subscriptions subsumed (pairwise or by group) by
//     active ones. The paper's Section 4.4 optimization is implemented:
//     each covered subscription remembers its coverers, forming a
//     multi-level DAG so matching descends only below levels that matched.
//
// Insertion runs the configured coverage policy (none / pairwise / group
// via the probabilistic engine). A new active subscription additionally
// demotes existing actives it pairwise-covers (the classical maintenance
// step; group-demotion on insert is available as an opt-in because it can
// cascade and is what Figure 13's "group" curves measure).
//
// Unsubscription of an active subscription *promotes* the covered
// subscriptions that lost their last coverer (paper, Section 5), re-running
// coverage for each promoted candidate.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "index/interval_index.hpp"

namespace psc::store {

/// Coverage detection policy for insertions.
enum class CoveragePolicy : std::uint8_t {
  kNone,      ///< flooding-style: every subscription stays active
  kPairwise,  ///< classical baseline: single-subscription cover only
  kGroup,     ///< paper: probabilistic group cover via SubsumptionEngine
  kExact,     ///< exact group cover via box subtraction (baseline oracle).
              ///< Every decision is definite, so a network routed under it
              ///< never loses a notification — the differential-test and
              ///< churn-soak reference configuration. Worst-case exponential
              ///< in the candidate count; meant for tests/benches, not the
              ///< high-rate production path.
};

/// Canonical lowercase name ("none" / "pairwise" / "group" / "exact").
[[nodiscard]] std::string_view to_string(CoveragePolicy policy) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] CoveragePolicy parse_coverage_policy(std::string_view name);

/// Result of inserting a subscription.
struct InsertResult {
  bool accepted_active = false;  ///< entered the active set
  bool covered = false;          ///< entered the covered set instead
  /// Actives demoted to covered because the new subscription covers them.
  std::vector<core::SubscriptionId> demoted;
  /// Diagnostics from the engine when the group policy ran it.
  std::optional<core::SubsumptionResult> engine_result;
};

struct StoreConfig {
  CoveragePolicy policy = CoveragePolicy::kGroup;
  core::EngineConfig engine;
  /// Also demote existing actives that the incoming subscription covers
  /// pairwise (standard routing-table maintenance; on by default).
  bool demote_covered_actives = true;
  /// Match covered subscriptions through the cover DAG (paper, Section 4.4
  /// optimization): a covered subscription is examined only when one of
  /// its coverers matched. Off = flat scan of the covered set (used by the
  /// ablation bench).
  bool hierarchical_match = true;
  /// Maintain an IntervalIndex over the active set and route publication
  /// matching (point-stab) and coverage-candidate gathering (box-intersect)
  /// through it instead of flat O(k) scans. Off = the seed's flat scans,
  /// kept for ablation (bench/index_scaling) and as the reference in the
  /// equivalence property tests. Results are identical either way; only
  /// the work differs. The index requires all subscriptions in the store
  /// to share one attribute schema (coverage policies already require
  /// this); on the first insert with a different arity the store drops
  /// the index and continues on the flat scans for its remaining
  /// lifetime, so mixed-arity kNone streams stay supported.
  bool use_index = true;
  /// Bucketing domain for the index (results never depend on it, but
  /// pruning power does: values outside the domain clamp to the edge
  /// buckets). Match it to the deployment's attribute value range.
  index::IndexConfig index;
};

/// A broker's subscription state machine (see file comment).
///
/// Thread-safety: externally single-threaded. Mutations must be
/// serialized, and the const query methods (match, match_active) mutate
/// internal scratch/epoch state, so two queries must not run concurrently
/// on one instance either. For parallelism, partition ids across
/// instances — that is exactly what exec::ShardedStore does, and it is
/// the only supported concurrency model for this type.
///
/// Determinism: all decisions are a pure function of (config, seed,
/// call sequence); the engine's RNG stream advances only on group checks,
/// identically for the index and flat paths.
class SubscriptionStore {
 public:
  explicit SubscriptionStore(StoreConfig config = {},
                             std::uint64_t seed = 0xc0ffee11ULL);

  /// Inserts a subscription and runs the configured coverage policy.
  /// Preconditions: a non-zero id not already in the store — violations
  /// throw std::invalid_argument and leave the store unchanged. The
  /// subscription itself is validated at construction (no empty ranges),
  /// so every stored subscription is satisfiable.
  InsertResult insert(const core::Subscription& sub);

  /// Outcome of erasing a subscription.
  struct EraseResult {
    bool erased = false;
    /// Ids of previously-covered subscriptions that became ACTIVE because
    /// the erased subscription was among their coverers. The routing layer
    /// must re-announce these to neighbours (paper, Section 5).
    std::vector<core::SubscriptionId> promoted;
  };

  /// Removes a subscription wherever it lives. Active removal promotes
  /// covered subscriptions whose last coverer vanished; promotion re-runs
  /// the coverage policy, so a promoted subscription may land in covered
  /// again if other actives subsume it.
  EraseResult erase_reporting(core::SubscriptionId id);

  /// Convenience wrapper; returns false if the id is unknown.
  bool erase(core::SubscriptionId id) { return erase_reporting(id).erased; }

  /// Subscription stored under `id` (active or covered); nullptr if absent.
  [[nodiscard]] const core::Subscription* find(core::SubscriptionId id) const;

  /// Algorithm 5: ids of ALL matching subscriptions (active + covered),
  /// checking actives first and descending into covered levels only below
  /// subscriptions that matched. Output order: matching actives sorted by
  /// id, then covered matches in DAG-descent order. A publication whose
  /// arity differs from a subscription's never matches it (never throws).
  /// Const but not concurrently callable (mutates reused scratch).
  [[nodiscard]] std::vector<core::SubscriptionId> match(
      const core::Publication& pub) const;

  /// Out-parameter form: APPENDS the same ids to `out` (existing contents
  /// are kept, so shard merges can share one buffer). With a warm
  /// caller-owned buffer a steady-state call performs zero heap
  /// allocations — the publish path's contract, pinned by
  /// tests/publish_alloc_test.cpp.
  void match(const core::Publication& pub,
             std::vector<core::SubscriptionId>& out) const;

  /// Matching ids among actives only (what a broker forwards on), sorted
  /// ascending. Same arity and concurrency contract as match().
  [[nodiscard]] std::vector<core::SubscriptionId> match_active(
      const core::Publication& pub) const;

  /// Out-parameter form: appends, sorted ascending within the appended
  /// range; zero allocations once `out` is warm.
  void match_active(const core::Publication& pub,
                    std::vector<core::SubscriptionId>& out) const;

  /// Raw form for callers that order downstream (the staged publish
  /// pipeline radix-sorts the union of several stores' matches once):
  /// appends the same id SET as match_active but in an UNSPECIFIED order
  /// (index emission order, or flat slot order). Same arity and
  /// concurrency contract as match().
  void match_active_unsorted(const core::Publication& pub,
                             std::vector<core::SubscriptionId>& out) const;

  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }
  [[nodiscard]] std::size_t covered_count() const noexcept { return covered_.size(); }
  [[nodiscard]] std::size_t total_count() const noexcept {
    return active_.size() + covered_.size();
  }

  [[nodiscard]] std::vector<core::Subscription> active_snapshot() const;
  [[nodiscard]] bool contains(core::SubscriptionId id) const;
  [[nodiscard]] bool is_active(core::SubscriptionId id) const;

  /// Complete serializable state of a store: everything a fresh store of
  /// the same (config, seed) needs to continue DECISION-FOR-DECISION
  /// identically to the original — active slot order (coverage policies
  /// iterate candidates in slot order), the covered set with its coverer
  /// lists, the cover-DAG adjacency in its original per-coverer order
  /// (promotion on erase walks it in order), the engine RNG state (group
  /// checks consume the stream), and the live use_index flag (mixed-arity
  /// streams may have dropped the index at runtime). Derived structures
  /// (slot map, interval index) are rebuilt on import, not serialized.
  /// The binary codec for this struct lives in wire/snapshot.hpp.
  struct Snapshot {
    /// Actives in slot order (ids ride inside the subscriptions).
    std::vector<core::Subscription> actives;
    struct CoveredRecord {
      core::SubscriptionId id = 0;
      core::Subscription sub;
      std::vector<core::SubscriptionId> coverers;  ///< original order
    };
    /// Covered set, sorted by id (map order is not meaningful).
    std::vector<CoveredRecord> covered;
    struct DagRecord {
      core::SubscriptionId coverer = 0;
      std::vector<core::SubscriptionId> covered_ids;  ///< original order
    };
    /// Cover-DAG adjacency, sorted by coverer id; each list keeps its
    /// original order because erase-time promotion replays it in order.
    std::vector<DagRecord> children;
    std::uint64_t group_checks = 0;
    std::array<std::uint64_t, 4> engine_rng_state{};
    bool use_index = true;
  };

  /// Captures the current state (const; does not disturb decisions).
  [[nodiscard]] Snapshot export_snapshot() const;

  /// Rebuilds this store from `snapshot`. Precondition: the store is empty
  /// and was constructed with the same (config, seed) as the exporting
  /// store — violations throw std::logic_error / std::invalid_argument.
  /// Afterwards every future decision (insert coverage verdicts, erase
  /// promotions, match outputs and their order) is identical to the
  /// original store's.
  void import_snapshot(const Snapshot& snapshot);

  [[nodiscard]] const StoreConfig& config() const noexcept { return config_; }

  /// Number of engine (group) checks executed so far — cost metric.
  [[nodiscard]] std::uint64_t group_checks() const noexcept { return group_checks_; }

  /// Covered subscriptions examined during match() calls so far — the cost
  /// the Section 4.4 hierarchy saves (compare against covered_count() per
  /// publication for the flat scan).
  [[nodiscard]] std::uint64_t covered_examined() const noexcept {
    return covered_examined_;
  }

  /// Work performed by the most recent match_active()/match() active pass:
  /// actives examined by the flat scan, or endpoint passes by the index.
  [[nodiscard]] std::uint64_t last_active_examined() const noexcept {
    return last_active_examined_;
  }

  /// Direct coverer ids of a covered subscription (empty for actives or
  /// unknown ids). Exposes the cover DAG for tests and diagnostics.
  [[nodiscard]] std::vector<core::SubscriptionId> coverers_of(
      core::SubscriptionId id) const;

 private:
  struct CoveredEntry {
    core::Subscription sub;
    /// Active ids whose union covered this subscription at demotion time.
    std::vector<core::SubscriptionId> coverers;
    /// Epoch stamp for the match() descent (visited-set without a map).
    mutable std::uint64_t seen_epoch = 0;
  };

  StoreConfig config_;
  core::SubsumptionEngine engine_;
  std::vector<core::Subscription> active_;
  std::unordered_map<core::SubscriptionId, std::size_t> active_index_;
  /// Candidate-pruning index over the actives (when config_.use_index).
  /// Created lazily on the first insert because the schema width is not
  /// known at construction time.
  std::optional<index::IntervalIndex> interval_index_;
  std::unordered_map<core::SubscriptionId, CoveredEntry> covered_;
  /// Cover DAG edges: coverer id -> covered ids listing it (Section 4.4).
  std::unordered_map<core::SubscriptionId, std::vector<core::SubscriptionId>>
      children_;
  std::uint64_t group_checks_ = 0;
  mutable std::uint64_t covered_examined_ = 0;
  mutable std::uint64_t last_active_examined_ = 0;
  /// Scratch buffer + visited epoch for the match() descent, reused across
  /// calls so the hot path performs no allocations and no hashing beyond
  /// the children lookup.
  mutable std::vector<core::SubscriptionId> frontier_scratch_;
  mutable std::uint64_t match_epoch_ = 0;
  /// Scratch for index-backed queries (reused across calls).
  mutable std::vector<core::SubscriptionId> id_scratch_;
  mutable std::vector<std::size_t> slot_scratch_;
  std::vector<const core::Subscription*> candidate_scratch_;

  void link_coverers(core::SubscriptionId covered_id,
                     const std::vector<core::SubscriptionId>& coverers);
  void unlink_coverers(core::SubscriptionId covered_id,
                       const std::vector<core::SubscriptionId>& coverers);

  /// Runs the configured policy against the current active set.
  /// Returns the coverer ids when covered.
  [[nodiscard]] std::optional<std::vector<core::SubscriptionId>> check_covered(
      const core::Subscription& sub, std::optional<core::SubsumptionResult>* diag);

  void demote_actives_covered_by(const core::Subscription& sub,
                                 InsertResult& result);
  void erase_active_slot(std::size_t slot);

  [[nodiscard]] bool index_enabled() const noexcept {
    return config_.use_index && interval_index_.has_value();
  }
  void index_insert_active(const core::Subscription& sub);
  /// Actives whose box intersects `box`, as pointers into active_, in
  /// active-slot order (so downstream decisions match the flat scan's
  /// iteration order exactly). Returns the reused scratch vector.
  [[nodiscard]] std::span<const core::Subscription* const>
  intersecting_candidates(const core::Subscription& box);
};

}  // namespace psc::store
