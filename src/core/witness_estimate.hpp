// Witness-probability estimate rho_w and trial bound d (paper, Algorithm 2
// and Equation 1).
//
// rho_w is the probability that one uniform point drawn inside s is a point
// witness to non-cover. The paper lower-bounds it by the relative size of
// the smallest plausible polyhedron witness: per attribute, the minimum
// uncovered gap any single subscription leaves on either side of s, then the
// product of those gaps over attributes, normalized by I(s).
//
// From a target error probability delta, the number of Monte-Carlo trials is
//   d = ceil( ln(delta) / ln(1 - rho_w) )
// so that (1 - rho_w)^d <= delta. Both quantities are computed in
// polynomial time before running RSPC.
#pragma once

#include <cstdint>
#include <limits>

#include "core/conflict_table.hpp"

namespace psc::core {

struct WitnessEstimate {
  /// Estimated measure of the smallest polyhedron witness, I(s_w).
  Value witness_volume = 0.0;
  /// I(s), the measure of the tested subscription.
  Value tested_volume = 0.0;
  /// rho_w = witness_volume / tested_volume (0 when either is 0 or s has
  /// infinite volume).
  double rho_w = 0.0;
};

/// Runs Algorithm 2 on a built conflict table. O(m * k).
///
/// `grid_spacing` selects the volume measure:
///   * 0 (default): continuous Lebesgue measure — I(x) is the product of
///     interval widths.
///   * > 0: the paper's integer-point counting on a grid of that spacing —
///     I(x) is the product of (floor(width / spacing) + 1) point counts.
///     Point counting inflates the relative size of thin slabs (the "+1"),
///     making rho_w optimistic for narrow gaps; this is the discretization
///     effect behind the elevated false-decision counts the paper reports
///     at small gap sizes (Figure 12).
[[nodiscard]] WitnessEstimate estimate_witness_probability(
    const ConflictTable& table, double grid_spacing = 0.0);

/// Number of RSPC trials for error bound delta given rho_w (Equation 1).
/// Returns +inf (as double) when rho_w <= 0 — there is no finite bound and
/// callers must cap. delta must be in (0, 1).
[[nodiscard]] double theoretical_trials(double rho_w, double delta);

/// theoretical_trials capped to a concrete iteration budget. A zero or
/// non-finite theoretical bound maps to the cap itself.
[[nodiscard]] std::uint64_t capped_trials(double rho_w, double delta,
                                          std::uint64_t cap);

}  // namespace psc::core
