// SubsumptionEngine — the full decision pipeline of the paper's Algorithm 4:
//
//   build conflict table
//     -> Corollary 1 fast YES   (pairwise cover)
//     -> Corollary 3 fast NO    (sorted-row polyhedron witness)
//     -> MCS reduction          (empty reduced set => definite NO)
//     -> rho_w / d estimation   (Algorithm 2 + Equation 1)
//     -> RSPC                   (definite NO or probabilistic YES)
//
// A definite NO is always correct. A probabilistic YES errs with
// probability at most delta = (1 - rho_w)^d, the paper's only error mode
// (a falsely-withheld subscription).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/conflict_table.hpp"
#include "core/mcs.hpp"
#include "core/rspc.hpp"
#include "core/witness_estimate.hpp"
#include "util/rng.hpp"

namespace psc::core {

/// How the pipeline reached its verdict.
enum class DecisionPath : std::uint8_t {
  kEmptySet,            ///< no candidate subscriptions: definite NO
  kPairwiseCover,       ///< Corollary 1: definite YES
  kPolyhedronWitness,   ///< Corollary 3: definite NO
  kMcsEmpty,            ///< MCS removed every candidate: definite NO
  kRspcWitness,         ///< RSPC found a point witness: definite NO
  kRspcProbabilistic,   ///< RSPC exhausted d trials: probabilistic YES
};

[[nodiscard]] std::string_view to_string(DecisionPath path) noexcept;

/// Full diagnostics for one subsumption query.
struct SubsumptionResult {
  bool covered = false;              ///< the verdict
  bool is_definite = true;           ///< false only for kRspcProbabilistic
  DecisionPath path = DecisionPath::kEmptySet;

  std::size_t original_set_size = 0; ///< k before reduction
  std::size_t reduced_set_size = 0;  ///< |S'| after MCS (when MCS ran)
  bool mcs_ran = false;

  double rho_w = 0.0;                ///< witness-probability estimate
  double theoretical_d = 0.0;        ///< Eq. 1 bound (may be +inf)
  std::uint64_t trial_budget = 0;    ///< capped trials handed to RSPC
  std::uint64_t iterations = 0;      ///< RSPC trials actually executed

  /// Point witness when the verdict came from RSPC sampling.
  std::optional<std::vector<Value>> witness;
  /// Row index (into the caller's set) of the covering subscription when
  /// the pairwise fast path fired.
  std::optional<std::size_t> covering_index;
};

/// Tuning knobs for the pipeline.
struct EngineConfig {
  double delta = 1e-6;               ///< target error bound (0 < delta < 1)
  std::uint64_t max_iterations = 1'000'000;  ///< hard RSPC budget cap
  bool use_fast_decisions = true;    ///< Corollary 1 / Corollary 3 paths
  bool use_mcs = true;               ///< run the reduction before RSPC
  /// Volume measure for the rho_w estimate: 0 = continuous widths; > 0 =
  /// the paper's integer-point counting on a grid of this spacing (see
  /// estimate_witness_probability).
  double grid_spacing = 0.0;
  /// Drop candidates whose intersection with s has zero measure before
  /// building the conflict table. Sound (they contribute nothing to the
  /// union over s) and an order-of-magnitude win on large clustered sets;
  /// off only for tests that exercise the unfiltered paths.
  bool prefilter_intersecting = true;
};

/// Reusable scratch state for SubsumptionEngine::check. Owned by the
/// engine; every buffer is cleared-and-refilled per query so its capacity
/// survives across checks and steady-state queries (same working-set size)
/// perform zero heap allocations. The only remaining allocation paths are
/// capacity growth on a larger-than-ever query and the witness copy
/// returned with a definite NO.
struct EngineWorkspace {
  std::vector<const Subscription*> input;     ///< value-span adapter
  std::vector<const Subscription*> filtered;  ///< prefilter survivors
  std::vector<std::size_t> original_index;    ///< filtered -> caller index
  std::vector<const Subscription*> reduced;   ///< MCS survivors
  ConflictTable table;                        ///< rebuilt per query
  ConflictTable reduced_table;                ///< rebuilt when MCS shrinks
  McsResult mcs;                              ///< kept vector reused
  std::vector<char> alive;                    ///< MCS alive mask
  std::vector<std::size_t> sorted_counts;     ///< Corollary 3 scratch
  std::vector<Value> point;                   ///< RSPC sample buffer
};

/// Stateless-except-RNG checker. One instance may serve many queries; the
/// RNG stream advances per query, keeping runs reproducible from the seed.
///
/// Thread-safety: NOT safe for concurrent check() calls on one instance —
/// the engine owns a reusable workspace and an RNG stream, both mutated
/// per query. Use one engine per thread; in the sharded execution model
/// (exec::ShardedStore) every shard's store embeds its own engine, which
/// is how the batch APIs parallelize without locks.
///
/// Error behavior: the constructor and set_config validate the config and
/// throw std::invalid_argument on violations (delta outside (0,1),
/// zero iteration budget, negative grid spacing); check() itself never
/// throws on well-formed subscriptions and allocates only on capacity
/// growth or when returning a witness (see EngineWorkspace).
class SubsumptionEngine {
 public:
  explicit SubsumptionEngine(EngineConfig config = {},
                             std::uint64_t seed = 0x5eedf00dULL);

  /// Decides s ⊑ (set[0] ∨ ... ∨ set[k-1]) per Algorithm 4.
  /// Preconditions: s has finite ranges on every attribute (RSPC samples
  /// uniformly inside s) and every candidate shares s's attribute schema;
  /// candidate ranges may be unbounded. A definite verdict is always
  /// correct; a probabilistic YES (is_definite == false) errs with
  /// probability at most config().delta.
  [[nodiscard]] SubsumptionResult check(const Subscription& s,
                                        std::span<const Subscription> set);

  /// As above over a pointer set — the zero-copy entry point used by the
  /// store layer after index pruning. Precondition: no null pointers.
  [[nodiscard]] SubsumptionResult check(const Subscription& s,
                                        std::span<const Subscription* const> set);

  /// Convenience overload.
  [[nodiscard]] SubsumptionResult check(const Subscription& s,
                                        const std::vector<Subscription>& set) {
    return check(s, std::span<const Subscription>(set));
  }

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  void set_config(const EngineConfig& config);

  /// Direct access to the RNG (tests inject known streams; the store
  /// snapshot captures/restores the stream for replay-identical restore).
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const util::Rng& rng() const noexcept { return rng_; }

 private:
  EngineConfig config_;
  util::Rng rng_;
  EngineWorkspace ws_;
};

/// Validates config invariants; throws std::invalid_argument on violation.
void validate(const EngineConfig& config);

}  // namespace psc::core
