// Random Simple Predicates Cover (paper, Algorithm 1): the Monte-Carlo core.
// Draw up to d uniform points inside s; if any point lies outside every
// subscription in S it is a *point witness* (Definition 4) and the answer is
// a definite NO. If all d draws land inside the union, answer a
// probabilistic YES with error at most (1 - rho_w)^d.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "util/rng.hpp"

namespace psc::core {

struct RspcResult {
  /// True = probabilistic YES (covered); false = definite NO.
  bool covered = true;
  /// Trials actually executed (<= budget; early exit on first witness).
  std::uint64_t iterations = 0;
  /// The point witness when covered == false.
  std::optional<std::vector<Value>> witness;
};

/// Runs RSPC with a fixed trial budget. O(budget * m * k) worst case with
/// early exit on the first witness. Sampling an unbounded attribute of s is
/// impossible with a uniform law; such instances must be range-clamped by
/// the caller (the engine rejects them) — this function requires s to have
/// finite, positive-width ranges on all attributes and throws otherwise.
[[nodiscard]] RspcResult run_rspc(const Subscription& s,
                                  std::span<const Subscription> set,
                                  std::uint64_t budget, util::Rng& rng);

/// Allocation-free variant over a pointer set: the sample point lives in
/// `point_scratch` (resized once, capacity reused across calls). The only
/// remaining allocation is the witness copy on a definite NO.
[[nodiscard]] RspcResult run_rspc(const Subscription& s,
                                  std::span<const Subscription* const> set,
                                  std::uint64_t budget, util::Rng& rng,
                                  std::vector<Value>& point_scratch);

/// Draws one uniform point inside s (requires finite ranges; degenerate
/// [v, v] ranges yield the point value v).
[[nodiscard]] std::vector<Value> sample_point(const Subscription& s, util::Rng& rng);

/// True iff `point` lies inside at least one subscription of `set`.
[[nodiscard]] bool point_in_union(std::span<const Value> point,
                                  std::span<const Subscription> set) noexcept;
[[nodiscard]] bool point_in_union(std::span<const Value> point,
                                  std::span<const Subscription* const> set) noexcept;

}  // namespace psc::core
