#include "core/rspc.hpp"

#include <cmath>
#include <stdexcept>

namespace psc::core {

std::vector<Value> sample_point(const Subscription& s, util::Rng& rng) {
  std::vector<Value> point(s.attribute_count());
  for (std::size_t j = 0; j < s.attribute_count(); ++j) {
    const Interval& range = s.range(j);
    if (!std::isfinite(range.lo) || !std::isfinite(range.hi)) {
      throw std::invalid_argument(
          "sample_point: unbounded attribute range cannot be sampled uniformly");
    }
    point[j] = rng.uniform(range.lo, range.hi);
  }
  return point;
}

bool point_in_union(std::span<const Value> point,
                    std::span<const Subscription> set) noexcept {
  for (const Subscription& si : set) {
    if (si.contains_point(point)) return true;
  }
  return false;
}

bool point_in_union(std::span<const Value> point,
                    std::span<const Subscription* const> set) noexcept {
  for (const Subscription* si : set) {
    if (si->contains_point(point)) return true;
  }
  return false;
}

namespace {

void sample_into(const Subscription& s, util::Rng& rng,
                 std::vector<Value>& point) {
  point.resize(s.attribute_count());
  for (std::size_t j = 0; j < s.attribute_count(); ++j) {
    const Interval& range = s.range(j);
    if (!std::isfinite(range.lo) || !std::isfinite(range.hi)) {
      throw std::invalid_argument(
          "run_rspc: unbounded attribute range cannot be sampled uniformly");
    }
    point[j] = rng.uniform(range.lo, range.hi);
  }
}

}  // namespace

RspcResult run_rspc(const Subscription& s,
                    std::span<const Subscription* const> set,
                    std::uint64_t budget, util::Rng& rng,
                    std::vector<Value>& point_scratch) {
  RspcResult result;
  // An empty union covers nothing with positive measure: definite NO
  // without sampling (unless s itself is a point, which we still report as
  // uncovered — there is no subscription to cover it).
  if (set.empty()) {
    result.covered = false;
    result.witness = sample_point(s, rng);
    return result;
  }
  for (std::uint64_t trial = 0; trial < budget; ++trial) {
    ++result.iterations;
    sample_into(s, rng, point_scratch);
    if (!point_in_union(point_scratch, set)) {
      result.covered = false;
      result.witness = point_scratch;
      return result;
    }
  }
  result.covered = true;
  return result;
}

RspcResult run_rspc(const Subscription& s, std::span<const Subscription> set,
                    std::uint64_t budget, util::Rng& rng) {
  // Delegate to the pointer-span implementation so there is exactly one
  // copy of the trial loop (identical RNG consumption either way).
  std::vector<const Subscription*> pointers;
  pointers.reserve(set.size());
  for (const Subscription& si : set) pointers.push_back(&si);
  std::vector<Value> point;
  return run_rspc(s, pointers, budget, rng, point);
}

}  // namespace psc::core
