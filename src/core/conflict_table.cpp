#include "core/conflict_table.hpp"

#include <iomanip>
#include <stdexcept>

namespace psc::core {

ConflictTable::ConflictTable(const Subscription& s,
                             std::span<const Subscription> set) {
  rebuild(s, set);
}

ConflictTable::ConflictTable(const Subscription& s,
                             std::span<const Subscription* const> set) {
  rebuild(s, set);
}

void ConflictTable::begin_rebuild(const Subscription& s, std::size_t row_count) {
  s_ = s;
  m_ = s.attribute_count();
  // row_ids_ and bounds_ are fully overwritten by fill_row, so a plain
  // resize avoids a redundant O(k * 2m) fill on every engine check; the
  // definedness bitmap and counts genuinely start from zero.
  row_ids_.resize(row_count);
  bounds_.resize(row_count * 2 * m_);
  defined_.assign(row_count * 2 * m_, 0);
  defined_counts_.assign(row_count, 0);
}

void ConflictTable::fill_row(std::size_t i, const Subscription& si) {
  if (si.attribute_count() != m_) {
    throw std::invalid_argument("ConflictTable: schema mismatch at row " +
                                std::to_string(i));
  }
  row_ids_[i] = si.id();
  const std::size_t base = i * 2 * m_;
  for (std::size_t j = 0; j < m_; ++j) {
    const Interval& sr = s_.range(j);
    const Interval& ir = si.range(j);
    // Lower side: (s AND x_j < si.lo_j) has positive measure iff
    // s.lo_j < si.lo_j.
    if (sr.lo < ir.lo) {
      defined_[base + 2 * j] = 1;
      ++defined_counts_[i];
    }
    bounds_[base + 2 * j] = ir.lo;
    // Upper side: (s AND x_j > si.hi_j) positive-measure iff
    // s.hi_j > si.hi_j.
    if (sr.hi > ir.hi) {
      defined_[base + 2 * j + 1] = 1;
      ++defined_counts_[i];
    }
    bounds_[base + 2 * j + 1] = ir.hi;
  }
}

void ConflictTable::rebuild(const Subscription& s,
                            std::span<const Subscription> set) {
  begin_rebuild(s, set.size());
  for (std::size_t i = 0; i < set.size(); ++i) fill_row(i, set[i]);
}

void ConflictTable::rebuild(const Subscription& s,
                            std::span<const Subscription* const> set) {
  begin_rebuild(s, set.size());
  for (std::size_t i = 0; i < set.size(); ++i) fill_row(i, *set[i]);
}

std::optional<TableEntry> ConflictTable::entry(std::size_t row,
                                               std::size_t column) const {
  if (!is_defined(row, column)) return std::nullopt;
  TableEntry e;
  e.attribute = column / 2;
  e.side = (column % 2 == 0) ? BoundSide::kLower : BoundSide::kUpper;
  e.bound = bounds_.at(row * 2 * m_ + column);
  return e;
}

std::vector<TableEntry> ConflictTable::defined_entries(std::size_t row) const {
  std::vector<TableEntry> entries;
  entries.reserve(defined_counts_.at(row));
  for (std::size_t c = 0; c < column_count(); ++c) {
    if (auto e = entry(row, c)) entries.push_back(*e);
  }
  return entries;
}

bool ConflictTable::entries_conflict(const Subscription& s, const TableEntry& a,
                                     const TableEntry& b) {
  // Entries on different attributes constrain independent axes; the
  // intersection of their slabs is a (hyper-)corner of s with positive
  // measure, so they never conflict.
  if (a.attribute != b.attribute) return false;
  const Interval& sr = s.range(a.attribute);
  // Same side never conflicts: the weaker constraint subsumes the stronger,
  // and each is satisfiable within s by definedness.
  if (a.side == b.side) return false;
  const TableEntry& lower = a.side == BoundSide::kLower ? a : b;  // x < lower.bound
  const TableEntry& upper = a.side == BoundSide::kLower ? b : a;  // x > upper.bound
  // Joint region is (upper.bound, lower.bound) intersected with s.
  const Value lo = upper.bound > sr.lo ? upper.bound : sr.lo;
  const Value hi = lower.bound < sr.hi ? lower.bound : sr.hi;
  return !(lo < hi);  // conflict iff no positive-measure gap remains
}

Interval ConflictTable::slab(const TableEntry& entry) const {
  const Interval& sr = s_.range(entry.attribute);
  if (entry.side == BoundSide::kLower) {
    return {sr.lo, entry.bound < sr.hi ? entry.bound : sr.hi};
  }
  return {entry.bound > sr.lo ? entry.bound : sr.lo, sr.hi};
}

void ConflictTable::print(std::ostream& out) const {
  out << "conflict table for " << s_ << "\n";
  for (std::size_t i = 0; i < row_ids_.size(); ++i) {
    out << "  s" << row_ids_[i] << ": ";
    bool first = true;
    for (std::size_t c = 0; c < column_count(); ++c) {
      const auto e = entry(i, c);
      if (!e) continue;
      if (!first) out << ", ";
      first = false;
      out << "x" << e->attribute << (e->side == BoundSide::kLower ? " < " : " > ")
          << e->bound;
    }
    if (first) out << "(all undefined)";
    out << "\n";
  }
}

}  // namespace psc::core
