// Conflict table T (paper, Definition 2): a k x 2m table relating a tested
// subscription s to every simple predicate of the existing set S.
//
// Column layout per attribute j: column 2j holds the negated LOWER bound of
// s_i on attribute j ("x_j < s_i.lo_j"), column 2j+1 the negated UPPER bound
// ("x_j > s_i.hi_j"). An entry is *defined* iff (s AND not s_i^j) is
// satisfiable with positive measure, i.e. s sticks out of s_i on that side:
//   lower side defined  <=>  s.lo_j < s_i.lo_j
//   upper side defined  <=>  s.hi_j > s_i.hi_j
//
// Intersected with s, a defined lower entry describes the slab
// { x in s : x_j < min(s_i.lo_j, s.hi_j) } and symmetrically for upper
// entries. These slabs are the building blocks of polyhedron witnesses
// (Definition 3) and of the conflict-free analysis behind MCS.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "core/subscription.hpp"

namespace psc::core {

/// Which side of an attribute's range a table column negates.
enum class BoundSide : std::uint8_t { kLower, kUpper };

/// One defined conflict-table entry, i.e. a half-range constraint on a
/// single attribute (intersected with s, a non-empty slab of s).
struct TableEntry {
  std::size_t attribute = 0;
  BoundSide side = BoundSide::kLower;
  /// The negated bound: lower side means "x < bound", upper "x > bound".
  Value bound = 0.0;

  friend bool operator==(const TableEntry&, const TableEntry&) = default;
};

/// Row summary used by the corollaries and MCS.
struct RowStats {
  std::size_t defined_count = 0;       ///< t_i in the paper
  std::size_t conflict_free_count = 0; ///< fc_i (filled by Mcs analysis)
};

/// The conflict table for subscription `s` versus subscription set `S`.
/// Rows correspond 1:1 to the subscriptions passed at construction; columns
/// to the 2m negated simple predicates. Construction is O(m * k).
///
/// Row storage is a flat SoA layout (one bounds array, one definedness
/// bitmap) so a table can be rebuilt in place without allocating once its
/// buffers have grown to the working-set size — the SubsumptionEngine
/// rebuilds its workspace tables on every check() this way.
class ConflictTable {
 public:
  /// Empty table; fill with rebuild(). Queries on an empty table see zero
  /// rows and zero columns.
  ConflictTable() = default;

  /// Builds the table. All subscriptions must share s's attribute schema;
  /// throws std::invalid_argument otherwise.
  ConflictTable(const Subscription& s, std::span<const Subscription> set);

  /// As above, over a set given by pointers (no subscription copies).
  ConflictTable(const Subscription& s, std::span<const Subscription* const> set);

  /// Rebuilds the table in place, reusing the existing buffers. After the
  /// first call at a given size, rebuilding performs no heap allocation.
  void rebuild(const Subscription& s, std::span<const Subscription> set);
  void rebuild(const Subscription& s, std::span<const Subscription* const> set);

  [[nodiscard]] std::size_t row_count() const noexcept { return row_ids_.size(); }
  [[nodiscard]] std::size_t attribute_count() const noexcept { return m_; }
  [[nodiscard]] std::size_t column_count() const noexcept { return 2 * m_; }

  /// The tested subscription (by value; the table owns a copy so callers
  /// may destroy their inputs after construction).
  [[nodiscard]] const Subscription& tested() const noexcept { return s_; }

  /// Entry at (row, column); std::nullopt when undefined.
  /// Column 2j = lower side of attribute j, 2j+1 = upper side.
  [[nodiscard]] std::optional<TableEntry> entry(std::size_t row,
                                                std::size_t column) const;

  [[nodiscard]] bool is_defined(std::size_t row, std::size_t column) const {
    return defined_.at(row * 2 * m_ + column);
  }

  /// t_i: number of defined entries in the row.
  [[nodiscard]] std::size_t defined_count(std::size_t row) const {
    return defined_counts_.at(row);
  }

  /// All defined entries of a row, in column order.
  [[nodiscard]] std::vector<TableEntry> defined_entries(std::size_t row) const;

  /// True iff the row has no defined entries — s is covered by that single
  /// subscription (Corollary 1).
  [[nodiscard]] bool row_all_undefined(std::size_t row) const {
    return defined_counts_.at(row) == 0;
  }

  /// True iff every column of the row is defined — s strictly sticks out of
  /// s_i on every side, hence s covers s_i's span on all attributes
  /// (Corollary 2).
  [[nodiscard]] bool row_all_defined(std::size_t row) const {
    return defined_counts_.at(row) == column_count();
  }

  /// Two defined entries *conflict* iff they come from different rows and
  /// (s AND entry1 AND entry2) has no positive-measure solution
  /// (Definition 5). Entries on different attributes never conflict.
  [[nodiscard]] static bool entries_conflict(const Subscription& s,
                                             const TableEntry& a,
                                             const TableEntry& b);

  /// The slab of s described by a defined entry (s intersected with the
  /// entry's half-range). Non-empty with positive measure by construction.
  [[nodiscard]] Interval slab(const TableEntry& entry) const;

  /// Pretty-printer mirroring the paper's Table 5 / Table 8 layout.
  void print(std::ostream& out) const;

 private:
  Subscription s_;
  std::size_t m_ = 0;
  /// SoA row storage: ids per row, bound values row-major (2m per row).
  std::vector<SubscriptionId> row_ids_;
  std::vector<Value> bounds_;
  std::vector<char> defined_;  ///< k * 2m bitmap (char for speed)
  std::vector<std::size_t> defined_counts_;

  void begin_rebuild(const Subscription& s, std::size_t row_count);
  void fill_row(std::size_t i, const Subscription& si);
};

}  // namespace psc::core
