#include "core/subscription.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace psc::core {

Subscription::Subscription(std::vector<Interval> ranges, SubscriptionId id)
    : ranges_(std::move(ranges)), id_(id) {
  for (std::size_t attr = 0; attr < ranges_.size(); ++attr) {
    if (ranges_[attr].is_empty()) {
      throw std::invalid_argument("Subscription: empty range on attribute " +
                                  std::to_string(attr));
    }
  }
}

Subscription::Subscription(std::initializer_list<Interval> ranges, SubscriptionId id)
    : Subscription(std::vector<Interval>(ranges), id) {}

Subscription Subscription::everything(std::size_t m, SubscriptionId id) {
  return Subscription(std::vector<Interval>(m, Interval::everything()), id);
}

Value Subscription::volume() const noexcept {
  Value vol = 1.0;
  for (const auto& range : ranges_) vol *= range.width();
  return vol;
}

bool Subscription::contains_point(std::span<const Value> point) const noexcept {
  if (point.size() != ranges_.size()) return false;
  for (std::size_t attr = 0; attr < ranges_.size(); ++attr) {
    if (!ranges_[attr].contains(point[attr])) return false;
  }
  return true;
}

bool Subscription::covers(const Subscription& other) const noexcept {
  if (other.ranges_.size() != ranges_.size()) return false;
  for (std::size_t attr = 0; attr < ranges_.size(); ++attr) {
    if (!ranges_[attr].contains(other.ranges_[attr])) return false;
  }
  return true;
}

bool Subscription::intersects(const Subscription& other) const noexcept {
  if (other.ranges_.size() != ranges_.size()) return false;
  for (std::size_t attr = 0; attr < ranges_.size(); ++attr) {
    if (!ranges_[attr].intersects(other.ranges_[attr])) return false;
  }
  return true;
}

bool Subscription::overlaps_interior(const Subscription& other) const noexcept {
  if (other.ranges_.size() != ranges_.size()) return false;
  for (std::size_t attr = 0; attr < ranges_.size(); ++attr) {
    if (!ranges_[attr].overlaps_interior(other.ranges_[attr])) return false;
  }
  return true;
}

Subscription Subscription::intersect(const Subscription& other) const {
  if (other.ranges_.size() != ranges_.size()) {
    throw std::invalid_argument("Subscription::intersect: schema mismatch");
  }
  std::vector<Interval> out(ranges_.size());
  for (std::size_t attr = 0; attr < ranges_.size(); ++attr) {
    out[attr] = ranges_[attr].intersect(other.ranges_[attr]);
  }
  return Subscription(unchecked_tag{}, std::move(out), kInvalidSubscriptionId);
}

bool Subscription::is_satisfiable() const noexcept {
  for (const auto& range : ranges_) {
    if (range.is_empty()) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& out, const Subscription& sub) {
  out << "s" << sub.id() << ": ";
  for (std::size_t attr = 0; attr < sub.attribute_count(); ++attr) {
    if (attr > 0) out << "x";
    out << sub.range(attr);
  }
  return out;
}

std::string to_string(const Subscription& sub) {
  std::ostringstream os;
  os << sub;
  return os.str();
}

}  // namespace psc::core
