// Publication = a point in the attribute space (paper, Definition 6), with
// optional conversion to a degenerate box to support the approximate-
// matching model where publications are themselves polyhedra (Section 1).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <span>
#include <vector>

#include "core/subscription.hpp"

namespace psc::core {

using PublicationId = std::uint64_t;

/// Point publication with one value per attribute.
class Publication {
 public:
  Publication() = default;
  explicit Publication(std::vector<Value> values, PublicationId id = 0)
      : values_(std::move(values)), id_(id) {}
  Publication(std::initializer_list<Value> values, PublicationId id = 0)
      : values_(values), id_(id) {}

  [[nodiscard]] std::size_t attribute_count() const noexcept { return values_.size(); }
  [[nodiscard]] Value value(std::size_t attr) const { return values_.at(attr); }
  [[nodiscard]] std::span<const Value> values() const noexcept { return values_; }

  [[nodiscard]] PublicationId id() const noexcept { return id_; }
  void set_id(PublicationId id) noexcept { id_ = id; }

  /// True iff this publication satisfies every predicate of `sub`.
  [[nodiscard]] bool matches(const Subscription& sub) const noexcept {
    return sub.contains_point(values_);
  }

  /// Degenerate box [v, v] per attribute — publications-as-polyhedra view.
  [[nodiscard]] Subscription as_box() const;

 private:
  std::vector<Value> values_;
  PublicationId id_ = 0;
};

std::ostream& operator<<(std::ostream& out, const Publication& pub);

}  // namespace psc::core
