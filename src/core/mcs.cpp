#include "core/mcs.hpp"

#include <stdexcept>

namespace psc::core {

namespace {

/// True iff `entry` of row `row` conflicts with some defined entry of
/// another alive row. Only opposite-side entries on the same attribute can
/// conflict, so we probe exactly those two columns per other row.
bool entry_has_conflict(const ConflictTable& table, std::size_t row,
                        const TableEntry& entry, const std::vector<char>& alive) {
  const std::size_t opposite_col = entry.side == BoundSide::kLower
                                       ? 2 * entry.attribute + 1
                                       : 2 * entry.attribute;
  for (std::size_t other = 0; other < table.row_count(); ++other) {
    if (other == row || !alive[other]) continue;
    const auto other_entry = table.entry(other, opposite_col);
    if (!other_entry) continue;
    if (ConflictTable::entries_conflict(table.tested(), entry, *other_entry)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::size_t count_conflict_free(const ConflictTable& table, std::size_t row,
                                const std::vector<char>& alive) {
  if (alive.size() != table.row_count()) {
    throw std::invalid_argument("count_conflict_free: mask size mismatch");
  }
  std::size_t conflict_free = 0;
  for (std::size_t col = 0; col < table.column_count(); ++col) {
    const auto entry = table.entry(row, col);
    if (!entry) continue;
    if (!entry_has_conflict(table, row, *entry, alive)) ++conflict_free;
  }
  return conflict_free;
}

McsResult run_mcs(const ConflictTable& table) {
  McsResult result;
  std::vector<char> alive;
  run_mcs(table, result, alive);
  return result;
}

void run_mcs(const ConflictTable& table, McsResult& result,
             std::vector<char>& alive_scratch) {
  result.kept.clear();
  result.sweeps = 0;
  result.removed_conflict_free = 0;
  result.removed_defined_count = 0;
  const std::size_t n = table.row_count();
  std::vector<char>& alive = alive_scratch;
  alive.assign(n, 1);
  std::size_t alive_count = n;

  bool changed = n > 0;
  while (changed) {
    changed = false;
    ++result.sweeps;
    for (std::size_t row = 0; row < n; ++row) {
      if (!alive[row]) continue;
      const std::size_t t = table.defined_count(row);
      // t_i >= k check first: O(1), and it also catches rows made redundant
      // purely by prior removals shrinking k.
      if (t >= alive_count) {
        alive[row] = 0;
        --alive_count;
        ++result.removed_defined_count;
        changed = true;
        continue;
      }
      if (count_conflict_free(table, row, alive) >= 1) {
        alive[row] = 0;
        --alive_count;
        ++result.removed_conflict_free;
        changed = true;
      }
    }
  }

  result.kept.reserve(alive_count);
  for (std::size_t row = 0; row < n; ++row) {
    if (alive[row]) result.kept.push_back(row);
  }
}

}  // namespace psc::core
