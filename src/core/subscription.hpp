// Subscription = conjunction of range predicates over m attributes,
// i.e. an axis-aligned box in R^m (paper, Definition 1). Every subscription
// in a checker instance must constrain the same attribute schema; an
// unconstrained attribute is represented by Interval::everything().
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "core/interval.hpp"

namespace psc::core {

using SubscriptionId = std::uint64_t;
inline constexpr SubscriptionId kInvalidSubscriptionId = 0;

/// Axis-aligned box subscription. Immutable after construction except for
/// identity metadata (id / origin tag used by the routing layer).
class Subscription {
 public:
  Subscription() = default;

  /// Box with the given per-attribute ranges. Throws std::invalid_argument
  /// if any interval is empty (unsatisfiable subscriptions are rejected at
  /// the boundary rather than propagated through the algorithms).
  explicit Subscription(std::vector<Interval> ranges,
                        SubscriptionId id = kInvalidSubscriptionId);

  Subscription(std::initializer_list<Interval> ranges,
               SubscriptionId id = kInvalidSubscriptionId);

  /// Unconstrained subscription over `m` attributes (matches everything).
  [[nodiscard]] static Subscription everything(std::size_t m,
                                               SubscriptionId id = kInvalidSubscriptionId);

  [[nodiscard]] std::size_t attribute_count() const noexcept { return ranges_.size(); }
  [[nodiscard]] const Interval& range(std::size_t attr) const { return ranges_.at(attr); }
  [[nodiscard]] std::span<const Interval> ranges() const noexcept { return ranges_; }

  [[nodiscard]] SubscriptionId id() const noexcept { return id_; }
  void set_id(SubscriptionId id) noexcept { id_ = id; }

  /// Volume (Lebesgue measure) of the box; +inf if any side is unbounded,
  /// 0 if any side is degenerate. This is I(s) in the paper's Algorithm 2
  /// under the continuous data model.
  [[nodiscard]] Value volume() const noexcept;

  /// True iff `point` (one value per attribute) satisfies every predicate.
  [[nodiscard]] bool contains_point(std::span<const Value> point) const noexcept;

  /// Pairwise box containment: every range of `other` inside ours.
  [[nodiscard]] bool covers(const Subscription& other) const noexcept;

  /// True iff the two boxes share at least one point.
  [[nodiscard]] bool intersects(const Subscription& other) const noexcept;

  /// True iff the intersection has positive volume on every attribute.
  [[nodiscard]] bool overlaps_interior(const Subscription& other) const noexcept;

  /// Box intersection; empty-range marker if disjoint on some attribute.
  [[nodiscard]] Subscription intersect(const Subscription& other) const;

  /// True iff the box is well-formed and non-empty on all attributes.
  [[nodiscard]] bool is_satisfiable() const noexcept;

  friend bool operator==(const Subscription& a, const Subscription& b) {
    return a.ranges_ == b.ranges_;  // identity metadata excluded on purpose
  }

 private:
  struct unchecked_tag {};
  Subscription(unchecked_tag, std::vector<Interval> ranges, SubscriptionId id)
      : ranges_(std::move(ranges)), id_(id) {}

  std::vector<Interval> ranges_;
  SubscriptionId id_ = kInvalidSubscriptionId;
};

std::ostream& operator<<(std::ostream& out, const Subscription& sub);

/// Human-readable one-line rendering ("s42: [0,10]x[5,7]").
[[nodiscard]] std::string to_string(const Subscription& sub);

}  // namespace psc::core
