#include "core/interval.hpp"

namespace psc::core {

std::ostream& operator<<(std::ostream& out, const Interval& iv) {
  if (iv.is_empty()) return out << "[empty]";
  return out << "[" << iv.lo << ", " << iv.hi << "]";
}

}  // namespace psc::core
