#include "core/witness_estimate.hpp"

#include <cmath>
#include <stdexcept>

namespace psc::core {

namespace {

/// Measure of a 1-D slab: width for the continuous model, grid-point count
/// for the paper's integer model.
Value slab_measure(Value width, double grid_spacing) {
  if (grid_spacing <= 0.0) return width;
  return std::floor(width / grid_spacing) + 1.0;
}

}  // namespace

WitnessEstimate estimate_witness_probability(const ConflictTable& table,
                                             double grid_spacing) {
  WitnessEstimate est;
  const Subscription& s = table.tested();

  // Algorithm 2: per attribute, the width of the narrowest slab any single
  // subscription fails to cover on either side of s; starts at the full
  // width (no subscription constrains the attribute).
  Value witness_volume = 1.0;
  Value tested_volume = 1.0;
  for (std::size_t j = 0; j < table.attribute_count(); ++j) {
    const Interval& sr = s.range(j);
    Value min_gap = sr.width();
    for (std::size_t row = 0; row < table.row_count(); ++row) {
      if (const auto lower = table.entry(row, 2 * j)) {
        // Slab of s below s_i's lower bound: width = si.lo - s.lo (clamped).
        const Value gap = table.slab(*lower).width();
        if (gap < min_gap) min_gap = gap;
      }
      if (const auto upper = table.entry(row, 2 * j + 1)) {
        const Value gap = table.slab(*upper).width();
        if (gap < min_gap) min_gap = gap;
      }
    }
    witness_volume *= slab_measure(min_gap, grid_spacing);
    tested_volume *= slab_measure(sr.width(), grid_spacing);
  }
  est.witness_volume = witness_volume;
  est.tested_volume = tested_volume;

  if (est.tested_volume > 0.0 && std::isfinite(est.tested_volume)) {
    est.rho_w = static_cast<double>(witness_volume / est.tested_volume);
    if (est.rho_w > 1.0) est.rho_w = 1.0;
  } else {
    est.rho_w = 0.0;
  }
  return est;
}

double theoretical_trials(double rho_w, double delta) {
  if (!(delta > 0.0 && delta < 1.0)) {
    throw std::invalid_argument("theoretical_trials: delta must be in (0, 1)");
  }
  if (rho_w <= 0.0) return std::numeric_limits<double>::infinity();
  if (rho_w >= 1.0) return 1.0;
  // d = ln(delta) / ln(1 - rho_w); log1p for accuracy at tiny rho_w.
  return std::ceil(std::log(delta) / std::log1p(-rho_w));
}

std::uint64_t capped_trials(double rho_w, double delta, std::uint64_t cap) {
  const double d = theoretical_trials(rho_w, delta);
  if (!std::isfinite(d) || d >= static_cast<double>(cap)) return cap;
  return d < 1.0 ? 1 : static_cast<std::uint64_t>(d);
}

}  // namespace psc::core
