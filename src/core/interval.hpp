// Closed real interval [lo, hi] — one attribute constraint of a
// subscription. The paper models every simple predicate as a lower/upper
// bound on an attribute; an "insignificant" attribute is the unbounded
// interval (-inf, +inf) (paper, Section 3).
#pragma once

#include <limits>
#include <ostream>

namespace psc::core {

using Value = double;

/// Closed interval [lo, hi]. Empty iff lo > hi. The full line is
/// Interval::everything(); degenerate points (lo == hi) are allowed and have
/// zero measure.
struct Interval {
  Value lo = 0.0;
  Value hi = 0.0;

  constexpr Interval() = default;
  constexpr Interval(Value low, Value high) noexcept : lo(low), hi(high) {}

  [[nodiscard]] static constexpr Interval everything() noexcept {
    return {-std::numeric_limits<Value>::infinity(),
            std::numeric_limits<Value>::infinity()};
  }

  [[nodiscard]] static constexpr Interval empty() noexcept { return {1.0, 0.0}; }

  [[nodiscard]] static constexpr Interval point(Value v) noexcept { return {v, v}; }

  [[nodiscard]] constexpr bool is_empty() const noexcept { return lo > hi; }

  /// Lebesgue measure; 0 for points and empty intervals.
  [[nodiscard]] constexpr Value width() const noexcept {
    return is_empty() ? Value{0} : hi - lo;
  }

  [[nodiscard]] constexpr bool contains(Value v) const noexcept {
    return lo <= v && v <= hi;
  }

  /// True iff `other` is a subset of this interval (empty is subset of all).
  [[nodiscard]] constexpr bool contains(const Interval& other) const noexcept {
    return other.is_empty() || (lo <= other.lo && other.hi <= hi);
  }

  [[nodiscard]] constexpr bool intersects(const Interval& other) const noexcept {
    return !is_empty() && !other.is_empty() && lo <= other.hi && other.lo <= hi;
  }

  /// Intersection has positive measure (not just touching endpoints).
  /// This is the satisfiability notion used by the conflict table under the
  /// continuous data model: a zero-width sliver contains no witness mass.
  [[nodiscard]] constexpr bool overlaps_interior(const Interval& other) const noexcept {
    const Value joint_lo = lo > other.lo ? lo : other.lo;
    const Value joint_hi = hi < other.hi ? hi : other.hi;
    return joint_lo < joint_hi;
  }

  [[nodiscard]] constexpr Interval intersect(const Interval& other) const noexcept {
    if (is_empty() || other.is_empty()) return empty();
    return {lo > other.lo ? lo : other.lo, hi < other.hi ? hi : other.hi};
  }

  /// Smallest interval containing both (convex hull of the union).
  [[nodiscard]] constexpr Interval hull(const Interval& other) const noexcept {
    if (is_empty()) return other;
    if (other.is_empty()) return *this;
    return {lo < other.lo ? lo : other.lo, hi > other.hi ? hi : other.hi};
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& out, const Interval& iv);

}  // namespace psc::core
