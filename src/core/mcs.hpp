// Minimized Cover Set (paper, Algorithm 3 with Propositions 3-4).
//
// Iteratively removes subscriptions that are provably irrelevant to the
// group-coverage question for s:
//   * rows with a conflict-free defined entry (fc_i >= 1): any polyhedron
//     witness avoiding the other rows can be extended through the
//     conflict-free slab, so row i never "saves" the cover;
//   * rows with t_i >= k defined entries (k = current set size): a witness
//     of the other k-1 rows can always dodge at most k-1 conflicts, leaving
//     a free slab in row i.
// Rows removed for either reason also shrink k, so the sweep repeats until
// a fixed point. The surviving set S' is checked by RSPC; an empty S' is a
// definite NO (no candidate subset can jointly cover s).
//
// Conflict-free detection exploits the geometry: entries on different
// attributes never conflict, so each entry is compared only against
// opposite-side entries of other rows on the same attribute — O(m k) per
// row, O(m k^2) per sweep, O(m k^3) worst case across sweeps (the paper's
// bound, stated as O(m^2 k^3), is looser).
#pragma once

#include <cstddef>
#include <vector>

#include "core/conflict_table.hpp"

namespace psc::core {

struct McsResult {
  /// Indices (into the original set) of the surviving subscriptions.
  std::vector<std::size_t> kept;
  /// Sweep count until fixed point (>= 1 for non-empty inputs).
  std::size_t sweeps = 0;
  /// Rows removed because of a conflict-free entry.
  std::size_t removed_conflict_free = 0;
  /// Rows removed because t_i >= current k.
  std::size_t removed_defined_count = 0;

  [[nodiscard]] bool empty() const noexcept { return kept.empty(); }
};

/// Runs MCS on a built conflict table. The table itself is not mutated;
/// removal is tracked with an alive mask.
[[nodiscard]] McsResult run_mcs(const ConflictTable& table);

/// Allocation-free variant: writes into `result` (its kept vector is
/// cleared and refilled, capacity reused) using `alive_scratch` as the
/// alive mask buffer.
void run_mcs(const ConflictTable& table, McsResult& result,
             std::vector<char>& alive_scratch);

/// fc_i for one row given an alive mask over rows (true = row participates).
/// Exposed for tests and diagnostics.
[[nodiscard]] std::size_t count_conflict_free(const ConflictTable& table,
                                              std::size_t row,
                                              const std::vector<char>& alive);

}  // namespace psc::core
